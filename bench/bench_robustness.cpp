/// \file bench_robustness.cpp
/// Experiment E11 — §6 robustness analyses: SI→SER (Theorem 19, plain /
/// vulnerability-refined / concretisation-verified) and PSI→SI
/// (Theorem 22) on the banking application, TPC-C, and random suites.
/// The verdict table is the precision ablation DESIGN.md calls out:
/// plain < refined < verified on the counter and TPC-C inputs.

#include "bench_util.hpp"
#include "robustness/robustness.hpp"
#include "workload/apps.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E11", "Robustness analyses (Theorems 19 and 22)");
  std::vector<bench::VerdictRow> rows;
  const auto banking = paper::banking_programs();
  rows.push_back({"banking robust against SI (plain)", "not robust",
                  bench::robust_str(robust_against_si(banking.programs).robust)});
  rows.push_back(
      {"banking robust against SI (verified)", "not robust",
       bench::robust_str(robust_against_si_verified(banking.programs).robust)});
  rows.push_back(
      {"banking robust against PSI->SI", "not robust",
       bench::robust_str(robust_against_psi(banking.programs).robust)});

  const auto tpcc = workload::tpcc_like_programs();
  rows.push_back({"TPC-C robust against SI (plain)",
                  "not robust (coarse)",
                  std::string(bench::robust_str(
                      robust_against_si(tpcc.programs).robust)) +
                      " (coarse)"});
  rows.push_back(
      {"TPC-C robust against SI (refined)", "robust",
       bench::robust_str(robust_against_si_refined(tpcc.programs).robust)});

  ObjectTable objs;
  const ObjId x = objs.intern("x");
  const std::vector<Program> counter = {
      Program{"incr", {Piece{"x++", {x}, {x}}}}};
  rows.push_back({"counter robust against SI (plain)", "not robust",
                  bench::robust_str(robust_against_si(counter).robust)});
  rows.push_back(
      {"counter robust against SI (verified)", "robust",
       bench::robust_str(robust_against_si_verified(counter).robust)});

  const auto reporting = paper::reporting_programs();
  rows.push_back(
      {"reporting robust against SI", "robust",
       bench::robust_str(robust_against_si(reporting.programs).robust)});
  rows.push_back(
      {"reporting robust against PSI->SI", "robust",
       bench::robust_str(robust_against_psi(reporting.programs).robust)});
  return bench::print_verdicts(rows);
}

void BM_RobustSiPlain(benchmark::State& state) {
  workload::ProgramSuiteSpec spec;
  spec.programs = static_cast<std::size_t>(state.range(0));
  spec.pieces_per_program = 1;
  spec.objects = spec.programs * 4;
  const std::vector<Program> suite = workload::random_programs(spec);
  const StaticDependencyGraph g(suite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust_against_si(g).robust);
  }
}
BENCHMARK(BM_RobustSiPlain)->Arg(8)->Arg(32)->Arg(128);

void BM_RobustSiRefined(benchmark::State& state) {
  workload::ProgramSuiteSpec spec;
  spec.programs = static_cast<std::size_t>(state.range(0));
  spec.pieces_per_program = 1;
  spec.objects = spec.programs * 4;
  const std::vector<Program> suite = workload::random_programs(spec);
  const StaticDependencyGraph g(suite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust_against_si_refined(g).robust);
  }
}
BENCHMARK(BM_RobustSiRefined)->Arg(8)->Arg(32)->Arg(128);

void BM_RobustSiVerifiedBanking(benchmark::State& state) {
  const auto banking = paper::banking_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        robust_against_si_verified(banking.programs).robust);
  }
}
BENCHMARK(BM_RobustSiVerifiedBanking);

void BM_RobustPsiBanking(benchmark::State& state) {
  const auto banking = paper::banking_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust_against_psi(banking.programs).robust);
  }
}
BENCHMARK(BM_RobustPsiBanking);

void BM_RobustSiTpcc(benchmark::State& state) {
  const auto tpcc = workload::tpcc_like_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        robust_against_si_refined(tpcc.programs).robust);
  }
}
BENCHMARK(BM_RobustSiTpcc);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
