/// \file bench_witness.cpp
/// Experiment E21 — the witness engine over the paper's example suites:
/// the verdict table pins which (suite, criterion) pairs yield a concrete
/// anomaly history (Fig. 5 under all three criteria, Fig. 11 under SER
/// only, Fig. 12 under SER and SI) and that the cycle-guided search lands
/// every one on its first schedule; the sweep measures witnesses-found/sec
/// and schedules/steps explored, persisted as BENCH_witness.json. A
/// schedules-explored ceiling guards against search-order regressions
/// (CI runs this as a smoke test).

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "witness/witness.hpp"
#include "witness/witness_json.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

/// Total schedules the whole sweep may explore: the guide ranks should
/// land every witnessable pair on schedule one, so anything near the
/// ceiling means the cycle guidance regressed.
constexpr std::size_t kScheduleCeiling = 256;

struct SweepRow {
  std::string suite;
  std::string criterion;
  std::string status;
  std::size_t schedules{0};
  std::size_t steps{0};
  double find_ns{0};
};

ParsedSuite as_suite(paper::NamedPrograms np) {
  return ParsedSuite{std::move(np.programs), std::move(np.objects)};
}

std::vector<SweepRow> run_sweep() {
  struct Case {
    const char* name;
    ParsedSuite suite;
  };
  std::vector<Case> cases;
  cases.push_back({"fig5", as_suite(paper::fig5_programs())});
  cases.push_back({"fig6", as_suite(paper::fig6_programs())});
  cases.push_back({"fig11", as_suite(paper::fig11_programs())});
  cases.push_back({"fig12", as_suite(paper::fig12_programs())});

  std::vector<SweepRow> rows;
  for (const Case& c : cases) {
    for (const Criterion crit :
         {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
      const witness::Witness w = witness::find_witness(c.suite, crit);
      SweepRow row;
      row.suite = c.name;
      row.criterion = to_string(crit);
      row.status = to_string(w.status);
      row.schedules = w.stats.schedules_explored;
      row.steps = w.stats.steps_executed;
      row.find_ns = bench::time_best_ns(
          [&] { benchmark::DoNotOptimize(witness::find_witness(c.suite, crit)); },
          /*budget_ns=*/5e7, /*max_reps=*/5);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

bool write_json(const std::vector<SweepRow>& rows, std::size_t total_schedules,
                double witnesses_per_sec) {
  const char* path = "BENCH_witness.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path);
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"witness\",\n"
               "  \"schedule_ceiling\": %zu,\n"
               "  \"total_schedules_explored\": %zu,\n"
               "  \"witnesses_per_sec_fig5_si\": %.1f,\n  \"rows\": [\n",
               kScheduleCeiling, total_schedules, witnesses_per_sec);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"suite\": \"%s\", \"criterion\": \"%s\", \"status\": "
                 "\"%s\", \"schedules\": %zu, \"steps\": %zu, \"find_ns\": "
                 "%.0f}%s\n",
                 r.suite.c_str(), r.criterion.c_str(), r.status.c_str(),
                 r.schedules, r.steps, r.find_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
  return true;
}

bool reproduction_table() {
  bench::header("E21", "witness engine: concrete histories per finding");

  const std::vector<SweepRow> rows = run_sweep();

  // Expected status per (suite, criterion): Fig. 5 is incorrect under
  // every criterion; Fig. 6 is correct everywhere; Fig. 11 is incorrect
  // under SER only; Fig. 12 under SER and SI but correct under PSI.
  const auto expect = [](const std::string& suite,
                         const std::string& crit) -> const char* {
    if (suite == "fig5") return "witnessed";
    if (suite == "fig6") return "no-critical-cycle";
    if (suite == "fig11") {
      return crit == "SER" ? "witnessed" : "no-critical-cycle";
    }
    return crit == "PSI" ? "no-critical-cycle" : "witnessed";  // fig12
  };

  std::vector<bench::VerdictRow> verdicts;
  std::size_t total_schedules = 0;
  for (const SweepRow& r : rows) {
    total_schedules += r.schedules;
    verdicts.push_back({r.suite + " @ " + r.criterion,
                        expect(r.suite, r.criterion), r.status});
    if (r.status == "witnessed") {
      // Cycle guidance: the first schedule tried realises the anomaly.
      verdicts.push_back({"  schedules explored (" + r.suite + " @ " +
                              r.criterion + ")",
                          "1", std::to_string(r.schedules)});
    }
  }
  verdicts.push_back({"sweep schedule ceiling",
                      "<= " + std::to_string(kScheduleCeiling),
                      total_schedules <= kScheduleCeiling
                          ? "<= " + std::to_string(kScheduleCeiling)
                          : std::to_string(total_schedules)});

  // Round-trip: every witnessed row must replay to the same verdict.
  bool replays_ok = true;
  const ParsedSuite fig5 = as_suite(paper::fig5_programs());
  for (const Criterion crit :
       {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
    const witness::Witness w = witness::find_witness(fig5, crit);
    const witness::ReplayReport rep = witness::replay_witness_text(
        witness::to_json(w, "fig5", "bench"));
    replays_ok = replays_ok && rep.reproduced;
  }
  verdicts.push_back({"fig5 witnesses replay offline", "reproduced",
                      replays_ok ? "reproduced" : "NOT reproduced"});

  const bool ok = bench::print_verdicts(verdicts);

  // Throughput: end-to-end find_witness on Fig. 5 under SI, including
  // minimisation and both confirmation gates.
  double si_ns = 0;
  for (const SweepRow& r : rows) {
    if (r.suite == "fig5" && r.criterion == "SI") si_ns = r.find_ns;
  }
  const double per_sec = si_ns > 0 ? 1e9 / si_ns : 0;
  std::printf("\nfig5 @ SI: %.0f witnesses/sec (%.1f us per witness)\n",
              per_sec, si_ns / 1e3);

  return write_json(rows, total_schedules, per_sec) && ok;
}

void BM_FindWitnessFig5(benchmark::State& state) {
  const ParsedSuite suite = as_suite(paper::fig5_programs());
  const Criterion crit = static_cast<Criterion>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness::find_witness(suite, crit));
  }
  state.SetLabel(to_string(crit));
}
BENCHMARK(BM_FindWitnessFig5)
    ->Arg(static_cast<int>(Criterion::kSER))
    ->Arg(static_cast<int>(Criterion::kSI))
    ->Arg(static_cast<int>(Criterion::kPSI));

void BM_FindWitnessNoMinimise(benchmark::State& state) {
  const ParsedSuite suite = as_suite(paper::fig5_programs());
  witness::WitnessOptions opts;
  opts.minimize = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness::find_witness(suite, Criterion::kSI, opts));
  }
}
BENCHMARK(BM_FindWitnessNoMinimise);

void BM_ReplayWitness(benchmark::State& state) {
  const ParsedSuite suite = as_suite(paper::fig5_programs());
  const witness::Witness w = witness::find_witness(suite, Criterion::kSI);
  const std::string doc = witness::to_json(w, "fig5", "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness::replay_witness_text(doc).reproduced);
  }
}
BENCHMARK(BM_ReplayWitness);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
