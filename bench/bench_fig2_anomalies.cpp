/// \file bench_fig2_anomalies.cpp
/// Experiment E1 — Figure 2: the verdict matrix of the four canonical
/// (an)omalies under SER / SI / PSI, decided three independent ways:
///  1. the exact history-level decision procedure (Theorems 8/9/21 +
///     exhaustive Definition-6 extension search);
///  2. hand-built abstract executions checked against the Figure 1 axioms
///     (covered by unit tests);
///  3. the operational engines (the SI engine produces write skew but not
///     lost update; the PSI engine produces the long fork; covered by
///     engine tests).
/// The timing section measures the decision procedure and the
/// characterisation checks on these histories.

#include "bench_util.hpp"
#include "graph/enumeration.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

struct Anomaly {
  std::string name;
  History history;
  bool ser, si, psi;  // paper verdicts: allowed?
};

std::vector<Anomaly> anomalies() {
  return {
      {"Fig2(a) session guarantee", paper::fig2a_session_guarantee().history,
       true, true, true},
      {"Fig2(b) lost update", paper::fig2b_lost_update().history, false,
       false, false},
      {"Fig2(c) long fork", paper::fig2c_long_fork().history, false, false,
       true},
      {"Fig2(d) write skew", paper::fig2d_write_skew().history, false, true,
       true},
  };
}

bool reproduction_table() {
  bench::header("E1", "Figure 2 anomaly matrix (SER / SI / PSI)");
  std::vector<bench::VerdictRow> rows;
  for (const Anomaly& a : anomalies()) {
    for (const auto& [model, expected] :
         {std::pair{Model::kSER, a.ser}, std::pair{Model::kSI, a.si},
          std::pair{Model::kPSI, a.psi}}) {
      rows.push_back({a.name + " under " + to_string(model),
                      bench::yesno(expected),
                      bench::yesno(decide_history(a.history, model).allowed)});
    }
  }
  return bench::print_verdicts(rows);
}

void BM_DecideHistory(benchmark::State& state, Model model) {
  const auto all = anomalies();
  for (auto _ : state) {
    for (const Anomaly& a : all) {
      benchmark::DoNotOptimize(decide_history(a.history, model).allowed);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK_CAPTURE(BM_DecideHistory, ser, Model::kSER);
BENCHMARK_CAPTURE(BM_DecideHistory, si, Model::kSI);
BENCHMARK_CAPTURE(BM_DecideHistory, psi, Model::kPSI);

void BM_GraphCheckWriteSkew(benchmark::State& state) {
  // Characterisation check on a fixed witness graph of Figure 2(d).
  const auto dec =
      decide_history(paper::fig2d_write_skew().history, Model::kSI);
  const DependencyGraph g = *dec.witness;
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_si(g).member);
  }
}
BENCHMARK(BM_GraphCheckWriteSkew);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
