/// \file bench_theorem10_soundness.cpp
/// Experiment E9 — Theorem 10(i) at scale: building an SI abstract
/// execution (total CO + VIS) from a dependency graph via the Lemma 15
/// closed form and incremental CO totalisation. Measures the closed-form
/// solve on its own and the full construction, plus the verification cost
/// of the resulting execution against the Figure 1 axioms.

#include "bench_util.hpp"
#include "graph/soundness.hpp"
#include "workload/generator.hpp"

namespace sia {
namespace {

mvcc::RecordedRun make_run(std::size_t txns) {
  workload::WorkloadSpec spec;
  spec.sessions = 8;
  spec.txns_per_session = txns / 8;
  spec.ops_per_txn = 4;
  spec.num_keys = static_cast<std::uint32_t>(txns / 2 + 1);
  spec.concurrent = false;
  spec.seed = txns * 31 + 7;
  return workload::run_si(spec);
}

bool reproduction_table() {
  bench::header("E9", "Theorem 10(i) construction (graph -> ExecSI)");
  std::vector<bench::VerdictRow> rows;
  for (const std::size_t n : {64u, 256u}) {
    const mvcc::RecordedRun run = make_run(n);
    const AbstractExecution x = construct_execution(run.graph);
    const bool in_exec_si = axioms::is_exec_si(x);
    const bool co_total = x.co.is_strict_total_order();
    rows.push_back({"n=" + std::to_string(run.history.txn_count()) +
                        ": constructed X in ExecSI",
                    "yes", in_exec_si ? "yes" : "no"});
    rows.push_back({"n=" + std::to_string(run.history.txn_count()) +
                        ": CO is a strict total order",
                    "yes", co_total ? "yes" : "no"});
  }
  return bench::print_verdicts(rows);
}

void BM_Lemma15SmallestSolution(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(smallest_solution(rel).co.edge_count());
  }
}
BENCHMARK(BM_Lemma15SmallestSolution)->RangeMultiplier(4)->Range(64, 1024);

void BM_ConstructExecution(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(construct_execution(run.graph).co.edge_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructExecution)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

void BM_VerifyConstructedExecution(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const AbstractExecution x = construct_execution(run.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(axioms::is_exec_si(x));
  }
}
BENCHMARK(BM_VerifyConstructedExecution)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
