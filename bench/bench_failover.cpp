/// \file bench_failover.cpp
/// Experiment E20 — warm-standby replication and failover (DESIGN.md
/// §4h): what does synchronous log shipping cost, and how fast does the
/// service come back when the primary dies?
///
/// Three measurements, persisted to BENCH_failover.json:
///  - steady-state overhead: run_load at 16 connections against a plain
///    server vs a primary shipping every frame synchronously; the
///    acceptance criterion is <= 15% commits/sec overhead on the primary.
///    Two standby variants: "shipping" (a wire-faithful standby that acks
///    without applying — the primary-side machinery cost, which is what a
///    deployment with the standby on its own hardware pays) and
///    "co-located" (a full follower applying every frame in this same
///    process; on a host with a single hardware thread the follower's
///    monitor ingestion serialises with the primary's, so this number is
///    bounded below by the monitor's share of the core, not by the
///    replication machinery),
///  - replication lag: the primary's STATUS gauges sampled mid-load (the
///    in-flight window bounds it; synchronous shipping drains it to zero
///    when the load stops),
///  - failover time: kill the primary mid-stream (hard_stop, the
///    in-process SIGKILL) and time the client-observed outage until the
///    auto-promoted follower acks the next sequenced commit — with the
///    audit that nothing acknowledged was lost.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/loadgen.hpp"
#include "service/server.hpp"
#include "workload/stream_source.hpp"

namespace sia::service {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kShards = 4;
constexpr std::size_t kConnections = 16;
constexpr double kOverheadCeilingPct = 15.0;

constexpr int kReps = 3;

LoadgenConfig load_config(std::uint16_t port) {
  LoadgenConfig cfg;
  cfg.port = port;
  cfg.connections = kConnections;
  cfg.streams_per_connection = 2;
  cfg.txns_per_stream = 288;
  cfg.batch_size = 8;
  cfg.model = ServiceModel::kSI;
  cfg.seed = 58;
  return cfg;
}

void keep_best(LoadReport& best, const LoadReport& r, bool first) {
  if (first || r.commits_per_sec > best.commits_per_sec) best = r;
}

/// A wire-faithful standby endpoint that speaks the replication
/// handshake and acks every REPL_APPEND in arrival order without
/// applying it. Shipping to it isolates the primary-side machinery cost
/// (WAL framing, encode, socket round-trip, deferred acks) from the
/// standby's own monitor CPU — the split that matters when the real
/// standby runs on its own hardware.
class AckOnlyStandby {
 public:
  AckOnlyStandby() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr));
    (void)::listen(listen_fd_, 4);
    socklen_t len = sizeof(addr);
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { run(); });
  }
  ~AckOnlyStandby() {
    stop_.store(true, std::memory_order_release);
    (void)::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void run() {
    while (!stop_.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      serve(fd);
      ::close(fd);
    }
  }
  void serve(int fd) {
    FrameDecoder decoder;
    std::array<std::uint8_t, 65536> buf;
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 100) < 0) return;
      if ((pfd.revents & POLLIN) == 0) continue;
      const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
      if (n <= 0) return;
      decoder.feed(buf.data(), static_cast<std::size_t>(n));
      for (;;) {
        Message msg;
        const FrameDecoder::Status st = decoder.next(msg);
        if (st == FrameDecoder::Status::kNeedMore) break;
        if (st == FrameDecoder::Status::kMalformed) return;
        Message reply;
        if (msg.type == MsgType::kReplHello) {
          reply.type = MsgType::kReplWelcome;
          reply.epoch = msg.epoch;
        } else if (msg.type == MsgType::kReplAppend) {
          reply.type = MsgType::kReplAck;
          reply.stream = msg.stream;
          reply.seq = msg.seq;
          reply.epoch = msg.epoch;
        } else {
          return;
        }
        const auto frame = encode_frame(reply);
        if (::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(frame.size())) {
          return;
        }
      }
    }
  }

  int listen_fd_{-1};
  std::uint16_t port_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

struct LagSample {
  std::uint64_t max_frames{0};
  std::uint64_t max_bytes{0};
  std::uint64_t final_frames{0};
  std::uint64_t final_bytes{0};
};

struct FailoverTrial {
  double outage_ms{0};
  std::uint64_t epoch{0};
  bool exact{false};  // no acked commit lost, no divergence from mirror
};

/// One kill-the-primary run: sequenced commits through a FailoverClient,
/// hard_stop mid-stream, outage timed around the first commit that has
/// to ride the promotion.
FailoverTrial failover_trial(std::uint64_t seed) {
  ServerConfig fcfg;
  fcfg.shards = kShards;
  fcfg.follower = true;
  fcfg.repl.auto_promote_ms = 150;
  Server follower(fcfg);
  follower.start();
  ServerConfig pcfg;
  pcfg.shards = kShards;
  pcfg.repl.peer_port = follower.port();
  pcfg.repl.heartbeat_interval_ms = 25;
  Server primary(pcfg);
  primary.start();

  FailoverClient fc({{"127.0.0.1", primary.port()},
                     {"127.0.0.1", follower.port()}});
  fc.connect();
  const std::uint64_t stream = fc.open_stream(ServiceModel::kSI);

  StreamingMonitor mirror(Model::kSI);
  workload::StreamSpec spec;
  spec.seed = 77 + seed;
  workload::StreamSource source(spec);
  const auto batch_of = [&source] {
    std::vector<MonitoredCommit> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(source.next());
    return batch;
  };
  const auto commit_acked = [&fc, stream](std::uint64_t seq,
                                          const std::vector<MonitoredCommit>&
                                              batch) {
    for (;;) {
      const Message reply = fc.commit(stream, seq, batch);
      if (reply.type != MsgType::kRetryLater) {
        return reply.type == MsgType::kCommitted ? reply.ids.size() : 0;
      }
    }
  };

  FailoverTrial trial;
  std::uint64_t seq = 0;
  std::uint64_t acked = 0;
  for (int b = 0; b < 6; ++b) {
    const auto batch = batch_of();
    acked += commit_acked(++seq, batch);
    (void)mirror.commit_all_guarded(batch);
  }
  primary.hard_stop();
  {
    const auto batch = batch_of();
    const auto t0 = Clock::now();
    acked += commit_acked(++seq, batch);
    trial.outage_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    (void)mirror.commit_all_guarded(batch);
  }
  for (int b = 0; b < 6; ++b) {
    const auto batch = batch_of();
    acked += commit_acked(++seq, batch);
    (void)mirror.commit_all_guarded(batch);
  }

  trial.epoch = fc.epoch();
  const Message st = fc.status(stream);
  trial.exact = st.type == MsgType::kStatusReply &&
                st.commit_count == acked && acked == 13u * 8u &&
                st.verdict == static_cast<std::uint8_t>(mirror.verdict()) &&
                st.retained == mirror.retained() &&
                st.approx_bytes == mirror.approx_bytes();
  follower.drain();
  return trial;
}

struct Results {
  LoadReport baseline;
  LoadReport shipping;    // primary -> ack-only standby
  LoadReport co_located;  // primary -> full follower, same process
  double shipping_overhead_pct{0};
  double co_located_overhead_pct{0};
  LagSample lag;
  std::vector<FailoverTrial> trials;
};

double overhead_pct(const LoadReport& base, const LoadReport& repl) {
  return base.commits_per_sec > 0
             ? 100.0 * (1.0 - repl.commits_per_sec / base.commits_per_sec)
             : 0.0;
}

/// run_load against \p primary while a sampler thread watches its global
/// STATUS gauges; the final sample is taken after the load stops, so a
/// drained link must read lag 0.
LoadReport load_with_lag_sampling(Server& primary, LagSample& lag) {
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    ServiceClient observer;
    observer.connect("127.0.0.1", primary.port());
    const auto sample = [&] {
      const Message st = observer.status(0);
      if (st.type != MsgType::kStatusReply) return;
      lag.final_frames = st.lag_frames;
      lag.final_bytes = st.lag_bytes;
      if (st.lag_frames > lag.max_frames) lag.max_frames = st.lag_frames;
      if (st.lag_bytes > lag.max_bytes) lag.max_bytes = st.lag_bytes;
    };
    while (!done.load(std::memory_order_acquire)) {
      sample();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sample();  // after the load: synchronous shipping must have drained
  });
  const LoadReport report = run_load(load_config(primary.port()));
  done.store(true, std::memory_order_release);
  sampler.join();
  return report;
}

/// The three variants are interleaved rep by rep (fresh servers each
/// time), best-of-kReps each: machine-load drift hits all three equally
/// instead of whichever variant ran in the noisy window.
Results run_all() {
  Results res;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      ServerConfig scfg;
      scfg.shards = kShards;
      Server server(scfg);
      server.start();
      keep_best(res.baseline, run_load(load_config(server.port())),
                rep == 0);
      server.drain();
    }
    {
      AckOnlyStandby standby;
      ServerConfig pcfg;
      pcfg.shards = kShards;
      pcfg.repl.peer_port = standby.port();
      Server primary(pcfg);
      primary.start();
      keep_best(res.shipping, load_with_lag_sampling(primary, res.lag),
                rep == 0);
      primary.drain();
    }
    {
      ServerConfig fcfg;
      fcfg.shards = kShards;
      fcfg.follower = true;
      Server follower(fcfg);
      follower.start();
      ServerConfig pcfg;
      pcfg.shards = kShards;
      pcfg.repl.peer_port = follower.port();
      Server primary(pcfg);
      primary.start();
      keep_best(res.co_located, run_load(load_config(primary.port())),
                rep == 0);
      primary.drain();
      follower.drain();
    }
  }
  res.shipping_overhead_pct = overhead_pct(res.baseline, res.shipping);
  res.co_located_overhead_pct = overhead_pct(res.baseline, res.co_located);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    res.trials.push_back(failover_trial(seed));
  }
  return res;
}

bool write_json(const std::string& path, const Results& res) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_failover\",\n  \"model\": \"SI\",\n"
               "  \"shards\": %zu,\n  \"connections\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"baseline_commits_per_sec\": %.0f,\n"
               "  \"shipping_commits_per_sec\": %.0f,\n"
               "  \"co_located_commits_per_sec\": %.0f,\n"
               "  \"shipping_overhead_pct\": %.2f,\n"
               "  \"co_located_overhead_pct\": %.2f,\n"
               "  \"overhead_ceiling_pct\": %.1f,\n"
               "  \"baseline_p99_ms\": %.3f,\n"
               "  \"shipping_p99_ms\": %.3f,\n"
               "  \"co_located_p99_ms\": %.3f,\n"
               "  \"max_lag_frames\": %llu,\n  \"max_lag_bytes\": %llu,\n"
               "  \"final_lag_frames\": %llu,\n  \"final_lag_bytes\": %llu,\n"
               "  \"failover_trials\": [\n",
               kShards, kConnections,
               std::thread::hardware_concurrency(),
               res.baseline.commits_per_sec, res.shipping.commits_per_sec,
               res.co_located.commits_per_sec, res.shipping_overhead_pct,
               res.co_located_overhead_pct, kOverheadCeilingPct,
               res.baseline.p99_ms, res.shipping.p99_ms,
               res.co_located.p99_ms,
               static_cast<unsigned long long>(res.lag.max_frames),
               static_cast<unsigned long long>(res.lag.max_bytes),
               static_cast<unsigned long long>(res.lag.final_frames),
               static_cast<unsigned long long>(res.lag.final_bytes));
  for (std::size_t i = 0; i < res.trials.size(); ++i) {
    const FailoverTrial& t = res.trials[i];
    std::fprintf(f,
                 "    {\"outage_ms\": %.1f, \"epoch\": %llu, "
                 "\"exact\": %s}%s\n",
                 t.outage_ms, static_cast<unsigned long long>(t.epoch),
                 t.exact ? "true" : "false",
                 i + 1 < res.trials.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool table() {
  bench::header("E20", "warm-standby replication: overhead and failover");
  const Results res = run_all();

  bool all_exact = true;
  double worst_outage = 0;
  for (const FailoverTrial& t : res.trials) {
    all_exact = all_exact && t.exact;
    worst_outage = t.outage_ms > worst_outage ? t.outage_ms : worst_outage;
  }
  char exceeded_buf[64];
  std::snprintf(exceeded_buf, sizeof(exceeded_buf), "exceeded (%.1f%%)",
                res.shipping_overhead_pct);
  const std::vector<bench::VerdictRow> verdicts = {
      {"primary-side replication overhead (16 conns)", "within 15%",
       res.shipping_overhead_pct <= kOverheadCeilingPct
           ? "within 15%"
           : std::string(exceeded_buf)},
      {"replication lag drained after load", "0 frames",
       res.lag.final_frames == 0
           ? "0 frames"
           : std::to_string(res.lag.final_frames) + " frames"},
      {"acked commits survive killing the primary (3 trials)", "all",
       all_exact ? "all" : "LOST OR DIVERGED"},
      {"baseline load audit", "clean",
       clean(res.baseline) ? "clean" : "NOT CLEAN"},
      {"replicated load audit", "clean",
       clean(res.shipping) && clean(res.co_located) ? "clean"
                                                    : "NOT CLEAN"},
  };
  const bool reproduced = bench::print_verdicts(verdicts);

  std::printf("%-24s %14s %14s %14s\n", "", "baseline", "shipping",
              "co-located");
  std::printf("%-24s %14.0f %14.0f %14.0f\n", "commits/sec",
              res.baseline.commits_per_sec, res.shipping.commits_per_sec,
              res.co_located.commits_per_sec);
  std::printf("%-24s %14.3f %14.3f %14.3f\n", "p50 (ms)",
              res.baseline.p50_ms, res.shipping.p50_ms,
              res.co_located.p50_ms);
  std::printf("%-24s %14.3f %14.3f %14.3f\n", "p99 (ms)",
              res.baseline.p99_ms, res.shipping.p99_ms,
              res.co_located.p99_ms);
  std::printf(
      "overhead: shipping %.1f%% (ceiling %.0f%%), co-located %.1f%% "
      "(%u hw threads), lag max %llu frames / %llu bytes, worst outage "
      "%.0f ms\n",
      res.shipping_overhead_pct, kOverheadCeilingPct,
      res.co_located_overhead_pct, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(res.lag.max_frames),
      static_cast<unsigned long long>(res.lag.max_bytes), worst_outage);
  write_json("BENCH_failover.json", res);
  return reproduced;
}

// One synchronously replicated COMMIT round-trip (batch of 8): client ->
// primary -> follower -> REPL_ACK -> client, against a warm pair.
void BM_ReplicatedCommitRoundTrip(benchmark::State& state) {
  ServerConfig fcfg;
  fcfg.shards = 1;
  fcfg.follower = true;
  Server follower(fcfg);
  follower.start();
  ServerConfig pcfg;
  pcfg.shards = 1;
  pcfg.repl.peer_port = follower.port();
  Server primary(pcfg);
  primary.start();
  ServiceClient client;
  client.connect("127.0.0.1", primary.port());
  std::uint64_t stream = client.open_stream(Model::kSI);

  workload::StreamSource source({});
  std::uint64_t acked = 0;
  std::size_t in_stream = 0;
  for (auto _ : state) {
    std::vector<MonitoredCommit> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(source.next());
    const Message reply = client.commit(stream, batch);
    benchmark::DoNotOptimize(reply.type);
    acked += reply.ids.size();
    if (++in_stream >= 64) {
      state.PauseTiming();
      (void)client.close_stream(stream);
      stream = client.open_stream(Model::kSI);
      in_stream = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(acked));
  primary.drain();
  follower.drain();
}
BENCHMARK(BM_ReplicatedCommitRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sia::service

SIA_BENCH_MAIN(sia::service::table)
