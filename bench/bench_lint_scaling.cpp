/// \file bench_lint_scaling.cpp
/// Experiment E17 — sia_lint driver scaling: the full check registry over
/// suite files of growing size and count. The verdict table pins the
/// qualitative results (Figure 5 flags an SI-critical cycle, Figure 6 is
/// cycle-free, the SARIF report parses); the sweep compares linting N
/// files one run_lint call at a time against one parallel run over all of
/// them, persisted as BENCH_lint_scaling.json.
///
/// Experiment E22 — parametric keyspace axis: a TPC-C-shaped suite whose
/// declared keyspace grows from ~10^2 to 10^9 representable keys while its
/// piece structure stays fixed. The interval domain must lint it in flat
/// time (O(pieces), not O(keys)); the verdict table gates on that, and the
/// per-size timings land in BENCH_lint_scaling.json for regression
/// tracking.

#include <thread>

#include "bench_util.hpp"
#include <algorithm>

#include "lint/abstract_keys.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "tools/json_min.hpp"
#include "tools/program_parser.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

/// Deterministic suite text: \p programs programs of \p pieces pieces,
/// reading/writing consecutive objects from a pool of \p objects (so no
/// reads/writes list ever repeats an object). Text, not Program values —
/// the lint driver's unit of work is a source file.
std::string make_suite_text(std::size_t programs, std::size_t pieces,
                            std::size_t objects, std::uint64_t seed) {
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  const auto next = [&state](std::size_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>((state >> 33) % bound);
  };
  std::string out;
  for (std::size_t i = 0; i < programs; ++i) {
    out += "program p" + std::to_string(i) + " {\n";
    for (std::size_t j = 0; j < pieces; ++j) {
      const std::size_t base = next(objects);
      out += "  piece reads o" + std::to_string(base) + " o" +
             std::to_string((base + 1) % objects) + " writes o" +
             std::to_string((base + 2) % objects) + "\n";
    }
    out += "}\n";
  }
  return out;
}

std::vector<lint::SourceFile> make_files(std::size_t count,
                                         std::size_t programs,
                                         std::size_t pieces) {
  std::vector<lint::SourceFile> files;
  for (std::size_t i = 0; i < count; ++i) {
    files.push_back(lint::SourceFile{
        "suite" + std::to_string(i) + ".sia",
        make_suite_text(programs, pieces, 4 * programs, /*seed=*/i + 1)});
  }
  return files;
}

/// The sweep times the driver, not the analyses' worst case: it runs
/// every check except robust-psi-si (whose mandatory concretization can
/// take seconds per suite on dense random inputs) and bounds the cycle
/// enumeration, exactly as a CI deployment of sia_lint would.
lint::LintOptions sweep_opts() {
  lint::LintOptions opts;
  for (const lint::CheckInfo& c : lint::all_checks()) {
    if (std::string_view(c.id) != "robust-psi-si") opts.enabled.push_back(c.id);
  }
  opts.check.cycle_budget = 20'000;
  return opts;
}

/// TPC-C-shaped parametric suite whose keyspace scales with \p items
/// (stock and the StockLevel range scan cover 10 warehouses x items keys)
/// while the piece structure stays fixed at five pieces.
std::string make_parametric_text(std::uint64_t items) {
  const std::string k = std::to_string(items);
  return "program neworder {\n"
         "  param w in 1..10\n"
         "  param d in 1..10\n"
         "  param i in 1.." +
         k +
         "\n"
         "  piece \"order\" reads warehouse[w] district[w, d] writes "
         "district[w, d] orders[w, d]\n"
         "  piece \"stock\" reads stock[w, i] orders[w, d] writes "
         "stock[w, i] order_lines[w, d]\n"
         "}\n"
         "program payment {\n"
         "  param w in 1..10\n"
         "  param d in 1..10\n"
         "  piece \"pay\" reads warehouse[w] district[w, d] writes "
         "warehouse[w] district[w, d]\n"
         "}\n"
         "program stocklevel {\n"
         "  param w in 1..10\n"
         "  param d in 1..10\n"
         "  piece \"level\" reads district[w, d] stock[w, 1.." +
         k +
         "] order_lines[w, d]\n"
         "}\n";
}

bool has_check(const lint::LintRun& run, const std::string& check) {
  for (const lint::FileResult& f : run.files) {
    for (const Diagnostic& d : f.diagnostics) {
      if (d.check == check) return true;
    }
  }
  return false;
}

bool reproduction_table() {
  bench::header("E17", "sia_lint driver scaling");
  std::vector<bench::VerdictRow> rows;

  const paper::NamedPrograms fig5 = paper::fig5_programs();
  const lint::LintRun r5 = lint::run_lint(
      {{"fig5.sia", format_programs(fig5.programs, fig5.objects)}}, {});
  rows.push_back({"Fig. 5 (transfer + lookupAll) under SI",
                  "SI-critical cycle",
                  has_check(r5, "si-critical-cycle") ? "SI-critical cycle"
                                                     : "no cycle"});

  const paper::NamedPrograms fig6 = paper::fig6_programs();
  const lint::LintRun r6 = lint::run_lint(
      {{"fig6.sia", format_programs(fig6.programs, fig6.objects)}}, {});
  rows.push_back({"Fig. 6 (transfer + split lookups) under SI", "no cycle",
                  has_check(r6, "si-critical-cycle") ? "SI-critical cycle"
                                                     : "no cycle"});

  bool sarif_ok = true;
  try {
    const JsonValue doc = parse_json(lint::to_sarif(r5));
    sarif_ok = doc.at("version").string == "2.1.0";
  } catch (const ModelError&) {
    sarif_ok = false;
  }
  rows.push_back({"SARIF report of the Fig. 5 run", "parses as SARIF 2.1.0",
                  sarif_ok ? "parses as SARIF 2.1.0" : "malformed"});
  bool reproduced = bench::print_verdicts(rows);

  // ---- file-count sweep: sequential per-file runs vs one parallel run.
  const lint::LintOptions opts = sweep_opts();
  std::vector<bench::KernelRow> sweep;
  for (const std::size_t programs : {6u, 16u}) {
    for (const std::size_t count : {1u, 4u, 16u, 64u}) {
      const std::vector<lint::SourceFile> files =
          make_files(count, programs, /*pieces=*/3);
      bench::KernelRow row;
      row.kernel = "lint/p" + std::to_string(programs);
      row.n = count;
      row.old_ns = bench::time_best_ns([&] {
        for (const lint::SourceFile& f : files) {
          benchmark::DoNotOptimize(lint::run_lint({f}, opts).counts.findings());
        }
      });
      row.new_ns = bench::time_best_ns([&] {
        benchmark::DoNotOptimize(
            lint::run_lint(files, opts).counts.findings());
      });
      sweep.push_back(row);
    }
  }
  // ---- E22: parametric keyspace axis — flat lint time 10^2 .. 10^9 keys.
  bench::header("E22", "parametric keyspace scaling");
  double base_ns = 0;
  double worst_ns = 0;
  std::size_t base_findings = 0;
  bool same_findings = true;
  for (const std::uint64_t items :
       {std::uint64_t{10}, std::uint64_t{1'000}, std::uint64_t{100'000},
        std::uint64_t{100'000'000}}) {
    const std::string text = make_parametric_text(items);
    const abstract_keys::KeyStats stats =
        abstract_keys::key_stats(parse_programs(text).programs);
    const lint::SourceFile file{"parametric.sia", text};
    std::size_t findings = 0;
    const double ns = bench::time_best_ns([&] {
      findings = lint::run_lint({file}, opts).counts.findings();
      benchmark::DoNotOptimize(findings);
    });
    if (base_ns == 0) {
      base_ns = ns;
      base_findings = findings;
    }
    same_findings = same_findings && findings == base_findings;
    worst_ns = std::max(worst_ns, ns);
    bench::KernelRow row;
    // old = the smallest-keyspace baseline, new = this size; a speedup
    // near 1.0 across the axis is the O(pieces)-not-O(keys) flat line.
    row.kernel = "lint/parametric-keys";
    row.n = stats.representable_keys;
    row.old_ns = base_ns;
    row.new_ns = ns;
    sweep.push_back(row);
  }
  std::vector<bench::VerdictRow> prows;
  prows.push_back({"10^9-key parametric TPC-C lint time", "< 100 ms",
                   worst_ns < 1e8 ? "< 100 ms" : ">= 100 ms"});
  prows.push_back({"lint time growth, 10^2 -> 10^9 keys", "flat (< 5x)",
                   worst_ns < 5 * base_ns ? "flat (< 5x)" : "scales with keys"});
  prows.push_back({"findings across keyspace sizes", "invariant",
                   same_findings ? "invariant" : "diverge"});
  reproduced = bench::print_verdicts(prows) && reproduced;

  bench::print_kernel_rows(sweep);
  const bool wrote =
      bench::write_kernel_json("BENCH_lint_scaling.json", "bench_lint_scaling",
                               std::thread::hardware_concurrency(), sweep);
  return reproduced && wrote;
}

void BM_LintOneSuite(benchmark::State& state) {
  const std::vector<lint::SourceFile> files =
      make_files(1, static_cast<std::size_t>(state.range(0)), 3);
  const lint::LintOptions opts = sweep_opts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::run_lint(files, opts).counts.findings());
  }
  state.SetLabel(std::to_string(state.range(0)) + " programs");
}
BENCHMARK(BM_LintOneSuite)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_LintManyFiles(benchmark::State& state) {
  const std::vector<lint::SourceFile> files =
      make_files(static_cast<std::size_t>(state.range(0)), 8, 3);
  const lint::LintOptions opts = sweep_opts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::run_lint(files, opts).counts.findings());
  }
}
BENCHMARK(BM_LintManyFiles)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_SarifRender(benchmark::State& state) {
  const lint::LintRun run = lint::run_lint(
      make_files(static_cast<std::size_t>(state.range(0)), 8, 3),
      sweep_opts());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::to_sarif(run).size());
  }
}
BENCHMARK(BM_SarifRender)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
