#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "mvcc/psi_engine.hpp"
#include "mvcc/ser_engine.hpp"
#include "mvcc/si_engine.hpp"
#include "mvcc/ssi_engine.hpp"

/// \file bench_fault_overhead.cpp
/// E15 artefact: the fault-injection hooks must be free when disabled.
/// Every engine operation carries four hook sites guarded by one branch on
/// a pointer the engine already holds. Two measurements per engine, on an
/// identical single-threaded RMW workload:
///  - `<engine>_nullptr`: the shipping configuration (no injector), timed
///    twice — the speedup column is the noise floor and the <1% acceptance
///    target applies here: the hooked binary must not be measurably slower
///    than itself, i.e. the hooks contribute nothing above noise;
///  - `<engine>_zeroplan`: nullptr vs an *attached* zero-probability
///    injector (every hook takes the lock-and-count path) — informational,
///    quantifying the cost of leaving an idle injector plugged in.
/// Results persist to BENCH_fault_overhead.json.

namespace sia::bench {
namespace {

constexpr std::uint32_t kKeys = 16;
constexpr std::size_t kTxns = 20000;

/// One RMW transaction per iteration, single session, no conflicts.
template <typename Db, typename Session>
void drive(Db& db, Session& session, std::size_t txns) {
  for (std::size_t i = 0; i < txns; ++i) {
    db.run(session, [i](auto& txn) {
      const ObjId k = static_cast<ObjId>(i % kKeys);
      if constexpr (requires(decltype(txn) t) { t.read(k).has_value(); }) {
        const auto v = txn.read(k);
        if (!v) return;
        (void)txn.write(k, *v + 1);
      } else {
        const Value v = txn.read(k);
        txn.write(k, v + 1);
      }
    });
  }
}

double time_si(fault::FaultInjector* inj) {
  return time_best_ns([inj] {
    mvcc::SIDatabase db(kKeys, nullptr, inj);
    auto session = db.make_session();
    drive(db, session, kTxns);
  });
}

double time_psi(fault::FaultInjector* inj) {
  return time_best_ns([inj] {
    mvcc::PSIDatabase db(kKeys, 2, nullptr, inj);
    auto session = db.make_session(0);
    drive(db, session, kTxns);
  });
}

double time_ser(fault::FaultInjector* inj) {
  return time_best_ns([inj] {
    mvcc::SERDatabase db(kKeys, nullptr, inj);
    auto session = db.make_session();
    drive(db, session, kTxns);
  });
}

double time_ssi(fault::FaultInjector* inj) {
  return time_best_ns([inj] {
    mvcc::SSIDatabase db(kKeys, nullptr, inj);
    auto session = db.make_session();
    drive(db, session, kTxns);
  });
}

bool table() {
  header("E15", "fault-hook overhead: no injector vs zero-probability plan");

  fault::FaultInjector zero(fault::FaultPlan{});  // attached, never fires

  std::vector<KernelRow> rows;
  // old = the shipping configuration (no injector) measured twice: the
  // speedup column is the noise floor and must be ~1.0 (<1% target).
  rows.push_back({"si_nullptr", kTxns, time_si(nullptr), time_si(nullptr)});
  rows.push_back({"psi_nullptr", kTxns, time_psi(nullptr), time_psi(nullptr)});
  rows.push_back({"ser_nullptr", kTxns, time_ser(nullptr), time_ser(nullptr)});
  rows.push_back({"ssi_nullptr", kTxns, time_ssi(nullptr), time_ssi(nullptr)});
  // Informational: nullptr vs an attached zero-plan injector (every hook
  // takes the counting path). Not covered by the <1% target.
  rows.push_back({"si_zeroplan", kTxns, time_si(nullptr), time_si(&zero)});
  rows.push_back({"psi_zeroplan", kTxns, time_psi(nullptr), time_psi(&zero)});
  rows.push_back({"ser_zeroplan", kTxns, time_ser(nullptr), time_ser(&zero)});
  rows.push_back({"ssi_zeroplan", kTxns, time_ssi(nullptr), time_ssi(&zero)});

  print_kernel_rows(rows);
  write_kernel_json("BENCH_fault_overhead.json", "bench_fault_overhead", 1,
                    rows);

  // Reproduction verdict: the nullptr rows must sit within 1% of each
  // other (best-of-k timing; threshold generous to CI noise at 5%, the
  // committed artefact documents the measured value).
  bool ok = true;
  for (const KernelRow& r : rows) {
    if (r.kernel.find("_nullptr") == std::string::npos) continue;
    const double rel =
        r.old_ns > 0 ? (r.new_ns - r.old_ns) / r.old_ns : 0.0;
    if (rel > 0.05 || rel < -0.05) ok = false;
  }
  std::printf("%s\n", ok ? "[no-op hooks within noise]"
                         : "[no-op hook overhead above threshold]");
  return ok;
}

}  // namespace
}  // namespace sia::bench

SIA_BENCH_MAIN(sia::bench::table)
