/// \file bench_fig4_dynamic_chopping.cpp
/// Experiment E2 — Figure 4: the dynamic chopping criterion (Theorem 16)
/// on the graphs G1 (not spliceable: lookupAll observes a half-finished
/// transfer) and G2 (spliceable). Verdicts come from three angles: the
/// DCG critical-cycle search, the splice-graph lift, and the exact
/// spliceability decision. The timing section measures DCG construction +
/// critical-cycle search and splice_graph on engine-scale inputs.

#include "bench_util.hpp"
#include "chopping/dynamic_chopping_graph.hpp"
#include "chopping/splice.hpp"
#include "graph/characterization.hpp"
#include "mvcc/si_engine.hpp"
#include "workload/generator.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E2", "Figure 4 dynamic chopping (Theorem 16)");
  const DependencyGraph g1 = paper::fig4_g1();
  const DependencyGraph g2 = paper::fig4_g2();
  std::vector<bench::VerdictRow> rows;
  rows.push_back({"G1: DCG has critical cycle", "yes",
                  check_chopping_dynamic(g1).witness ? "yes" : "no"});
  rows.push_back({"G1: spliceable (exact)", "no",
                  spliceable(g1) ? "yes" : "no"});
  rows.push_back({"G2: DCG has critical cycle", "no",
                  check_chopping_dynamic(g2).witness ? "yes" : "no"});
  rows.push_back({"G2: spliceable (exact)", "yes",
                  spliceable(g2) ? "yes" : "no"});
  rows.push_back(
      {"G2: splice(G2) in GraphSI", "yes",
       check_graph_si(splice_graph(g2)).member ? "yes" : "no"});
  const ChoppingVerdict v1 = check_chopping_dynamic(g1);
  if (v1.witness) {
    std::printf("G1 critical cycle witness: %zu transactions, %zu edges\n",
                v1.witness->length(), v1.witness->masks.size());
  }
  return bench::print_verdicts(rows);
}

/// DCG analysis over an engine-generated SI run of `sessions` sessions.
void BM_DcgAnalysis(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.sessions = static_cast<std::size_t>(state.range(0));
  spec.txns_per_session = 4;
  spec.ops_per_txn = 3;
  spec.num_keys = 32;
  spec.concurrent = false;
  const mvcc::RecordedRun run = workload::run_si(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_chopping_dynamic(run.graph).correct);
  }
  state.SetLabel(std::to_string(run.history.txn_count()) + " txns");
}
// Dense conflict graphs make exhaustive cycle enumeration explode; the
// curve below shows the exponential growth that motivates the enumeration
// budget (which turns the analysis into a conservative one).
BENCHMARK(BM_DcgAnalysis)->Arg(4)->Arg(8)->Arg(16);

/// A guaranteed-choppable run: sessions touch disjoint key ranges, so the
/// DCG has no conflict edges at all and the splice lift always exists.
mvcc::RecordedRun disjoint_run(std::size_t sessions) {
  mvcc::Recorder rec;
  mvcc::SIDatabase db(static_cast<std::uint32_t>(sessions * 4), &rec);
  for (std::size_t s = 0; s < sessions; ++s) {
    mvcc::SISession session = db.make_session();
    for (int t = 0; t < 4; ++t) {
      db.run(session, [&](mvcc::SITransaction& txn) {
        const ObjId base = static_cast<ObjId>(s * 4);
        txn.write(base + static_cast<ObjId>(t % 4), txn.read(base) + 1);
      });
    }
  }
  return rec.build();
}

void BM_SpliceGraph(benchmark::State& state) {
  const mvcc::RecordedRun run =
      disjoint_run(static_cast<std::size_t>(state.range(0)));
  if (!check_chopping_dynamic(run.graph).correct) {
    state.SkipWithError("workload not choppable; adjust spec");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(splice_graph(run.graph).txn_count());
  }
}
BENCHMARK(BM_SpliceGraph)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
