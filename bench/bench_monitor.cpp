/// \file bench_monitor.cpp
/// Experiment E13 (extension) — online monitoring: per-commit cost of the
/// incremental membership checker versus the naive alternative of
/// re-running the batch characterisation after every commit. The verdict
/// table confirms the monitor agrees with the batch checks on engine
/// runs; the timings show the incremental maintenance is orders of
/// magnitude cheaper per commit and scales with history length as
/// O(n²/64) per edge instead of the batch O(n³/64) per commit.

#include "bench_util.hpp"
#include "graph/characterization.hpp"
#include "graph/monitor.hpp"
#include "workload/generator.hpp"

namespace sia {
namespace {

mvcc::RecordedRun make_run(std::size_t txns) {
  workload::WorkloadSpec spec;
  spec.sessions = 8;
  spec.txns_per_session = txns / 8;
  spec.ops_per_txn = 4;
  spec.num_keys = static_cast<std::uint32_t>(txns / 2 + 1);
  spec.concurrent = false;
  spec.seed = txns * 17 + 3;
  return workload::run_si(spec);
}

bool reproduction_table() {
  bench::header("E13", "Online monitor vs batch characterisation");
  std::vector<bench::VerdictRow> rows;
  for (const std::size_t n : {64u, 512u}) {
    const mvcc::RecordedRun run = make_run(n);
    for (const Model model : {Model::kSER, Model::kSI, Model::kPSI}) {
      const bool batch = check_graph(run.graph, model).member;
      const bool online = replay(run.graph, model).consistent();
      rows.push_back({"n=" + std::to_string(run.history.txn_count()) +
                          " agree under " + to_string(model),
                      batch ? "consistent" : "violation",
                      online ? "consistent" : "violation"});
      // Deferred batching must not change any verdict either.
      const bool batched = replay_batched(run.graph, model, 64).consistent();
      rows.push_back({"n=" + std::to_string(run.history.txn_count()) +
                          " commit_all(64) under " + to_string(model),
                      online ? "consistent" : "violation",
                      batched ? "consistent" : "violation"});
    }
  }
  return bench::print_verdicts(rows);
}

void BM_MonitorFullReplay(benchmark::State& state) {
  const mvcc::RecordedRun run =
      make_run(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay(run.graph, Model::kSI).consistent());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.SetLabel("per-run; divide by n for per-commit cost");
}
BENCHMARK(BM_MonitorFullReplay)->RangeMultiplier(4)->Range(64, 4096);

void BM_MonitorReplayBatched(benchmark::State& state) {
  // commit_all with per-batch deferred closure propagation; batch size is
  // the second range argument.
  const mvcc::RecordedRun run =
      make_run(static_cast<std::size_t>(state.range(0)));
  const auto batch = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replay_batched(run.graph, Model::kSI, batch).consistent());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MonitorReplayBatched)
    ->ArgsProduct({{64, 256, 1024, 4096}, {16, 64, 256}});

void BM_BatchCheckAfterEveryCommit(benchmark::State& state) {
  // The naive online strategy: rebuild relations and run the Theorem 9
  // check after each prefix. O(n) batch checks of growing prefixes.
  const mvcc::RecordedRun run =
      make_run(static_cast<std::size_t>(state.range(0)));
  const History& h = run.graph.history();
  for (auto _ : state) {
    // Incrementally rebuild prefix graphs (txn 0 = init always included).
    for (TxnId n = 2; n <= h.txn_count(); n += 8) {
      History prefix;
      for (TxnId id = 0; id < n; ++id) {
        prefix.append(h.session_of(id), h.txn(id));
      }
      DependencyGraph g(prefix);
      for (ObjId obj : prefix.objects()) {
        std::vector<TxnId> order;
        for (TxnId w : run.graph.write_order(obj)) {
          if (w < n) order.push_back(w);
        }
        g.set_write_order(obj, std::move(order));
        for (TxnId id = 0; id < n; ++id) {
          if (const auto src = run.graph.read_source(obj, id)) {
            g.set_read_from(obj, *src, id);
          }
        }
      }
      benchmark::DoNotOptimize(check_graph_si(g).member);
    }
  }
  state.SetLabel("every 8th prefix only; still dwarfs the monitor");
}
BENCHMARK(BM_BatchCheckAfterEveryCommit)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
