/// \file bench_fig6_scg_correct.cpp
/// Experiment E4 — Figure 6: SCG{transfer, lookup1, lookup2} has no
/// critical cycle: replacing the combined lookupAll by per-account
/// lookups makes the chopped transfer correct under SI — it behaves as if
/// the transfer were one transaction. Verified under all three criteria
/// and cross-checked by running the chopped programs on the SI engine and
/// splicing the resulting dependency graph.

#include "bench_util.hpp"
#include "chopping/dynamic_chopping_graph.hpp"
#include "chopping/splice.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "graph/characterization.hpp"
#include "mvcc/si_engine.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

/// Runs the chopped transfer + lookups once on the SI engine and returns
/// the recorded graph.
mvcc::RecordedRun run_chopped_banking() {
  mvcc::Recorder rec;
  mvcc::SIDatabase db(2, &rec);
  constexpr ObjId kAcct1 = 0;
  constexpr ObjId kAcct2 = 1;
  mvcc::SISession transfer = db.make_session();
  mvcc::SISession lookup1 = db.make_session();
  mvcc::SISession lookup2 = db.make_session();
  db.run(transfer, [&](mvcc::SITransaction& t) {
    t.write(kAcct1, t.read(kAcct1) - 100);
  });
  db.run(lookup1,
         [&](mvcc::SITransaction& t) { benchmark::DoNotOptimize(t.read(kAcct1)); });
  db.run(transfer, [&](mvcc::SITransaction& t) {
    t.write(kAcct2, t.read(kAcct2) + 100);
  });
  db.run(lookup2,
         [&](mvcc::SITransaction& t) { benchmark::DoNotOptimize(t.read(kAcct2)); });
  return rec.build();
}

bool reproduction_table() {
  bench::header("E4", "Figure 6: SCG{transfer, lookup1, lookup2}");
  const auto suite = paper::fig6_programs();
  std::vector<bench::VerdictRow> rows;
  for (const Criterion crit :
       {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
    rows.push_back({"chopping correct under " + to_string(crit), "correct",
                    bench::okbad(
                        check_chopping_static(suite.programs, crit).correct)});
  }
  // End-to-end: a run of the chopped programs on the SI engine splices
  // into an SI dependency graph (Theorem 16 in action).
  const mvcc::RecordedRun run = run_chopped_banking();
  rows.push_back({"engine run: DCG critical-cycle free", "yes",
                  check_chopping_dynamic(run.graph).correct ? "yes" : "no"});
  rows.push_back({"engine run: splice(G) in GraphSI", "yes",
                  check_graph_si(splice_graph(run.graph)).member ? "yes"
                                                                 : "no"});
  return bench::print_verdicts(rows);
}

void BM_ScgAnalysisAllCriteria(benchmark::State& state) {
  const auto suite = paper::fig6_programs();
  for (auto _ : state) {
    for (const Criterion crit :
         {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
      benchmark::DoNotOptimize(
          check_chopping_static(suite.programs, crit).correct);
    }
  }
}
BENCHMARK(BM_ScgAnalysisAllCriteria);

void BM_EngineRunPlusSplice(benchmark::State& state) {
  for (auto _ : state) {
    const mvcc::RecordedRun run = run_chopped_banking();
    benchmark::DoNotOptimize(check_graph_si(splice_graph(run.graph)).member);
  }
}
BENCHMARK(BM_EngineRunPlusSplice);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
