/// \file bench_chopping_throughput.cpp
/// Experiment E12 — the performance motivation of §1/§5: chopping
/// long-running transactions under SI improves throughput. A "transfer"
/// touching K accounts is run either as one transaction (write-conflict
/// window spans all K updates) or chopped into K single-account pieces
/// (Figure 6-style chopping, correct under SI when lookups are
/// per-account). Under contention the chopped variant aborts and retries
/// far less; the verdict table reports commits, aborts and the speedup.

#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "mvcc/si_engine.hpp"

namespace sia {
namespace {

/// Simulated per-operation work (index lookups, network hops): this is
/// what makes long transactions *long* — and their write-conflict windows
/// wide. Without it every transaction is instantaneous and chopping has
/// nothing to win.
void think(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct ThroughputResult {
  double seconds{0.0};
  std::uint64_t commits{0};
  std::uint64_t aborts{0};
};

/// Runs `threads` sessions, each performing `txns` K-account transfers,
/// either whole or chopped. Keys are drawn from a small hot set to create
/// contention.
ThroughputResult run_transfers(bool chopped, int threads, int txns,
                               int accounts_per_transfer, std::uint32_t keys) {
  mvcc::SIDatabase db(keys);
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      mvcc::SISession session = db.make_session();
      std::uint64_t rng = static_cast<std::uint64_t>(w) * 9973 + 1;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int t = 0; t < txns; ++t) {
        // Pick K distinct-ish accounts.
        std::vector<ObjId> accts;
        for (int k = 0; k < accounts_per_transfer; ++k) {
          accts.push_back(static_cast<ObjId>(next() % keys));
        }
        if (chopped) {
          for (ObjId a : accts) {
            db.run(session, [&](mvcc::SITransaction& txn) {
              txn.write(a, txn.read(a) + 1);
              think(std::chrono::microseconds(20));
            });
          }
        } else {
          db.run(session, [&](mvcc::SITransaction& txn) {
            for (ObjId a : accts) {
              txn.write(a, txn.read(a) + 1);
              think(std::chrono::microseconds(20));
            }
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {secs, db.commits(), db.aborts()};
}

bool reproduction_table() {
  bench::header("E12", "Chopping improves SI throughput under contention");
  constexpr int kThreads = 4;
  constexpr int kTxns = 300;
  constexpr int kAccounts = 8;
  constexpr std::uint32_t kKeys = 16;  // hot set: heavy conflicts
  const ThroughputResult whole =
      run_transfers(false, kThreads, kTxns, kAccounts, kKeys);
  const ThroughputResult chopped =
      run_transfers(true, kThreads, kTxns, kAccounts, kKeys);
  const double whole_rate =
      static_cast<double>(kThreads * kTxns) / whole.seconds;
  const double chopped_rate =
      static_cast<double>(kThreads * kTxns) / chopped.seconds;
  std::printf(
      "whole:   %8.0f transfers/s, commits=%llu aborts=%llu (abort rate "
      "%.1f%%)\n",
      whole_rate, static_cast<unsigned long long>(whole.commits),
      static_cast<unsigned long long>(whole.aborts),
      100.0 * static_cast<double>(whole.aborts) /
          static_cast<double>(whole.commits + whole.aborts));
  std::printf(
      "chopped: %8.0f transfers/s, commits=%llu aborts=%llu (abort rate "
      "%.1f%%)\n",
      chopped_rate, static_cast<unsigned long long>(chopped.commits),
      static_cast<unsigned long long>(chopped.aborts),
      100.0 * static_cast<double>(chopped.aborts) /
          static_cast<double>(chopped.commits + chopped.aborts));
  std::printf("speedup (chopped / whole): %.2fx\n",
              chopped_rate / whole_rate);
  // The reproducible claim is qualitative: chopping reduces the abort
  // *probability per committed piece* because each piece's conflict
  // window covers one account instead of K.
  const double whole_abort_ratio =
      static_cast<double>(whole.aborts) /
      static_cast<double>(whole.commits + whole.aborts);
  const double chopped_abort_ratio =
      static_cast<double>(chopped.aborts) /
      static_cast<double>(chopped.commits + chopped.aborts);
  std::vector<bench::VerdictRow> rows;
  rows.push_back({"chopping lowers abort rate", "yes",
                  chopped_abort_ratio < whole_abort_ratio ? "yes" : "no"});
  return bench::print_verdicts(rows);
}

void BM_TransferWhole(benchmark::State& state) {
  for (auto _ : state) {
    const ThroughputResult r = run_transfers(
        false, static_cast<int>(state.range(0)), 60, 8, 16);
    benchmark::DoNotOptimize(r.commits);
  }
}
BENCHMARK(BM_TransferWhole)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TransferChopped(benchmark::State& state) {
  for (auto _ : state) {
    const ThroughputResult r = run_transfers(
        true, static_cast<int>(state.range(0)), 60, 8, 16);
    benchmark::DoNotOptimize(r.commits);
  }
}
BENCHMARK(BM_TransferChopped)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
