/// \file bench_chopping_static_scaling.cpp
/// Experiment E10 — Corollary 18 at scale: the static chopping analysis
/// over random program suites of growing size and the chopped TPC-C mix.
/// The verdict table records the qualitative result (criteria ordering
/// SER ⊆ SI ⊆ PSI holds everywhere); the timing section sweeps suite
/// size and piece counts.

#include "bench_util.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "workload/apps.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E10", "Static chopping analysis scaling");
  std::vector<bench::VerdictRow> rows;
  // Criteria ordering on random suites: SER-correct => SI-correct =>
  // PSI-correct (Appendix B).
  bool ordering_holds = true;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    workload::ProgramSuiteSpec spec;
    spec.programs = 6;
    spec.pieces_per_program = 3;
    spec.objects = 24;
    spec.seed = seed;
    const std::vector<Program> suite = workload::random_programs(spec);
    const bool ser = check_chopping_static(suite, Criterion::kSER).correct;
    const bool si = check_chopping_static(suite, Criterion::kSI).correct;
    const bool psi = check_chopping_static(suite, Criterion::kPSI).correct;
    ordering_holds = ordering_holds && (!ser || si) && (!si || psi);
  }
  rows.push_back({"criteria ordering on 10 random suites",
                  "SER => SI => PSI", ordering_holds ? "SER => SI => PSI"
                                                     : "violated"});
  const auto tpcc = workload::tpcc_chopped_programs();
  const ChoppingVerdict v = check_chopping_static(tpcc.programs);
  rows.push_back({"chopped TPC-C mix under SI",
                  "incorrect (table granularity)", bench::okbad(v.correct) +
                      std::string(" (table granularity)")});
  std::printf("TPC-C SCG cycles examined: %zu (complete: %s)\n",
              v.cycles_examined, v.complete ? "yes" : "no");
  return bench::print_verdicts(rows);
}

void BM_ScgRandomSuites(benchmark::State& state) {
  workload::ProgramSuiteSpec spec;
  spec.programs = static_cast<std::size_t>(state.range(0));
  spec.pieces_per_program = static_cast<std::size_t>(state.range(1));
  spec.objects = spec.programs * 6;  // moderate conflict density
  spec.seed = 11;
  const std::vector<Program> suite = workload::random_programs(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_chopping_static(suite, Criterion::kSI).correct);
  }
  const StaticChoppingGraph scg(suite);
  state.SetLabel(std::to_string(scg.node_count()) + " pieces, " +
                 std::to_string(scg.graph().edge_count()) + " edges");
}
BENCHMARK(BM_ScgRandomSuites)
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 2})
    ->Args({16, 4});

void BM_ScgTpcc(benchmark::State& state) {
  const auto tpcc = workload::tpcc_chopped_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_chopping_static(tpcc.programs, Criterion::kSI).correct);
  }
}
BENCHMARK(BM_ScgTpcc);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
