#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mvcc/si_engine.hpp"
#include "mvcc/ssi_engine.hpp"
#include "mvcc/ssi_ref_engine.hpp"

/// \file bench_ssi_hotpath.cpp
/// E19 artefact — the SSI hot path after epoch-watermark GC and the dense
/// meta ring (DESIGN.md §4g), measured old-vs-new against the frozen
/// reference engine (ssi_ref_engine.hpp) on two workloads at two sizes:
///  - `e15_rmw`: the E15 shape — one session, uncontended RMW over 16
///    keys. The reference keeps every SIREAD entry and TxnMeta forever,
///    so its per-read dedup scan and per-commit reader scan are O(n);
///    the pruned engine holds both O(1).
///  - `contended_rmw`: four sessions whose transactions genuinely
///    overlap every round (begin x4, read a shared hot key, write
///    disjoint keys, commit x4) — the SIREAD-heavy shape where reader
///    lists, not version chains, dominate.
/// Two verdict gates make this binary CI-runnable (exit 2 on failure):
///  - scaling: the pruned engine's 20k-txn time over its 5k-txn time
///    must stay below 8x (linear would be 4x; the reference's quadratic
///    growth shows up as >=10x here) — the perf-smoke regression guard;
///  - ssi/si: pruned SSI must land within 5x of plain SI on the 20k E15
///    workload (`ssi_over_si` row: the speedup column reads as the
///    SSI/SI ratio), plus flat-memory gauges after the run.
/// Results persist to BENCH_ssi_hotpath.json.

namespace sia::bench {
namespace {

constexpr std::uint32_t kKeys = 16;
constexpr std::size_t kSmall = 5000;
constexpr std::size_t kLarge = 20000;

/// E15 shape: one RMW transaction per iteration, single session.
template <typename Db>
void drive_e15(Db& db, std::size_t txns) {
  auto session = db.make_session();
  for (std::size_t i = 0; i < txns; ++i) {
    db.run(session, [i](auto& txn) {
      const ObjId k = static_cast<ObjId>(i % kKeys);
      if constexpr (requires(decltype(txn) t) { t.read(k).has_value(); }) {
        const auto v = txn.read(k);
        if (!v) return;
        (void)txn.write(k, *v + 1);
      } else {
        const Value v = txn.read(k);
        txn.write(k, v + 1);
      }
    });
  }
}

/// Contended shape: every round begins four transactions, all read the
/// round's hot key, write disjoint keys and commit in order — so each
/// transaction is concurrent with three others and every hot key's
/// SIREAD list gains four entries per visit. Deterministic (no threads,
/// no rng), so both engines see byte-identical operation sequences and
/// produce identical verdicts; some commits abort by design.
template <typename Db>
void drive_contended(Db& db, std::size_t txns) {
  using Session = decltype(db.make_session());
  using Txn = decltype(db.begin(std::declval<Session&>()));
  constexpr std::size_t kSessions = 4;
  std::vector<Session> sessions;
  sessions.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(db.make_session());
  }
  const std::size_t rounds = txns / kSessions;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Txn> open;
    open.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      open.push_back(db.begin(sessions[s]));
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      const Value hot = open[s].read(static_cast<ObjId>(r % kKeys));
      open[s].write(static_cast<ObjId>((r * kSessions + s) % kKeys), hot + 1);
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      (void)open[s].commit();
    }
  }
}

template <typename Db>
double time_e15(std::size_t txns) {
  return time_best_ns([txns] {
    Db db(kKeys);
    drive_e15(db, txns);
  });
}

template <typename Db>
double time_contended(std::size_t txns) {
  return time_best_ns([txns] {
    Db db(kKeys);
    drive_contended(db, txns);
  });
}

std::string ratio_verdict(double ratio, double limit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx %s %.0fx", ratio,
                ratio <= limit ? "<=" : ">", limit);
  return buf;
}

bool table() {
  header("E19", "SSI hot path: epoch GC + dense meta ring vs reference");

  std::vector<KernelRow> rows;
  rows.push_back({"e15_rmw", kSmall, time_e15<mvcc::SSIRefDatabase>(kSmall),
                  time_e15<mvcc::SSIDatabase>(kSmall)});
  rows.push_back({"e15_rmw", kLarge, time_e15<mvcc::SSIRefDatabase>(kLarge),
                  time_e15<mvcc::SSIDatabase>(kLarge)});
  rows.push_back({"contended_rmw", kSmall,
                  time_contended<mvcc::SSIRefDatabase>(kSmall),
                  time_contended<mvcc::SSIDatabase>(kSmall)});
  rows.push_back({"contended_rmw", kLarge,
                  time_contended<mvcc::SSIRefDatabase>(kLarge),
                  time_contended<mvcc::SSIDatabase>(kLarge)});
  // The acceptance row: old = pruned SSI, new = plain SI, so the speedup
  // column reads directly as the SSI/SI ratio (target <= 5x).
  rows.push_back({"ssi_over_si", kLarge, time_e15<mvcc::SSIDatabase>(kLarge),
                  time_e15<mvcc::SIDatabase>(kLarge)});

  print_kernel_rows(rows);
  write_kernel_json("BENCH_ssi_hotpath.json", "bench_ssi_hotpath", 1, rows);

  // Flat memory after the large E15 run: all three gauges must be O(1)
  // in transaction count (bounds match test_ssi_diff's).
  mvcc::SSIDatabase gauge(kKeys);
  drive_e15(gauge, kLarge);
  const bool flat = gauge.meta_retained() <= 16 &&
                    gauge.siread_retained() <= 64 &&
                    gauge.version_count() <= kKeys * 65;
  std::printf(
      "memory after %zu txns: meta_retained=%zu siread_retained=%zu "
      "version_count=%zu watermark=%llu\n",
      kLarge, gauge.meta_retained(), gauge.siread_retained(),
      gauge.version_count(),
      static_cast<unsigned long long>(gauge.watermark()));

  // Verdict gates. Scaling compares the pruned engine against itself at
  // 4x the work: linear is 4x, the 8x limit is generous to CI noise, and
  // the reference's quadratic reader scans land well above it.
  const double e15_scale = rows[1].new_ns / rows[0].new_ns;
  const double cont_scale = rows[3].new_ns / rows[2].new_ns;
  const double ssi_over_si = rows[4].speedup();
  const std::vector<VerdictRow> verdicts = {
      {"pruned e15 scaling t(20k)/t(5k)", "<= 8x (4x work)",
       e15_scale <= 8.0 ? "<= 8x (4x work)" : ratio_verdict(e15_scale, 8.0)},
      {"pruned contended scaling t(20k)/t(5k)", "<= 8x (4x work)",
       cont_scale <= 8.0 ? "<= 8x (4x work)" : ratio_verdict(cont_scale, 8.0)},
      {"ssi/si ratio on 20k e15", "<= 5x",
       ssi_over_si <= 5.0 ? "<= 5x" : ratio_verdict(ssi_over_si, 5.0)},
      {"flat memory after 20k e15", "flat", flat ? "flat" : "GROWING"},
  };
  return print_verdicts(verdicts);
}

}  // namespace
}  // namespace sia::bench

SIA_BENCH_MAIN(sia::bench::table)
