/// \file bench_fig12_psi_vs_si.cpp
/// Experiment E6 — Figure 12 (Appendix B.2): P4 = {write1, write2, read1,
/// read2} is a chopping that is correct under parallel SI but incorrect
/// under SI: the G7 execution splices into a long fork, which PSI admits
/// and SI does not. Demonstrates that the PSI criterion (Theorem 31) is
/// strictly laxer than the SI criterion (Corollary 18).

#include "bench_util.hpp"
#include "chopping/splice.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "graph/enumeration.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E6", "Figure 12: chopping correct under PSI, not SI");
  const auto p4 = paper::fig12_programs();
  std::vector<bench::VerdictRow> rows;
  rows.push_back(
      {"P4 under PSI criterion (Thm. 31)", "correct",
       bench::okbad(
           check_chopping_static(p4.programs, Criterion::kPSI).correct)});
  rows.push_back(
      {"P4 under SI criterion (Cor. 18)", "incorrect",
       bench::okbad(
           check_chopping_static(p4.programs, Criterion::kSI).correct)});
  rows.push_back(
      {"P4 under SER criterion (Thm. 29)", "incorrect",
       bench::okbad(
           check_chopping_static(p4.programs, Criterion::kSER).correct)});

  const DependencyGraph g7 = paper::fig12_g7();
  rows.push_back({"G7 (chopped run) in GraphSI", "yes",
                  check_graph_si(g7).member ? "yes" : "no"});
  const History spliced = splice_history(g7.history());
  rows.push_back(
      {"splice(G7) in HistPSI", "allowed",
       bench::yesno(decide_history(spliced, Model::kPSI).allowed)});
  rows.push_back(
      {"splice(G7) in HistSI", "no",
       decide_history(spliced, Model::kSI).allowed ? "allowed" : "no"});
  const ChoppingVerdict si =
      check_chopping_static(p4.programs, Criterion::kSI);
  if (si.witness) {
    const StaticChoppingGraph scg(p4.programs);
    std::printf("SI-critical (not PSI-critical) cycle: %s\n",
                scg.describe(*si.witness).c_str());
  }
  return bench::print_verdicts(rows);
}

void BM_CriteriaOnP4(benchmark::State& state) {
  const auto p4 = paper::fig12_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_chopping_static(p4.programs, Criterion::kPSI).correct);
    benchmark::DoNotOptimize(
        check_chopping_static(p4.programs, Criterion::kSI).correct);
  }
}
BENCHMARK(BM_CriteriaOnP4);

void BM_SpliceAndDecideG7(benchmark::State& state) {
  const DependencyGraph g7 = paper::fig12_g7();
  for (auto _ : state) {
    const History spliced = splice_history(g7.history());
    benchmark::DoNotOptimize(decide_history(spliced, Model::kPSI).allowed);
  }
}
BENCHMARK(BM_SpliceAndDecideG7);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
