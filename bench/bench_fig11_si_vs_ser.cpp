/// \file bench_fig11_si_vs_ser.cpp
/// Experiment E5 — Figure 11 (Appendix B.1): P3 = {write1, write2} is a
/// chopping that is correct under SI but incorrect under serializability:
/// the H6 execution splices into a write skew, which SI admits and SER
/// does not. Demonstrates that the SI criterion is strictly laxer than
/// Shasha et al.'s (Theorem 29 vs Corollary 18).

#include "bench_util.hpp"
#include "chopping/splice.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "graph/enumeration.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E5", "Figure 11: chopping correct under SI, not SER");
  const auto p3 = paper::fig11_programs();
  std::vector<bench::VerdictRow> rows;
  rows.push_back(
      {"P3 under SI criterion (Cor. 18)", "correct",
       bench::okbad(
           check_chopping_static(p3.programs, Criterion::kSI).correct)});
  rows.push_back(
      {"P3 under SER criterion (Thm. 29)", "incorrect",
       bench::okbad(
           check_chopping_static(p3.programs, Criterion::kSER).correct)});
  rows.push_back(
      {"P3 under PSI criterion (Thm. 31)", "correct",
       bench::okbad(
           check_chopping_static(p3.programs, Criterion::kPSI).correct)});

  // The H6 witness: serializable as a chopped run, write skew once
  // spliced.
  const DependencyGraph h6 = paper::fig11_h6();
  rows.push_back({"H6 (chopped run) in GraphSER", "yes",
                  check_graph_ser(h6).member ? "yes" : "no"});
  const History spliced = splice_history(h6.history());
  rows.push_back({"splice(H6) in HistSI", "allowed",
                  bench::yesno(decide_history(spliced, Model::kSI).allowed)});
  rows.push_back(
      {"splice(H6) in HistSER", "no",
       decide_history(spliced, Model::kSER).allowed ? "allowed"
                                                    : "no"});
  const ChoppingVerdict ser =
      check_chopping_static(p3.programs, Criterion::kSER);
  if (ser.witness) {
    const StaticChoppingGraph scg(p3.programs);
    std::printf("SER-critical (not SI-critical) cycle: %s\n",
                scg.describe(*ser.witness).c_str());
  }
  return bench::print_verdicts(rows);
}

void BM_CriteriaOnP3(benchmark::State& state) {
  const auto p3 = paper::fig11_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_chopping_static(p3.programs, Criterion::kSI).correct);
    benchmark::DoNotOptimize(
        check_chopping_static(p3.programs, Criterion::kSER).correct);
  }
}
BENCHMARK(BM_CriteriaOnP3);

void BM_SpliceAndDecideH6(benchmark::State& state) {
  const DependencyGraph h6 = paper::fig11_h6();
  for (auto _ : state) {
    const History spliced = splice_history(h6.history());
    benchmark::DoNotOptimize(decide_history(spliced, Model::kSI).allowed);
  }
}
BENCHMARK(BM_SpliceAndDecideH6);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
