/// \file bench_engines.cpp
/// Experiment E14 (extension) — the concurrency-control spectrum the
/// paper's theory organises, measured operationally: throughput and abort
/// behaviour of S2PL (serializable via locking), SSI (serializable via
/// pivot prevention — the run-time twin of Theorem 19), plain SI, and PSI
/// on the same contended read-modify-write workload. The verdict table
/// checks the semantic ordering: write skew is producible exactly under
/// SI and PSI; every engine's recorded graph lands in its model class.

#include <thread>

#include "bench_util.hpp"
#include "graph/characterization.hpp"
#include "mvcc/psi_engine.hpp"
#include "mvcc/ser_engine.hpp"
#include "mvcc/si_engine.hpp"
#include "mvcc/ssi_engine.hpp"
#include "workload/generator.hpp"

namespace sia {
namespace {

using namespace sia::mvcc;

constexpr ObjId kX = 0;
constexpr ObjId kY = 1;

/// Attempts the write-skew interleaving; true iff both sides committed.
template <typename Db>
bool write_skew_commits(Db& db) {
  auto s1 = db.make_session();
  auto s2 = db.make_session();
  auto t1 = db.begin(s1);
  auto t2 = db.begin(s2);
  (void)t1.read(kX);
  (void)t1.read(kY);
  (void)t2.read(kX);
  (void)t2.read(kY);
  t1.write(kX, -100);
  t2.write(kY, -100);
  const bool c1 = t1.commit();
  const bool c2 = t2.commit();
  return c1 && c2;
}

bool write_skew_commits_ser(SERDatabase& db) {
  auto s1 = db.make_session();
  auto s2 = db.make_session();
  auto t1 = db.begin(s1);
  auto t2 = db.begin(s2);
  bool ok1 = t1.read(kX).has_value() && t1.read(kY).has_value();
  bool ok2 = t2.read(kX).has_value() && t2.read(kY).has_value();
  ok1 = ok1 && t1.write(kX, -100);
  ok2 = ok2 && t2.write(kY, -100);
  const bool c1 = ok1 && t1.commit();
  const bool c2 = ok2 && t2.commit();
  if (!ok1 && !t1.aborted()) t1.abort();
  if (!ok2 && !t2.aborted()) t2.abort();
  return c1 && c2;
}

bool write_skew_commits_psi() {
  PSIDatabase db(2, 2);
  auto s1 = db.make_session(0);
  auto s2 = db.make_session(1);
  auto t1 = db.begin(s1);
  auto t2 = db.begin(s2);
  (void)t1.read(kX);
  (void)t1.read(kY);
  (void)t2.read(kX);
  (void)t2.read(kY);
  t1.write(kX, -100);
  t2.write(kY, -100);
  const bool c1 = t1.commit();
  const bool c2 = t2.commit();
  return c1 && c2;
}

bool reproduction_table() {
  bench::header("E14", "Engine spectrum: S2PL / SSI / SI / PSI");
  std::vector<bench::VerdictRow> rows;
  {
    SERDatabase db(2);
    rows.push_back({"write skew commits under S2PL", "no",
                    write_skew_commits_ser(db) ? "yes" : "no"});
  }
  {
    SSIDatabase db(2);
    rows.push_back({"write skew commits under SSI", "no",
                    write_skew_commits(db) ? "yes" : "no"});
  }
  {
    SIDatabase db(2);
    rows.push_back({"write skew commits under SI", "yes",
                    write_skew_commits(db) ? "yes" : "no"});
  }
  rows.push_back({"write skew commits under PSI", "yes",
                  write_skew_commits_psi() ? "yes" : "no"});
  return bench::print_verdicts(rows);
}

/// Contended read-modify-write mix: each transaction reads two hot keys
/// and updates one of them.
template <typename Db, typename TxnBody>
double run_mix(Db& db, int threads, int txns, TxnBody body) {
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&db, txns, w, &body] {
      auto session = db.make_session();
      for (int t = 0; t < txns; ++t) body(db, session, w, t);
    });
  }
  for (auto& worker : workers) worker.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr int kTxns = 400;
constexpr std::uint32_t kKeys = 8;

void BM_MixSi(benchmark::State& state) {
  for (auto _ : state) {
    SIDatabase db(kKeys);
    run_mix(db, static_cast<int>(state.range(0)), kTxns,
            [](SIDatabase& d, SISession& s, int w, int t) {
              d.run(s, [&](SITransaction& txn) {
                const ObjId a = static_cast<ObjId>((w + t) % kKeys);
                const ObjId b = static_cast<ObjId>((w * 3 + t) % kKeys);
                const Value v = txn.read(a) + txn.read(b);
                txn.write(a, v + 1);
              });
            });
    state.counters["aborts"] = static_cast<double>(db.aborts());
  }
}
BENCHMARK(BM_MixSi)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MixSsi(benchmark::State& state) {
  for (auto _ : state) {
    SSIDatabase db(kKeys);
    run_mix(db, static_cast<int>(state.range(0)), kTxns,
            [](SSIDatabase& d, SSISession& s, int w, int t) {
              d.run(s, [&](SSITransaction& txn) {
                const ObjId a = static_cast<ObjId>((w + t) % kKeys);
                const ObjId b = static_cast<ObjId>((w * 3 + t) % kKeys);
                const Value v = txn.read(a) + txn.read(b);
                txn.write(a, v + 1);
              });
            });
    state.counters["aborts"] = static_cast<double>(db.aborts());
    state.counters["ssi_aborts"] = static_cast<double>(db.ssi_aborts());
  }
}
BENCHMARK(BM_MixSsi)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MixSer(benchmark::State& state) {
  for (auto _ : state) {
    SERDatabase db(kKeys);
    run_mix(db, static_cast<int>(state.range(0)), kTxns,
            [](SERDatabase& d, SERSession& s, int w, int t) {
              d.run(s, [&](SERTransaction& txn) {
                const ObjId a = static_cast<ObjId>((w + t) % kKeys);
                const ObjId b = static_cast<ObjId>((w * 3 + t) % kKeys);
                const auto va = txn.read(a);
                if (!va) return;
                const auto vb = txn.read(b);
                if (!vb) return;
                (void)txn.write(a, *va + *vb + 1);
              });
            });
    state.counters["aborts"] = static_cast<double>(db.aborts());
  }
}
BENCHMARK(BM_MixSer)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_VerifyEngineRun(benchmark::State& state) {
  // End-to-end verification cost: record an SI engine run of n txns and
  // decide GraphSI membership via Theorem 9 (relations included). This is
  // the whole-pipeline number the implicit-edge fast path improves.
  workload::WorkloadSpec spec;
  spec.sessions = 8;
  spec.txns_per_session = static_cast<std::size_t>(state.range(0)) / 8;
  spec.ops_per_txn = 4;
  spec.num_keys = static_cast<std::uint32_t>(state.range(0) / 2 + 1);
  spec.concurrent = false;
  spec.seed = static_cast<std::uint64_t>(state.range(0)) * 29 + 7;
  const mvcc::RecordedRun run = workload::run_si(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_si(run.graph).member);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VerifyEngineRun)->RangeMultiplier(4)->Range(256, 8192);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
