/// \file bench_fig5_scg_incorrect.cpp
/// Experiment E3 — Figure 5: the static chopping graph of
/// P1 = {transfer (2 pieces), lookupAll} contains the SI-critical cycle
///   (var1 = acct1) -RW-> (acct1 -= 100) -S-> (acct2 += 100)
///   -WR-> (var2 = acct2) -P-> (var1 = acct1)
/// so the chopping is incorrect under SI (Corollary 18). The timing
/// section measures SCG construction and the critical-cycle search.

#include "bench_util.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

bool reproduction_table() {
  bench::header("E3", "Figure 5: SCG{transfer, lookupAll} (Corollary 18)");
  const auto suite = paper::fig5_programs();
  const ChoppingVerdict si = check_chopping_static(suite.programs);
  std::vector<bench::VerdictRow> rows;
  rows.push_back({"chopping correct under SI", "incorrect",
                  bench::okbad(si.correct)});
  rows.push_back({"SI-critical cycle found", "yes",
                  si.witness ? "yes" : "no"});
  if (si.witness) {
    const StaticChoppingGraph scg(suite.programs);
    std::printf("witness: %s\n", scg.describe(*si.witness).c_str());
  }
  std::printf("simple cycles examined: %zu\n", si.cycles_examined);
  return bench::print_verdicts(rows);
}

void BM_ScgBuild(benchmark::State& state) {
  const auto suite = paper::fig5_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StaticChoppingGraph(suite.programs).node_count());
  }
}
BENCHMARK(BM_ScgBuild);

void BM_ScgCriticalCycleSearch(benchmark::State& state) {
  const auto suite = paper::fig5_programs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_chopping_static(suite.programs, Criterion::kSI).correct);
  }
}
BENCHMARK(BM_ScgCriticalCycleSearch);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
