#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

/// \file bench_util.hpp
/// Shared scaffolding for the reproduction benches: every binary first
/// prints its experiment's paper-vs-measured verdict table (the
/// reproduction artefact), then runs its google-benchmark timings.

namespace sia::bench {

/// Prints a boxed experiment header.
inline void header(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), title.c_str());
}

/// One row of a paper-vs-measured verdict table.
struct VerdictRow {
  std::string label;
  std::string paper;
  std::string measured;
};

/// Prints rows and returns false (also printing a FAIL marker) if any
/// measured value differs from the paper's.
inline bool print_verdicts(const std::vector<VerdictRow>& rows) {
  bool all_match = true;
  std::printf("%-44s %-22s %-22s %s\n", "case", "paper", "measured", "match");
  for (const VerdictRow& r : rows) {
    const bool match = r.paper == r.measured;
    all_match = all_match && match;
    std::printf("%-44s %-22s %-22s %s\n", r.label.c_str(), r.paper.c_str(),
                r.measured.c_str(), match ? "yes" : "** MISMATCH **");
  }
  std::printf("%s\n", all_match ? "[reproduced]" : "[NOT REPRODUCED]");
  return all_match;
}

// ----- old-vs-new kernel sweeps -------------------------------------------

/// One measured old/new pair of a kernel (or checker) at one problem size.
struct KernelRow {
  std::string kernel;
  std::size_t n{0};
  double old_ns{0};
  double new_ns{0};

  [[nodiscard]] double speedup() const {
    return new_ns > 0 ? old_ns / new_ns : 0.0;
  }
};

/// Wall-clock of one invocation of \p fn, in nanoseconds.
template <typename Fn>
double time_once_ns(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Best-of-k wall-clock of \p fn: repeats until \p budget_ns total run time
/// or \p max_reps repetitions, whichever first (slow kernels run once).
template <typename Fn>
double time_best_ns(Fn&& fn, double budget_ns = 2e8, int max_reps = 7) {
  double best = time_once_ns(fn);
  double total = best;
  for (int rep = 1; rep < max_reps && total < budget_ns; ++rep) {
    const double t = time_once_ns(fn);
    best = t < best ? t : best;
    total += t;
  }
  return best;
}

/// Prints a speedup table for a sweep.
inline void print_kernel_rows(const std::vector<KernelRow>& rows) {
  std::printf("%-28s %8s %14s %14s %9s\n", "kernel", "n", "old (us)",
              "new (us)", "speedup");
  for (const KernelRow& r : rows) {
    std::printf("%-28s %8zu %14.1f %14.1f %8.2fx\n", r.kernel.c_str(), r.n,
                r.old_ns / 1e3, r.new_ns / 1e3, r.speedup());
  }
}

/// Persists a sweep as machine-readable JSON (for EXPERIMENTS.md and
/// regression tracking across commits).
inline bool write_kernel_json(const std::string& path,
                              const std::string& bench_name,
                              std::size_t threads,
                              const std::vector<KernelRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"threads\": %zu,\n",
               bench_name.c_str(), threads);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %zu, \"old_ns\": %.0f, "
                 "\"new_ns\": %.0f, \"speedup\": %.3f}%s\n",
                 r.kernel.c_str(), r.n, r.old_ns, r.new_ns, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

inline const char* yesno(bool b) { return b ? "allowed" : "disallowed"; }
inline const char* okbad(bool b) { return b ? "correct" : "incorrect"; }
inline const char* robust_str(bool b) { return b ? "robust" : "not robust"; }

/// Runs the verdict-table part then google-benchmark. Call from main().
inline int run(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace sia::bench

/// Defines main(): prints the table via `table_fn` (which should return
/// true when the paper's verdicts were reproduced), then runs benchmarks.
#define SIA_BENCH_MAIN(table_fn)                          \
  int main(int argc, char** argv) {                       \
    const bool reproduced = table_fn();                   \
    const int rc = ::sia::bench::run(argc, argv);         \
    return rc != 0 ? rc : (reproduced ? 0 : 2);           \
  }
