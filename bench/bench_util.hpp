#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

/// \file bench_util.hpp
/// Shared scaffolding for the reproduction benches: every binary first
/// prints its experiment's paper-vs-measured verdict table (the
/// reproduction artefact), then runs its google-benchmark timings.

namespace sia::bench {

/// Prints a boxed experiment header.
inline void header(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), title.c_str());
}

/// One row of a paper-vs-measured verdict table.
struct VerdictRow {
  std::string label;
  std::string paper;
  std::string measured;
};

/// Prints rows and returns false (also printing a FAIL marker) if any
/// measured value differs from the paper's.
inline bool print_verdicts(const std::vector<VerdictRow>& rows) {
  bool all_match = true;
  std::printf("%-44s %-22s %-22s %s\n", "case", "paper", "measured", "match");
  for (const VerdictRow& r : rows) {
    const bool match = r.paper == r.measured;
    all_match = all_match && match;
    std::printf("%-44s %-22s %-22s %s\n", r.label.c_str(), r.paper.c_str(),
                r.measured.c_str(), match ? "yes" : "** MISMATCH **");
  }
  std::printf("%s\n", all_match ? "[reproduced]" : "[NOT REPRODUCED]");
  return all_match;
}

inline const char* yesno(bool b) { return b ? "allowed" : "disallowed"; }
inline const char* okbad(bool b) { return b ? "correct" : "incorrect"; }
inline const char* robust_str(bool b) { return b ? "robust" : "not robust"; }

/// Runs the verdict-table part then google-benchmark. Call from main().
inline int run(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace sia::bench

/// Defines main(): prints the table via `table_fn` (which should return
/// true when the paper's verdicts were reproduced), then runs benchmarks.
#define SIA_BENCH_MAIN(table_fn)                          \
  int main(int argc, char** argv) {                       \
    const bool reproduced = table_fn();                   \
    const int rc = ::sia::bench::run(argc, argv);         \
    return rc != 0 ? rc : (reproduced ? 0 : 2);           \
  }
