/// \file bench_monitor_streaming.cpp
/// Experiment E18 — the streaming monitor at million-commit scale: one
/// endless StreamSource stream swept over 10^4..10^7 commits through
/// StreamingMonitor, measuring sampled per-commit latency (p50/p99), the
/// retained/pruned/approx_bytes gauges and process RSS at each point.
/// The acceptance claims:
///
///  - verdict parity: at 10^4 commits the streaming verdict, violating id
///    and detail string are bit-identical to the closure-based
///    ConsistencyMonitor on the same commits;
///  - flat memory: retained transactions and approx_bytes at 10^7 stay
///    within a small multiple of the GC window, and do not grow between
///    10^6 and 10^7;
///  - near-constant latency: p99 per-commit at 10^7 is within 3x of p99
///    at 10^4 (the incremental structure does not degrade with stream
///    length).
///
/// Results persist to BENCH_monitor_streaming.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/incremental.hpp"
#include "graph/monitor.hpp"
#include "workload/stream_source.hpp"

namespace sia {
namespace {

/// Current and peak resident set, in KiB, from /proc/self/status.
/// Returns 0 on platforms without procfs.
struct Rss {
  std::size_t current_kb{0};
  std::size_t peak_kb{0};
};

Rss read_rss() {
  Rss r;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return r;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      r.current_kb = std::strtoull(line + 6, nullptr, 10);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      r.peak_kb = std::strtoull(line + 6, nullptr, 10);
    }
  }
  std::fclose(f);
  return r;
}

workload::StreamSpec bench_spec() {
  workload::StreamSpec spec;
  spec.num_keys = 64;
  spec.writer_sessions = 8;
  spec.ops_per_txn = 4;
  spec.write_ratio = 0.5;
  spec.snapshot_every = 16;
  spec.snapshot_lag = 512;
  spec.seed = 11;
  return spec;
}

struct SweepRow {
  std::size_t n{0};
  double p50_ns{0};
  double p99_ns{0};
  double commits_per_sec{0};
  std::size_t retained{0};
  std::size_t pruned{0};
  std::size_t approx_bytes{0};
  std::size_t rss_kb{0};
  std::size_t rss_peak_kb{0};
};

/// One sweep point: a fresh monitor fed n StreamSource commits. Latency
/// is sampled (every Kth commit) so the sample buffer itself stays far
/// below the memory being measured.
SweepRow run_point(std::size_t n) {
  SweepRow row;
  row.n = n;
  workload::StreamSource source(bench_spec());
  StreamingMonitor monitor(Model::kSI);

  const std::size_t stride = std::max<std::size_t>(1, n / 100000);
  std::vector<double> samples;
  samples.reserve(n / stride + 1);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const MonitoredCommit c = source.next();
    if (i % stride == 0) {
      samples.push_back(bench::time_once_ns([&] { (void)monitor.commit(c); }));
    } else {
      (void)monitor.commit(c);
    }
  }
  const double total_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  std::sort(samples.begin(), samples.end());
  const auto pct = [&samples](double p) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(samples.size())));
    return samples[i];
  };
  row.p50_ns = pct(0.50);
  row.p99_ns = pct(0.99);
  row.commits_per_sec = total_s > 0 ? static_cast<double>(n) / total_s : 0;
  row.retained = monitor.retained();
  row.pruned = monitor.pruned();
  row.approx_bytes = monitor.approx_bytes();
  const Rss rss = read_rss();
  row.rss_kb = rss.current_kb;
  row.rss_peak_kb = rss.peak_kb;
  return row;
}

/// Differential row: streaming vs dense monitor on the same prefix.
bench::VerdictRow differential_row(std::size_t n) {
  workload::StreamSource src_a(bench_spec());
  workload::StreamSource src_b(bench_spec());
  StreamingMonitor streaming(Model::kSI);
  ConsistencyMonitor dense(Model::kSI);
  for (std::size_t i = 0; i < n; ++i) {
    (void)streaming.commit(src_a.next());
    (void)dense.commit(src_b.next());
  }
  const bool identical =
      streaming.verdict() == dense.verdict() &&
      streaming.violating_commit() == dense.violating_commit() &&
      streaming.violation_detail() == dense.violation_detail();
  return {"verdict parity vs dense monitor @ 10^4", "bit-identical",
          identical ? "bit-identical" : "DIVERGED"};
}

bool write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_monitor_streaming\",\n"
               "  \"model\": \"SI\",\n  \"gc_window\": %zu,\n"
               "  \"rows\": [\n",
               StreamingConfig{}.gc_window);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"p50_ns\": %.0f, \"p99_ns\": %.0f, "
        "\"commits_per_sec\": %.0f, \"retained\": %zu, \"pruned\": %zu, "
        "\"approx_bytes\": %zu, \"rss_kb\": %zu, \"rss_peak_kb\": %zu}%s\n",
        r.n, r.p50_ns, r.p99_ns, r.commits_per_sec, r.retained, r.pruned,
        r.approx_bytes, r.rss_kb, r.rss_peak_kb,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

bool table() {
  bench::header("E18", "streaming monitor at million-commit scale");

  std::vector<SweepRow> rows;
  for (const std::size_t n : {10000ul, 100000ul, 1000000ul, 10000000ul}) {
    rows.push_back(run_point(n));
    std::printf("  n=%zu done (%.0f commits/sec)\n", n,
                rows.back().commits_per_sec);
  }

  std::vector<bench::VerdictRow> verdicts;
  verdicts.push_back(differential_row(10000));

  const SweepRow& small = rows.front();
  const SweepRow& large = rows.back();
  const bool latency_flat = large.p99_ns <= 3.0 * small.p99_ns;
  verdicts.push_back({"p99 ratio 10^7 vs 10^4", "<= 3x",
                      latency_flat ? "<= 3x" : "EXCEEDED"});
  std::printf("  (p99 ratio 10^7 / 10^4 = %.2fx)\n",
              large.p99_ns / small.p99_ns);

  // Flat memory: the retained gauge must not grow from 10^6 to 10^7 by
  // more than sampling noise, and stays within a small multiple of the
  // window.
  const SweepRow& mid = rows[rows.size() - 2];
  const bool retained_flat =
      large.retained <= mid.retained + mid.retained / 4 &&
      large.retained < 4 * StreamingConfig{}.gc_window;
  verdicts.push_back({"retained plateau 10^6 -> 10^7", "flat",
                      retained_flat ? "flat" : "GROWING"});

  const bool reproduced = bench::print_verdicts(verdicts);
  std::printf("%-10s %10s %10s %14s %10s %14s %10s\n", "n", "p50 (us)",
              "p99 (us)", "commits/sec", "retained", "approx MB", "rss MB");
  for (const SweepRow& r : rows) {
    std::printf("%-10zu %10.2f %10.2f %14.0f %10zu %14.1f %10.1f\n", r.n,
                r.p50_ns / 1e3, r.p99_ns / 1e3, r.commits_per_sec, r.retained,
                static_cast<double>(r.approx_bytes) / 1e6,
                static_cast<double>(r.rss_kb) / 1e3);
  }
  write_json("BENCH_monitor_streaming.json", rows);
  return reproduced;
}

// Steady-state per-commit cost on a warm monitor (past the first GC, so
// the loop measures the plateau regime, not the ramp-up).
void BM_StreamingCommit(benchmark::State& state) {
  workload::StreamSource source(bench_spec());
  StreamingMonitor monitor(Model::kSI);
  for (std::size_t i = 0; i < 20000; ++i) (void)monitor.commit(source.next());
  std::int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.commit(source.next()));
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_StreamingCommit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::table)
