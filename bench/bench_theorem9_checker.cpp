/// \file bench_theorem9_checker.cpp
/// Experiment E8 — Theorem 9 at scale: the GraphSI membership check
/// (acyclicity of (SO ∪ WR ∪ WW) ; RW?) on engine-generated histories of
/// growing size, against the GraphSER and GraphPSI checks on the same
/// inputs. Demonstrates that the dependency-graph characterisation turns
/// SI checking into cheap relation algebra: near-quadratic growth, with
/// PSI's transitive closure the most expensive of the three.

#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "graph/characterization.hpp"
#include "workload/generator.hpp"

namespace sia {
namespace {

mvcc::RecordedRun make_run(std::size_t txns) {
  workload::WorkloadSpec spec;
  spec.sessions = 8;
  spec.txns_per_session = txns / 8;
  spec.ops_per_txn = 4;
  spec.num_keys = static_cast<std::uint32_t>(txns / 2 + 1);
  spec.write_ratio = 0.5;
  spec.concurrent = false;
  spec.seed = txns;
  return workload::run_si(spec);
}

bool reproduction_table() {
  bench::header("E8", "Theorem 9 checker scaling (engine histories)");
  std::vector<bench::VerdictRow> rows;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const mvcc::RecordedRun run = make_run(n);
    rows.push_back({"SI run of " + std::to_string(run.history.txn_count()) +
                        " txns in GraphSI",
                    "yes", check_graph_si(run.graph).member ? "yes" : "no"});
  }
  return bench::print_verdicts(rows);
}

/// Old-vs-new sweep over the relation kernels and the Theorem 9/21
/// checkers; persists BENCH_relation_kernels.json next to the cwd. "Old"
/// is the serial kernel / materialising reference checker the repo shipped
/// with; "new" is the dispatched kernel / implicit-edge fast path.
void kernel_sweep() {
  bench::header("E8b", "relation kernels & checkers, old vs new");
  std::vector<bench::KernelRow> rows;
  for (const std::size_t n : {256UL, 1024UL, 4096UL, 8192UL}) {
    const mvcc::RecordedRun run = make_run(n);
    const DepRelations rel = run.graph.relations();
    const Relation d = rel.dependencies();

    rows.push_back(
        {"compose(D, RW)", n,
         bench::time_best_ns(
             [&] { benchmark::DoNotOptimize(d.compose_serial(rel.rw)); }),
         bench::time_best_ns(
             [&] { benchmark::DoNotOptimize(d.compose(rel.rw)); })});

    // The serial Warshall is O(n^3/64); keep its largest run affordable.
    if (n <= 4096) {
      rows.push_back(
          {"transitive_closure(D)", n,
           bench::time_best_ns(
               [&] {
                 benchmark::DoNotOptimize(d.transitive_closure_serial());
               },
               /*budget_ns=*/5e8, /*max_reps=*/3),
           bench::time_best_ns(
               [&] { benchmark::DoNotOptimize(d.transitive_closure()); },
               /*budget_ns=*/5e8, /*max_reps=*/3)});
    }

    rows.push_back(
        {"check_graph_si", n,
         bench::time_best_ns([&] {
           benchmark::DoNotOptimize(
               check_graph_si_reference(run.graph, rel).member);
         }),
         bench::time_best_ns([&] {
           benchmark::DoNotOptimize(check_graph_si(run.graph, rel).member);
         })});

    // The reference PSI check materialises the closure — cap it too.
    if (n <= 4096) {
      rows.push_back(
          {"check_graph_psi", n,
           bench::time_best_ns(
               [&] {
                 benchmark::DoNotOptimize(
                     check_graph_psi_reference(run.graph, rel).member);
               },
               /*budget_ns=*/5e8, /*max_reps=*/3),
           bench::time_best_ns([&] {
             benchmark::DoNotOptimize(check_graph_psi(run.graph, rel).member);
           })});
    }
  }
  bench::print_kernel_rows(rows);
  bench::write_kernel_json("BENCH_relation_kernels.json", "relation_kernels",
                           parallel_thread_count(), rows);
}

bool table_and_sweep() {
  const bool reproduced = reproduction_table();
  kernel_sweep();
  return reproduced;
}

void BM_CheckGraphSi(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_si(run.graph, rel).member);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CheckGraphSi)->RangeMultiplier(4)->Range(64, 8192)->Complexity();

void BM_CheckGraphSiReference(benchmark::State& state) {
  const mvcc::RecordedRun run =
      make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_si_reference(run.graph, rel).member);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CheckGraphSiReference)
    ->RangeMultiplier(4)
    ->Range(64, 8192)
    ->Complexity();

void BM_CheckGraphSer(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_ser(run.graph, rel).member);
  }
}
BENCHMARK(BM_CheckGraphSer)->RangeMultiplier(4)->Range(64, 4096);

void BM_CheckGraphPsi(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_psi(run.graph, rel).member);
  }
}
BENCHMARK(BM_CheckGraphPsi)->RangeMultiplier(4)->Range(64, 8192);

void BM_RelationsExtraction(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run.graph.relations().rw.edge_count());
  }
}
BENCHMARK(BM_RelationsExtraction)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::table_and_sweep)
