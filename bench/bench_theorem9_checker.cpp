/// \file bench_theorem9_checker.cpp
/// Experiment E8 — Theorem 9 at scale: the GraphSI membership check
/// (acyclicity of (SO ∪ WR ∪ WW) ; RW?) on engine-generated histories of
/// growing size, against the GraphSER and GraphPSI checks on the same
/// inputs. Demonstrates that the dependency-graph characterisation turns
/// SI checking into cheap relation algebra: near-quadratic growth, with
/// PSI's transitive closure the most expensive of the three.

#include "bench_util.hpp"
#include "graph/characterization.hpp"
#include "workload/generator.hpp"

namespace sia {
namespace {

mvcc::RecordedRun make_run(std::size_t txns) {
  workload::WorkloadSpec spec;
  spec.sessions = 8;
  spec.txns_per_session = txns / 8;
  spec.ops_per_txn = 4;
  spec.num_keys = static_cast<std::uint32_t>(txns / 2 + 1);
  spec.write_ratio = 0.5;
  spec.concurrent = false;
  spec.seed = txns;
  return workload::run_si(spec);
}

bool reproduction_table() {
  bench::header("E8", "Theorem 9 checker scaling (engine histories)");
  std::vector<bench::VerdictRow> rows;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const mvcc::RecordedRun run = make_run(n);
    rows.push_back({"SI run of " + std::to_string(run.history.txn_count()) +
                        " txns in GraphSI",
                    "yes", check_graph_si(run.graph).member ? "yes" : "no"});
  }
  return bench::print_verdicts(rows);
}

void BM_CheckGraphSi(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_si(run.graph, rel).member);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CheckGraphSi)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_CheckGraphSer(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_ser(run.graph, rel).member);
  }
}
BENCHMARK(BM_CheckGraphSer)->RangeMultiplier(4)->Range(64, 4096);

void BM_CheckGraphPsi(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  const DepRelations rel = run.graph.relations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_graph_psi(run.graph, rel).member);
  }
}
BENCHMARK(BM_CheckGraphPsi)->RangeMultiplier(4)->Range(64, 1024);

void BM_RelationsExtraction(benchmark::State& state) {
  const mvcc::RecordedRun run = make_run(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run.graph.relations().rw.edge_count());
  }
}
BENCHMARK(BM_RelationsExtraction)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
