/// \file bench_service_throughput.cpp
/// Experiment E16 (extension) — siad service throughput: commits/sec and
/// request latency (p50/p99) of the sharded SI-checking service as the
/// number of concurrent loadgen connections sweeps 1 / 4 / 16, against an
/// in-process server on an ephemeral localhost port. The verdict table is
/// the acceptance audit — every sweep point must run clean (verdicts
/// equal to an offline ConsistencyMonitor replay, server ack counts equal
/// to client ack counts, zero protocol errors). Results persist to
/// BENCH_service_throughput.json.
///
/// Two variants per connection count: "baseline" (short streams, GC never
/// fires) and "gc" (4x longer streams against a small gc_window, so the
/// streaming monitor's stable-prefix GC runs repeatedly mid-load) — the
/// gc rows show that watermark advancement adds no cliff to service
/// latency or throughput.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/loadgen.hpp"
#include "service/server.hpp"
#include "workload/generator.hpp"

namespace sia::service {
namespace {

struct SweepRow {
  std::size_t connections{0};
  std::string variant;
  LoadReport report;
};

LoadgenConfig sweep_config(std::uint16_t port, std::size_t connections,
                           bool gc) {
  LoadgenConfig cfg;
  cfg.port = port;
  cfg.connections = connections;
  cfg.streams_per_connection = 2;
  // The gc variant runs 4x longer streams against a small window so the
  // stable-prefix GC fires repeatedly while requests are in flight.
  cfg.txns_per_stream = gc ? 384 : 96;
  cfg.batch_size = 8;
  cfg.model = sia::service::ServiceModel::kSI;
  cfg.seed = 42 + connections;
  return cfg;
}

std::vector<SweepRow> run_sweep() {
  std::vector<SweepRow> rows;
  for (const bool gc : {false, true}) {
    for (const std::size_t connections : {1u, 4u, 16u}) {
      ServerConfig scfg;
      scfg.shards = 4;  // fixed shard count so only the client side sweeps
      if (gc) scfg.gc_window = 64;
      Server server(scfg);
      server.start();
      const LoadgenConfig cfg =
          sweep_config(server.port(), connections, gc);
      rows.push_back({connections, gc ? "gc" : "baseline", run_load(cfg)});
      server.drain();
    }
  }
  return rows;
}

bool write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_service_throughput\",\n"
               "  \"model\": \"SI\",\n  \"shards\": 4,\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoadReport& r = rows[i].report;
    std::fprintf(
        f,
        "    {\"connections\": %zu, \"variant\": \"%s\", \"streams\": %zu, "
        "\"commits_acked\": %llu, \"commits_per_sec\": %.0f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"retry_later\": %llu, "
        "\"clean\": %s}%s\n",
        rows[i].connections, rows[i].variant.c_str(), r.streams,
        static_cast<unsigned long long>(r.commits_acked), r.commits_per_sec,
        r.p50_ms, r.p99_ms, static_cast<unsigned long long>(r.retry_later),
        clean(r) ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return true;
}

bool table() {
  bench::header("E16", "siad throughput vs concurrent connections");
  const std::vector<SweepRow> rows = run_sweep();
  std::vector<bench::VerdictRow> verdicts;
  for (const SweepRow& row : rows) {
    verdicts.push_back({"connections=" + std::to_string(row.connections) +
                            " (" + row.variant + ") audit",
                        "clean", clean(row.report) ? "clean" : "NOT CLEAN"});
  }
  const bool reproduced = bench::print_verdicts(verdicts);
  std::printf("%-14s %-10s %10s %14s %10s %10s\n", "connections", "variant",
              "commits", "commits/sec", "p50 (ms)", "p99 (ms)");
  for (const SweepRow& row : rows) {
    std::printf("%-14zu %-10s %10llu %14.0f %10.3f %10.3f\n",
                row.connections, row.variant.c_str(),
                static_cast<unsigned long long>(row.report.commits_acked),
                row.report.commits_per_sec, row.report.p50_ms,
                row.report.p99_ms);
  }
  write_json("BENCH_service_throughput.json", rows);
  return reproduced;
}

// One COMMIT round-trip (batch of 8) against a warm server: the service
// layer's per-request overhead on top of the monitor itself.
void BM_ServiceCommitRoundTrip(benchmark::State& state) {
  ServerConfig scfg;
  scfg.shards = 1;
  Server server(scfg);
  server.start();
  ServiceClient client;
  client.connect("127.0.0.1", server.port());
  std::uint64_t stream = client.open_stream(Model::kSI);

  workload::WorkloadSpec spec;
  spec.sessions = 2;
  spec.txns_per_session = 64;
  spec.concurrent = false;
  const std::vector<MonitoredCommit> traffic =
      monitored_commits(workload::run_si(spec).graph);

  std::size_t off = 0;
  std::uint64_t acked = 0;
  for (auto _ : state) {
    const std::size_t n = std::min<std::size_t>(8, traffic.size() - off);
    const std::vector<MonitoredCommit> batch(traffic.begin() + off,
                                             traffic.begin() + off + n);
    const Message reply = client.commit(stream, batch);
    benchmark::DoNotOptimize(reply.type);
    acked += reply.ids.size();
    off += n;
    if (off >= traffic.size()) {
      // Fresh stream so the monitor does not grow without bound.
      state.PauseTiming();
      (void)client.close_stream(stream);
      stream = client.open_stream(Model::kSI);
      off = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(acked));
  server.drain();
}
BENCHMARK(BM_ServiceCommitRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sia::service

SIA_BENCH_MAIN(sia::service::table)
