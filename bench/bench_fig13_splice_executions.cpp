/// \file bench_fig13_splice_executions.cpp
/// Experiment E7 — Figure 13 (Appendix B.3): why §5 splices dependency
/// graphs rather than abstract executions. For the execution X ∈ ExecSI
/// of the figure, the naive lift of CO to spliced transactions is cyclic
/// (T̃ CO S̃ CO T̃), so no spliced execution can be read off X directly —
/// while extracting graph(X), splicing the graph, and rebuilding an
/// execution through Theorem 10(i) works.

#include "bench_util.hpp"
#include "chopping/dynamic_chopping_graph.hpp"
#include "chopping/splice.hpp"
#include "graph/characterization.hpp"
#include "graph/soundness.hpp"
#include "workload/paper_examples.hpp"

namespace sia {
namespace {

/// The naive direct splice of CO: session-level lift of the relation.
Relation lift_to_sessions(const Relation& r, const History& h) {
  Relation out(h.session_count());
  for (const auto& [a, b] : r.edges()) {
    const SessionId sa = h.session_of(a);
    const SessionId sb = h.session_of(b);
    if (sa != sb) out.add(sa, sb);
  }
  return out;
}

bool reproduction_table() {
  bench::header("E7", "Figure 13: splicing executions directly fails");
  const AbstractExecution x = paper::fig13_execution();
  std::vector<bench::VerdictRow> rows;
  rows.push_back({"X in ExecSI", "yes",
                  axioms::is_exec_si(x) ? "yes" : "no"});
  const Relation co_lift = lift_to_sessions(x.co, x.history);
  rows.push_back({"direct CO splice acyclic", "no (cyclic)",
                  co_lift.is_acyclic() ? "acyclic" : "no (cyclic)"});
  // The paper's route: graph(X) -> splice -> Theorem 10(i).
  const DependencyGraph g = extract_graph(x);
  rows.push_back({"DCG(graph(X)) critical-cycle free", "yes",
                  check_chopping_dynamic(g).correct ? "yes" : "no"});
  const DependencyGraph spliced = splice_graph(g);
  rows.push_back({"splice(graph(X)) in GraphSI", "yes",
                  check_graph_si(spliced).member ? "yes" : "no"});
  const AbstractExecution rebuilt = construct_execution(spliced);
  rows.push_back({"rebuilt execution in ExecSI", "yes",
                  axioms::is_exec_si(rebuilt) ? "yes" : "no"});
  return bench::print_verdicts(rows);
}

void BM_GraphRouteEndToEnd(benchmark::State& state) {
  const AbstractExecution x = paper::fig13_execution();
  for (auto _ : state) {
    const DependencyGraph g = extract_graph(x);
    const DependencyGraph spliced = splice_graph(g);
    benchmark::DoNotOptimize(construct_execution(spliced).co.edge_count());
  }
}
BENCHMARK(BM_GraphRouteEndToEnd);

void BM_ExtractGraph(benchmark::State& state) {
  const AbstractExecution x = paper::fig13_execution();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_graph(x).txn_count());
  }
}
BENCHMARK(BM_ExtractGraph);

}  // namespace
}  // namespace sia

SIA_BENCH_MAIN(sia::reproduction_table)
