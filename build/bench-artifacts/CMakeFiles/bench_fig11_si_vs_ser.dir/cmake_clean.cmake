file(REMOVE_RECURSE
  "../bench/bench_fig11_si_vs_ser"
  "../bench/bench_fig11_si_vs_ser.pdb"
  "CMakeFiles/bench_fig11_si_vs_ser.dir/bench_fig11_si_vs_ser.cpp.o"
  "CMakeFiles/bench_fig11_si_vs_ser.dir/bench_fig11_si_vs_ser.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_si_vs_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
