# Empty compiler generated dependencies file for bench_fig11_si_vs_ser.
# This may be replaced when dependencies are built.
