file(REMOVE_RECURSE
  "../bench/bench_chopping_static_scaling"
  "../bench/bench_chopping_static_scaling.pdb"
  "CMakeFiles/bench_chopping_static_scaling.dir/bench_chopping_static_scaling.cpp.o"
  "CMakeFiles/bench_chopping_static_scaling.dir/bench_chopping_static_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chopping_static_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
