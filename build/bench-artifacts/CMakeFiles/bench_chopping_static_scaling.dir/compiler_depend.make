# Empty compiler generated dependencies file for bench_chopping_static_scaling.
# This may be replaced when dependencies are built.
