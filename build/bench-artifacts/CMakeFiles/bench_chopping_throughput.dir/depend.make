# Empty dependencies file for bench_chopping_throughput.
# This may be replaced when dependencies are built.
