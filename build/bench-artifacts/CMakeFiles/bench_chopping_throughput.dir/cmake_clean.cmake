file(REMOVE_RECURSE
  "../bench/bench_chopping_throughput"
  "../bench/bench_chopping_throughput.pdb"
  "CMakeFiles/bench_chopping_throughput.dir/bench_chopping_throughput.cpp.o"
  "CMakeFiles/bench_chopping_throughput.dir/bench_chopping_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chopping_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
