file(REMOVE_RECURSE
  "../bench/bench_fig12_psi_vs_si"
  "../bench/bench_fig12_psi_vs_si.pdb"
  "CMakeFiles/bench_fig12_psi_vs_si.dir/bench_fig12_psi_vs_si.cpp.o"
  "CMakeFiles/bench_fig12_psi_vs_si.dir/bench_fig12_psi_vs_si.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_psi_vs_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
