# Empty dependencies file for bench_fig12_psi_vs_si.
# This may be replaced when dependencies are built.
