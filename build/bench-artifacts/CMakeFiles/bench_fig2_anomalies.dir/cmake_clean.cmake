file(REMOVE_RECURSE
  "../bench/bench_fig2_anomalies"
  "../bench/bench_fig2_anomalies.pdb"
  "CMakeFiles/bench_fig2_anomalies.dir/bench_fig2_anomalies.cpp.o"
  "CMakeFiles/bench_fig2_anomalies.dir/bench_fig2_anomalies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
