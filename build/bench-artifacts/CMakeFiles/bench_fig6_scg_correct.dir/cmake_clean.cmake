file(REMOVE_RECURSE
  "../bench/bench_fig6_scg_correct"
  "../bench/bench_fig6_scg_correct.pdb"
  "CMakeFiles/bench_fig6_scg_correct.dir/bench_fig6_scg_correct.cpp.o"
  "CMakeFiles/bench_fig6_scg_correct.dir/bench_fig6_scg_correct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scg_correct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
