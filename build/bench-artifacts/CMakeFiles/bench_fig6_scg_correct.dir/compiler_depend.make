# Empty compiler generated dependencies file for bench_fig6_scg_correct.
# This may be replaced when dependencies are built.
