file(REMOVE_RECURSE
  "../bench/bench_fig5_scg_incorrect"
  "../bench/bench_fig5_scg_incorrect.pdb"
  "CMakeFiles/bench_fig5_scg_incorrect.dir/bench_fig5_scg_incorrect.cpp.o"
  "CMakeFiles/bench_fig5_scg_incorrect.dir/bench_fig5_scg_incorrect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scg_incorrect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
