# Empty compiler generated dependencies file for bench_fig5_scg_incorrect.
# This may be replaced when dependencies are built.
