# Empty compiler generated dependencies file for bench_theorem10_soundness.
# This may be replaced when dependencies are built.
