file(REMOVE_RECURSE
  "../bench/bench_theorem10_soundness"
  "../bench/bench_theorem10_soundness.pdb"
  "CMakeFiles/bench_theorem10_soundness.dir/bench_theorem10_soundness.cpp.o"
  "CMakeFiles/bench_theorem10_soundness.dir/bench_theorem10_soundness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem10_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
