# Empty compiler generated dependencies file for bench_fig13_splice_executions.
# This may be replaced when dependencies are built.
