file(REMOVE_RECURSE
  "../bench/bench_fig13_splice_executions"
  "../bench/bench_fig13_splice_executions.pdb"
  "CMakeFiles/bench_fig13_splice_executions.dir/bench_fig13_splice_executions.cpp.o"
  "CMakeFiles/bench_fig13_splice_executions.dir/bench_fig13_splice_executions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_splice_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
