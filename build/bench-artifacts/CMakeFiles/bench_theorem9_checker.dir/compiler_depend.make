# Empty compiler generated dependencies file for bench_theorem9_checker.
# This may be replaced when dependencies are built.
