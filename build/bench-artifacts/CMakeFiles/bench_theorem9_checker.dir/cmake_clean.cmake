file(REMOVE_RECURSE
  "../bench/bench_theorem9_checker"
  "../bench/bench_theorem9_checker.pdb"
  "CMakeFiles/bench_theorem9_checker.dir/bench_theorem9_checker.cpp.o"
  "CMakeFiles/bench_theorem9_checker.dir/bench_theorem9_checker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem9_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
