file(REMOVE_RECURSE
  "../bench/bench_fig4_dynamic_chopping"
  "../bench/bench_fig4_dynamic_chopping.pdb"
  "CMakeFiles/bench_fig4_dynamic_chopping.dir/bench_fig4_dynamic_chopping.cpp.o"
  "CMakeFiles/bench_fig4_dynamic_chopping.dir/bench_fig4_dynamic_chopping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dynamic_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
