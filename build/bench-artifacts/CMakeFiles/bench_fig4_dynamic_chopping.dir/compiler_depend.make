# Empty compiler generated dependencies file for bench_fig4_dynamic_chopping.
# This may be replaced when dependencies are built.
