file(REMOVE_RECURSE
  "CMakeFiles/robustness_audit.dir/robustness_audit.cpp.o"
  "CMakeFiles/robustness_audit.dir/robustness_audit.cpp.o.d"
  "robustness_audit"
  "robustness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
