
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/robustness_audit.cpp" "examples/CMakeFiles/robustness_audit.dir/robustness_audit.cpp.o" "gcc" "examples/CMakeFiles/robustness_audit.dir/robustness_audit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/chopping/CMakeFiles/sia_chopping.dir/DependInfo.cmake"
  "/root/repo/build/src/robustness/CMakeFiles/sia_robustness.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcc/CMakeFiles/sia_mvcc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sia_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/sia_tools.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
