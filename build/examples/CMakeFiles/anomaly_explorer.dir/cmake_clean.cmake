file(REMOVE_RECURSE
  "CMakeFiles/anomaly_explorer.dir/anomaly_explorer.cpp.o"
  "CMakeFiles/anomaly_explorer.dir/anomaly_explorer.cpp.o.d"
  "anomaly_explorer"
  "anomaly_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
