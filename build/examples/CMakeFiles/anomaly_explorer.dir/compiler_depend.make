# Empty compiler generated dependencies file for anomaly_explorer.
# This may be replaced when dependencies are built.
