file(REMOVE_RECURSE
  "CMakeFiles/banking_chopping.dir/banking_chopping.cpp.o"
  "CMakeFiles/banking_chopping.dir/banking_chopping.cpp.o.d"
  "banking_chopping"
  "banking_chopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
