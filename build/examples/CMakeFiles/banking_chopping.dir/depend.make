# Empty dependencies file for banking_chopping.
# This may be replaced when dependencies are built.
