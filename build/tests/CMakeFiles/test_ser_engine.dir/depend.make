# Empty dependencies file for test_ser_engine.
# This may be replaced when dependencies are built.
