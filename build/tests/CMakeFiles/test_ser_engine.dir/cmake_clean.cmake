file(REMOVE_RECURSE
  "CMakeFiles/test_ser_engine.dir/test_ser_engine.cpp.o"
  "CMakeFiles/test_ser_engine.dir/test_ser_engine.cpp.o.d"
  "test_ser_engine"
  "test_ser_engine.pdb"
  "test_ser_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ser_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
