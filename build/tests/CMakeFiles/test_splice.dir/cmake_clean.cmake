file(REMOVE_RECURSE
  "CMakeFiles/test_splice.dir/test_splice.cpp.o"
  "CMakeFiles/test_splice.dir/test_splice.cpp.o.d"
  "test_splice"
  "test_splice.pdb"
  "test_splice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
