# Empty compiler generated dependencies file for test_splice.
# This may be replaced when dependencies are built.
