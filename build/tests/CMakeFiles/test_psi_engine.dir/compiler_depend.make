# Empty compiler generated dependencies file for test_psi_engine.
# This may be replaced when dependencies are built.
