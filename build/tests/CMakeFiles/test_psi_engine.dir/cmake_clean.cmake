file(REMOVE_RECURSE
  "CMakeFiles/test_psi_engine.dir/test_psi_engine.cpp.o"
  "CMakeFiles/test_psi_engine.dir/test_psi_engine.cpp.o.d"
  "test_psi_engine"
  "test_psi_engine.pdb"
  "test_psi_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
