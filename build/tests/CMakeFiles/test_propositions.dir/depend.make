# Empty dependencies file for test_propositions.
# This may be replaced when dependencies are built.
