file(REMOVE_RECURSE
  "CMakeFiles/test_propositions.dir/test_propositions.cpp.o"
  "CMakeFiles/test_propositions.dir/test_propositions.cpp.o.d"
  "test_propositions"
  "test_propositions.pdb"
  "test_propositions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
