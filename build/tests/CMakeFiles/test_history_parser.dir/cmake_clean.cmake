file(REMOVE_RECURSE
  "CMakeFiles/test_history_parser.dir/test_history_parser.cpp.o"
  "CMakeFiles/test_history_parser.dir/test_history_parser.cpp.o.d"
  "test_history_parser"
  "test_history_parser.pdb"
  "test_history_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
