# Empty dependencies file for test_history_parser.
# This may be replaced when dependencies are built.
