file(REMOVE_RECURSE
  "CMakeFiles/test_theorem_equivalences.dir/test_theorem_equivalences.cpp.o"
  "CMakeFiles/test_theorem_equivalences.dir/test_theorem_equivalences.cpp.o.d"
  "test_theorem_equivalences"
  "test_theorem_equivalences.pdb"
  "test_theorem_equivalences[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorem_equivalences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
