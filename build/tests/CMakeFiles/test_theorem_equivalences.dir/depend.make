# Empty dependencies file for test_theorem_equivalences.
# This may be replaced when dependencies are built.
