# Empty dependencies file for test_si_engine.
# This may be replaced when dependencies are built.
