file(REMOVE_RECURSE
  "CMakeFiles/test_si_engine.dir/test_si_engine.cpp.o"
  "CMakeFiles/test_si_engine.dir/test_si_engine.cpp.o.d"
  "test_si_engine"
  "test_si_engine.pdb"
  "test_si_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_si_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
