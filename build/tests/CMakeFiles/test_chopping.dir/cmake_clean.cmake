file(REMOVE_RECURSE
  "CMakeFiles/test_chopping.dir/test_chopping.cpp.o"
  "CMakeFiles/test_chopping.dir/test_chopping.cpp.o.d"
  "test_chopping"
  "test_chopping.pdb"
  "test_chopping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
