# Empty dependencies file for test_chopping.
# This may be replaced when dependencies are built.
