file(REMOVE_RECURSE
  "CMakeFiles/test_dependency_graph.dir/test_dependency_graph.cpp.o"
  "CMakeFiles/test_dependency_graph.dir/test_dependency_graph.cpp.o.d"
  "test_dependency_graph"
  "test_dependency_graph.pdb"
  "test_dependency_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependency_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
