file(REMOVE_RECURSE
  "CMakeFiles/test_axioms.dir/test_axioms.cpp.o"
  "CMakeFiles/test_axioms.dir/test_axioms.cpp.o.d"
  "test_axioms"
  "test_axioms.pdb"
  "test_axioms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axioms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
