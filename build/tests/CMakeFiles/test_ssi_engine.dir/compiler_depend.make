# Empty compiler generated dependencies file for test_ssi_engine.
# This may be replaced when dependencies are built.
