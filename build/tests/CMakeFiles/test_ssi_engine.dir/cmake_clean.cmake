file(REMOVE_RECURSE
  "CMakeFiles/test_ssi_engine.dir/test_ssi_engine.cpp.o"
  "CMakeFiles/test_ssi_engine.dir/test_ssi_engine.cpp.o.d"
  "test_ssi_engine"
  "test_ssi_engine.pdb"
  "test_ssi_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
