# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_relation[1]_include.cmake")
include("/root/repo/build/tests/test_transaction[1]_include.cmake")
include("/root/repo/build/tests/test_history[1]_include.cmake")
include("/root/repo/build/tests/test_axioms[1]_include.cmake")
include("/root/repo/build/tests/test_dependency_graph[1]_include.cmake")
include("/root/repo/build/tests/test_characterization[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_cycles[1]_include.cmake")
include("/root/repo/build/tests/test_splice[1]_include.cmake")
include("/root/repo/build/tests/test_chopping[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_si_engine[1]_include.cmake")
include("/root/repo/build/tests/test_ser_engine[1]_include.cmake")
include("/root/repo/build/tests/test_psi_engine[1]_include.cmake")
include("/root/repo/build/tests/test_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_enumeration[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_repair[1]_include.cmake")
include("/root/repo/build/tests/test_dot[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_theorem_equivalences[1]_include.cmake")
include("/root/repo/build/tests/test_ssi_engine[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_propositions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_history_parser[1]_include.cmake")
