file(REMOVE_RECURSE
  "CMakeFiles/sia_graph.dir/characterization.cpp.o"
  "CMakeFiles/sia_graph.dir/characterization.cpp.o.d"
  "CMakeFiles/sia_graph.dir/cycles.cpp.o"
  "CMakeFiles/sia_graph.dir/cycles.cpp.o.d"
  "CMakeFiles/sia_graph.dir/dependency_graph.cpp.o"
  "CMakeFiles/sia_graph.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/sia_graph.dir/enumeration.cpp.o"
  "CMakeFiles/sia_graph.dir/enumeration.cpp.o.d"
  "CMakeFiles/sia_graph.dir/monitor.cpp.o"
  "CMakeFiles/sia_graph.dir/monitor.cpp.o.d"
  "CMakeFiles/sia_graph.dir/soundness.cpp.o"
  "CMakeFiles/sia_graph.dir/soundness.cpp.o.d"
  "libsia_graph.a"
  "libsia_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
