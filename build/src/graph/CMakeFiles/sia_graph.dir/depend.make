# Empty dependencies file for sia_graph.
# This may be replaced when dependencies are built.
