file(REMOVE_RECURSE
  "libsia_graph.a"
)
