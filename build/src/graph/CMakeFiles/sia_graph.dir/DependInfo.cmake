
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/characterization.cpp" "src/graph/CMakeFiles/sia_graph.dir/characterization.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/characterization.cpp.o.d"
  "/root/repo/src/graph/cycles.cpp" "src/graph/CMakeFiles/sia_graph.dir/cycles.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/cycles.cpp.o.d"
  "/root/repo/src/graph/dependency_graph.cpp" "src/graph/CMakeFiles/sia_graph.dir/dependency_graph.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/graph/enumeration.cpp" "src/graph/CMakeFiles/sia_graph.dir/enumeration.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/enumeration.cpp.o.d"
  "/root/repo/src/graph/monitor.cpp" "src/graph/CMakeFiles/sia_graph.dir/monitor.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/monitor.cpp.o.d"
  "/root/repo/src/graph/soundness.cpp" "src/graph/CMakeFiles/sia_graph.dir/soundness.cpp.o" "gcc" "src/graph/CMakeFiles/sia_graph.dir/soundness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
