
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cpp" "src/workload/CMakeFiles/sia_workload.dir/apps.cpp.o" "gcc" "src/workload/CMakeFiles/sia_workload.dir/apps.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/sia_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/sia_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/paper_examples.cpp" "src/workload/CMakeFiles/sia_workload.dir/paper_examples.cpp.o" "gcc" "src/workload/CMakeFiles/sia_workload.dir/paper_examples.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mvcc/CMakeFiles/sia_mvcc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
