file(REMOVE_RECURSE
  "CMakeFiles/sia_workload.dir/apps.cpp.o"
  "CMakeFiles/sia_workload.dir/apps.cpp.o.d"
  "CMakeFiles/sia_workload.dir/generator.cpp.o"
  "CMakeFiles/sia_workload.dir/generator.cpp.o.d"
  "CMakeFiles/sia_workload.dir/paper_examples.cpp.o"
  "CMakeFiles/sia_workload.dir/paper_examples.cpp.o.d"
  "libsia_workload.a"
  "libsia_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
