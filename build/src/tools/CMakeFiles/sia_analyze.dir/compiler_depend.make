# Empty compiler generated dependencies file for sia_analyze.
# This may be replaced when dependencies are built.
