file(REMOVE_RECURSE
  "CMakeFiles/sia_analyze.dir/sia_analyze.cpp.o"
  "CMakeFiles/sia_analyze.dir/sia_analyze.cpp.o.d"
  "sia_analyze"
  "sia_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
