file(REMOVE_RECURSE
  "CMakeFiles/sia_tools.dir/dot.cpp.o"
  "CMakeFiles/sia_tools.dir/dot.cpp.o.d"
  "CMakeFiles/sia_tools.dir/history_parser.cpp.o"
  "CMakeFiles/sia_tools.dir/history_parser.cpp.o.d"
  "CMakeFiles/sia_tools.dir/program_parser.cpp.o"
  "CMakeFiles/sia_tools.dir/program_parser.cpp.o.d"
  "libsia_tools.a"
  "libsia_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
