# Empty dependencies file for sia_tools.
# This may be replaced when dependencies are built.
