file(REMOVE_RECURSE
  "libsia_tools.a"
)
