file(REMOVE_RECURSE
  "CMakeFiles/sia_core.dir/abstract_execution.cpp.o"
  "CMakeFiles/sia_core.dir/abstract_execution.cpp.o.d"
  "CMakeFiles/sia_core.dir/event.cpp.o"
  "CMakeFiles/sia_core.dir/event.cpp.o.d"
  "CMakeFiles/sia_core.dir/history.cpp.o"
  "CMakeFiles/sia_core.dir/history.cpp.o.d"
  "CMakeFiles/sia_core.dir/program.cpp.o"
  "CMakeFiles/sia_core.dir/program.cpp.o.d"
  "CMakeFiles/sia_core.dir/relation.cpp.o"
  "CMakeFiles/sia_core.dir/relation.cpp.o.d"
  "CMakeFiles/sia_core.dir/transaction.cpp.o"
  "CMakeFiles/sia_core.dir/transaction.cpp.o.d"
  "libsia_core.a"
  "libsia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
