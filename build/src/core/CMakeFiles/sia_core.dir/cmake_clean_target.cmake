file(REMOVE_RECURSE
  "libsia_core.a"
)
