
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abstract_execution.cpp" "src/core/CMakeFiles/sia_core.dir/abstract_execution.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/abstract_execution.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/sia_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/event.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/sia_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/history.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/sia_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/program.cpp.o.d"
  "/root/repo/src/core/relation.cpp" "src/core/CMakeFiles/sia_core.dir/relation.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/relation.cpp.o.d"
  "/root/repo/src/core/transaction.cpp" "src/core/CMakeFiles/sia_core.dir/transaction.cpp.o" "gcc" "src/core/CMakeFiles/sia_core.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
