# Empty compiler generated dependencies file for sia_core.
# This may be replaced when dependencies are built.
