file(REMOVE_RECURSE
  "libsia_robustness.a"
)
