# Empty compiler generated dependencies file for sia_robustness.
# This may be replaced when dependencies are built.
