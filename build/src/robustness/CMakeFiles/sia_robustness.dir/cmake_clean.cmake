file(REMOVE_RECURSE
  "CMakeFiles/sia_robustness.dir/concretize.cpp.o"
  "CMakeFiles/sia_robustness.dir/concretize.cpp.o.d"
  "CMakeFiles/sia_robustness.dir/robustness.cpp.o"
  "CMakeFiles/sia_robustness.dir/robustness.cpp.o.d"
  "libsia_robustness.a"
  "libsia_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
