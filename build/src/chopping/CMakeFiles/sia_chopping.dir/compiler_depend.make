# Empty compiler generated dependencies file for sia_chopping.
# This may be replaced when dependencies are built.
