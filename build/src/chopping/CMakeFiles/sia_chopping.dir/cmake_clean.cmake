file(REMOVE_RECURSE
  "CMakeFiles/sia_chopping.dir/criteria.cpp.o"
  "CMakeFiles/sia_chopping.dir/criteria.cpp.o.d"
  "CMakeFiles/sia_chopping.dir/dynamic_chopping_graph.cpp.o"
  "CMakeFiles/sia_chopping.dir/dynamic_chopping_graph.cpp.o.d"
  "CMakeFiles/sia_chopping.dir/repair.cpp.o"
  "CMakeFiles/sia_chopping.dir/repair.cpp.o.d"
  "CMakeFiles/sia_chopping.dir/splice.cpp.o"
  "CMakeFiles/sia_chopping.dir/splice.cpp.o.d"
  "CMakeFiles/sia_chopping.dir/static_chopping_graph.cpp.o"
  "CMakeFiles/sia_chopping.dir/static_chopping_graph.cpp.o.d"
  "libsia_chopping.a"
  "libsia_chopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
