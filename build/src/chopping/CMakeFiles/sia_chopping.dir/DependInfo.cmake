
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chopping/criteria.cpp" "src/chopping/CMakeFiles/sia_chopping.dir/criteria.cpp.o" "gcc" "src/chopping/CMakeFiles/sia_chopping.dir/criteria.cpp.o.d"
  "/root/repo/src/chopping/dynamic_chopping_graph.cpp" "src/chopping/CMakeFiles/sia_chopping.dir/dynamic_chopping_graph.cpp.o" "gcc" "src/chopping/CMakeFiles/sia_chopping.dir/dynamic_chopping_graph.cpp.o.d"
  "/root/repo/src/chopping/repair.cpp" "src/chopping/CMakeFiles/sia_chopping.dir/repair.cpp.o" "gcc" "src/chopping/CMakeFiles/sia_chopping.dir/repair.cpp.o.d"
  "/root/repo/src/chopping/splice.cpp" "src/chopping/CMakeFiles/sia_chopping.dir/splice.cpp.o" "gcc" "src/chopping/CMakeFiles/sia_chopping.dir/splice.cpp.o.d"
  "/root/repo/src/chopping/static_chopping_graph.cpp" "src/chopping/CMakeFiles/sia_chopping.dir/static_chopping_graph.cpp.o" "gcc" "src/chopping/CMakeFiles/sia_chopping.dir/static_chopping_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
