file(REMOVE_RECURSE
  "libsia_chopping.a"
)
