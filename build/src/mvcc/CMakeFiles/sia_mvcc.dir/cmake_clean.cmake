file(REMOVE_RECURSE
  "CMakeFiles/sia_mvcc.dir/psi_engine.cpp.o"
  "CMakeFiles/sia_mvcc.dir/psi_engine.cpp.o.d"
  "CMakeFiles/sia_mvcc.dir/recorder.cpp.o"
  "CMakeFiles/sia_mvcc.dir/recorder.cpp.o.d"
  "CMakeFiles/sia_mvcc.dir/ser_engine.cpp.o"
  "CMakeFiles/sia_mvcc.dir/ser_engine.cpp.o.d"
  "CMakeFiles/sia_mvcc.dir/si_engine.cpp.o"
  "CMakeFiles/sia_mvcc.dir/si_engine.cpp.o.d"
  "CMakeFiles/sia_mvcc.dir/ssi_engine.cpp.o"
  "CMakeFiles/sia_mvcc.dir/ssi_engine.cpp.o.d"
  "libsia_mvcc.a"
  "libsia_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
