# Empty compiler generated dependencies file for sia_mvcc.
# This may be replaced when dependencies are built.
