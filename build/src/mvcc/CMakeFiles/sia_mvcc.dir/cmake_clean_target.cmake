file(REMOVE_RECURSE
  "libsia_mvcc.a"
)
