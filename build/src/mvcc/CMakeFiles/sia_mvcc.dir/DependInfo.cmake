
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mvcc/psi_engine.cpp" "src/mvcc/CMakeFiles/sia_mvcc.dir/psi_engine.cpp.o" "gcc" "src/mvcc/CMakeFiles/sia_mvcc.dir/psi_engine.cpp.o.d"
  "/root/repo/src/mvcc/recorder.cpp" "src/mvcc/CMakeFiles/sia_mvcc.dir/recorder.cpp.o" "gcc" "src/mvcc/CMakeFiles/sia_mvcc.dir/recorder.cpp.o.d"
  "/root/repo/src/mvcc/ser_engine.cpp" "src/mvcc/CMakeFiles/sia_mvcc.dir/ser_engine.cpp.o" "gcc" "src/mvcc/CMakeFiles/sia_mvcc.dir/ser_engine.cpp.o.d"
  "/root/repo/src/mvcc/si_engine.cpp" "src/mvcc/CMakeFiles/sia_mvcc.dir/si_engine.cpp.o" "gcc" "src/mvcc/CMakeFiles/sia_mvcc.dir/si_engine.cpp.o.d"
  "/root/repo/src/mvcc/ssi_engine.cpp" "src/mvcc/CMakeFiles/sia_mvcc.dir/ssi_engine.cpp.o" "gcc" "src/mvcc/CMakeFiles/sia_mvcc.dir/ssi_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
