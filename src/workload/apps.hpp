#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "workload/paper_examples.hpp"

/// \file apps.hpp
/// Larger application suites for the static analyses: a TPC-C-like
/// transaction mix (the classical subject of SI robustness studies, cf.
/// Fekete et al. [18]), chopped variants for the chopping analysis, and a
/// random program-suite generator for scaling benches.

namespace sia::workload {

/// The five TPC-C transaction programs with table-granularity read/write
/// sets (warehouse, district, customer, item, stock, orders, new_orders,
/// history). At this granularity the *plain* Theorem 19 analysis is too
/// coarse to certify robustness, while the vulnerability-refined analysis
/// (robust_against_si_refined) certifies it — the classical result that
/// TPC-C is robust against SI.
[[nodiscard]] paper::NamedPrograms tpcc_like_programs();

/// TPC-C with new_order and payment chopped into per-table pieces;
/// analysed by the chopping benches.
[[nodiscard]] paper::NamedPrograms tpcc_chopped_programs();

/// Parameters for random program suites.
struct ProgramSuiteSpec {
  std::size_t programs{8};
  std::size_t pieces_per_program{3};
  std::size_t objects{16};
  std::size_t reads_per_piece{2};
  std::size_t writes_per_piece{1};
  std::uint64_t seed{7};
};

/// Deterministic random suite (for analysis scaling benches).
[[nodiscard]] std::vector<Program> random_programs(const ProgramSuiteSpec& s);

}  // namespace sia::workload
