#include "workload/paper_examples.hpp"

namespace sia::paper {

NamedHistory fig2a_session_guarantee() {
  HistoryBuilder b;
  const ObjId x = b.obj("x");
  b.init_txn({x});
  b.session().txn({write(x, 1)}).txn({read(x, 1)});
  return {b.build(), b.objects()};
}

NamedHistory fig2b_lost_update() {
  HistoryBuilder b;
  const ObjId acct = b.obj("acct");
  b.init_txn({acct});
  b.session().txn({read(acct, 0), write(acct, 50)});
  b.session().txn({read(acct, 0), write(acct, 25)});
  return {b.build(), b.objects()};
}

NamedHistory fig2c_long_fork() {
  HistoryBuilder b;
  const ObjId x = b.obj("x");
  const ObjId y = b.obj("y");
  b.init_txn({x, y});
  b.session().txn({write(x, 1)});
  b.session().txn({write(y, 1)});
  b.session().txn({read(x, 1), read(y, 0)});
  b.session().txn({read(x, 0), read(y, 1)});
  return {b.build(), b.objects()};
}

NamedHistory fig2d_write_skew() {
  HistoryBuilder b;
  const ObjId acct1 = b.obj("acct1");
  const ObjId acct2 = b.obj("acct2");
  b.init_txn({acct1, acct2});
  b.session().txn({read(acct1, 0), read(acct2, 0), write(acct1, -100)});
  b.session().txn({read(acct1, 0), read(acct2, 0), write(acct2, -100)});
  return {b.build(), b.objects()};
}

namespace {

/// Shared scaffold for the Figure 4 graphs: the initialisation transaction
/// (T0) and the chopped transfer session (T1: debit acct1, T2: credit
/// acct2).
struct TransferScaffold {
  HistoryBuilder b;
  ObjId acct1, acct2;
  TxnId t0, t1, t2;

  TransferScaffold() {
    acct1 = b.obj("acct1");
    acct2 = b.obj("acct2");
    t0 = b.init_txn({acct1, acct2});
    b.session().txn({read(acct1, 0), write(acct1, -100)});
    t1 = b.last_txn();
    b.txn({read(acct2, 0), write(acct2, 100)});
    t2 = b.last_txn();
  }
};

}  // namespace

DependencyGraph fig4_g1() {
  TransferScaffold s;
  // lookupAll observes the state in the middle of the transfer.
  s.b.session().txn({read(s.acct1, -100), read(s.acct2, 0)});
  const TxnId lookup = s.b.last_txn();

  DependencyGraph g(s.b.build());
  g.set_read_from(s.acct1, s.t0, s.t1);
  g.set_read_from(s.acct2, s.t0, s.t2);
  g.set_read_from(s.acct1, s.t1, lookup);
  g.set_read_from(s.acct2, s.t0, lookup);
  g.set_write_order(s.acct1, {s.t0, s.t1});
  g.set_write_order(s.acct2, {s.t0, s.t2});
  return g;
}

DependencyGraph fig4_g2() {
  TransferScaffold s;
  s.b.session().txn({read(s.acct1, -100)});
  const TxnId lookup1 = s.b.last_txn();
  s.b.session().txn({read(s.acct2, 0)});
  const TxnId lookup2 = s.b.last_txn();

  DependencyGraph g(s.b.build());
  g.set_read_from(s.acct1, s.t0, s.t1);
  g.set_read_from(s.acct2, s.t0, s.t2);
  g.set_read_from(s.acct1, s.t1, lookup1);
  g.set_read_from(s.acct2, s.t0, lookup2);
  g.set_write_order(s.acct1, {s.t0, s.t1});
  g.set_write_order(s.acct2, {s.t0, s.t2});
  return g;
}

namespace {

/// Builds the two-piece transfer program over the given accounts.
Program transfer_program(ObjId acct1, ObjId acct2) {
  return Program{"transfer",
                 {Piece{"acct1 = acct1 - 100", {acct1}, {acct1}},
                  Piece{"acct2 = acct2 + 100", {acct2}, {acct2}}}};
}

}  // namespace

NamedPrograms fig5_programs() {
  ObjectTable objs;
  const ObjId acct1 = objs.intern("acct1");
  const ObjId acct2 = objs.intern("acct2");
  std::vector<Program> p;
  p.push_back(transfer_program(acct1, acct2));
  p.push_back(Program{
      "lookupAll",
      {Piece{"var1 = acct1; var2 = acct2", {acct1, acct2}, {}}}});
  return {std::move(p), std::move(objs)};
}

NamedPrograms fig6_programs() {
  ObjectTable objs;
  const ObjId acct1 = objs.intern("acct1");
  const ObjId acct2 = objs.intern("acct2");
  std::vector<Program> p;
  p.push_back(transfer_program(acct1, acct2));
  p.push_back(Program{"lookup1", {Piece{"return acct1", {acct1}, {}}}});
  p.push_back(Program{"lookup2", {Piece{"return acct2", {acct2}, {}}}});
  return {std::move(p), std::move(objs)};
}

NamedPrograms fig11_programs() {
  ObjectTable objs;
  const ObjId x = objs.intern("x");
  const ObjId y = objs.intern("y");
  std::vector<Program> p;
  p.push_back(Program{"write1",
                      {Piece{"var1 = x", {x}, {}}, Piece{"y = var1", {}, {y}}}});
  p.push_back(Program{"write2",
                      {Piece{"var2 = y", {y}, {}}, Piece{"x = var2", {}, {x}}}});
  return {std::move(p), std::move(objs)};
}

NamedPrograms fig12_programs() {
  ObjectTable objs;
  const ObjId x = objs.intern("x");
  const ObjId y = objs.intern("y");
  std::vector<Program> p;
  p.push_back(Program{"write1", {Piece{"x = post1", {}, {x}}}});
  p.push_back(Program{"write2", {Piece{"y = post2", {}, {y}}}});
  p.push_back(Program{"read1",
                      {Piece{"a = y", {y}, {}}, Piece{"b = x", {x}, {}}}});
  p.push_back(Program{"read2",
                      {Piece{"a = x", {x}, {}}, Piece{"b = y", {y}, {}}}});
  return {std::move(p), std::move(objs)};
}

DependencyGraph fig11_h6() {
  HistoryBuilder b;
  const ObjId x = b.obj("x");
  const ObjId y = b.obj("y");
  const TxnId t0 = b.init_txn({x, y});
  b.session().txn({read(x, 0)});
  const TxnId w1p0 = b.last_txn();
  b.txn({write(y, 1)});
  const TxnId w1p1 = b.last_txn();
  b.session().txn({read(y, 0)});
  const TxnId w2p0 = b.last_txn();
  b.txn({write(x, 1)});
  const TxnId w2p1 = b.last_txn();

  DependencyGraph g(b.build());
  g.set_read_from(x, t0, w1p0);
  g.set_read_from(y, t0, w2p0);
  g.set_write_order(x, {t0, w2p1});
  g.set_write_order(y, {t0, w1p1});
  return g;
}

DependencyGraph fig12_g7() {
  HistoryBuilder b;
  const ObjId x = b.obj("x");
  const ObjId y = b.obj("y");
  const TxnId t0 = b.init_txn({x, y});
  b.session().txn({write(x, 1)});
  const TxnId w1 = b.last_txn();
  b.session().txn({write(y, 1)});
  const TxnId w2 = b.last_txn();
  b.session().txn({read(y, 0)});
  const TxnId r1a = b.last_txn();
  b.txn({read(x, 1)});
  const TxnId r1b = b.last_txn();
  b.session().txn({read(x, 0)});
  const TxnId r2a = b.last_txn();
  b.txn({read(y, 1)});
  const TxnId r2b = b.last_txn();

  DependencyGraph g(b.build());
  g.set_read_from(y, t0, r1a);
  g.set_read_from(x, w1, r1b);
  g.set_read_from(x, t0, r2a);
  g.set_read_from(y, w2, r2b);
  g.set_write_order(x, {t0, w1});
  g.set_write_order(y, {t0, w2});
  return g;
}

AbstractExecution fig13_execution() {
  HistoryBuilder b;
  const ObjId x = b.obj("x");
  const ObjId y = b.obj("y");
  const TxnId t0 = b.init_txn({x, y});
  b.session().txn({write(x, 1)});
  const TxnId t1 = b.last_txn();
  b.txn({read(y, 0)});
  const TxnId t2 = b.last_txn();
  b.session().txn({read(x, 1), write(y, 1)});
  const TxnId s = b.last_txn();

  const History h = b.build();
  Relation vis(h.txn_count());
  Relation co(h.txn_count());
  // CO: t0 < t1 < s < t2 — the lookup session's transaction commits
  // between the two transactions of the first session.
  const TxnId order[] = {t0, t1, s, t2};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) co.add(order[i], order[j]);
  }
  // VIS: session order, reads-from, and the CO prefixes they force — but
  // crucially NOT s -> t2 (t2 does not see s's write to y).
  vis.add(t0, t1);
  vis.add(t0, t2);
  vis.add(t0, s);
  vis.add(t1, t2);  // SO
  vis.add(t1, s);   // s reads t1's write to x
  return {h, std::move(vis), std::move(co)};
}

NamedPrograms banking_programs() {
  ObjectTable objs;
  const ObjId acct1 = objs.intern("acct1");
  const ObjId acct2 = objs.intern("acct2");
  std::vector<Program> p;
  p.push_back(Program{
      "withdraw1",
      {Piece{"if (acct1 + acct2 > 100) acct1 -= 100", {acct1, acct2},
             {acct1}}}});
  p.push_back(Program{
      "withdraw2",
      {Piece{"if (acct1 + acct2 > 100) acct2 -= 100", {acct1, acct2},
             {acct2}}}});
  p.push_back(Program{
      "lookupAll", {Piece{"return acct1 + acct2", {acct1, acct2}, {}}}});
  return {std::move(p), std::move(objs)};
}

NamedPrograms reporting_programs() {
  ObjectTable objs;
  const ObjId log = objs.intern("log");
  const ObjId acct1 = objs.intern("acct1");
  std::vector<Program> p;
  p.push_back(Program{"ingest", {Piece{"log = entry", {}, {log}}}});
  p.push_back(Program{"report", {Piece{"read log, acct1", {log, acct1}, {}}}});
  return {std::move(p), std::move(objs)};
}

}  // namespace sia::paper
