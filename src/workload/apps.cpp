#include "workload/apps.hpp"

#include <random>
#include <set>

namespace sia::workload {

namespace {

struct TpccObjects {
  ObjectTable table;
  ObjId warehouse, district, customer, item, stock, orders, new_orders,
      history;

  TpccObjects() {
    warehouse = table.intern("warehouse");
    district = table.intern("district");
    customer = table.intern("customer");
    item = table.intern("item");
    stock = table.intern("stock");
    orders = table.intern("orders");
    new_orders = table.intern("new_orders");
    history = table.intern("history");
  }
};

}  // namespace

paper::NamedPrograms tpcc_like_programs() {
  TpccObjects o;
  std::vector<Program> p;
  p.push_back(Program{
      "new_order",
      {Piece{"place order",
             {o.warehouse, o.district, o.customer, o.item, o.stock},
             {o.district, o.orders, o.new_orders, o.stock}}}});
  p.push_back(Program{
      "payment",
      {Piece{"pay",
             {o.warehouse, o.district, o.customer},
             {o.warehouse, o.district, o.customer, o.history}}}});
  p.push_back(Program{
      "delivery",
      {Piece{"deliver",
             {o.new_orders, o.orders, o.customer},
             {o.new_orders, o.orders, o.customer}}}});
  p.push_back(Program{
      "order_status", {Piece{"status", {o.customer, o.orders}, {}}}});
  p.push_back(Program{
      "stock_level", {Piece{"level", {o.district, o.stock}, {}}}});
  return {std::move(p), std::move(o.table)};
}

paper::NamedPrograms tpcc_chopped_programs() {
  TpccObjects o;
  std::vector<Program> p;
  p.push_back(Program{
      "new_order",
      {Piece{"read prices", {o.warehouse, o.district, o.item}, {o.district}},
       Piece{"insert order", {o.customer}, {o.orders, o.new_orders}},
       Piece{"update stock", {o.stock}, {o.stock}}}});
  p.push_back(Program{
      "payment",
      {Piece{"update warehouse", {o.warehouse}, {o.warehouse}},
       Piece{"update district", {o.district}, {o.district}},
       Piece{"update customer", {o.customer}, {o.customer, o.history}}}});
  p.push_back(Program{
      "delivery",
      {Piece{"deliver",
             {o.new_orders, o.orders, o.customer},
             {o.new_orders, o.orders, o.customer}}}});
  p.push_back(Program{
      "order_status", {Piece{"status", {o.customer, o.orders}, {}}}});
  p.push_back(Program{
      "stock_level", {Piece{"level", {o.district, o.stock}, {}}}});
  return {std::move(p), std::move(o.table)};
}

std::vector<Program> random_programs(const ProgramSuiteSpec& s) {
  std::mt19937_64 rng(s.seed);
  std::uniform_int_distribution<std::size_t> obj(0, s.objects - 1);
  std::vector<Program> out;
  out.reserve(s.programs);
  for (std::size_t i = 0; i < s.programs; ++i) {
    Program p;
    p.name = "prog" + std::to_string(i);
    for (std::size_t j = 0; j < s.pieces_per_program; ++j) {
      Piece piece;
      piece.label = "piece" + std::to_string(j);
      std::set<ObjId> reads;
      std::set<ObjId> writes;
      for (std::size_t k = 0; k < s.reads_per_piece; ++k) {
        reads.insert(static_cast<ObjId>(obj(rng)));
      }
      for (std::size_t k = 0; k < s.writes_per_piece; ++k) {
        writes.insert(static_cast<ObjId>(obj(rng)));
      }
      piece.reads.assign(reads.begin(), reads.end());
      piece.writes.assign(writes.begin(), writes.end());
      p.pieces.push_back(std::move(piece));
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace sia::workload
