#include "workload/stream_source.hpp"

#include <algorithm>

namespace sia::workload {

StreamSource::StreamSource(StreamSpec spec)
    : spec_(spec), rng_(spec.seed), keys_(spec.num_keys) {
  if (spec_.num_keys == 0) spec_.num_keys = 1;
  if (spec_.writer_sessions == 0) spec_.writer_sessions = 1;
  if (spec_.ops_per_txn == 0) spec_.ops_per_txn = 1;
  if (keys_.empty()) keys_.resize(spec_.num_keys);
}

TxnId StreamSource::version_at(ObjId key, TxnId at) const {
  const std::vector<TxnId>& writers = keys_[key].writers;
  // Last writer with id <= at; the boundary entry below the pruning
  // horizon is always retained, so this never underflows.
  const auto it = std::upper_bound(writers.begin(), writers.end(), at);
  return *(it - 1);
}

void StreamSource::sample_keys(std::size_t count) {
  scratch_keys_.clear();
  count = std::min<std::size_t>(count, spec_.num_keys);
  std::uniform_int_distribution<std::uint32_t> pick(0, spec_.num_keys - 1);
  while (scratch_keys_.size() < count) {
    const ObjId key = pick(rng_);
    if (std::find(scratch_keys_.begin(), scratch_keys_.end(), key) ==
        scratch_keys_.end()) {
      scratch_keys_.push_back(key);
    }
  }
}

MonitoredCommit StreamSource::next() {
  const TxnId id = static_cast<TxnId>(++emitted_);
  MonitoredCommit c;
  std::vector<Event> events;

  std::vector<ObjId> written;
  const bool snapshot = spec_.snapshot_every != 0 &&
                        emitted_ % spec_.snapshot_every == 0 &&
                        emitted_ > spec_.snapshot_lag;
  if (snapshot) {
    // Read-only consistent snapshot at T = id - lag, on the dedicated
    // reader session. T advances monotonically, so this stays a valid SI
    // session while dragging backward RW edges across the whole lag.
    const TxnId at = static_cast<TxnId>(emitted_ - spec_.snapshot_lag);
    c.session = static_cast<SessionId>(spec_.writer_sessions);
    sample_keys(spec_.ops_per_txn);
    for (const ObjId key : scratch_keys_) {
      const TxnId src = version_at(key, at);
      events.push_back(read(key, static_cast<Value>(src)));
      c.read_sources[key] = src;
    }
  } else {
    // Writer sessions: serial read-modify-write against latest versions.
    c.session = static_cast<SessionId>(id % spec_.writer_sessions);
    sample_keys(spec_.ops_per_txn);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (const ObjId key : scratch_keys_) {
      const TxnId src = keys_[key].writers.back();
      events.push_back(read(key, static_cast<Value>(src)));
      c.read_sources[key] = src;
      if (coin(rng_) < spec_.write_ratio) {
        events.push_back(write(key, static_cast<Value>(id)));
        written.push_back(key);
      }
    }
  }
  c.txn = Transaction(std::move(events));

  // Install writes and prune each touched key's version list to the
  // snapshot horizon (keeping the boundary version, exactly like the
  // monitor's own table).
  const TxnId horizon = emitted_ > spec_.snapshot_lag
                            ? static_cast<TxnId>(emitted_ - spec_.snapshot_lag)
                            : 0;
  for (const ObjId key : written) {
    keys_[key].writers.push_back(id);
  }
  for (const ObjId key : scratch_keys_) {
    std::vector<TxnId>& writers = keys_[key].writers;
    if (horizon > 0 && writers.size() > 1) {
      const auto it =
          std::upper_bound(writers.begin(), writers.end(), horizon);
      if (it != writers.begin()) {
        writers.erase(writers.begin(), it - 1);
      }
    }
  }
  return c;
}

}  // namespace sia::workload
