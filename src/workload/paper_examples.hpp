#pragma once

#include <vector>

#include "core/abstract_execution.hpp"
#include "core/program.hpp"
#include "graph/dependency_graph.hpp"

/// \file paper_examples.hpp
/// Every worked example of the paper as a ready-made artefact: the
/// anomalies of Figure 2, the chopping examples of Figures 4–6, the
/// Appendix B examples of Figures 11–12 and the direct-splicing
/// counterexample of Figure 13. Tests and benches reproduce the paper's
/// verdicts from these.

namespace sia::paper {

/// A history together with the object table used to build it.
struct NamedHistory {
  History history;
  ObjectTable objects;
};

/// A program suite with its object table.
struct NamedPrograms {
  std::vector<Program> programs;
  ObjectTable objects;
};

// ----- Figure 2: anomalies ------------------------------------------------

/// Fig. 2(a): session guarantees — T1 writes x, T2 (same session) reads it.
/// Allowed by SER, SI and PSI.
[[nodiscard]] NamedHistory fig2a_session_guarantee();

/// Fig. 2(b): lost update — two deposits read balance 0 and write 50/25.
/// Disallowed by SER, SI *and* PSI (NOCONFLICT).
[[nodiscard]] NamedHistory fig2b_lost_update();

/// Fig. 2(c): long fork — independent writers observed in opposite orders
/// by two readers. Allowed by PSI, disallowed by SI and SER.
[[nodiscard]] NamedHistory fig2c_long_fork();

/// Fig. 2(d): write skew — both transactions pass the balance check and
/// withdraw from different accounts. Allowed by SI and PSI, disallowed by
/// SER.
[[nodiscard]] NamedHistory fig2d_write_skew();

// ----- Figure 4: dynamic chopping ------------------------------------------

/// The dependency graph G1 of Figure 4: a chopped transfer (two pieces in
/// one session) with a lookupAll that observes the mid-transfer state.
/// G1 ∈ GraphSI but is *not* spliceable; DCG(G1) has a critical cycle.
[[nodiscard]] DependencyGraph fig4_g1();

/// The companion graph G2: the same chopped transfer with lookups of the
/// two accounts in separate transactions. Spliceable; DCG(G2) has no
/// critical cycle.
[[nodiscard]] DependencyGraph fig4_g2();

// ----- Figures 5, 6, 11, 12: static chopping suites -------------------------

/// Fig. 5 programs P1 = {transfer (2 pieces), lookupAll}: SCG(P1) has an
/// SI-critical cycle — the chopping is incorrect under SI.
[[nodiscard]] NamedPrograms fig5_programs();

/// Fig. 6 programs P2 = {transfer, lookup1, lookup2}: no critical cycle —
/// the chopping is correct under SI (and SER, and PSI).
[[nodiscard]] NamedPrograms fig6_programs();

/// Fig. 11 programs P3 = {write1, write2}: correct under SI, *incorrect*
/// under SER (the spliced history is a write skew).
[[nodiscard]] NamedPrograms fig11_programs();

/// Fig. 12 programs P4 = {write1, write2, read1, read2}: correct under
/// PSI, *incorrect* under SI (the spliced history is a long fork).
[[nodiscard]] NamedPrograms fig12_programs();

/// The dependency graph H6 of Figure 11: an execution of P3 whose splice
/// is a write skew (serializability violated after splicing).
[[nodiscard]] DependencyGraph fig11_h6();

/// The dependency graph G7 of Figure 12: an execution of P4 whose splice
/// is a long fork (SI violated after splicing).
[[nodiscard]] DependencyGraph fig12_g7();

// ----- Figure 13: splicing executions directly ------------------------------

/// The execution X of Figure 13 (in ExecSI), whose *direct* splice has a
/// cyclic commit order — the reason §5 splices dependency graphs instead.
[[nodiscard]] AbstractExecution fig13_execution();

// ----- Robustness example suites (§6) ---------------------------------------

/// The banking application {transfer, lookupAll} as single-piece
/// programs: *not* robust against SI (write-skew-shaped cycle on two
/// accounts exists) — the classical example of §1.
[[nodiscard]] NamedPrograms banking_programs();

/// A read-only reporting application over the banking objects: robust
/// against SI (no writes, no anti-dependency cycles).
[[nodiscard]] NamedPrograms reporting_programs();

}  // namespace sia::paper
