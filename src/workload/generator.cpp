#include "workload/generator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace sia::workload {

ZipfSampler::ZipfSampler(std::uint32_t n, double theta) {
  cdf_.reserve(n);
  double sum = 0.0;
  for (std::uint32_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_.push_back(sum);
  }
  for (double& c : cdf_) c /= sum;
}

std::uint32_t ZipfSampler::operator()(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double u = dist(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

Script make_script(const WorkloadSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  const ZipfSampler zipf(spec.num_keys, spec.zipf_theta);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  Script script(spec.sessions);
  for (auto& session : script) {
    session.resize(spec.txns_per_session);
    for (auto& txn : session) {
      txn.resize(spec.ops_per_txn);
      for (ScriptedOp& op : txn) {
        op.is_write = coin(rng) < spec.write_ratio;
        op.key = zipf(rng);
      }
    }
  }
  return script;
}

namespace {

/// Deterministic distinct-ish value for a write: encodes who wrote it.
Value value_for(std::size_t session, std::size_t txn, std::size_t op) {
  return static_cast<Value>(session * 1'000'000 + txn * 1'000 + op + 1);
}

/// Runs one closure per session, either on threads or round-robin.
template <typename PerTxn>
void drive(const WorkloadSpec& spec, const Script& script, PerTxn per_txn) {
  if (spec.concurrent) {
    std::vector<std::thread> threads;
    threads.reserve(spec.sessions);
    for (std::size_t s = 0; s < spec.sessions; ++s) {
      threads.emplace_back([&, s] {
        for (std::size_t t = 0; t < script[s].size(); ++t) per_txn(s, t);
      });
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (std::size_t t = 0; t < spec.txns_per_session; ++t) {
      for (std::size_t s = 0; s < spec.sessions; ++s) {
        if (t < script[s].size()) per_txn(s, t);
      }
    }
  }
}

template <typename F>
double timed(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

mvcc::RecordedRun run_si(const WorkloadSpec& spec, RunStats* stats) {
  const Script script = make_script(spec);
  mvcc::Recorder recorder;
  mvcc::SIDatabase db(spec.num_keys, &recorder);
  std::vector<mvcc::SISession> sessions;
  sessions.reserve(spec.sessions);
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    sessions.push_back(db.make_session());
  }
  const double secs = timed([&] {
    drive(spec, script, [&](std::size_t s, std::size_t t) {
      db.run(sessions[s], [&](mvcc::SITransaction& txn) {
        for (std::size_t o = 0; o < script[s][t].size(); ++o) {
          const ScriptedOp& op = script[s][t][o];
          if (op.is_write) {
            txn.write(op.key, value_for(s, t, o));
          } else {
            (void)txn.read(op.key);
          }
        }
      });
    });
  });
  if (stats != nullptr) {
    *stats = RunStats{db.commits(), db.aborts(), secs};
  }
  return recorder.build();
}

mvcc::RecordedRun run_ser(const WorkloadSpec& spec, RunStats* stats) {
  const Script script = make_script(spec);
  mvcc::Recorder recorder;
  mvcc::SERDatabase db(spec.num_keys, &recorder);
  std::vector<mvcc::SERSession> sessions;
  sessions.reserve(spec.sessions);
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    sessions.push_back(db.make_session());
  }
  const double secs = timed([&] {
    drive(spec, script, [&](std::size_t s, std::size_t t) {
      db.run(sessions[s], [&](mvcc::SERTransaction& txn) {
        for (std::size_t o = 0; o < script[s][t].size(); ++o) {
          const ScriptedOp& op = script[s][t][o];
          if (op.is_write) {
            if (!txn.write(op.key, value_for(s, t, o))) return;
          } else {
            if (!txn.read(op.key).has_value()) return;
          }
        }
      });
    });
  });
  if (stats != nullptr) {
    *stats = RunStats{db.commits(), db.aborts(), secs};
  }
  return recorder.build();
}

mvcc::RecordedRun run_psi(const WorkloadSpec& spec, std::uint32_t replicas,
                          RunStats* stats) {
  const Script script = make_script(spec);
  mvcc::Recorder recorder;
  mvcc::PSIDatabase db(spec.num_keys, replicas, &recorder);
  std::vector<mvcc::PSISession> sessions;
  sessions.reserve(spec.sessions);
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    sessions.push_back(
        db.make_session(static_cast<mvcc::ReplicaId>(s % replicas)));
  }
  if (spec.concurrent) db.start_auto_replication();
  const double secs = timed([&] {
    drive(spec, script, [&](std::size_t s, std::size_t t) {
      for (;;) {
        mvcc::PSITransaction txn = db.begin(sessions[s]);
        for (std::size_t o = 0; o < script[s][t].size(); ++o) {
          const ScriptedOp& op = script[s][t][o];
          if (op.is_write) {
            txn.write(op.key, value_for(s, t, o));
          } else {
            (void)txn.read(op.key);
          }
        }
        if (txn.commit()) break;
        // A conflicting version may not have replicated to our home yet;
        // retrying with the same stale snapshot would spin, so catch up.
        if (!spec.concurrent) db.pump_all();
      }
      if (!spec.concurrent && (s + t) % 3 == 0) {
        // Deterministic partial replication: leaves long forks observable
        // while still making progress.
        db.pump(static_cast<mvcc::ReplicaId>((s + t) % db.num_replicas()), 2);
      }
    });
  });
  db.stop_auto_replication();
  db.pump_all();
  if (stats != nullptr) {
    *stats = RunStats{db.commits(), db.aborts(), secs};
  }
  return recorder.build();
}

mvcc::RecordedRun run_ssi(const WorkloadSpec& spec, RunStats* stats) {
  const Script script = make_script(spec);
  mvcc::Recorder recorder;
  mvcc::SSIDatabase db(spec.num_keys, &recorder);
  std::vector<mvcc::SSISession> sessions;
  sessions.reserve(spec.sessions);
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    sessions.push_back(db.make_session());
  }
  const double secs = timed([&] {
    drive(spec, script, [&](std::size_t s, std::size_t t) {
      db.run(sessions[s], [&](mvcc::SSITransaction& txn) {
        for (std::size_t o = 0; o < script[s][t].size(); ++o) {
          const ScriptedOp& op = script[s][t][o];
          if (op.is_write) {
            txn.write(op.key, value_for(s, t, o));
          } else {
            (void)txn.read(op.key);
          }
        }
      });
    });
  });
  if (stats != nullptr) {
    *stats = RunStats{db.commits(), db.aborts(), secs};
  }
  return recorder.build();
}

}  // namespace sia::workload
