#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "graph/monitor.hpp"

/// \file stream_source.hpp
/// Deterministic endless commit streams for the streaming monitor: the
/// long-stream bench, the CI plateau smoke and sia_loadgen's endless mode
/// all draw from the same generator, so their traffic shape (and hence
/// their memory behaviour) is directly comparable.
///
/// The stream is SI-consistent *by construction*, forever:
///  - writer sessions execute serial read-modify-writes against the
///    latest version of each key they touch (a serial execution is a
///    valid SI execution);
///  - one dedicated snapshot-reader session periodically reads a
///    *consistent snapshot* that lags the stream head by a bounded number
///    of commits, with monotonically advancing snapshot points (a valid
///    SI read-only transaction).
/// The lagging snapshots matter: they produce the backward RW edges
/// (fresh reader -> overtaking writer) that force the incremental
/// topological order to do real reorder work and keep old transactions
/// entangled right up to the staleness bound — the worst legal case for
/// the stable-prefix GC.
///
/// The generator predicts monitor ids (commit i gets id i, starting at 1),
/// which holds whenever the consumer feeds every generated commit, in
/// order, to a monitor that drops nothing — the loadgen asserts this
/// against the server's acks.

namespace sia::workload {

/// Shape of an endless monitor-commit stream.
struct StreamSpec {
  std::uint32_t num_keys{64};
  /// Writer sessions (the snapshot reader is one more, session id =
  /// writer_sessions).
  std::size_t writer_sessions{8};
  std::size_t ops_per_txn{4};
  /// Probability that a writer-session operation writes.
  double write_ratio{0.5};
  /// Every Nth commit is a lagging consistent-snapshot read; 0 disables.
  std::size_t snapshot_every{16};
  /// How far (in commits) snapshots lag the stream head. Keep below the
  /// monitor's gc_window or the monitor will reject the read as out of
  /// the staleness window.
  std::size_t snapshot_lag{512};
  std::uint64_t seed{1};
};

/// Emits the endless stream described by a StreamSpec, one commit per
/// next() call. Deterministic for a given spec.
class StreamSource {
 public:
  explicit StreamSource(StreamSpec spec);

  /// The next commit; its monitor id will be emitted_count() (1-based).
  [[nodiscard]] MonitoredCommit next();

  [[nodiscard]] std::size_t emitted_count() const { return emitted_; }
  [[nodiscard]] const StreamSpec& spec() const { return spec_; }

 private:
  /// Per-key writer ids, ascending; pruned to the snapshot horizon with
  /// one boundary entry kept, mirroring the monitor's own version table.
  struct KeyVersions {
    std::vector<TxnId> writers{0};
  };

  [[nodiscard]] TxnId version_at(ObjId key, TxnId at) const;
  void sample_keys(std::size_t count);

  StreamSpec spec_;
  std::mt19937_64 rng_;
  std::size_t emitted_{0};
  std::vector<KeyVersions> keys_;
  std::vector<ObjId> scratch_keys_;
};

}  // namespace sia::workload
