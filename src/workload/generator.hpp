#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "mvcc/psi_engine.hpp"
#include "mvcc/recorder.hpp"
#include "mvcc/ser_engine.hpp"
#include "mvcc/si_engine.hpp"
#include "mvcc/ssi_engine.hpp"

/// \file generator.hpp
/// Random transactional workloads and runners that execute them against
/// the operational engines, producing recorded histories and engine-truth
/// dependency graphs. Used by property tests (engine runs must satisfy
/// their model's characterisation) and by the scaling benches.

namespace sia::workload {

/// Parameters of a random workload.
struct WorkloadSpec {
  std::uint32_t num_keys{16};
  std::size_t sessions{4};
  std::size_t txns_per_session{8};
  std::size_t ops_per_txn{4};
  /// Probability that an operation is a write.
  double write_ratio{0.5};
  /// Zipf skew for key choice; 0 = uniform.
  double zipf_theta{0.0};
  std::uint64_t seed{42};
  /// Run sessions on concurrent threads (one per session); otherwise the
  /// sessions are interleaved deterministically round-robin on the calling
  /// thread.
  bool concurrent{true};
};

/// One scripted operation; written values are filled in by the runner.
struct ScriptedOp {
  bool is_write{false};
  ObjId key{0};

  friend bool operator==(const ScriptedOp&, const ScriptedOp&) = default;
};

/// A fully scripted workload: [session][txn][op].
using Script = std::vector<std::vector<std::vector<ScriptedOp>>>;

/// Deterministically expands a spec into per-session transaction scripts.
[[nodiscard]] Script make_script(const WorkloadSpec& spec);

/// Zipf-distributed key sampler (Gray et al. style, via inverse CDF).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double theta);
  [[nodiscard]] std::uint32_t operator()(std::mt19937_64& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Statistics of one engine run.
struct RunStats {
  std::uint64_t commits{0};
  std::uint64_t aborts{0};
  double seconds{0.0};
};

/// Runs the scripted workload against a fresh SI engine. Every
/// transaction retries until commit. Returns the recorded run (history +
/// engine-truth graph) and stats.
mvcc::RecordedRun run_si(const WorkloadSpec& spec, RunStats* stats = nullptr);

/// Ditto for the S2PL serializable engine.
mvcc::RecordedRun run_ser(const WorkloadSpec& spec, RunStats* stats = nullptr);

/// Ditto for the PSI engine with \p replicas replicas; sessions are spread
/// round-robin across replicas. Replication is pumped concurrently and
/// drained at the end.
mvcc::RecordedRun run_psi(const WorkloadSpec& spec, std::uint32_t replicas,
                          RunStats* stats = nullptr);

/// Ditto for the SSI engine (serializable histories: pivot prevention).
mvcc::RecordedRun run_ssi(const WorkloadSpec& spec, RunStats* stats = nullptr);

}  // namespace sia::workload
