#include "fault/retry.hpp"

namespace sia::fault {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t RetryPolicy::backoff_steps(std::size_t attempt) const {
  if (attempt == 0) attempt = 1;
  std::uint64_t base = base_backoff_steps;
  // Saturating shift: attempt counts can exceed the width of the type.
  for (std::size_t i = 1; i < attempt && base < max_backoff_steps; ++i) {
    base <<= 1;
  }
  if (base > max_backoff_steps) base = max_backoff_steps;
  // Full jitter over [0, base]: decorrelates colliding retriers while
  // keeping every run of a fixed seed bit-identical.
  const std::uint64_t jitter = mix64(jitter_seed ^ attempt) % (base + 1);
  return base + jitter;
}

}  // namespace sia::fault
