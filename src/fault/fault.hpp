#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"

/// \file fault.hpp
/// Deterministic fault injection for the operational engines. The paper's
/// chopping and robustness results (§5–§6) assume Shasha-style clients
/// that re-execute aborted pieces and an environment where a transaction
/// can abort at *any* point — not only on first-committer-wins conflicts.
/// This subsystem makes that environment reproducible: a seedable
/// FaultPlan decides, per engine hook site, whether to inject an abort, a
/// simulated session crash, or a bounded scheduling delay, and the chaos
/// tests then assert that the recorded dependency graphs still land in
/// GraphSI / GraphPSI / GraphSER (completeness under faults, Theorems 9,
/// 8 and 21).
///
/// Hook sites (threaded through all four engines):
///  - kPreRead:    before a snapshot/lock read is served;
///  - kPreCommit:  commit() entered, before validation;
///  - kMidCommit:  validation passed, before version install / publish;
///  - kPostCommit: the commit is fully installed *and recorded*, but the
///    client has not yet observed the acknowledgement. (The record is
///    written first on purpose: engine truth stays consistent, and the
///    lost-ack crash is exactly the classic "unknown outcome" fault a
///    retrying client must cope with.)
///
/// Determinism: each site's decision for its n-th hit is a pure function
/// of (plan seed, site, n) — independent of thread interleaving — so a
/// single-threaded drive of the engines replays bit-identically, and
/// multi-threaded drives inject the same multiset of faults per site.
///
/// The no-op path costs one branch on a pointer an engine already holds;
/// with no injector configured the hooks compile to nothing measurable
/// (bench_fault_overhead persists the proof to BENCH_fault_overhead.json).

namespace sia::fault {

/// Engine locations where a fault may fire.
enum class FaultSite : std::uint8_t {
  kPreRead = 0,
  kPreCommit = 1,
  kMidCommit = 2,
  kPostCommit = 3,
};

inline constexpr std::size_t kFaultSiteCount = 4;

[[nodiscard]] std::string to_string(FaultSite site);

/// What to inject at a hook.
enum class FaultAction : std::uint8_t {
  kNone = 0,
  kAbort = 1,  ///< spurious abort: the engine aborts the transaction
  kCrash = 2,  ///< simulated session crash: the client loses the session
  kDelay = 3,  ///< bounded scheduling delay (yield loop), then proceed
};

inline constexpr std::size_t kFaultActionCount = 4;

[[nodiscard]] std::string to_string(FaultAction action);

/// Thrown out of an engine operation when an abort or crash fires. By the
/// time it propagates the engine has already restored its invariants
/// (locks released, snapshot pins dropped, the transaction finished), so
/// catching and retrying with a *new* transaction is always safe.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(FaultAction action, FaultSite site)
      : std::runtime_error("injected " + sia::fault::to_string(action) +
                           " at " + sia::fault::to_string(site)),
        action_(action),
        site_(site) {}

  [[nodiscard]] FaultAction action() const { return action_; }
  [[nodiscard]] FaultSite site() const { return site_; }

 private:
  FaultAction action_;
  FaultSite site_;
};

/// Injection probabilities of one site (the remainder is kNone).
struct SiteProbabilities {
  double abort{0.0};
  double crash{0.0};
  double delay{0.0};
};

/// A fault fired unconditionally at the \p hit-th time \p site is reached
/// (0-based, counted per site). Schedule entries override probabilities.
struct ScheduledFault {
  FaultSite site{FaultSite::kPreCommit};
  std::uint64_t hit{0};
  FaultAction action{FaultAction::kAbort};
};

/// A complete, seedable description of the faults of one run.
struct FaultPlan {
  std::uint64_t seed{0};
  std::array<SiteProbabilities, kFaultSiteCount> sites{};
  std::vector<ScheduledFault> schedule;
  /// Upper bound on the yield-loop length of one injected delay.
  std::uint32_t max_delay_spins{32};

  [[nodiscard]] SiteProbabilities& at(FaultSite site) {
    return sites[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] const SiteProbabilities& at(FaultSite site) const {
    return sites[static_cast<std::size_t>(site)];
  }

  /// Uniform plan: the same probabilities at every site.
  [[nodiscard]] static FaultPlan uniform(std::uint64_t seed, double abort,
                                         double crash, double delay);
};

/// Decides and executes faults. Thread-safe; share one injector across
/// every session of a database (or several databases, to correlate their
/// fault streams).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The engine hook: decides the action for this hit of \p site, then
  /// either returns (kNone), spins-and-returns (kDelay), or throws
  /// FaultInjected (kAbort / kCrash). Engines catch, restore invariants,
  /// and rethrow.
  void on(FaultSite site);

  /// Pure decision function — what on() will do at hit \p hit of \p site.
  /// Exposed so tests can predict a plan without running an engine.
  [[nodiscard]] FaultAction decide(FaultSite site, std::uint64_t hit) const;

  /// Times \p site has been reached so far.
  [[nodiscard]] std::uint64_t hits(FaultSite site) const;

  /// Times \p action was injected at \p site.
  [[nodiscard]] std::uint64_t injected(FaultSite site,
                                       FaultAction action) const;

  /// Total aborts+crashes injected anywhere (delays excluded).
  [[nodiscard]] std::uint64_t total_failures() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::array<std::uint64_t, kFaultSiteCount> hits_{};
  std::array<std::array<std::uint64_t, kFaultActionCount>, kFaultSiteCount>
      injected_{};
};

}  // namespace sia::fault
