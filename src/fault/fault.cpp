#include "fault/fault.hpp"

#include <thread>

namespace sia::fault {

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kPreRead:
      return "pre-read";
    case FaultSite::kPreCommit:
      return "pre-commit";
    case FaultSite::kMidCommit:
      return "mid-commit";
    case FaultSite::kPostCommit:
      return "post-commit";
  }
  return "?";
}

std::string to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kAbort:
      return "abort";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kDelay:
      return "delay";
  }
  return "?";
}

FaultPlan FaultPlan::uniform(std::uint64_t seed, double abort, double crash,
                             double delay) {
  FaultPlan plan;
  plan.seed = seed;
  for (SiteProbabilities& p : plan.sites) {
    p = SiteProbabilities{abort, crash, delay};
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const ScheduledFault& f : plan_.schedule) {
    if (static_cast<std::size_t>(f.site) >= kFaultSiteCount) {
      throw ModelError("FaultPlan: schedule entry with invalid site");
    }
  }
}

namespace {

/// SplitMix64 — the standard 64-bit finaliser; a pure function of the
/// input, which is what makes per-(site, hit) decisions interleaving-
/// independent.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultAction FaultInjector::decide(FaultSite site, std::uint64_t hit) const {
  for (const ScheduledFault& f : plan_.schedule) {
    if (f.site == site && f.hit == hit) return f.action;
  }
  const SiteProbabilities& p = plan_.at(site);
  if (p.abort <= 0 && p.crash <= 0 && p.delay <= 0) return FaultAction::kNone;
  const std::uint64_t bits = mix64(
      plan_.seed ^ mix64((static_cast<std::uint64_t>(site) << 56) | hit));
  const double u = unit(bits);
  if (u < p.abort) return FaultAction::kAbort;
  if (u < p.abort + p.crash) return FaultAction::kCrash;
  if (u < p.abort + p.crash + p.delay) return FaultAction::kDelay;
  return FaultAction::kNone;
}

void FaultInjector::on(FaultSite site) {
  const std::size_t s = static_cast<std::size_t>(site);
  FaultAction action;
  std::uint64_t hit;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hit = hits_[s]++;
    action = decide(site, hit);
    injected_[s][static_cast<std::size_t>(action)]++;
  }
  switch (action) {
    case FaultAction::kNone:
      return;
    case FaultAction::kDelay: {
      // Bounded: derive the spin count from the same deterministic stream.
      const std::uint64_t bits =
          mix64(plan_.seed ^ mix64(0x64656c6179ULL ^ hit));
      const std::uint32_t spins =
          plan_.max_delay_spins > 0
              ? static_cast<std::uint32_t>(bits % plan_.max_delay_spins) + 1
              : 0;
      for (std::uint32_t i = 0; i < spins; ++i) std::this_thread::yield();
      return;
    }
    case FaultAction::kAbort:
    case FaultAction::kCrash:
      throw FaultInjected(action, site);
  }
}

std::uint64_t FaultInjector::hits(FaultSite site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_[static_cast<std::size_t>(site)];
}

std::uint64_t FaultInjector::injected(FaultSite site,
                                      FaultAction action) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return injected_[static_cast<std::size_t>(site)]
                  [static_cast<std::size_t>(action)];
}

std::uint64_t FaultInjector::total_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& site : injected_) {
    total += site[static_cast<std::size_t>(FaultAction::kAbort)];
    total += site[static_cast<std::size_t>(FaultAction::kCrash)];
  }
  return total;
}

}  // namespace sia::fault
