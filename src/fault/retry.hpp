#pragma once

#include <cstdint>
#include <thread>
#include <utility>

#include "fault/fault.hpp"

/// \file retry.hpp
/// The client side of the §5 assumptions, made operational: Shasha-style
/// clients re-execute aborted transactions (and aborted pieces of chopped
/// transactions) until they commit. RetryPolicy bounds that loop — a
/// retry budget with bounded exponential backoff and deterministic jitter
/// — and RetryingClient re-runs a transaction closure against any of the
/// four engines until commit or budget exhaustion, classifying every
/// failed attempt (write-conflict abort vs injected abort vs injected
/// session crash vs fatal error).
///
/// A crash reported at the post-commit site means the commit is installed
/// but the acknowledgement was lost; like a real at-least-once client,
/// RetryingClient re-executes the closure, so closures should be
/// idempotent-by-construction (read-modify-write against the current
/// snapshot — the natural style for these engines — is exactly that).

namespace sia::fault {

/// Why one attempt failed.
enum class AbortClass : std::uint8_t {
  kConflict,       ///< engine validation abort (first-committer-wins, 2PL
                   ///< no-wait, SSI pivot prevention)
  kInjectedAbort,  ///< FaultInjected with action kAbort
  kInjectedCrash,  ///< FaultInjected with action kCrash
  kFatal,          ///< anything else: not retried, rethrown
};

[[nodiscard]] inline AbortClass classify(const FaultInjected& f) {
  return f.action() == FaultAction::kCrash ? AbortClass::kInjectedCrash
                                           : AbortClass::kInjectedAbort;
}

/// Bounded exponential backoff with deterministic jitter.
struct RetryPolicy {
  /// Attempts before giving up (>= 1). Exhaustion is reported through
  /// RetryStats::committed == false, never an exception.
  std::size_t max_attempts{32};
  /// Backoff after the n-th failed attempt (1-based) is
  ///   min(base_backoff_steps << (n-1), max_backoff_steps) + jitter,
  /// jitter deterministic in (jitter_seed, n), in "steps" (yields).
  std::uint64_t base_backoff_steps{1};
  std::uint64_t max_backoff_steps{64};
  std::uint64_t jitter_seed{0};

  /// The deterministic backoff (including jitter) after failed attempt
  /// \p attempt (1-based).
  [[nodiscard]] std::uint64_t backoff_steps(std::size_t attempt) const;
};

/// Serves the deterministic backoff after failed attempt \p attempt as
/// thread yields; returns the steps served (for accounting).
inline std::uint64_t serve_backoff(const RetryPolicy& policy,
                                   std::size_t attempt) {
  const std::uint64_t steps = policy.backoff_steps(attempt);
  for (std::uint64_t i = 0; i < steps; ++i) std::this_thread::yield();
  return steps;
}

/// Default budget for the engines' run() retry loops: generous enough
/// that no legitimate contention pattern exhausts it (tier-1 stress
/// tests peak at tens of attempts), but bounded — a doomed-heavy
/// workload surfaces as ModelError instead of spinning forever.
inline constexpr RetryPolicy kEngineRunPolicy{
    /*max_attempts=*/4096, /*base_backoff_steps=*/1,
    /*max_backoff_steps=*/64, /*jitter_seed=*/0};

/// Outcome of one RetryingClient::run.
struct RetryStats {
  bool committed{false};
  std::size_t attempts{0};
  std::uint64_t conflict_aborts{0};
  std::uint64_t injected_aborts{0};
  std::uint64_t injected_crashes{0};
  std::uint64_t backoff_steps{0};  ///< total deterministic delay served
};

/// Re-runs transaction closures against one engine session until commit
/// or budget exhaustion.
///
/// \tparam Db any of SIDatabase / PSIDatabase / SERDatabase / SSIDatabase
///         (anything with begin(Session&) returning a transaction whose
///         commit() yields bool).
template <typename Db>
class RetryingClient {
 public:
  RetryingClient(Db& db, RetryPolicy policy) : db_(&db), policy_(policy) {}

  /// Runs \p body(txn) in a fresh transaction per attempt. \p body must
  /// not call commit()/abort() itself. Non-fault exceptions from the
  /// engine or the body are fatal and propagate after the transaction is
  /// torn down.
  template <typename Session, typename Body>
  RetryStats run(Session& session, Body&& body) {
    RetryStats stats;
    for (std::size_t attempt = 1; attempt <= policy_.max_attempts;
         ++attempt) {
      stats.attempts = attempt;
      try {
        auto txn = db_->begin(session);
        body(txn);
        // The SER engine aborts mid-flight on lock conflicts; its commit()
        // must not be called on an already-aborted transaction.
        if constexpr (requires { txn.aborted(); }) {
          if (txn.aborted()) {
            ++stats.conflict_aborts;
            wait(attempt, stats);
            continue;
          }
        }
        if (txn.commit()) {
          stats.committed = true;
          return stats;
        }
        ++stats.conflict_aborts;
      } catch (const FaultInjected& f) {
        if (classify(f) == AbortClass::kInjectedCrash) {
          ++stats.injected_crashes;
        } else {
          ++stats.injected_aborts;
        }
      }
      wait(attempt, stats);
    }
    return stats;
  }

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  void wait(std::size_t attempt, RetryStats& stats) {
    stats.backoff_steps += serve_backoff(policy_, attempt);
  }

  Db* db_;
  RetryPolicy policy_;
};

}  // namespace sia::fault
