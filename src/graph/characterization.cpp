#include "graph/characterization.hpp"

#include <algorithm>

#include "graph/cycles.hpp"

namespace sia {

namespace {

bool is_dep_kind(DepKind k) {
  return k == DepKind::kSO || k == DepKind::kWR || k == DepKind::kWW;
}

/// Picks a concrete typed edge from \p a to \p b whose kind satisfies
/// \p pred. The caller guarantees one exists (it came from a relation).
DepEdge pick_edge(const DependencyGraph& g, TxnId a, TxnId b,
                  bool (*pred)(DepKind)) {
  for (const DepEdge& e : g.edges_between(a, b)) {
    if (pred(e.kind)) return e;
  }
  throw ModelError("pick_edge: no concrete edge T" + std::to_string(a) +
                   " -> T" + std::to_string(b) +
                   " matches the relation edge (internal error)");
}

void expand_d_path(const DependencyGraph& g, const Relation& d, TxnId from,
                   TxnId to, std::vector<DepEdge>& out) {
  if (d.contains(from, to)) {
    out.push_back(pick_edge(g, from, to, is_dep_kind));
    return;
  }
  const auto path = d.find_path(from, to);
  if (!path) {
    throw ModelError("expand_d_path: unreachable (internal error)");
  }
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    out.push_back(pick_edge(g, (*path)[i], (*path)[i + 1], is_dep_kind));
  }
}

}  // namespace

std::vector<DepEdge> expand_composed_cycle(const DependencyGraph& g,
                                           const DepRelations& rel,
                                           const std::vector<TxnId>& cycle,
                                           bool through_dplus) {
  const Relation d = rel.dependencies();
  const Relation dplus = through_dplus ? d.transitive_closure() : d;
  // Predecessor rows of RW, so the intermediate-vertex query below is one
  // word-parallel row AND instead of an O(n) scan per composed edge.
  const Relation rw_pred = rel.rw.inverse();
  std::vector<DepEdge> out;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const TxnId u = cycle[i];
    const TxnId v = cycle[(i + 1) % cycle.size()];
    if (dplus.contains(u, v)) {
      expand_d_path(g, d, u, v, out);
      continue;
    }
    // Must be a D(+) ; RW step: the intermediate writer-overtaken
    // transaction w is the smallest common element of D(+)'s successors of
    // u and RW's predecessors of v.
    const std::optional<TxnId> w = dplus.first_common_successor(u, rw_pred, v);
    if (!w) {
      throw ModelError(
          "expand_composed_cycle: composed edge has no decomposition "
          "(internal error)");
    }
    expand_d_path(g, d, u, *w, out);
    out.push_back(
        pick_edge(g, *w, v, [](DepKind k) { return k == DepKind::kRW; }));
  }
  return out;
}

GraphCheck check_graph_ser(const DependencyGraph& g) {
  return check_graph_ser(g, g.relations());
}

GraphCheck check_graph_ser(const DependencyGraph& g, const DepRelations& rel) {
  GraphCheck result;
  if (auto v = axioms::check_int(g.history())) {
    result.int_violation = std::move(v);
    return result;
  }
  const Relation full = rel.so | rel.wr | rel.ww | rel.rw;
  if (const auto cycle = full.find_cycle()) {
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      const TxnId u = (*cycle)[i];
      const TxnId v = (*cycle)[(i + 1) % cycle->size()];
      result.witness.push_back(
          pick_edge(g, u, v, [](DepKind) { return true; }));
    }
    return result;
  }
  result.member = true;
  return result;
}

GraphCheck check_graph_si(const DependencyGraph& g) {
  return check_graph_si(g, g.relations());
}

GraphCheck check_graph_si(const DependencyGraph& g, const DepRelations& rel) {
  GraphCheck result;
  if (auto v = axioms::check_int(g.history())) {
    result.int_violation = std::move(v);
    return result;
  }
  if (composed_si_relation_acyclic(rel.so, rel.wr, rel.ww, rel.rw)) {
    result.member = true;
    return result;
  }
  // A cycle exists; rebuild it with the materialised reference path so the
  // witness is the one it has always produced.
  return check_graph_si_reference(g, rel);
}

GraphCheck check_graph_si_reference(const DependencyGraph& g,
                                    const DepRelations& rel) {
  GraphCheck result;
  if (auto v = axioms::check_int(g.history())) {
    result.int_violation = std::move(v);
    return result;
  }
  // (SO ∪ WR ∪ WW) ; RW?  =  D ∪ D ; RW.
  const Relation d = rel.dependencies();
  const Relation composed = d | d.compose(rel.rw);
  if (const auto cycle = composed.find_cycle()) {
    result.witness =
        expand_composed_cycle(g, rel, *cycle, /*through_dplus=*/false);
    return result;
  }
  result.member = true;
  return result;
}

GraphCheck check_graph_psi(const DependencyGraph& g) {
  return check_graph_psi(g, g.relations());
}

GraphCheck check_graph_psi(const DependencyGraph& g, const DepRelations& rel) {
  GraphCheck result;
  if (auto v = axioms::check_int(g.history())) {
    result.int_violation = std::move(v);
    return result;
  }
  if (dplus_rw_irreflexive(rel.so, rel.wr, rel.ww, rel.rw)) {
    result.member = true;
    return result;
  }
  return check_graph_psi_reference(g, rel);
}

GraphCheck check_graph_psi_reference(const DependencyGraph& g,
                                     const DepRelations& rel) {
  GraphCheck result;
  if (auto v = axioms::check_int(g.history())) {
    result.int_violation = std::move(v);
    return result;
  }
  // (SO ∪ WR ∪ WW)+ ; RW? must be irreflexive.
  const Relation dplus = rel.dependencies().transitive_closure();
  const Relation composed = dplus | dplus.compose(rel.rw);
  for (TxnId t = 0; t < g.txn_count(); ++t) {
    if (!composed.contains(t, t)) continue;
    result.witness =
        expand_composed_cycle(g, rel, {t}, /*through_dplus=*/true);
    return result;
  }
  result.member = true;
  return result;
}

RobustnessWitness si_anomaly(const DependencyGraph& g) {
  RobustnessWitness out;
  const DepRelations rel = g.relations();
  const GraphCheck si = check_graph_si(g, rel);
  if (si.int_violation) {
    out.int_violation = si.int_violation;
    return out;
  }
  if (!si.member) return out;  // not even allowed by SI
  const GraphCheck ser = check_graph_ser(g, rel);
  if (ser.member) return out;  // serializable, no anomaly
  out.anomaly = true;
  out.cycle = ser.witness;
  return out;
}

RobustnessWitness psi_anomaly(const DependencyGraph& g) {
  RobustnessWitness out;
  const DepRelations rel = g.relations();
  const GraphCheck psi = check_graph_psi(g, rel);
  if (psi.int_violation) {
    out.int_violation = psi.int_violation;
    return out;
  }
  if (!psi.member) return out;
  const GraphCheck si = check_graph_si(g, rel);
  if (si.member) return out;
  out.anomaly = true;
  out.cycle = si.witness;
  return out;
}

}  // namespace sia
