#pragma once

#include <functional>
#include <optional>
#include <string>

#include "graph/characterization.hpp"
#include "graph/dependency_graph.hpp"

/// \file enumeration.hpp
/// Exhaustive enumeration of the dependency-graph extensions of a history
/// (all WR/WW choices satisfying Definition 6) and the resulting *exact*
/// decision procedures for HistSER / HistSI / HistPSI membership via
/// Theorems 8, 9 and 21.
///
/// The enumeration is exponential in the number of same-value writers and
/// concurrent writers per object; it is intended for the small histories
/// of unit/property tests and for deciding spliceability of concrete
/// executions (§5), where it is exact — not for production-size histories
/// (use the characterisation checks on an extracted graph instead).

namespace sia {

/// Consistency models treated by the paper.
enum class Model : std::uint8_t { kSER, kSI, kPSI };

[[nodiscard]] std::string to_string(Model m);

/// Applies the model's characterisation check (Theorems 8 / 9 / 21).
[[nodiscard]] GraphCheck check_graph(const DependencyGraph& g, Model m);

/// Enumerates every dependency graph extending \p h per Definition 6:
/// all choices of WR sources consistent with the values read and all WW
/// total orders per object. \p visit returns false to stop early.
/// Returns the number of graphs visited.
std::size_t enumerate_dependency_graphs(
    const History& h, const std::function<bool(const DependencyGraph&)>& visit);

/// Result of a history-level membership decision.
struct HistDecision {
  bool allowed{false};
  std::optional<DependencyGraph> witness;  ///< a graph in the model's set
  std::size_t graphs_tried{0};
};

/// Exact decision of H ∈ HistSER / HistSI / HistPSI by Theorems 8/9/21:
/// searches for a dependency-graph extension in the model's graph set.
[[nodiscard]] HistDecision decide_history(const History& h, Model m);

}  // namespace sia
