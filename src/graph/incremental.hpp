#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/monitor.hpp"

/// \file incremental.hpp
/// The streaming monitor: same verdicts as ConsistencyMonitor, flat
/// memory at million-commit scale.
///
/// ConsistencyMonitor maintains a dense bitset transitive closure —
/// O(n²/64) work per edge and O(n²/8) bytes, which forces the
/// set_max_transactions ceiling and the kSaturated give-up verdict.
/// StreamingMonitor replaces both mechanisms:
///
///  1. **Incremental cycle detection.** The composed relation is kept as
///     a sparse digraph with an online topological order (Pearce–Kelly).
///     Inserting an edge (a, b) with ord(a) < ord(b) is O(1); otherwise a
///     two-way bounded search over the affected ord-interval either finds
///     the reverse path b ⇝ a (= the cycle the closure query would have
///     found — the same violation, same detail string) or locally repairs
///     the order. The paper's structural fact that D edges into a
///     transaction are final at commit keeps the affected intervals
///     small: edges point backwards only as far as the read-staleness
///     window.
///
///  2. **Stable-prefix GC.** In a maintained topological order every
///     edge runs ord-upward, so the node set {p : ord(p) < B}, where B is
///     the minimum ord among transactions newer than the watermark W, has
///     *no in-edges from the rest of the graph* — by construction, not by
///     search. Future generator edges only target post-watermark
///     transactions (every still-readable version's overwriters are newer
///     than W), and reachability queries only walk ord-upward, so no
///     future query can enter the prefix: pruning it is exactly
///     verdict-preserving. See DESIGN.md §4f for the invariant and its
///     proof obligations.
///
/// External monitor ids are never renumbered: internally nodes live in
/// reusable dense slots and an id→slot remap table translates; pruned
/// ids simply leave the table. violating_commit(), details and graph()
/// always speak original ids.

namespace sia {

/// Sparse DAG with an online topological order (Pearce & Kelly 2006) over
/// reusable dense node slots. Detects, at insertion time, edges that
/// would close a cycle — in which case the edge is *not* inserted, so the
/// structure stays acyclic and the order stays valid.
///
/// Invariant: live ords are pairwise *distinct*. The bounded searches,
/// the relocation fast path and the stable-prefix barrier all compare
/// ords strictly; with a duplicated ord, a reverse path through a node
/// sitting exactly on an interval boundary would go unvisited and a real
/// cycle could be admitted. A hash set of live ords enforces this at
/// every point an ord is created (see insert_edge's relocation probe).
class IncrementalDigraph {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xFFFFFFFFu;

  /// Allocates a node (reusing freed slots) with maximal order.
  [[nodiscard]] Slot add_node();

  /// Frees a node: clears its adjacency and recycles the slot. The caller
  /// must already have removed every in-list reference to it held by
  /// surviving nodes (see remove_in_ref).
  void free_node(Slot s);

  /// Batch variant used by the GC: marks every slot in \p dead as
  /// not-live, drops all dead in-refs from each affected survivor in a
  /// single pass per survivor, then recycles the slots. Requires (and
  /// relies on) survivor out-lists never referencing the dead set — true
  /// of any topological lower-set, see free_nodes() for why.
  void free_nodes(const std::vector<Slot>& dead);

  /// Inserts a -> b unless it would close a cycle; returns false (and
  /// inserts nothing) in that case. a == b counts as a cycle.
  bool insert_edge(Slot a, Slot b);

  /// Is there a path from -> to (of >= 0 edges)? Bounded by the
  /// topological order: only nodes with ord inside (ord(from), ord(to))
  /// are ever visited.
  [[nodiscard]] bool reaches(Slot from, Slot to) const;

  [[nodiscard]] bool live(Slot s) const { return nodes_[s].live; }
  [[nodiscard]] std::uint64_t ord(Slot s) const { return nodes_[s].ord; }
  /// Reuse generation of a slot; bumped on every free. A cached (slot,
  /// gen) pair is still the same live node iff gen(slot) matches — an
  /// O(1) array probe that replaces a hash lookup on the hot path.
  [[nodiscard]] std::uint32_t gen(Slot s) const { return gen_[s]; }
  [[nodiscard]] const std::vector<Slot>& out(Slot s) const {
    return nodes_[s].out;
  }

  /// Swap-removes one reference to \p p from in(q) (in-list order is
  /// irrelevant to the algorithms here).
  void remove_in_ref(Slot q, Slot p);

  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] std::size_t slot_count() const { return nodes_.size(); }

  /// Invariant probe (tests / debug): every live slot has a distinct ord
  /// and the live-ord set mirrors the live slots exactly.
  [[nodiscard]] bool ords_unique() const;

  /// Rough heap footprint of the adjacency structure, for gauges.
  [[nodiscard]] std::size_t approx_bytes() const;

 private:
  struct Node {
    std::vector<Slot> out;
    std::vector<Slot> in;
    std::uint64_t ord{0};
    bool live{false};
  };

  /// Gap between consecutive fresh ord values; relocation bisects gaps.
  static constexpr std::uint64_t kOrdStride = 1ull << 20;
  /// Relocation probes at most this many values above the midpoint for a
  /// free ord before giving up and running the bounded reorder (which
  /// only permutes existing ords and needs no free value).
  static constexpr std::uint64_t kMaxOrdProbes = 64;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> gen_;
  std::vector<Slot> free_;
  std::uint64_t next_ord_{kOrdStride};
  /// Ords of all live nodes — see the class comment: the order must stay
  /// pairwise distinct or the bounded searches are unsound.
  std::unordered_set<std::uint64_t> live_ords_;
  std::size_t live_{0};

  // Epoch-stamped scratch for the searches (no per-call allocation).
  mutable std::vector<std::uint64_t> mark_;
  mutable std::uint64_t epoch_{0};
  mutable std::vector<Slot> stack_;
  mutable std::vector<Slot> delta_f_;
  mutable std::vector<Slot> delta_b_;
  mutable std::vector<std::uint64_t> ord_pool_;
};

/// Tuning knobs for StreamingMonitor.
struct StreamingConfig {
  /// Staleness window, in commits: a read may only name a version that
  /// was current or overwritten at most `gc_window` commits ago. The GC
  /// watermark is W = ingested - gc_window; versions overwritten by a
  /// transaction with id <= W are dead and a read naming one throws
  /// ModelError. 0 disables GC entirely (unbounded retention, closure
  /// semantics for arbitrarily stale reads).
  std::size_t gc_window{8192};
  /// Retain every MonitoredCommit for graph() reconstruction. Off by
  /// default: the log alone defeats the flat-memory claim.
  bool keep_log{false};
  /// Compatibility ceiling (see ConsistencyMonitor::set_max_transactions);
  /// 0 = unlimited. Only explicit opt-in saturates a streaming monitor.
  std::size_t max_transactions{0};
};

/// Drop-in streaming replacement for ConsistencyMonitor: identical
/// verdicts, violating ids and detail strings on any history whose reads
/// respect the staleness window, with memory proportional to the window
/// (plus one retained version per object), not to the stream length.
class StreamingMonitor {
 public:
  explicit StreamingMonitor(Model model, StreamingConfig cfg = {});

  /// Ingests the next committed transaction; same contract as
  /// ConsistencyMonitor::commit (validation before mutation, ids from 1,
  /// ceiling drops return 0), plus: \throws ModelError if a read names a
  /// version already pruned below the GC watermark.
  TxnId commit(const MonitoredCommit& c);

  /// Per-commit ingestion of a batch (the incremental structure has no
  /// closure to defer, so batching is just a loop; verdict parity with
  /// ConsistencyMonitor::commit_all holds by construction).
  std::vector<TxnId> commit_all(const std::vector<MonitoredCommit>& batch);

  /// Quarantining batch ingestion; see ConsistencyMonitor.
  BatchResult commit_all_guarded(const std::vector<MonitoredCommit>& batch);

  void set_max_transactions(std::size_t cap) { cfg_.max_transactions = cap; }
  void set_keep_log(bool keep) { cfg_.keep_log = keep; }

  [[nodiscard]] MonitorVerdict verdict() const {
    if (violation_) return MonitorVerdict::kViolation;
    if (dropped_commits_ > 0) return MonitorVerdict::kSaturated;
    return MonitorVerdict::kConsistent;
  }
  [[nodiscard]] bool consistent() const { return !violation_.has_value(); }
  [[nodiscard]] std::optional<TxnId> violating_commit() const {
    return violation_;
  }
  [[nodiscard]] const std::string& violation_detail() const {
    return violation_detail_;
  }
  [[nodiscard]] Model model() const { return model_; }
  [[nodiscard]] std::size_t commit_count() const { return next_id_ - 1; }
  [[nodiscard]] std::size_t size() const { return commit_count(); }
  [[nodiscard]] std::size_t capacity() const { return cfg_.max_transactions; }
  [[nodiscard]] std::size_t dropped_commits() const {
    return dropped_commits_;
  }

  // --- flat-memory gauges (the STATUS wire reply reports these) --------
  /// Transactions currently resident in the graph structure.
  [[nodiscard]] std::size_t retained() const { return graph_.live_count(); }
  /// Transactions pruned by the GC so far.
  [[nodiscard]] std::size_t pruned() const { return pruned_; }
  /// Current GC watermark W (0 until the first GC pass).
  [[nodiscard]] TxnId watermark() const { return watermark_; }
  /// Rough heap footprint of the retained state, for plateau audits.
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Rebuilds the full dependency graph (original ids) from the commit
  /// log. \throws ModelError unless constructed/configured with
  /// keep_log = true.
  [[nodiscard]] DependencyGraph graph() const;

 private:
  /// A cached node reference: resolves without a hash lookup for as long
  /// as the generation still matches (i.e. the node was not pruned).
  struct NodeRef {
    TxnId id{0};
    IncrementalDigraph::Slot slot{IncrementalDigraph::kNoSlot};
    std::uint32_t gen{0};
  };

  struct Reader {
    TxnId id{0};
    IncrementalDigraph::Slot slot{IncrementalDigraph::kNoSlot};
    std::uint32_t gen{0};
    /// Absolute position of the version this reader read.
    std::size_t src_pos{0};
    /// Append sequence within the object (survives GC compaction).
    std::uint64_t seq{0};
  };

  /// One entry of an object's reader-predecessor union: a D-predecessor
  /// d of some retained reader, tagged with the first reader that
  /// contributed it (needed to reproduce the dense monitor's detail
  /// string when the composed edge d -> s closes the cycle).
  struct ReaderPred {
    NodeRef d;
    TxnId reader{0};
    /// Append sequence within the object (survives GC compaction).
    std::uint64_t seq{0};
  };

  struct ObjectState {
    /// Retained WW(x) suffix; absolute position of writers[i] is
    /// base + i. Always non-empty (position 0 is the initialiser).
    std::vector<TxnId> writers;
    std::size_t base{0};
    /// writer id -> absolute position, for the retained suffix only.
    std::unordered_map<TxnId, std::size_t> writer_pos;
    /// Retained readers with the absolute position each one read.
    std::vector<Reader> readers;
    /// Deduplicated union of the readers' D-predecessor lists, in
    /// first-occurrence order over reader-major iteration. Under SI a
    /// write composes against this union instead of the readers × preds
    /// product: a duplicate composed edge can never be the first
    /// violation (its first copy fails first), so first-occurrence
    /// order preserves the dense monitor's verdict, id and detail.
    std::vector<ReaderPred> reader_preds;
    /// Membership index over reader_preds (merge is O(1), order lives
    /// in the vector).
    std::unordered_set<TxnId> reader_pred_ids;
    /// Next append sequences for readers / reader_preds.
    std::uint64_t readers_seq{0};
    std::uint64_t preds_seq{0};
    /// Everything below these sequences has already been composed
    /// against this object's previous writer p. Those edges are
    /// transitively implied for the next writer w through the WW edge
    /// p -> w — and if p was pruned, so was every such d (the pruned set
    /// is predecessor-closed) — so a write only composes entries
    /// appended since the previous write. An implied edge can never be
    /// the first violation: its reverse path would be a pre-existing
    /// cycle. Verdicts, ids and details are unchanged.
    std::uint64_t composed_readers_upto{0};
    std::uint64_t composed_preds_upto{0};
  };

  /// A deferred anti-dependency RW(r -> s), with both endpoints cached.
  /// compose_union marks the SI writes-path form, where the pair stands
  /// for "every retained reader of obj" via the object's reader_preds.
  struct PendingRw {
    NodeRef r;
    NodeRef s;
    ObjId obj{0};
    bool compose_union{false};
    /// Union entries with seq below this were composed against the
    /// previous writer and are transitively implied via its WW edge.
    std::uint64_t from_seq{0};
  };

  void validate(const MonitoredCommit& c) const;
  ObjectState& object_state(ObjId obj);
  void add_generator(TxnId a, TxnId b, DepKind kind, ObjId obj);
  void add_generator_slots(TxnId a, TxnId b, IncrementalDigraph::Slot sa,
                           IncrementalDigraph::Slot sb, DepKind kind,
                           ObjId obj);
  void add_anti_dependency(const PendingRw& p);
  void record_violation(TxnId at, const std::string& detail);

  /// Resolves a cached reference; kNoSlot if the node has been pruned.
  [[nodiscard]] IncrementalDigraph::Slot resolve(const NodeRef& ref) const {
    return ref.slot != IncrementalDigraph::kNoSlot &&
                   graph_.gen(ref.slot) == ref.gen
               ? ref.slot
               : IncrementalDigraph::kNoSlot;
  }
  /// Caches a reference to a currently-live id (hash lookup, cold path).
  [[nodiscard]] NodeRef make_ref(TxnId id) const {
    const auto s = slot_of(id);
    return {id, s, s == IncrementalDigraph::kNoSlot ? 0 : graph_.gen(s)};
  }

  /// Slot of an external id, or kNoSlot if pruned (edges from pruned
  /// sources are dropped — provably irrelevant, DESIGN.md §4f).
  [[nodiscard]] IncrementalDigraph::Slot slot_of(TxnId id) const;

  /// Commit-scoped duplicate-edge filter. The anti-dependency fan-out
  /// re-derives the same composed edge many times within one commit
  /// (every retained reader of an object contributes its D-predecessors
  /// against the same overwriter). A duplicate of an edge already in the
  /// acyclic graph can never be the violating edge — the reverse path
  /// would have been a pre-existing cycle, caught when it formed — so
  /// skipping it preserves verdicts, ids and detail strings exactly.
  /// Keyed on the (source, target) pair, so commits whose pending
  /// anti-dependencies interleave targets still dedup fully (no
  /// parallel duplicates accumulating in the adjacency lists).
  [[nodiscard]] bool edge_seen(IncrementalDigraph::Slot a,
                               IncrementalDigraph::Slot b);

  /// One stable-prefix GC pass (see file comment). Runs every
  /// gc_window/2 commits.
  void run_gc();

  Model model_;
  StreamingConfig cfg_;
  TxnId next_id_{1};
  std::size_t dropped_commits_{0};

  IncrementalDigraph graph_;
  /// id -> slot for every retained transaction (the id-remap table).
  std::unordered_map<TxnId, IncrementalDigraph::Slot> id_to_slot_;
  /// Immediate-D-predecessor lists (cached references), slot-indexed.
  std::vector<std::vector<NodeRef>> d_preds_;

  std::unordered_map<ObjId, ObjectState> objects_;
  std::unordered_map<SessionId, TxnId> session_last_;
  std::optional<TxnId> violation_;
  std::string violation_detail_;

  TxnId watermark_{0};
  std::size_t pruned_{0};
  std::size_t last_gc_at_{0};

  // Scratch buffers reused across commits / GC passes.
  std::vector<PendingRw> pending_rw_;
  std::vector<std::pair<TxnId, IncrementalDigraph::Slot>> prune_list_;
  std::vector<IncrementalDigraph::Slot> dead_slots_;

  /// Composed (source, target) slot pairs inserted by the current
  /// commit, packed into one u64. Cleared (capacity retained) at the top
  /// of every commit, so pairs never survive a GC slot recycle and
  /// steady state allocates nothing.
  std::unordered_set<std::uint64_t> seen_edges_;

  std::vector<MonitoredCommit> log_;
};

/// replay()/replay_batched() analogues for the streaming monitor, used by
/// the differential tests.
[[nodiscard]] StreamingMonitor replay_streaming(const DependencyGraph& g,
                                                Model m,
                                                StreamingConfig cfg = {});

}  // namespace sia
