#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat_map.hpp"
#include "graph/dependency_graph.hpp"
#include "graph/enumeration.hpp"

/// \file monitor.hpp
/// Online consistency monitoring — the run-time application of the
/// dependency-graph characterisations that §7 of the paper points at:
/// ingest committed transactions one at a time (in commit order) and
/// maintain, incrementally, whether the history so far is still in
/// GraphSER / GraphSI / GraphPSI.
///
/// The key structural fact making this cheap: at the moment a transaction
/// commits, every dependency edge *into* it is determined, and no future
/// commit ever adds a dependency edge into an already-committed
/// transaction — only anti-dependency edges out of it (a later writer
/// overwriting what it read). Hence:
///  - a new WR/WW/SO edge (a, S) contributes the generator (a, S) of the
///    Theorem 9 relation (D ; RW?);
///  - a new anti-dependency (r, S) contributes generators (d, S) for the
///    D-predecessors d of r, a set that is already final;
/// and the transitive closure can be maintained by successor-set
/// propagation (Relation::add_edge_transitively), O(n²/64) per edge.
/// A violation is a generator edge (a, b) whose reverse (b, a) is already
/// in the closure.

namespace sia {

/// One committed transaction as fed to the monitor.
struct MonitoredCommit {
  SessionId session{0};
  Transaction txn;
  /// For each object the transaction *externally* reads: the monitor id
  /// of the transaction whose write it observed (0 = the initial state;
  /// the monitor owns transaction 0, the initialising transaction).
  /// Sorted flat storage: iteration order matches the std::map it
  /// replaced, so wire encodings stay byte-identical.
  FlatMap<ObjId, TxnId> read_sources;
};

/// The monitor's overall judgement of the history so far.
///  - kConsistent: every ingested commit kept the graph in the model set.
///  - kViolation: some commit broke membership (sticky; see
///    violating_commit()). Violations found before saturation remain
///    authoritative afterwards.
///  - kSaturated: the configured transaction ceiling was reached and later
///    commits were dropped unanalysed — the monitor can no longer claim
///    consistency, but has not observed a violation either.
enum class MonitorVerdict { kConsistent, kViolation, kSaturated };

[[nodiscard]] std::string to_string(MonitorVerdict v);

/// Outcome of ConsistencyMonitor::commit_all_guarded: malformed commits
/// are quarantined (rejected without mutating the monitor) instead of
/// aborting the batch, so the verdict on the well-formed subsequence is
/// exactly what per-commit ingestion of that subsequence would produce.
struct BatchResult {
  /// One entry per batch element, in order: the assigned monitor id, or 0
  /// for a commit that was quarantined or dropped by saturation (real ids
  /// start at 1, so 0 is unambiguous).
  std::vector<TxnId> ids;
  /// Indices into the batch of the quarantined commits, ascending.
  std::vector<std::size_t> quarantined;
  /// Parallel to `quarantined`: why each commit was rejected.
  std::vector<std::string> errors;
};

/// Streaming membership checker for one consistency model.
///
/// Writes are assumed to install in commit order (true of the §1 SI
/// algorithm, S2PL, and this repo's PSI engine, whose per-key versions
/// are assigned under the commit lock), so WW(x) is the order in which
/// writers of x are ingested.
class ConsistencyMonitor {
 public:
  explicit ConsistencyMonitor(Model model);

  /// Ingests the next committed transaction; returns its monitor id
  /// (ids start at 1; id 0 is the implicit initialising transaction).
  /// Generator edges already implied by the closure skip propagation
  /// entirely (the closure is transitive, so they are no-ops).
  /// Strongly exception-safe: validation happens before any state is
  /// touched, so a commit that throws leaves the monitor exactly as it
  /// was (ids, log, session order, verdict — everything).
  /// Past the set_max_transactions() ceiling the commit is dropped
  /// unanalysed and 0 is returned; the verdict degrades to kSaturated.
  /// \throws ModelError if a read source is unknown or never wrote the
  ///         object.
  TxnId commit(const MonitoredCommit& c);

  /// Ingests a batch of commits in order and returns their ids, deferring
  /// closure propagation across the batch: generator edges accumulate in a
  /// sparse overlay, cycle checks run against the exact reachability of
  /// (closure ∪ overlay) — so verdicts, violating ids and details are
  /// identical to per-commit ingestion — and the closure invariant is
  /// restored once at the end of the batch, where edges implied by earlier
  /// propagation have become free skips. On a ModelError thrown mid-batch
  /// the already-ingested prefix is flushed before rethrowing.
  std::vector<TxnId> commit_all(const std::vector<MonitoredCommit>& batch);

  /// commit_all with graceful degradation: a malformed commit (missing or
  /// unknown read source) is *quarantined* — rejected without mutating any
  /// monitor state — and ingestion continues with the rest of the batch.
  /// Verdict, violating id and details on the well-formed subsequence are
  /// identical to per-commit ingestion of that subsequence. Never throws
  /// ModelError for malformed input.
  BatchResult commit_all_guarded(const std::vector<MonitoredCommit>& batch);

  /// Caps the number of ingested transactions (a memory ceiling: closure
  /// state grows O(n²/64)). Once commit_count() reaches \p cap, further
  /// commits are dropped unanalysed and the verdict becomes kSaturated.
  /// 0 (the default) means unlimited.
  void set_max_transactions(std::size_t cap) { max_transactions_ = cap; }

  /// Whether commits are retained for graph() reconstruction (default on
  /// for this closure-based monitor, matching historical behaviour).
  /// Disable for long streams: the log alone defeats any bounded-memory
  /// claim. With the log off, graph() throws ModelError.
  void set_keep_log(bool keep) { keep_log_ = keep; }

  /// Overall judgement; see MonitorVerdict.
  [[nodiscard]] MonitorVerdict verdict() const {
    if (violation_) return MonitorVerdict::kViolation;
    if (dropped_commits_ > 0) return MonitorVerdict::kSaturated;
    return MonitorVerdict::kConsistent;
  }

  /// Commits dropped after the ceiling was reached.
  [[nodiscard]] std::size_t dropped_commits() const {
    return dropped_commits_;
  }

  /// True while the ingested history is still in the model's graph set.
  [[nodiscard]] bool consistent() const { return !violation_.has_value(); }

  /// The id of the commit whose ingestion broke membership, if any.
  [[nodiscard]] std::optional<TxnId> violating_commit() const {
    return violation_;
  }

  /// Human-readable description of the violation edge.
  [[nodiscard]] const std::string& violation_detail() const {
    return violation_detail_;
  }

  [[nodiscard]] Model model() const { return model_; }

  /// Transactions ingested (excluding the implicit initialiser).
  [[nodiscard]] std::size_t commit_count() const { return next_id_ - 1; }

  /// Alias of commit_count(), named for container-style call sites
  /// (shard admission control asks "how full is this monitor?").
  [[nodiscard]] std::size_t size() const { return commit_count(); }

  /// The set_max_transactions() ceiling; 0 = unlimited. Headroom before
  /// saturation is capacity() - size() when capacity() is nonzero.
  [[nodiscard]] std::size_t capacity() const { return max_transactions_; }

  /// Rebuilds the full dependency graph ingested so far (for offline
  /// inspection; O(history)). \throws ModelError if the commit log was
  /// disabled with set_keep_log(false).
  [[nodiscard]] DependencyGraph graph() const;

 private:
  struct ObjectState {
    std::vector<TxnId> writers;  ///< WW(x) order
    /// writer -> position. Hashed: the ingest path does one lookup per
    /// read and one insert per write; ordered iteration is never needed.
    std::unordered_map<TxnId, std::size_t> writer_pos;
    /// Readers with the position of the version they read; the source of
    /// every future anti-dependency on this object.
    std::vector<std::pair<TxnId, std::size_t>> readers;
  };

  void ensure_capacity(TxnId needed);

  /// Throws ModelError iff \p c is malformed (a read without a source, or
  /// a source that never wrote the object). Touches no monitor state —
  /// the basis of commit()'s strong exception safety and of quarantine.
  void validate(const MonitoredCommit& c) const;

  /// Lazily initialised per-object state (version 0 by the initialiser).
  ObjectState& object_state(ObjId obj);

  /// Registers a D-kind generator edge (a, b); detects cycles.
  void add_generator(TxnId a, TxnId b, DepKind kind, ObjId obj);

  /// Registers an anti-dependency r --RW--> s.
  void add_anti_dependency(TxnId r, TxnId s, ObjId obj);

  void record_violation(TxnId at, const std::string& detail);

  /// (a, b) present in the closure-so-far — including, while batching, the
  /// not-yet-propagated overlay edges. Exactly contains() outside a batch.
  [[nodiscard]] bool closure_would_reach(TxnId a, TxnId b) const;

  /// Propagates (a, b) into the closure, or defers it while batching.
  /// Skips edges the closure already implies.
  void add_closure_edge(TxnId a, TxnId b);

  /// Applies every deferred edge and clears the overlay.
  void flush_deferred();

  Model model_;
  TxnId next_id_{1};
  std::size_t max_transactions_{0};  ///< 0 = unlimited
  std::size_t dropped_commits_{0};

  /// Closure of the model's composed relation:
  ///  SER: (D ∪ RW)+     SI: ((D) ; RW?)+      PSI: D+ (RW handled apart).
  Relation closure_{1};
  /// Plain immediate-D-predecessor lists (transitive pairs are recovered
  /// by the closure), needed to compose new anti-dependencies under SI.
  std::vector<std::vector<TxnId>> d_preds_{1};

  /// Hashed per-object / per-session state: the ingest path only ever
  /// does point lookups; graph() sorts the object ids when it needs the
  /// deterministic (ascending) order the old std::map provided.
  std::unordered_map<ObjId, ObjectState> objects_;
  std::unordered_map<SessionId, TxnId> session_last_;
  std::optional<TxnId> violation_;
  std::string violation_detail_;

  /// Batch-mode state: generator edges awaiting propagation, in arrival
  /// order plus as a per-source adjacency overlay for the cycle checks.
  bool batching_{false};
  std::vector<std::pair<TxnId, TxnId>> deferred_edges_;
  std::vector<std::vector<TxnId>> deferred_adj_;

  // Raw ingested data for graph() reconstruction; empty when disabled.
  bool keep_log_{true};
  std::vector<MonitoredCommit> log_;
};

/// The commit sequence replay() feeds: transactions 1..n of \p g in id
/// order, each with its recorded WR sources. Exposed so that clients which
/// stream recorded runs into a *remote* monitor (the service load
/// generator, the service tests) produce exactly the commits an in-process
/// replay would. \throws ModelError if the graph lacks a WR source for an
/// external read.
[[nodiscard]] std::vector<MonitoredCommit> monitored_commits(
    const DependencyGraph& g);

/// Replays a recorded engine run through a fresh monitor and returns it.
/// Transactions are fed in id order with their recorded WR sources;
/// requires transaction 0 to be the initialising transaction and each
/// WW(x) order to coincide with id order (true of Recorder-built graphs,
/// whose versions are assigned under the commit lock). The monitor's
/// verdict must then agree with the batch check of the same graph — a
/// property the tests enforce.
[[nodiscard]] ConsistencyMonitor replay(const DependencyGraph& g, Model m);

/// replay() through commit_all in batches of \p batch_size commits —
/// identical verdicts, closure propagation deferred per batch.
[[nodiscard]] ConsistencyMonitor replay_batched(const DependencyGraph& g,
                                                Model m,
                                                std::size_t batch_size);

}  // namespace sia
