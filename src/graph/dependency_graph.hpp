#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/abstract_execution.hpp"
#include "core/history.hpp"
#include "core/relation.hpp"

/// \file dependency_graph.hpp
/// Dependency graphs (Definition 6): a history extended with Adya-style
/// read dependencies WR, write dependencies WW and (derived)
/// anti-dependencies RW, plus their extraction from abstract executions
/// (Definition 5, Proposition 7).

namespace sia {

/// Kinds of edges appearing in dependency graphs and derived analyses.
enum class DepKind : std::uint8_t {
  kSO,     ///< session order (successor edges in chopping graphs)
  kSOInv,  ///< reverse session order (predecessor edges, chopping only)
  kWR,     ///< read dependency: target reads source's write
  kWW,     ///< write dependency: target overwrites source's write
  kRW,     ///< anti-dependency: target overwrites the write source read
};

[[nodiscard]] std::string to_string(DepKind k);

/// One typed, object-annotated dependency edge (for witnesses/diagnostics).
struct DepEdge {
  TxnId from{kInvalidTxn};
  TxnId to{kInvalidTxn};
  DepKind kind{DepKind::kWR};
  ObjId obj{kInvalidObj};  ///< kInvalidObj for SO/SO^{-1} edges

  friend bool operator==(const DepEdge&, const DepEdge&) = default;
};

[[nodiscard]] std::string to_string(const DepEdge& e);
[[nodiscard]] std::string to_string(const std::vector<DepEdge>& path);

/// The three dependency relations of a graph, materialised as Relations
/// (unions over all objects), plus SO. Snapshot type returned by
/// DependencyGraph::relations().
struct DepRelations {
  Relation so;
  Relation wr;
  Relation ww;
  Relation rw;

  /// D = SO ∪ WR ∪ WW, the non-anti-dependency union used by
  /// Theorems 8, 9 and 21.
  [[nodiscard]] Relation dependencies() const { return so | wr | ww; }
};

/// G = (T, SO, WR, WW, RW). WW(x) is stored as the ordered vector of
/// writers of x — the total order itself; WR(x) as a reader→writer map
/// (Definition 6 makes the writer unique per reader). RW is always derived
/// from WR and WW per Definition 5 and never stored.
class DependencyGraph {
 public:
  DependencyGraph() = default;
  explicit DependencyGraph(History h) : history_(std::move(h)) {}

  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] std::size_t txn_count() const { return history_.txn_count(); }

  /// Declares T --WR(x)--> S (reader \p s reads \p x from writer \p t).
  /// Overwrites any previous source for (s, x).
  void set_read_from(ObjId x, TxnId t, TxnId s);

  /// Declares the WW(x) total order: \p writers, earliest first. Must be a
  /// permutation of the transactions writing x (checked by validate()).
  void set_write_order(ObjId x, std::vector<TxnId> writers);

  /// Writer that \p s reads \p x from, if declared.
  [[nodiscard]] std::optional<TxnId> read_source(ObjId x, TxnId s) const;

  /// The WW(x) order (empty if not declared).
  [[nodiscard]] const std::vector<TxnId>& write_order(ObjId x) const;

  /// Objects with a declared WW order or WR edge.
  [[nodiscard]] std::vector<ObjId> annotated_objects() const;

  /// Checks every condition of Definition 6:
  ///  - WR(x) sources differ from readers, wrote the value read, and every
  ///    external read has exactly one source;
  ///  - WW(x) is a total order on WriteTx_x.
  /// Returns nullopt if valid.
  [[nodiscard]] std::optional<Violation> validate() const;

  /// Materialises SO / WR / WW / RW as Relations. RW is derived per
  /// Definition 5: T --RW(x)--> S iff T ≠ S and ∃T'. T' --WR(x)--> T and
  /// T' --WW(x)--> S.
  [[nodiscard]] DepRelations relations() const;

  /// All typed edges (SO, WR, WW, derived RW) with object annotations.
  [[nodiscard]] std::vector<DepEdge> edges() const;

  /// Typed edges between \p a and \p b in that direction.
  [[nodiscard]] std::vector<DepEdge> edges_between(TxnId a, TxnId b) const;

  friend bool operator==(const DependencyGraph&,
                         const DependencyGraph&) = default;

 private:
  History history_;
  std::map<ObjId, std::vector<TxnId>> ww_order_;
  std::map<ObjId, std::unordered_map<TxnId, TxnId>> wr_source_;
  static const std::vector<TxnId> kEmptyOrder;
};

/// graph(X) of Definition 5: extracts WR/WW/RW from an abstract execution.
/// Requires CO to determine max_CO over visible writers (works for
/// pre-executions whenever the maxima exist; throws ModelError otherwise,
/// mirroring "the use of max_R(A) implicitly assumes it is defined").
[[nodiscard]] DependencyGraph extract_graph(const AbstractExecution& x);

/// Infers the unique WR edges of a history in which every (object, value)
/// pair is written by at most one transaction (the standard
/// distinct-values testing discipline). WW orders must still be supplied.
/// Throws ModelError if some read has zero or multiple candidate writers.
void infer_read_sources_from_values(DependencyGraph& g);

}  // namespace sia
