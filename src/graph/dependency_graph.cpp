#include "graph/dependency_graph.hpp"

#include <algorithm>
#include <set>

namespace sia {

const std::vector<TxnId> DependencyGraph::kEmptyOrder{};

std::string to_string(DepKind k) {
  switch (k) {
    case DepKind::kSO:
      return "SO";
    case DepKind::kSOInv:
      return "SO^-1";
    case DepKind::kWR:
      return "WR";
    case DepKind::kWW:
      return "WW";
    case DepKind::kRW:
      return "RW";
  }
  return "?";
}

std::string to_string(const DepEdge& e) {
  std::string out = "T" + std::to_string(e.from) + " -" + to_string(e.kind);
  if (e.obj != kInvalidObj) out += "(obj" + std::to_string(e.obj) + ")";
  out += "-> T" + std::to_string(e.to);
  return out;
}

std::string to_string(const std::vector<DepEdge>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ", ";
    out += to_string(path[i]);
  }
  return out;
}

void DependencyGraph::set_read_from(ObjId x, TxnId t, TxnId s) {
  wr_source_[x][s] = t;
}

void DependencyGraph::set_write_order(ObjId x, std::vector<TxnId> writers) {
  ww_order_[x] = std::move(writers);
}

std::optional<TxnId> DependencyGraph::read_source(ObjId x, TxnId s) const {
  auto it = wr_source_.find(x);
  if (it == wr_source_.end()) return std::nullopt;
  auto jt = it->second.find(s);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

const std::vector<TxnId>& DependencyGraph::write_order(ObjId x) const {
  auto it = ww_order_.find(x);
  return it == ww_order_.end() ? kEmptyOrder : it->second;
}

std::vector<ObjId> DependencyGraph::annotated_objects() const {
  std::set<ObjId> objs;
  for (const auto& [x, _] : ww_order_) objs.insert(x);
  for (const auto& [x, _] : wr_source_) objs.insert(x);
  return {objs.begin(), objs.end()};
}

std::optional<Violation> DependencyGraph::validate() const {
  const History& h = history_;

  // WW(x) must be a total order on WriteTx_x: exactly the writers, no
  // repetitions (the vector order is the total order).
  for (ObjId x : h.objects()) {
    const std::vector<TxnId> writers = h.writers_of(x);
    const std::vector<TxnId>& order = write_order(x);
    if (writers.empty()) {
      if (!order.empty())
        return Violation{"Def6",
                         "WW declared for obj" + std::to_string(x) +
                             " which no transaction writes"};
      continue;
    }
    std::vector<TxnId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != writers) {
      return Violation{"Def6", "WW(obj" + std::to_string(x) +
                                   ") is not a permutation of WriteTx"};
    }
  }

  // WR(x): source wrote the value read, differs from the reader; every
  // external read has a (unique, by map construction) source.
  for (TxnId s = 0; s < h.txn_count(); ++s) {
    for (ObjId x : h.txn(s).external_read_set()) {
      const auto src = read_source(x, s);
      if (!src) {
        return Violation{"Def6", "T" + std::to_string(s) +
                                     " externally reads obj" +
                                     std::to_string(x) + " but has no WR source"};
      }
      if (*src == s) {
        return Violation{"Def6", "T" + std::to_string(s) +
                                     " reads obj" + std::to_string(x) +
                                     " from itself"};
      }
      const auto written = h.txn(*src).final_write(x);
      const Value expected = *h.txn(s).external_read(x);
      if (!written || *written != expected) {
        return Violation{
            "Def6", "WR source T" + std::to_string(*src) + " of T" +
                        std::to_string(s) + " on obj" + std::to_string(x) +
                        (written ? " wrote " + std::to_string(*written) +
                                       " but the reader read " +
                                       std::to_string(expected)
                                 : " does not write the object")};
      }
    }
  }

  // No WR edge may target a transaction that does not externally read.
  for (const auto& [x, sources] : wr_source_) {
    for (const auto& [reader, writer] : sources) {
      (void)writer;
      if (!history_.txn(reader).external_read(x).has_value()) {
        return Violation{"Def6", "WR(obj" + std::to_string(x) +
                                     ") targets T" + std::to_string(reader) +
                                     " which has no external read of it"};
      }
    }
  }

  return std::nullopt;
}

DepRelations DependencyGraph::relations() const {
  const std::size_t n = txn_count();
  DepRelations rel{Relation(n), Relation(n), Relation(n), Relation(n)};
  rel.so = history_.session_order();

  for (const auto& [x, sources] : wr_source_) {
    (void)x;
    for (const auto& [reader, writer] : sources) rel.wr.add(writer, reader);
  }

  for (const auto& [x, order] : ww_order_) {
    (void)x;
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        rel.ww.add(order[i], order[j]);
      }
    }
  }

  // RW (Definition 5): reader --RW(x)--> every WW(x)-successor of its
  // source, except itself.
  for (const auto& [x, sources] : wr_source_) {
    const std::vector<TxnId>& order = write_order(x);
    for (const auto& [reader, writer] : sources) {
      auto it = std::find(order.begin(), order.end(), writer);
      if (it == order.end()) continue;  // validate() reports this
      for (++it; it != order.end(); ++it) {
        if (*it != reader) rel.rw.add(reader, *it);
      }
    }
  }

  return rel;
}

std::vector<DepEdge> DependencyGraph::edges() const {
  std::vector<DepEdge> out;
  const Relation so = history_.session_order();
  for (const auto& [a, b] : so.edges())
    out.push_back({a, b, DepKind::kSO, kInvalidObj});

  for (const auto& [x, sources] : wr_source_) {
    for (const auto& [reader, writer] : sources)
      out.push_back({writer, reader, DepKind::kWR, x});
  }
  for (const auto& [x, order] : ww_order_) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j)
        out.push_back({order[i], order[j], DepKind::kWW, x});
    }
  }
  for (const auto& [x, sources] : wr_source_) {
    const std::vector<TxnId>& order = write_order(x);
    for (const auto& [reader, writer] : sources) {
      auto it = std::find(order.begin(), order.end(), writer);
      if (it == order.end()) continue;
      for (++it; it != order.end(); ++it) {
        if (*it != reader)
          out.push_back({reader, *it, DepKind::kRW, x});
      }
    }
  }
  return out;
}

std::vector<DepEdge> DependencyGraph::edges_between(TxnId a, TxnId b) const {
  std::vector<DepEdge> out;
  for (const DepEdge& e : edges()) {
    if (e.from == a && e.to == b) out.push_back(e);
  }
  return out;
}

DependencyGraph extract_graph(const AbstractExecution& x) {
  const History& h = x.history;
  DependencyGraph g(h);

  for (ObjId obj : h.objects()) {
    // WW(x): CO restricted to WriteTx_x; CO must order the writers
    // totally (it does when X satisfies the Definition 3/11 conditions
    // relevant here — otherwise we report the problem).
    std::vector<TxnId> writers = h.writers_of(obj);
    std::sort(writers.begin(), writers.end(), [&](TxnId a, TxnId b) {
      if (x.co.contains(a, b)) return true;
      if (x.co.contains(b, a)) return false;
      throw ModelError("extract_graph: CO does not order writers T" +
                       std::to_string(a) + ", T" + std::to_string(b) +
                       " of obj" + std::to_string(obj));
    });
    g.set_write_order(obj, std::move(writers));
  }

  for (TxnId s = 0; s < h.txn_count(); ++s) {
    for (ObjId obj : h.txn(s).external_read_set()) {
      std::vector<TxnId> candidates;
      for (TxnId t : x.vis.predecessors(s)) {
        if (h.txn(t).writes(obj)) candidates.push_back(t);
      }
      const auto writer = axioms::max_in(x.co, candidates);
      if (!writer) {
        throw ModelError(
            "extract_graph: max_CO(VIS^-1(T" + std::to_string(s) +
            ") ∩ WriteTx_obj" + std::to_string(obj) + ") is undefined");
      }
      g.set_read_from(obj, *writer, s);
    }
  }
  return g;
}

void infer_read_sources_from_values(DependencyGraph& g) {
  const History& h = g.history();
  for (TxnId s = 0; s < h.txn_count(); ++s) {
    for (ObjId x : h.txn(s).external_read_set()) {
      const Value v = *h.txn(s).external_read(x);
      TxnId found = kInvalidTxn;
      for (TxnId t : h.writers_of(x)) {
        if (t == s) continue;
        if (h.txn(t).final_write(x) == v) {
          if (found != kInvalidTxn) {
            throw ModelError(
                "infer_read_sources_from_values: value " + std::to_string(v) +
                " of obj" + std::to_string(x) +
                " is written by multiple transactions");
          }
          found = t;
        }
      }
      if (found == kInvalidTxn) {
        throw ModelError("infer_read_sources_from_values: T" +
                         std::to_string(s) + " reads unwritten value " +
                         std::to_string(v) + " of obj" + std::to_string(x));
      }
      g.set_read_from(x, found, s);
    }
  }
}

}  // namespace sia
