#include "graph/cycles.hpp"

#include <algorithm>
#include <set>

namespace sia {

std::size_t TypedGraph::edge_count() const {
  std::size_t count = 0;
  for (const auto& succ : adj_) {
    for (const auto& [to, mask] : succ) {
      (void)to;
      count += static_cast<std::size_t>(__builtin_popcount(mask));
    }
  }
  return count;
}

namespace {

/// Johnson's simple-cycle enumeration state for one start vertex.
class JohnsonSearch {
 public:
  JohnsonSearch(const TypedGraph& g, std::size_t budget,
                const std::function<bool(const TypedCycle&)>& visit)
      : g_(g),
        budget_(budget),
        visit_(visit),
        blocked_(g.size(), false),
        blocklist_(g.size()) {}

  /// Runs the full enumeration. Returns stats.
  EnumerationStats run() {
    for (std::uint32_t s = 0; s < g_.size() && !done_; ++s) {
      start_ = s;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& b : blocklist_) b.clear();
      path_.clear();
      circuit(s);
    }
    return {complete_, seen_};
  }

 private:
  void unblock(std::uint32_t v) {
    blocked_[v] = false;
    for (std::uint32_t w : blocklist_[v]) {
      if (blocked_[w]) unblock(w);
    }
    blocklist_[v].clear();
  }

  void emit() {
    ++seen_;
    TypedCycle cycle;
    cycle.vertices = path_;
    cycle.masks.reserve(path_.size());
    for (std::size_t i = 0; i < path_.size(); ++i) {
      cycle.masks.push_back(
          g_.types(path_[i], path_[(i + 1) % path_.size()]));
    }
    if (!visit_(cycle)) done_ = true;
    if (seen_ >= budget_ && !done_) {
      complete_ = false;
      done_ = true;
    }
  }

  bool circuit(std::uint32_t v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (const auto& [w, mask] : g_.successors(v)) {
      (void)mask;
      if (w < start_ || done_) continue;  // restrict to vertices >= start
      if (w == start_) {
        emit();
        found = true;
        if (done_) break;
      } else if (!blocked_[w]) {
        if (circuit(w)) found = true;
        if (done_) break;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (const auto& [w, mask] : g_.successors(v)) {
        (void)mask;
        if (w < start_) continue;
        blocklist_[w].insert(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const TypedGraph& g_;
  const std::size_t budget_;
  const std::function<bool(const TypedCycle&)>& visit_;
  std::uint32_t start_{0};
  std::vector<bool> blocked_;
  std::vector<std::set<std::uint32_t>> blocklist_;
  std::vector<std::uint32_t> path_;
  std::size_t seen_{0};
  bool done_{false};
  bool complete_{true};
};

constexpr TypeMask kMaskSep = kMaskWR | kMaskWW;

}  // namespace

EnumerationStats enumerate_simple_cycles(
    const TypedGraph& g, std::size_t budget,
    const std::function<bool(const TypedCycle&)>& visit) {
  return JohnsonSearch(g, budget, visit).run();
}

std::vector<std::size_t> forced_rw_positions(const TypedCycle& c) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < c.masks.size(); ++i) {
    if (forced_rw(c.masks[i])) out.push_back(i);
  }
  return out;
}

bool has_conflict_pred_conflict(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (k < 2) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if (is_conflict(c.masks[i]) && (c.masks[(i + 1) % k] & kMaskSOInv) != 0 &&
        is_conflict(c.masks[(i + 2) % k])) {
      return true;
    }
  }
  return false;
}

bool ser_critical(const TypedCycle& c) { return has_conflict_pred_conflict(c); }

bool si_critical(const TypedCycle& c) {
  if (!ser_critical(c)) return false;
  const std::vector<std::size_t> forced = forced_rw_positions(c);
  if (forced.size() <= 1) return true;
  const std::size_t k = c.length();
  // Between every pair of cyclically consecutive forced anti-dependencies
  // there must be a step that can be a WR/WW dependency.
  for (std::size_t idx = 0; idx < forced.size(); ++idx) {
    const std::size_t f1 = forced[idx];
    const std::size_t f2 = forced[(idx + 1) % forced.size()];
    bool separated = false;
    for (std::size_t p = (f1 + 1) % k; p != f2; p = (p + 1) % k) {
      if ((c.masks[p] & kMaskSep) != 0) {
        separated = true;
        break;
      }
    }
    if (!separated) return false;
  }
  return true;
}

bool psi_critical(const TypedCycle& c) {
  return ser_critical(c) && min_rw_count(c) <= 1;
}

bool can_have_adjacent_rw_pair(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (k < 2) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if ((c.masks[i] & kMaskRW) != 0 && (c.masks[(i + 1) % k] & kMaskRW) != 0) {
      return true;
    }
  }
  return false;
}

bool can_avoid_adjacent_rw(const TypedCycle& c) {
  const std::size_t k = c.length();
  for (std::size_t i = 0; i < k; ++i) {
    if (forced_rw(c.masks[i]) && forced_rw(c.masks[(i + 1) % k])) return false;
  }
  return true;
}

bool can_have_two_nonadjacent_rw(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (!can_avoid_adjacent_rw(c)) return false;  // forced adjacency spoils all
  const std::vector<std::size_t> forced = forced_rw_positions(c);
  if (forced.size() >= 2) return true;

  auto adjacent = [k](std::size_t a, std::size_t b) {
    return (a + 1) % k == b || (b + 1) % k == a;
  };
  std::vector<std::size_t> capable;
  for (std::size_t i = 0; i < k; ++i) {
    if ((c.masks[i] & kMaskRW) != 0) capable.push_back(i);
  }
  if (forced.size() == 1) {
    const std::size_t f = forced[0];
    return std::any_of(capable.begin(), capable.end(), [&](std::size_t p) {
      return p != f && !adjacent(p, f);
    });
  }
  for (std::size_t i = 0; i < capable.size(); ++i) {
    for (std::size_t j = i + 1; j < capable.size(); ++j) {
      if (!adjacent(capable[i], capable[j])) return true;
    }
  }
  return false;
}

std::size_t min_rw_count(const TypedCycle& c) {
  return forced_rw_positions(c).size();
}

namespace {

/// Successor lists of D = SO ∪ WR ∪ WW, extracted once; duplicates across
/// the three relations are harmless for a verdict-only search.
std::vector<std::vector<TxnId>> merged_d_adjacency(const Relation& so,
                                                   const Relation& wr,
                                                   const Relation& ww) {
  std::vector<std::vector<TxnId>> adj(so.size());
  for (TxnId u = 0; u < so.size(); ++u) {
    const auto append = [&adj, u](TxnId v) { adj[u].push_back(v); };
    so.for_successors(u, append);
    wr.for_successors(u, append);
    ww.for_successors(u, append);
  }
  return adj;
}

/// Iterative Tarjan over \p adj. Returns false on any cycle (a self-loop
/// or a non-trivial SCC); otherwise fills \p order with every node in SCC
/// completion order — each node after all of its successors (reverse
/// topological), the processing order of DAG reachability propagation.
bool tarjan_trivial_sccs(const std::vector<std::vector<TxnId>>& adj,
                         std::vector<TxnId>& order) {
  const std::size_t n = adj.size();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<TxnId> scc_stack;
  struct Frame {
    TxnId node;
    std::size_t next{0};
  };
  std::vector<Frame> frames;
  std::uint32_t counter = 0;
  order.clear();
  order.reserve(n);

  for (TxnId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = counter++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const TxnId u = f.node;
      if (f.next < adj[u].size()) {
        const TxnId v = adj[u][f.next++];
        if (v == u) return false;  // self-loop
        if (index[v] == kUnvisited) {
          frames.push_back({v, 0});
          index[v] = lowlink[v] = counter++;
          scc_stack.push_back(v);
          on_stack[v] = true;
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      if (lowlink[u] == index[u]) {
        // Root of an SCC; more than one member means a D-cycle.
        if (scc_stack.back() != u) return false;
        scc_stack.pop_back();
        on_stack[u] = false;
        order.push_back(u);
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[u]);
      }
    }
  }
  return true;
}

}  // namespace

bool composed_si_relation_acyclic(const Relation& so, const Relation& wr,
                                  const Relation& ww, const Relation& rw) {
  const std::size_t n = so.size();
  const std::vector<std::vector<TxnId>> d_adj = merged_d_adjacency(so, wr, ww);
  std::vector<std::vector<TxnId>> rw_adj(n);
  for (TxnId u = 0; u < n; ++u) rw_adj[u] = rw.successors(u);

  // Layered graph: real node u < n, shadow node û = n + u. u → ŵ for each
  // D(u, w); ŵ → w (a plain D step of C) and ŵ → v for each RW(w, v) (a
  // composed D;RW step). Every cycle passes a real node, so real roots
  // suffice.
  const auto succ_count = [&](std::size_t node) {
    return node < n ? d_adj[node].size() : 1 + rw_adj[node - n].size();
  };
  const auto succ_at = [&](std::size_t node, std::size_t i) -> std::size_t {
    if (node < n) return n + d_adj[node][i];
    return i == 0 ? node - n : rw_adj[node - n][i - 1];
  };

  enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<std::uint8_t> color(2 * n, kWhite);
  struct Frame {
    std::size_t node;
    std::size_t next;
  };
  std::vector<Frame> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (color[s] != kWhite) continue;
    color[s] = kGray;
    stack.push_back({s, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next >= succ_count(f.node)) {
        color[f.node] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::size_t v = succ_at(f.node, f.next++);
      if (color[v] == kGray) return false;  // back edge closes a C-cycle
      if (color[v] == kWhite) {
        color[v] = kGray;
        stack.push_back({v, 0});
      }
    }
  }
  return true;
}

bool dplus_rw_irreflexive(const Relation& so, const Relation& wr,
                          const Relation& ww, const Relation& rw) {
  const std::size_t n = so.size();
  const std::vector<std::vector<TxnId>> d_adj = merged_d_adjacency(so, wr, ww);
  std::vector<TxnId> order;
  if (!tarjan_trivial_sccs(d_adj, order)) return false;  // diagonal in D+

  // D is a DAG; propagate reachability sinks-first: reach(u) = ⋃ over D
  // successors v of ({v} ∪ reach(v)). One row union per D edge.
  Relation reach(n);
  for (const TxnId u : order) {
    for (const TxnId v : d_adj[u]) {
      reach.add(u, v);
      reach.absorb_row(u, v);
    }
  }
  // A violating diagonal entry of D+ ; RW is an RW edge (w, t) with
  // D+(t, w).
  for (TxnId w = 0; w < n; ++w) {
    bool hit = false;
    rw.for_successors(w, [&](TxnId t) { hit = hit || reach.contains(t, w); });
    if (hit) return false;
  }
  return true;
}

}  // namespace sia
