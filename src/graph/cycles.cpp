#include "graph/cycles.hpp"

#include <algorithm>
#include <set>

namespace sia {

std::size_t TypedGraph::edge_count() const {
  std::size_t count = 0;
  for (const auto& succ : adj_) {
    for (const auto& [to, mask] : succ) {
      (void)to;
      count += static_cast<std::size_t>(__builtin_popcount(mask));
    }
  }
  return count;
}

namespace {

/// Johnson's simple-cycle enumeration state for one start vertex.
class JohnsonSearch {
 public:
  JohnsonSearch(const TypedGraph& g, std::size_t budget,
                const std::function<bool(const TypedCycle&)>& visit)
      : g_(g),
        budget_(budget),
        visit_(visit),
        blocked_(g.size(), false),
        blocklist_(g.size()) {}

  /// Runs the full enumeration. Returns stats.
  EnumerationStats run() {
    for (std::uint32_t s = 0; s < g_.size() && !done_; ++s) {
      start_ = s;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& b : blocklist_) b.clear();
      path_.clear();
      circuit(s);
    }
    return {complete_, seen_};
  }

 private:
  void unblock(std::uint32_t v) {
    blocked_[v] = false;
    for (std::uint32_t w : blocklist_[v]) {
      if (blocked_[w]) unblock(w);
    }
    blocklist_[v].clear();
  }

  void emit() {
    ++seen_;
    TypedCycle cycle;
    cycle.vertices = path_;
    cycle.masks.reserve(path_.size());
    for (std::size_t i = 0; i < path_.size(); ++i) {
      cycle.masks.push_back(
          g_.types(path_[i], path_[(i + 1) % path_.size()]));
    }
    if (!visit_(cycle)) done_ = true;
    if (seen_ >= budget_ && !done_) {
      complete_ = false;
      done_ = true;
    }
  }

  bool circuit(std::uint32_t v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (const auto& [w, mask] : g_.successors(v)) {
      (void)mask;
      if (w < start_ || done_) continue;  // restrict to vertices >= start
      if (w == start_) {
        emit();
        found = true;
        if (done_) break;
      } else if (!blocked_[w]) {
        if (circuit(w)) found = true;
        if (done_) break;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (const auto& [w, mask] : g_.successors(v)) {
        (void)mask;
        if (w < start_) continue;
        blocklist_[w].insert(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const TypedGraph& g_;
  const std::size_t budget_;
  const std::function<bool(const TypedCycle&)>& visit_;
  std::uint32_t start_{0};
  std::vector<bool> blocked_;
  std::vector<std::set<std::uint32_t>> blocklist_;
  std::vector<std::uint32_t> path_;
  std::size_t seen_{0};
  bool done_{false};
  bool complete_{true};
};

constexpr TypeMask kMaskSep = kMaskWR | kMaskWW;

}  // namespace

EnumerationStats enumerate_simple_cycles(
    const TypedGraph& g, std::size_t budget,
    const std::function<bool(const TypedCycle&)>& visit) {
  return JohnsonSearch(g, budget, visit).run();
}

std::vector<std::size_t> forced_rw_positions(const TypedCycle& c) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < c.masks.size(); ++i) {
    if (forced_rw(c.masks[i])) out.push_back(i);
  }
  return out;
}

bool has_conflict_pred_conflict(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (k < 2) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if (is_conflict(c.masks[i]) && (c.masks[(i + 1) % k] & kMaskSOInv) != 0 &&
        is_conflict(c.masks[(i + 2) % k])) {
      return true;
    }
  }
  return false;
}

bool ser_critical(const TypedCycle& c) { return has_conflict_pred_conflict(c); }

bool si_critical(const TypedCycle& c) {
  if (!ser_critical(c)) return false;
  const std::vector<std::size_t> forced = forced_rw_positions(c);
  if (forced.size() <= 1) return true;
  const std::size_t k = c.length();
  // Between every pair of cyclically consecutive forced anti-dependencies
  // there must be a step that can be a WR/WW dependency.
  for (std::size_t idx = 0; idx < forced.size(); ++idx) {
    const std::size_t f1 = forced[idx];
    const std::size_t f2 = forced[(idx + 1) % forced.size()];
    bool separated = false;
    for (std::size_t p = (f1 + 1) % k; p != f2; p = (p + 1) % k) {
      if ((c.masks[p] & kMaskSep) != 0) {
        separated = true;
        break;
      }
    }
    if (!separated) return false;
  }
  return true;
}

bool psi_critical(const TypedCycle& c) {
  return ser_critical(c) && min_rw_count(c) <= 1;
}

bool can_have_adjacent_rw_pair(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (k < 2) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if ((c.masks[i] & kMaskRW) != 0 && (c.masks[(i + 1) % k] & kMaskRW) != 0) {
      return true;
    }
  }
  return false;
}

bool can_avoid_adjacent_rw(const TypedCycle& c) {
  const std::size_t k = c.length();
  for (std::size_t i = 0; i < k; ++i) {
    if (forced_rw(c.masks[i]) && forced_rw(c.masks[(i + 1) % k])) return false;
  }
  return true;
}

bool can_have_two_nonadjacent_rw(const TypedCycle& c) {
  const std::size_t k = c.length();
  if (!can_avoid_adjacent_rw(c)) return false;  // forced adjacency spoils all
  const std::vector<std::size_t> forced = forced_rw_positions(c);
  if (forced.size() >= 2) return true;

  auto adjacent = [k](std::size_t a, std::size_t b) {
    return (a + 1) % k == b || (b + 1) % k == a;
  };
  std::vector<std::size_t> capable;
  for (std::size_t i = 0; i < k; ++i) {
    if ((c.masks[i] & kMaskRW) != 0) capable.push_back(i);
  }
  if (forced.size() == 1) {
    const std::size_t f = forced[0];
    return std::any_of(capable.begin(), capable.end(), [&](std::size_t p) {
      return p != f && !adjacent(p, f);
    });
  }
  for (std::size_t i = 0; i < capable.size(); ++i) {
    for (std::size_t j = i + 1; j < capable.size(); ++j) {
      if (!adjacent(capable[i], capable[j])) return true;
    }
  }
  return false;
}

std::size_t min_rw_count(const TypedCycle& c) {
  return forced_rw_positions(c).size();
}

}  // namespace sia
