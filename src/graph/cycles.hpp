#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "graph/dependency_graph.hpp"

/// \file cycles.hpp
/// Typed multigraphs and vertex-simple cycle enumeration (Johnson's
/// algorithm), plus the exact per-cycle predicates used by the chopping
/// criteria (§5, Appendix B) and the robustness criteria (§6).
///
/// Between two vertices several edges of different kinds may exist (e.g.
/// both a WW and an RW dependency). Cycles are enumerated over *vertices*;
/// each step carries the set of available edge kinds as a bitmask, and the
/// per-cycle predicates decide whether SOME choice of one kind per step
/// yields a cycle with the property of interest. All predicates below are
/// exact for their property (see the reasoning in DESIGN.md §4): choosing
/// a non-anti-dependency kind wherever one is available minimises the set
/// of anti-dependency edges, and an RW is *forced* only where RW is the
/// sole conflict kind available.

namespace sia {

/// Bitmask over DepKind.
using TypeMask = std::uint8_t;

[[nodiscard]] constexpr TypeMask mask_of(DepKind k) {
  return static_cast<TypeMask>(1u << static_cast<std::uint8_t>(k));
}

inline constexpr TypeMask kMaskSO = mask_of(DepKind::kSO);
inline constexpr TypeMask kMaskSOInv = mask_of(DepKind::kSOInv);
inline constexpr TypeMask kMaskWR = mask_of(DepKind::kWR);
inline constexpr TypeMask kMaskWW = mask_of(DepKind::kWW);
inline constexpr TypeMask kMaskRW = mask_of(DepKind::kRW);
/// Conflict edges of a chopping graph: dependencies between transactions
/// of different sessions.
inline constexpr TypeMask kMaskConflict = kMaskWR | kMaskWW | kMaskRW;

/// Directed multigraph with DepKind-typed edges, at most one edge per
/// (source, target, kind).
class TypedGraph {
 public:
  explicit TypedGraph(std::size_t n = 0) : adj_(n) {}

  [[nodiscard]] std::size_t size() const { return adj_.size(); }

  void add_edge(std::uint32_t from, std::uint32_t to, DepKind kind) {
    adj_[from][to] |= mask_of(kind);
  }

  /// Kinds available from \p from to \p to (0 if no edge).
  [[nodiscard]] TypeMask types(std::uint32_t from, std::uint32_t to) const {
    auto it = adj_[from].find(to);
    return it == adj_[from].end() ? TypeMask{0} : it->second;
  }

  /// Successor -> mask map of \p from, ordered by successor id.
  [[nodiscard]] const std::map<std::uint32_t, TypeMask>& successors(
      std::uint32_t from) const {
    return adj_[from];
  }

  [[nodiscard]] std::size_t edge_count() const;

 private:
  std::vector<std::map<std::uint32_t, TypeMask>> adj_;
};

/// A vertex-simple cycle: vertices in order; step i goes from vertices[i]
/// to vertices[(i+1) % size] and masks[i] holds the kinds available there.
struct TypedCycle {
  std::vector<std::uint32_t> vertices;
  std::vector<TypeMask> masks;

  [[nodiscard]] std::size_t length() const { return vertices.size(); }
};

/// Outcome of an enumeration: whether it ran to completion (vs hitting the
/// budget) and how many cycles were visited.
struct EnumerationStats {
  bool complete{true};
  std::size_t cycles_seen{0};
};

/// Enumerates every vertex-simple cycle of \p g (each exactly once, up to
/// rotation), invoking \p visit; if visit returns false the enumeration
/// stops early (complete stays true — the caller found what it wanted).
/// Stops with complete=false after \p budget cycles. Johnson's algorithm,
/// O((V+E)(C+1)) over C cycles.
EnumerationStats enumerate_simple_cycles(
    const TypedGraph& g, std::size_t budget,
    const std::function<bool(const TypedCycle&)>& visit);

// ----- per-cycle predicates ------------------------------------------------

/// Step masks that denote a conflict edge (some dependency kind present).
[[nodiscard]] constexpr bool is_conflict(TypeMask m) {
  return (m & kMaskConflict) != 0;
}

/// A step is a *forced* anti-dependency if RW is its only conflict kind.
[[nodiscard]] constexpr bool forced_rw(TypeMask m) {
  return (m & kMaskConflict) == kMaskRW;
}

/// Positions of forced anti-dependency steps.
[[nodiscard]] std::vector<std::size_t> forced_rw_positions(
    const TypedCycle& c);

/// True iff the cycle contains three consecutive steps
/// "conflict, predecessor, conflict" (condition (ii) of critical cycles).
[[nodiscard]] bool has_conflict_pred_conflict(const TypedCycle& c);

/// SER-critical (Definition 28): simple ∧ conflict-predecessor-conflict.
[[nodiscard]] bool ser_critical(const TypedCycle& c);

/// SI-critical (§5): SER-critical ∧ some kind assignment in which any two
/// anti-dependency edges are separated by a read/write dependency edge.
[[nodiscard]] bool si_critical(const TypedCycle& c);

/// PSI-critical (Definition 30): SER-critical ∧ some assignment with at
/// most one anti-dependency edge.
[[nodiscard]] bool psi_critical(const TypedCycle& c);

/// Some assignment has two *adjacent* (cyclically consecutive) RW steps.
/// Used by the Theorem 19 static robustness analysis: such a cycle is the
/// signature of an SI-only anomaly.
[[nodiscard]] bool can_have_adjacent_rw_pair(const TypedCycle& c);

/// Some assignment has no two cyclically-consecutive RW steps.
[[nodiscard]] bool can_avoid_adjacent_rw(const TypedCycle& c);

/// Some assignment has at least two RW steps, no two of them cyclically
/// consecutive. Used by the Theorem 22 static robustness analysis (PSI
/// towards SI).
[[nodiscard]] bool can_have_two_nonadjacent_rw(const TypedCycle& c);

/// Minimum number of RW steps over all assignments (= number of forced
/// positions).
[[nodiscard]] std::size_t min_rw_count(const TypedCycle& c);

// ----- implicit-edge cycle search (Theorem 9 / 21 fast paths) --------------
//
// The batch checkers need acyclicity of C = D ∪ D;RW (SI, Theorem 9) and
// irreflexivity of D+ ; RW? (PSI, Theorem 21) where D = SO ∪ WR ∪ WW.
// Materialising the composition or the closure costs O(n³/64) bit-matrix
// work; the predicates themselves are decidable by sparse graph search over
// the *virtual* relations in O(V + E) adjacency scans. These entry points
// answer the predicates only — witness extraction, which is off the hot
// path, stays with the materialised reference implementations.

/// True iff D ∪ D;RW is acyclic, decided without materialising D or the
/// composition: iterative DFS over the layered graph with one shadow node
/// û per transaction u, edges u → ŵ for D(u, w), ŵ → w, and ŵ → v for
/// RW(w, v). Cycles of the layered graph correspond exactly to cycles of
/// D ∪ D;RW (a ŵ-through step picks "use the D edge into w, then
/// optionally one RW out of w").
[[nodiscard]] bool composed_si_relation_acyclic(const Relation& so,
                                                const Relation& wr,
                                                const Relation& ww,
                                                const Relation& rw);

/// True iff D+ ; RW? is irreflexive, decided without materialising D+:
/// Tarjan's SCC condensation of D detects any D-cycle (a non-trivial SCC
/// or a self-loop puts the diagonal into D+); on a D-DAG, per-node
/// reachability sets are propagated in reverse topological order (one row
/// union per D edge, O(E · n/64) total instead of Warshall's O(n³/64)),
/// and a violation is an RW edge (w, t) with t →+ w in D.
[[nodiscard]] bool dplus_rw_irreflexive(const Relation& so,
                                        const Relation& wr,
                                        const Relation& ww,
                                        const Relation& rw);

}  // namespace sia
