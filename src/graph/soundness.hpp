#pragma once

#include "core/abstract_execution.hpp"
#include "graph/dependency_graph.hpp"

/// \file soundness.hpp
/// The constructive content of Theorem 10(i) — the paper's key technical
/// contribution: from any dependency graph G ∈ GraphSI, build an abstract
/// execution X ∈ ExecSI with graph(X) = G.
///
/// The construction follows §4 exactly:
///  1. Lemma 15 closed form: for a seed relation R, the smallest solution
///     of the inequality system (S1)–(S5) of Figure 3 with CO ⊇ R is
///         CO  = ((D ; RW?) ∪ R)+          where D = SO ∪ WR ∪ WW
///         VIS = ((D ; RW?) ∪ R)* ; D  =  D ∪ CO ; D
///  2. Start from R = ∅ (the smallest solution overall); CO₀ is acyclic
///     exactly when G ∈ GraphSI.
///  3. While CO is not total, pick an unrelated pair (T, S) and recompute
///     the smallest solution with the pair forced into CO — equivalently,
///     CO ← (CO ∪ {(T, S)})+, maintained incrementally.
///  4. The final pair (VIS, CO) with CO total is the desired execution
///     (Lemma 13 discharges the SI axioms and graph preservation).

namespace sia {

/// The (VIS, CO) pair produced by the Lemma 15 closed form.
struct InequalitySolution {
  Relation vis;
  Relation co;
};

/// Lemma 15: smallest solution of the Figure 3 system with CO ⊇ \p seed.
/// Defined for every dependency graph; the result's CO is acyclic iff the
/// graph imposes no contradiction given the seed.
[[nodiscard]] InequalitySolution smallest_solution(const DepRelations& rel,
                                                   const Relation& seed);

/// Lemma 15 with R = ∅ — the smallest solution overall. Its CO equals
/// ((SO ∪ WR ∪ WW) ; RW?)+, whose acyclicity is exactly the GraphSI
/// condition of Theorem 9.
[[nodiscard]] InequalitySolution smallest_solution(const DepRelations& rel);

/// Verifies that (vis, co) satisfies the inequalities (S1)–(S5) of
/// Figure 3 with respect to \p rel. Returns the label of the first
/// violated inequality, or nullopt. Exposed for property tests of
/// Lemma 15.
[[nodiscard]] std::optional<std::string> check_inequalities(
    const DepRelations& rel, const Relation& vis, const Relation& co);

/// Theorem 10(i): builds X ∈ ExecSI with graph(X) = \p g.
/// \throws ModelError if g ∉ GraphSI (INT fails or CO₀ is cyclic) or if
///         g is not a valid dependency graph.
[[nodiscard]] AbstractExecution construct_execution(const DependencyGraph& g);

/// Like construct_execution() but stops at the pre-execution P₀ of the
/// proof (partial CO, R = ∅). Useful to exercise Lemma 13 on its own.
[[nodiscard]] AbstractExecution construct_pre_execution(
    const DependencyGraph& g);

}  // namespace sia
