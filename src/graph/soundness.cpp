#include "graph/soundness.hpp"

namespace sia {

InequalitySolution smallest_solution(const DepRelations& rel,
                                     const Relation& seed) {
  const Relation d = rel.dependencies();
  // step = (D ; RW?) ∪ R  =  D ∪ D;RW ∪ R.
  Relation step = d | d.compose(rel.rw) | seed;
  Relation co = step.transitive_closure();
  // VIS = step* ; D = D ∪ step+ ; D = D ∪ CO ; D.
  Relation vis = d | co.compose(d);
  return {std::move(vis), std::move(co)};
}

InequalitySolution smallest_solution(const DepRelations& rel) {
  return smallest_solution(rel, Relation(rel.so.size()));
}

std::optional<std::string> check_inequalities(const DepRelations& rel,
                                              const Relation& vis,
                                              const Relation& co) {
  const Relation d = rel.dependencies();
  if (!d.subset_of(vis)) return "S1: SO ∪ WR ∪ WW ⊈ VIS";
  if (!co.compose(vis).subset_of(vis)) return "S2: CO ; VIS ⊈ VIS";
  if (!vis.subset_of(co)) return "S3: VIS ⊈ CO";
  if (!co.compose(co).subset_of(co)) return "S4: CO ; CO ⊈ CO";
  if (!vis.compose(rel.rw).subset_of(co)) return "S5: VIS ; RW ⊈ CO";
  return std::nullopt;
}

namespace {

/// Shared front half of the construction: validates the graph, builds the
/// smallest solution, and checks the GraphSI acyclicity condition.
InequalitySolution solve_or_throw(const DependencyGraph& g) {
  if (auto v = g.validate()) {
    throw ModelError("construct_execution: invalid dependency graph: " +
                     v->detail);
  }
  if (auto v = axioms::check_int(g.history())) {
    throw ModelError("construct_execution: history violates INT: " +
                     v->detail);
  }
  InequalitySolution sol = smallest_solution(g.relations());
  if (!sol.co.is_acyclic()) {
    throw ModelError(
        "construct_execution: graph is not in GraphSI "
        "(((SO ∪ WR ∪ WW) ; RW?) has a cycle)");
  }
  return sol;
}

}  // namespace

AbstractExecution construct_pre_execution(const DependencyGraph& g) {
  InequalitySolution sol = solve_or_throw(g);
  return {g.history(), std::move(sol.vis), std::move(sol.co)};
}

AbstractExecution construct_execution(const DependencyGraph& g) {
  InequalitySolution sol = solve_or_throw(g);
  const Relation d = g.relations().dependencies();

  // Totalise CO, maintaining at each step the smallest solution with the
  // accumulated seed R_i (Lemma 15 / proof of Theorem 10(i)). Inserting an
  // unrelated pair can never create a cycle: CO is transitively closed, so
  // a cycle through the new edge (a, b) would mean CO(b, a), contradicting
  // unrelatedness.
  while (const auto pair = sol.co.unrelated_pair()) {
    sol.co.add_edge_transitively(pair->first, pair->second);
  }

  // VIS for the final seed: D ∪ CO ; D.
  Relation vis = d | sol.co.compose(d);
  return {g.history(), std::move(vis), std::move(sol.co)};
}

}  // namespace sia
