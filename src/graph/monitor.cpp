#include "graph/monitor.hpp"

#include <algorithm>

namespace sia {

std::string to_string(MonitorVerdict v) {
  switch (v) {
    case MonitorVerdict::kConsistent:
      return "Consistent";
    case MonitorVerdict::kViolation:
      return "Violation";
    case MonitorVerdict::kSaturated:
      return "Saturated";
  }
  return "?";
}

ConsistencyMonitor::ConsistencyMonitor(Model model)
    : model_(model), closure_(16), d_preds_(1) {}

void ConsistencyMonitor::ensure_capacity(TxnId needed) {
  if (needed < closure_.size()) return;
  std::size_t cap = closure_.size();
  while (cap <= needed) cap *= 2;
  Relation bigger(cap);
  for (const auto& [a, b] : closure_.edges()) bigger.add(a, b);
  closure_ = std::move(bigger);
}

void ConsistencyMonitor::record_violation(TxnId at,
                                          const std::string& detail) {
  if (violation_) return;  // first violation is sticky
  violation_ = at;
  violation_detail_ = detail;
}

bool ConsistencyMonitor::closure_would_reach(TxnId a, TxnId b) const {
  if (closure_.contains(a, b)) return true;
  if (!batching_ || deferred_edges_.empty()) return false;
  return closure_.closed_reaches_with(a, b, deferred_adj_);
}

void ConsistencyMonitor::add_closure_edge(TxnId a, TxnId b) {
  if (batching_) {
    deferred_edges_.emplace_back(a, b);
    if (deferred_adj_.size() <= a) deferred_adj_.resize(a + 1);
    deferred_adj_[a].push_back(b);
    return;
  }
  // Implied edges are no-ops for a transitive closure: every predecessor
  // of a already sees b and its successors.
  if (!closure_.contains(a, b)) closure_.add_edge_transitively(a, b);
}

void ConsistencyMonitor::flush_deferred() {
  for (const auto& [a, b] : deferred_edges_) {
    if (!closure_.contains(a, b)) closure_.add_edge_transitively(a, b);
  }
  deferred_edges_.clear();
  deferred_adj_.clear();
}

std::vector<TxnId> ConsistencyMonitor::commit_all(
    const std::vector<MonitoredCommit>& batch) {
  std::vector<TxnId> ids;
  ids.reserve(batch.size());
  batching_ = true;
  try {
    for (const MonitoredCommit& c : batch) ids.push_back(commit(c));
  } catch (...) {
    batching_ = false;
    flush_deferred();
    throw;
  }
  batching_ = false;
  flush_deferred();
  return ids;
}

BatchResult ConsistencyMonitor::commit_all_guarded(
    const std::vector<MonitoredCommit>& batch) {
  BatchResult result;
  result.ids.reserve(batch.size());
  batching_ = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      result.ids.push_back(commit(batch[i]));
    } catch (const ModelError& e) {
      // commit() validated before mutating, so the monitor is untouched:
      // quarantine this commit and keep going.
      result.ids.push_back(0);
      result.quarantined.push_back(i);
      result.errors.emplace_back(e.what());
    }
  }
  batching_ = false;
  flush_deferred();
  return result;
}

void ConsistencyMonitor::add_generator(TxnId a, TxnId b, DepKind kind,
                                       ObjId obj) {
  if (a == b) {
    record_violation(next_id_ - 1,
                     "reflexive " + to_string(DepEdge{a, b, kind, obj}));
    return;
  }
  if (!violation_ && closure_would_reach(b, a)) {
    record_violation(
        next_id_ - 1,
        "cycle closed by " + to_string(DepEdge{a, b, kind, obj}) +
            " (reverse path already committed)");
  }
  add_closure_edge(a, b);
}

void ConsistencyMonitor::add_anti_dependency(TxnId r, TxnId s, ObjId obj) {
  if (r == s) return;  // Definition 5 requires T != S
  switch (model_) {
    case Model::kSER:
      // RW edges participate directly (Theorem 8).
      add_generator(r, s, DepKind::kRW, obj);
      break;
    case Model::kSI:
      // Theorem 9's relation is (D ; RW?): an anti-dependency only
      // matters composed with a D edge into its source. The source's
      // D-predecessors are final once it has committed.
      for (const TxnId d : d_preds_[r]) {
        if (d == s) {
          record_violation(next_id_ - 1,
                           "D edge T" + std::to_string(s) + " -> T" +
                               std::to_string(r) + " composed with " +
                               to_string(DepEdge{r, s, DepKind::kRW, obj}));
          continue;
        }
        if (!violation_ && closure_would_reach(s, d)) {
          record_violation(
              next_id_ - 1,
              "cycle closed by D;RW step T" + std::to_string(d) + " -> T" +
                  std::to_string(s) + " (via " +
                  to_string(DepEdge{r, s, DepKind::kRW, obj}) + ")");
        }
        add_closure_edge(d, s);
      }
      break;
    case Model::kPSI:
      // Theorem 21: irreflexive(D+ ; RW?). D-paths only ever run from
      // older to newer commits, so D+(s, r) is already final here.
      if (!violation_ && closure_would_reach(s, r)) {
        record_violation(next_id_ - 1,
                         "D+ path T" + std::to_string(s) + " ->+ T" +
                             std::to_string(r) + " closed by " +
                             to_string(DepEdge{r, s, DepKind::kRW, obj}));
      }
      break;
  }
}

void ConsistencyMonitor::validate(const MonitoredCommit& c) const {
  for (const ObjId obj : c.txn.external_read_set()) {
    const auto it = c.read_sources.find(obj);
    if (it == c.read_sources.end()) {
      throw ModelError("ConsistencyMonitor: commit " +
                       std::to_string(next_id_) + " reads obj" +
                       std::to_string(obj) + " without a read source");
    }
    const TxnId src = it->second;
    // Objects not yet in objects_ have exactly one writer: the implicit
    // initialiser (id 0) — the same state object_state() lazily creates.
    const auto obj_it = objects_.find(obj);
    const bool known = obj_it != objects_.end()
                           ? obj_it->second.writer_pos.count(src) != 0
                           : src == 0;
    if (!known) {
      throw ModelError("ConsistencyMonitor: read source T" +
                       std::to_string(src) + " never wrote obj" +
                       std::to_string(obj));
    }
  }
}

TxnId ConsistencyMonitor::commit(const MonitoredCommit& c) {
  validate(c);  // throws before any state below is touched
  if (max_transactions_ != 0 && commit_count() >= max_transactions_) {
    ++dropped_commits_;  // saturated: drop unanalysed, keep memory bounded
    return 0;
  }
  const TxnId id = next_id_++;
  ensure_capacity(id + 1);
  d_preds_.resize(id + 1);
  if (keep_log_) log_.push_back(c);

  // Pending anti-dependencies, processed after every D edge of this
  // commit so that d_preds_[id] is complete when they compose.
  std::vector<std::pair<std::pair<TxnId, TxnId>, ObjId>> pending_rw;

  // --- session order ---------------------------------------------------
  if (auto it = session_last_.find(c.session); it != session_last_.end()) {
    add_generator(it->second, id, DepKind::kSO, kInvalidObj);
    d_preds_[id].push_back(it->second);
  }
  session_last_[c.session] = id;

  // --- read dependencies (and anti-dependencies out of this reader) ----
  for (const ObjId obj : c.txn.external_read_set()) {
    const auto it = c.read_sources.find(obj);
    if (it == c.read_sources.end()) {
      throw ModelError("ConsistencyMonitor: commit " + std::to_string(id) +
                       " reads obj" + std::to_string(obj) +
                       " without a read source");
    }
    const TxnId src = it->second;
    ObjectState& state = object_state(obj);
    const auto pos = state.writer_pos.find(src);
    if (pos == state.writer_pos.end()) {
      throw ModelError("ConsistencyMonitor: read source T" +
                       std::to_string(src) + " never wrote obj" +
                       std::to_string(obj));
    }
    add_generator(src, id, DepKind::kWR, obj);
    d_preds_[id].push_back(src);
    // Anti-dependencies against writers that already overtook the source.
    for (std::size_t p = pos->second + 1; p < state.writers.size(); ++p) {
      pending_rw.push_back({{id, state.writers[p]}, obj});
    }
    state.readers.emplace_back(id, pos->second);
  }

  // --- write dependencies (and anti-dependencies into this writer) -----
  for (const ObjId obj : c.txn.write_set()) {
    ObjectState& state = object_state(obj);
    const TxnId prev = state.writers.back();
    if (prev != id) {
      add_generator(prev, id, DepKind::kWW, obj);
      d_preds_[id].push_back(prev);
    }
    // Every earlier reader of this object read a version this write
    // overtakes.
    for (const auto& [reader, src_pos] : state.readers) {
      (void)src_pos;
      pending_rw.push_back({{reader, id}, obj});
    }
    state.writer_pos.emplace(id, state.writers.size());
    state.writers.push_back(id);
  }

  for (const auto& [edge, obj] : pending_rw) {
    add_anti_dependency(edge.first, edge.second, obj);
  }
  return id;
}

ConsistencyMonitor::ObjectState& ConsistencyMonitor::object_state(ObjId obj) {
  auto [it, inserted] = objects_.try_emplace(obj);
  if (inserted) {
    // The implicit initialising transaction (id 0) wrote version 0.
    it->second.writers.push_back(0);
    it->second.writer_pos.emplace(0, 0);
  }
  return it->second;
}

DependencyGraph ConsistencyMonitor::graph() const {
  if (!keep_log_ && commit_count() > 0) {
    throw ModelError(
        "ConsistencyMonitor: graph() requires the commit log; it was "
        "disabled with set_keep_log(false)");
  }
  // objects_ is hashed; sort the ids to recover the deterministic
  // ascending object order the reconstruction has always produced.
  std::vector<ObjId> obj_ids;
  obj_ids.reserve(objects_.size());
  for (const auto& [obj, state] : objects_) {
    (void)state;
    obj_ids.push_back(obj);
  }
  std::sort(obj_ids.begin(), obj_ids.end());
  History h;
  {
    Transaction init;
    for (const ObjId obj : obj_ids) init.append(write(obj, 0));
    h.append_singleton(std::move(init));
  }
  for (const MonitoredCommit& c : log_) {
    h.append(c.session + 1, c.txn);
  }
  DependencyGraph g(std::move(h));
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const TxnId reader = static_cast<TxnId>(i + 1);
    for (const auto& [obj, src] : log_[i].read_sources) {
      if (log_[i].txn.external_read(obj).has_value()) {
        g.set_read_from(obj, src, reader);
      }
    }
  }
  for (const ObjId obj : obj_ids) {
    g.set_write_order(obj, objects_.at(obj).writers);
  }
  return g;
}

std::vector<MonitoredCommit> monitored_commits(const DependencyGraph& g) {
  const History& h = g.history();
  // Transaction 0 must be the initialising transaction (the convention of
  // Recorder::build and HistoryBuilder::init_txn); it is implicit in the
  // monitor.
  std::vector<MonitoredCommit> commits;
  commits.reserve(h.txn_count() > 0 ? h.txn_count() - 1 : 0);
  for (TxnId id = 1; id < h.txn_count(); ++id) {
    MonitoredCommit c;
    c.session = h.session_of(id);
    c.txn = h.txn(id);
    for (const ObjId obj : h.txn(id).external_read_set()) {
      const auto src = g.read_source(obj, id);
      if (!src) {
        throw ModelError("replay: graph lacks a WR source for T" +
                         std::to_string(id));
      }
      c.read_sources[obj] = *src;
    }
    commits.push_back(std::move(c));
  }
  return commits;
}

ConsistencyMonitor replay(const DependencyGraph& g, Model m) {
  ConsistencyMonitor monitor(m);
  for (const MonitoredCommit& c : monitored_commits(g)) monitor.commit(c);
  return monitor;
}

ConsistencyMonitor replay_batched(const DependencyGraph& g, Model m,
                                  std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  ConsistencyMonitor monitor(m);
  const std::vector<MonitoredCommit> commits = monitored_commits(g);
  for (std::size_t lo = 0; lo < commits.size(); lo += batch_size) {
    const auto hi = std::min(lo + batch_size, commits.size());
    monitor.commit_all({commits.begin() + static_cast<std::ptrdiff_t>(lo),
                        commits.begin() + static_cast<std::ptrdiff_t>(hi)});
  }
  return monitor;
}

}  // namespace sia
