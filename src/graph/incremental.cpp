#include "graph/incremental.hpp"

#include <algorithm>
#include <cassert>

namespace sia {

// ---------------------------------------------------------------------------
// IncrementalDigraph
// ---------------------------------------------------------------------------

IncrementalDigraph::Slot IncrementalDigraph::add_node() {
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<Slot>(nodes_.size());
    nodes_.emplace_back();
    gen_.push_back(0);
    mark_.push_back(0);
  }
  Node& n = nodes_[s];
  n.out.clear();
  n.in.clear();
  n.live = true;
  // Fresh nodes take a strictly maximal order; the stride leaves gaps so
  // that backward edges can usually relocate their source in O(degree)
  // instead of searching (see insert_edge). Reorders only permute or
  // bisect existing values, so next_ord_ stays an upper bound forever.
  n.ord = next_ord_;
  next_ord_ += kOrdStride;
  const bool fresh_ord = live_ords_.insert(n.ord).second;
  assert(fresh_ord && "IncrementalDigraph: duplicate live ord");
  (void)fresh_ord;
  ++live_;
  return s;
}

void IncrementalDigraph::free_node(Slot s) {
  Node& n = nodes_[s];
  // Release capacity for real: the flat-memory claim is about the heap,
  // not the node count.
  n.out.clear();
  n.out.shrink_to_fit();
  n.in.clear();
  n.in.shrink_to_fit();
  n.live = false;
  live_ords_.erase(n.ord);
  ++gen_[s];
  free_.push_back(s);
  --live_;
}

void IncrementalDigraph::free_nodes(const std::vector<Slot>& dead) {
  for (const Slot s : dead) {
    nodes_[s].live = false;
    --live_;
  }
  // One erase_if pass per affected survivor (epoch-deduped), instead of
  // one linear scan per removed edge: the batch is linear in the touched
  // adjacency. Survivor out-lists never reference dead nodes — an edge
  // q -> p ascends in ord, so ord(q) < ord(p) < barrier would have put q
  // in the dead set too.
  ++epoch_;
  for (const Slot s : dead) {
    for (const Slot q : nodes_[s].out) {
      if (!nodes_[q].live || mark_[q] == epoch_) continue;
      mark_[q] = epoch_;
      std::erase_if(nodes_[q].in,
                    [this](Slot p) { return !nodes_[p].live; });
    }
  }
  for (const Slot s : dead) {
    Node& n = nodes_[s];
    n.out.clear();
    n.out.shrink_to_fit();
    n.in.clear();
    n.in.shrink_to_fit();
    live_ords_.erase(n.ord);
    ++gen_[s];
    free_.push_back(s);
  }
}

void IncrementalDigraph::remove_in_ref(Slot q, Slot p) {
  std::vector<Slot>& in = nodes_[q].in;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == p) {
      in[i] = in.back();
      in.pop_back();
      return;
    }
  }
}

bool IncrementalDigraph::insert_edge(Slot a, Slot b) {
  if (a == b) return false;
  Node& na = nodes_[a];
  Node& nb = nodes_[b];
  if (na.ord < nb.ord) {  // already topologically consistent: O(1)
    na.out.push_back(b);
    nb.in.push_back(a);
    return true;
  }
  // Backward edge. First try the O(degree) relocation: if a's entire
  // neighbourhood already fits around a slot below b — every predecessor
  // of a ordered before min(b, successors of a) — then no path b ⇝ a can
  // exist (it would have to enter a through a predecessor ordered after
  // b), so sliding a into the gap restores the order with no search at
  // all. This is the hot case for monitor streams: a fresh reader with a
  // handful of final D-predecessors anti-depending on an old writer.
  {
    std::uint64_t max_pred = 0;
    for (const Slot p : na.in) max_pred = std::max(max_pred, nodes_[p].ord);
    std::uint64_t min_succ = nb.ord;
    for (const Slot q : na.out) min_succ = std::min(min_succ, nodes_[q].ord);
    if (max_pred + 1 < min_succ) {
      // The gap (max_pred, min_succ) may already hold ords of unrelated
      // nodes, and live ords must stay pairwise distinct (see the class
      // comment): probe upward from the midpoint for a free value.
      // Identical relocations — the hot monitor case of several fresh
      // readers with the same D-predecessors anti-depending on one old
      // writer — land on consecutive values. A crowded gap falls
      // through to the bounded reorder below, which only permutes
      // existing (distinct) ords and needs no free value.
      std::uint64_t cand = max_pred + (min_succ - max_pred) / 2;
      const std::uint64_t cand_end = std::min(min_succ, cand + kMaxOrdProbes);
      for (; cand < cand_end; ++cand) {
        if (live_ords_.insert(cand).second) {
          live_ords_.erase(na.ord);
          na.ord = cand;
          na.out.push_back(b);
          nb.in.push_back(a);
          return true;
        }
      }
    }
  }
  // Pearce–Kelly: the affected region is the ord-interval (lo, hi). A
  // forward search from b bounded by hi either meets a (a cycle — the
  // edge is rejected and nothing changes) or yields the set to shift.
  const std::uint64_t lo = nb.ord;
  const std::uint64_t hi = na.ord;
  assert(lo < hi && "backward edge endpoints must have distinct ords");
  ++epoch_;
  delta_f_.clear();
  stack_.clear();
  stack_.push_back(b);
  mark_[b] = epoch_;
  while (!stack_.empty()) {
    const Slot u = stack_.back();
    stack_.pop_back();
    delta_f_.push_back(u);
    for (const Slot v : nodes_[u].out) {
      if (v == a) return false;  // b ⇝ a exists: a -> b closes a cycle
      if (nodes_[v].ord < hi && mark_[v] != epoch_) {
        mark_[v] = epoch_;
        stack_.push_back(v);
      }
    }
  }
  ++epoch_;
  delta_b_.clear();
  stack_.push_back(a);
  mark_[a] = epoch_;
  while (!stack_.empty()) {
    const Slot u = stack_.back();
    stack_.pop_back();
    delta_b_.push_back(u);
    for (const Slot v : nodes_[u].in) {
      if (nodes_[v].ord > lo && mark_[v] != epoch_) {
        mark_[v] = epoch_;
        stack_.push_back(v);
      }
    }
  }
  // Shift: everything that reaches a must order before everything b
  // reaches. Pool the affected ord values and redistribute (the two sets
  // are disjoint, else the forward pass would have found the cycle).
  const auto by_ord = [this](Slot x, Slot y) {
    return nodes_[x].ord < nodes_[y].ord;
  };
  std::sort(delta_b_.begin(), delta_b_.end(), by_ord);
  std::sort(delta_f_.begin(), delta_f_.end(), by_ord);
  ord_pool_.clear();
  for (const Slot s : delta_b_) ord_pool_.push_back(nodes_[s].ord);
  for (const Slot s : delta_f_) ord_pool_.push_back(nodes_[s].ord);
  std::sort(ord_pool_.begin(), ord_pool_.end());
  assert(std::adjacent_find(ord_pool_.begin(), ord_pool_.end()) ==
             ord_pool_.end() &&
         "IncrementalDigraph: duplicate live ord in reorder pool");
  std::size_t i = 0;
  for (const Slot s : delta_b_) nodes_[s].ord = ord_pool_[i++];
  for (const Slot s : delta_f_) nodes_[s].ord = ord_pool_[i++];
  na.out.push_back(b);
  nb.in.push_back(a);
  return true;
}

bool IncrementalDigraph::reaches(Slot from, Slot to) const {
  if (from == to) return true;
  const std::uint64_t hi = nodes_[to].ord;
  if (nodes_[from].ord > hi) return false;  // paths only ascend in ord
  ++epoch_;
  stack_.clear();
  stack_.push_back(from);
  mark_[from] = epoch_;
  while (!stack_.empty()) {
    const Slot u = stack_.back();
    stack_.pop_back();
    for (const Slot v : nodes_[u].out) {
      if (v == to) return true;
      if (nodes_[v].ord < hi && mark_[v] != epoch_) {
        mark_[v] = epoch_;
        stack_.push_back(v);
      }
    }
  }
  return false;
}

bool IncrementalDigraph::ords_unique() const {
  if (live_ords_.size() != live_) return false;
  std::unordered_set<std::uint64_t> seen;
  for (const Node& n : nodes_) {
    if (!n.live) continue;
    if (live_ords_.count(n.ord) == 0) return false;
    if (!seen.insert(n.ord).second) return false;
  }
  return true;
}

std::size_t IncrementalDigraph::approx_bytes() const {
  std::size_t total = nodes_.capacity() * sizeof(Node) +
                      gen_.capacity() * sizeof(std::uint32_t) +
                      free_.capacity() * sizeof(Slot) +
                      mark_.capacity() * sizeof(std::uint64_t) +
                      live_ords_.size() * (sizeof(std::uint64_t) + 2 * 8);
  for (const Node& n : nodes_) {
    total += (n.out.capacity() + n.in.capacity()) * sizeof(Slot);
  }
  return total;
}

// ---------------------------------------------------------------------------
// StreamingMonitor
// ---------------------------------------------------------------------------

StreamingMonitor::StreamingMonitor(Model model, StreamingConfig cfg)
    : model_(model), cfg_(cfg) {
  // The implicit initialising transaction (id 0) starts as a real node;
  // like any other it can be pruned once the watermark passes its last
  // readable version, after which edges out of it are dropped.
  const auto s0 = graph_.add_node();
  d_preds_.resize(s0 + 1);
  id_to_slot_.emplace(0, s0);
}

void StreamingMonitor::record_violation(TxnId at, const std::string& detail) {
  if (violation_) return;  // first violation is sticky
  violation_ = at;
  violation_detail_ = detail;
}

IncrementalDigraph::Slot StreamingMonitor::slot_of(TxnId id) const {
  const auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? IncrementalDigraph::kNoSlot : it->second;
}

bool StreamingMonitor::edge_seen(IncrementalDigraph::Slot a,
                                 IncrementalDigraph::Slot b) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  return !seen_edges_.insert(key).second;
}

void StreamingMonitor::validate(const MonitoredCommit& c) const {
  for (const ObjId obj : c.txn.external_read_set()) {
    const auto it = c.read_sources.find(obj);
    if (it == c.read_sources.end()) {
      throw ModelError("StreamingMonitor: commit " +
                       std::to_string(next_id_) + " reads obj" +
                       std::to_string(obj) + " without a read source");
    }
    const TxnId src = it->second;
    const auto obj_it = objects_.find(obj);
    const bool known = obj_it != objects_.end()
                           ? obj_it->second.writer_pos.count(src) != 0
                           : src == 0;
    if (!known) {
      throw ModelError("StreamingMonitor: read source T" +
                       std::to_string(src) + " never wrote obj" +
                       std::to_string(obj) +
                       " or predates the GC watermark T" +
                       std::to_string(watermark_) +
                       " (staleness window exceeded)");
    }
  }
}

StreamingMonitor::ObjectState& StreamingMonitor::object_state(ObjId obj) {
  auto [it, inserted] = objects_.try_emplace(obj);
  if (inserted) {
    // The implicit initialising transaction (id 0) wrote version 0.
    it->second.writers.push_back(0);
    it->second.writer_pos.emplace(0, 0);
  }
  return it->second;
}

void StreamingMonitor::add_generator(TxnId a, TxnId b, DepKind kind,
                                     ObjId obj) {
  if (a == b) {
    record_violation(next_id_ - 1,
                     "reflexive " + to_string(DepEdge{a, b, kind, obj}));
    return;
  }
  if (violation_) return;
  add_generator_slots(a, b, slot_of(a), slot_of(b), kind, obj);
}

void StreamingMonitor::add_generator_slots(TxnId a, TxnId b,
                                           IncrementalDigraph::Slot sa,
                                           IncrementalDigraph::Slot sb,
                                           DepKind kind, ObjId obj) {
  if (a == b) {
    record_violation(next_id_ - 1,
                     "reflexive " + to_string(DepEdge{a, b, kind, obj}));
    return;
  }
  if (violation_) return;
  // A pruned source cannot be re-entered by any future path (DESIGN.md
  // §4f): dropping the edge — and the provably-false cycle query — is
  // exactly what the closure monitor would conclude.
  if (sa == IncrementalDigraph::kNoSlot ||
      sb == IncrementalDigraph::kNoSlot) {
    return;
  }
  if (edge_seen(sa, sb)) return;
  if (!graph_.insert_edge(sa, sb)) {
    record_violation(
        next_id_ - 1,
        "cycle closed by " + to_string(DepEdge{a, b, kind, obj}) +
            " (reverse path already committed)");
  }
}

void StreamingMonitor::add_anti_dependency(const PendingRw& p) {
  if (p.compose_union) {
    // SI writes-path: compose the object's reader-predecessor union
    // against the new writer. Contributing readers are always older than
    // s, so the Definition 5 r != s requirement holds per entry.
    const auto ss = resolve(p.s);
    const auto& preds = objects_.at(p.obj).reader_preds;
    // Entries below from_seq are implied via the WW chain; seqs are
    // appended in order, so the live suffix starts at a binary search.
    auto it = std::lower_bound(
        preds.begin(), preds.end(), p.from_seq,
        [](const ReaderPred& e, std::uint64_t seq) { return e.seq < seq; });
    for (; it != preds.end(); ++it) {
      const ReaderPred& e = *it;
      if (e.d.id == p.s.id) {
        record_violation(
            next_id_ - 1,
            "D edge T" + std::to_string(p.s.id) + " -> T" +
                std::to_string(e.reader) + " composed with " +
                to_string(DepEdge{e.reader, p.s.id, DepKind::kRW, p.obj}));
        continue;
      }
      if (violation_) continue;
      const auto sd = resolve(e.d);
      if (sd == IncrementalDigraph::kNoSlot ||
          ss == IncrementalDigraph::kNoSlot) {
        continue;  // pruned D-predecessor: composed edge is irrelevant
      }
      if (edge_seen(sd, ss)) continue;
      if (!graph_.insert_edge(sd, ss)) {
        record_violation(
            next_id_ - 1,
            "cycle closed by D;RW step T" + std::to_string(e.d.id) +
                " -> T" + std::to_string(p.s.id) + " (via " +
                to_string(
                    DepEdge{e.reader, p.s.id, DepKind::kRW, p.obj}) +
                ")");
      }
    }
    return;
  }
  if (p.r.id == p.s.id) return;  // Definition 5 requires T != S
  switch (model_) {
    case Model::kSER:
      if (violation_) break;
      add_generator_slots(p.r.id, p.s.id, resolve(p.r), resolve(p.s),
                          DepKind::kRW, p.obj);
      break;
    case Model::kSI: {
      const auto sr = resolve(p.r);
      if (sr == IncrementalDigraph::kNoSlot) break;  // r pruned: no preds
      const auto ss = resolve(p.s);
      for (const NodeRef& d : d_preds_[sr]) {
        if (d.id == p.s.id) {
          record_violation(
              next_id_ - 1,
              "D edge T" + std::to_string(p.s.id) + " -> T" +
                  std::to_string(p.r.id) + " composed with " +
                  to_string(DepEdge{p.r.id, p.s.id, DepKind::kRW, p.obj}));
          continue;
        }
        if (violation_) continue;
        const auto sd = resolve(d);
        if (sd == IncrementalDigraph::kNoSlot ||
            ss == IncrementalDigraph::kNoSlot) {
          continue;  // pruned D-predecessor: composed edge is irrelevant
        }
        if (edge_seen(sd, ss)) continue;
        if (!graph_.insert_edge(sd, ss)) {
          record_violation(
              next_id_ - 1,
              "cycle closed by D;RW step T" + std::to_string(d.id) +
                  " -> T" + std::to_string(p.s.id) + " (via " +
                  to_string(DepEdge{p.r.id, p.s.id, DepKind::kRW, p.obj}) +
                  ")");
        }
      }
      break;
    }
    case Model::kPSI: {
      if (violation_) break;
      const auto ss = resolve(p.s);
      const auto sr = resolve(p.r);
      if (ss == IncrementalDigraph::kNoSlot ||
          sr == IncrementalDigraph::kNoSlot) {
        break;
      }
      if (graph_.reaches(ss, sr)) {
        record_violation(
            next_id_ - 1,
            "D+ path T" + std::to_string(p.s.id) + " ->+ T" +
                std::to_string(p.r.id) + " closed by " +
                to_string(DepEdge{p.r.id, p.s.id, DepKind::kRW, p.obj}));
      }
      break;
    }
  }
}

TxnId StreamingMonitor::commit(const MonitoredCommit& c) {
  validate(c);  // throws before any state below is touched
  if (cfg_.max_transactions != 0 &&
      commit_count() >= cfg_.max_transactions) {
    ++dropped_commits_;  // explicit opt-in ceiling, kept for compatibility
    return 0;
  }
  const TxnId id = next_id_++;
  if (cfg_.keep_log) log_.push_back(c);
  // Drop the previous commit's duplicate-edge pairs (GC may recycle
  // slots between commits, so pairs must never carry over); clear()
  // keeps the bucket array, so steady state allocates nothing.
  seen_edges_.clear();

  // After the first violation the verdict is sticky and every cycle query
  // is short-circuited, so the graph structure goes quiescent; only the
  // validator state (session tails, version table) keeps advancing.
  IncrementalDigraph::Slot slot = IncrementalDigraph::kNoSlot;
  if (!violation_) {
    slot = graph_.add_node();
    if (d_preds_.size() <= slot) d_preds_.resize(slot + 1);
    d_preds_[slot].clear();
    id_to_slot_.emplace(id, slot);
  }

  pending_rw_.clear();

  // --- session order ---------------------------------------------------
  if (auto it = session_last_.find(c.session); it != session_last_.end()) {
    if (!violation_) {
      add_generator(it->second, id, DepKind::kSO, kInvalidObj);
      d_preds_[slot].push_back(make_ref(it->second));
    }
  }
  session_last_[c.session] = id;

  // --- read dependencies (and anti-dependencies out of this reader) ----
  for (const ObjId obj : c.txn.external_read_set()) {
    const auto it = c.read_sources.find(obj);
    if (it == c.read_sources.end()) {
      throw ModelError("StreamingMonitor: commit " + std::to_string(id) +
                       " reads obj" + std::to_string(obj) +
                       " without a read source");
    }
    const TxnId src = it->second;
    ObjectState& state = object_state(obj);
    const auto pos = state.writer_pos.find(src);
    if (pos == state.writer_pos.end()) {
      throw ModelError("StreamingMonitor: read source T" +
                       std::to_string(src) + " never wrote obj" +
                       std::to_string(obj));
    }
    if (!violation_) {
      add_generator(src, id, DepKind::kWR, obj);
    }
    if (!violation_) {
      d_preds_[slot].push_back(make_ref(src));
      // Anti-dependencies against writers that already overtook the
      // source. Every overwriter of a still-readable version is itself
      // retained, so the retained suffix sees exactly the overtakers the
      // full writer list would.
      const NodeRef self{id, slot, graph_.gen(slot)};
      for (std::size_t p = pos->second - state.base + 1;
           p < state.writers.size(); ++p) {
        pending_rw_.push_back({self, make_ref(state.writers[p]), obj});
      }
      state.readers.push_back(
          {id, slot, graph_.gen(slot), pos->second, state.readers_seq++});
    }
  }

  // --- write dependencies (and anti-dependencies into this writer) -----
  for (const ObjId obj : c.txn.write_set()) {
    ObjectState& state = object_state(obj);
    const TxnId prev = state.writers.back();
    if (!violation_ && prev != id) {
      add_generator(prev, id, DepKind::kWW, obj);
      d_preds_[slot].push_back(make_ref(prev));
    }
    if (!violation_) {
      // Every retained earlier reader of this object read a version this
      // write overtakes (pruned readers' anti-dependencies are provably
      // cycle-free; see §4f).
      const NodeRef self{id, slot, graph_.gen(slot)};
      if (model_ == Model::kSI) {
        // One deferred entry stands for the whole readers × preds
        // product via the object's deduplicated union; entries already
        // composed against the previous writer are implied via its WW
        // edge and skipped.
        pending_rw_.push_back(
            {NodeRef{}, self, obj, true, state.composed_preds_upto});
        state.composed_preds_upto = state.preds_seq;
      } else {
        // Under SER the same WW-chain implication applies to the direct
        // RW(r -> w) edges; under PSI no edge is materialised for them,
        // so every retained reader must stay in the (O(1)-per-query)
        // reachability loop.
        for (const Reader& rd : state.readers) {
          if (model_ == Model::kSER &&
              rd.seq < state.composed_readers_upto) {
            continue;
          }
          pending_rw_.push_back({{rd.id, rd.slot, rd.gen}, self, obj});
        }
        if (model_ == Model::kSER) {
          state.composed_readers_upto = state.readers_seq;
        }
      }
    }
    state.writer_pos.emplace(id, state.base + state.writers.size());
    state.writers.push_back(id);
  }

  for (const PendingRw& p : pending_rw_) {
    add_anti_dependency(p);
  }

  // This commit's D-predecessor list is now final (the paper's structural
  // fact); fold it into the reader-predecessor union of every object it
  // read, so future overwriters compose against it. Done after the
  // pending pass: a transaction never anti-depends on itself.
  if (model_ == Model::kSI && !violation_) {
    for (const ObjId obj : c.txn.external_read_set()) {
      ObjectState& state = objects_.at(obj);
      for (const NodeRef& d : d_preds_[slot]) {
        if (state.reader_pred_ids.insert(d.id).second) {
          state.reader_preds.push_back({d, id, state.preds_seq++});
        }
      }
    }
  }

  if (cfg_.gc_window != 0 &&
      next_id_ - 1 - last_gc_at_ >=
          std::max<std::size_t>(1, cfg_.gc_window / 2)) {
    last_gc_at_ = next_id_ - 1;
    run_gc();
  }
  return id;
}

void StreamingMonitor::run_gc() {
  const std::size_t ingested = commit_count();
  if (ingested <= cfg_.gc_window) return;
  const TxnId W = static_cast<TxnId>(ingested - cfg_.gc_window);
  if (W <= watermark_) return;
  watermark_ = W;

  if (!violation_) {
    // The stable prefix: every node ordered before each and every
    // post-watermark transaction. Since all edges ascend in ord, the
    // prefix has no in-edges from the rest of the graph by construction,
    // no future generator edge targets it (all overwriters of readable
    // versions are newer than W), and no query walks into it — pruning
    // is verdict-preserving (DESIGN.md §4f).
    std::uint64_t barrier = ~static_cast<std::uint64_t>(0);
    for (const auto& [id, slot] : id_to_slot_) {
      if (id > W) barrier = std::min(barrier, graph_.ord(slot));
    }
    prune_list_.clear();
    for (const auto& [id, slot] : id_to_slot_) {
      if (graph_.ord(slot) < barrier) prune_list_.push_back({id, slot});
    }
    // Surviving nodes may hold in-refs to pruned ones (forward edges out
    // of the prefix); the batch free drops those and recycles the slots.
    dead_slots_.clear();
    for (const auto& [id, slot] : prune_list_) {
      (void)id;
      dead_slots_.push_back(slot);
    }
    graph_.free_nodes(dead_slots_);
    for (const auto& [id, slot] : prune_list_) {
      d_preds_[slot].clear();
      d_preds_[slot].shrink_to_fit();
      id_to_slot_.erase(id);
    }
    pruned_ += prune_list_.size();
  }

  // Version-table compaction: any version overwritten by a transaction
  // with id <= W is dead — a future read naming it is out of the
  // staleness window and rejected by validate(). Runs even after a
  // violation so the validator state stays flat too.
  for (auto& [obj, st] : objects_) {
    (void)obj;
    const auto cut_it =
        std::upper_bound(st.writers.begin(), st.writers.end(), W);
    if (cut_it != st.writers.begin()) {
      const std::size_t cut =
          static_cast<std::size_t>(cut_it - st.writers.begin()) - 1;
      if (cut > 0) {
        for (std::size_t i = 0; i < cut; ++i) {
          st.writer_pos.erase(st.writers[i]);
        }
        st.writers.erase(st.writers.begin(),
                         st.writers.begin() +
                             static_cast<std::ptrdiff_t>(cut));
        st.base += cut;
      }
    }
    if (violation_) {
      // Readers only seed future anti-dependency queries, all of which
      // are short-circuited once the verdict is sticky.
      st.readers.clear();
      st.readers.shrink_to_fit();
      st.reader_preds.clear();
      st.reader_preds.shrink_to_fit();
      st.reader_pred_ids.clear();
      continue;
    }
    std::erase_if(st.readers, [this](const Reader& rd) {
      return rd.slot == IncrementalDigraph::kNoSlot ||
             graph_.gen(rd.slot) != rd.gen;
    });
    std::erase_if(st.reader_preds, [this, &st](const ReaderPred& e) {
      if (resolve(e.d) == IncrementalDigraph::kNoSlot) {
        st.reader_pred_ids.erase(e.d.id);
        return true;
      }
      return false;
    });
  }
}

std::vector<TxnId> StreamingMonitor::commit_all(
    const std::vector<MonitoredCommit>& batch) {
  std::vector<TxnId> ids;
  ids.reserve(batch.size());
  for (const MonitoredCommit& c : batch) ids.push_back(commit(c));
  return ids;
}

BatchResult StreamingMonitor::commit_all_guarded(
    const std::vector<MonitoredCommit>& batch) {
  BatchResult result;
  result.ids.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      result.ids.push_back(commit(batch[i]));
    } catch (const ModelError& e) {
      // commit() validated before mutating: quarantine and keep going.
      result.ids.push_back(0);
      result.quarantined.push_back(i);
      result.errors.emplace_back(e.what());
    }
  }
  return result;
}

std::size_t StreamingMonitor::approx_bytes() const {
  std::size_t total = graph_.approx_bytes();
  total += id_to_slot_.size() *
           (sizeof(std::pair<TxnId, IncrementalDigraph::Slot>) + 2 * 8);
  for (const auto& preds : d_preds_) {
    total += preds.capacity() * sizeof(NodeRef);
  }
  total += d_preds_.capacity() * sizeof(std::vector<NodeRef>);
  total += seen_edges_.size() * (sizeof(std::uint64_t) + 2 * 8);
  for (const auto& [obj, st] : objects_) {
    (void)obj;
    total += st.writers.capacity() * sizeof(TxnId);
    total += st.writer_pos.size() *
             (sizeof(std::pair<TxnId, std::size_t>) + 2 * 8);
    total += st.readers.capacity() * sizeof(Reader);
    total += st.reader_preds.capacity() * sizeof(ReaderPred);
    total += st.reader_pred_ids.size() * (sizeof(TxnId) + 2 * 8);
    total += sizeof(ObjectState) + 2 * 8;
  }
  total += session_last_.size() *
           (sizeof(std::pair<SessionId, TxnId>) + 2 * 8);
  for (const MonitoredCommit& c : log_) {
    total += sizeof(MonitoredCommit) +
             c.txn.events().size() * sizeof(Event) +
             c.read_sources.size() * sizeof(std::pair<ObjId, TxnId>);
  }
  return total;
}

DependencyGraph StreamingMonitor::graph() const {
  if (!cfg_.keep_log && commit_count() > 0) {
    throw ModelError(
        "StreamingMonitor: graph() requires the commit log; construct "
        "with keep_log = true (the default trades reconstruction for "
        "flat memory)");
  }
  // The live object table is pruned, so derive the object set and the
  // WW(x) orders from the log, which is complete: writers install in
  // ingestion order, exactly how the live table was built.
  std::unordered_map<ObjId, std::vector<TxnId>> ww;
  std::vector<ObjId> obj_ids;
  const auto touch = [&](ObjId obj) -> std::vector<TxnId>& {
    auto [it, inserted] = ww.try_emplace(obj);
    if (inserted) {
      it->second.push_back(0);
      obj_ids.push_back(obj);
    }
    return it->second;
  };
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const TxnId id = static_cast<TxnId>(i + 1);
    for (const ObjId obj : log_[i].txn.external_read_set()) touch(obj);
    for (const ObjId obj : log_[i].txn.write_set()) touch(obj).push_back(id);
  }
  std::sort(obj_ids.begin(), obj_ids.end());
  History h;
  {
    Transaction init;
    for (const ObjId obj : obj_ids) init.append(write(obj, 0));
    h.append_singleton(std::move(init));
  }
  for (const MonitoredCommit& c : log_) {
    h.append(c.session + 1, c.txn);
  }
  DependencyGraph g(std::move(h));
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const TxnId reader = static_cast<TxnId>(i + 1);
    for (const auto& [obj, src] : log_[i].read_sources) {
      if (log_[i].txn.external_read(obj).has_value()) {
        g.set_read_from(obj, src, reader);
      }
    }
  }
  for (const ObjId obj : obj_ids) {
    g.set_write_order(obj, ww.at(obj));
  }
  return g;
}

StreamingMonitor replay_streaming(const DependencyGraph& g, Model m,
                                  StreamingConfig cfg) {
  StreamingMonitor monitor(m, cfg);
  for (const MonitoredCommit& c : monitored_commits(g)) monitor.commit(c);
  return monitor;
}

}  // namespace sia
