#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/dependency_graph.hpp"

/// \file characterization.hpp
/// The dependency-graph characterisations of serializability (Theorem 8),
/// snapshot isolation (Theorem 9 — the paper's headline result) and
/// parallel SI (Theorem 21), with witness cycles, plus the dynamic
/// robustness criteria of Theorems 19 and 22.

namespace sia {

/// Result of a graph-membership check. On non-membership, \c witness holds
/// a culprit cycle as typed edges (empty if the failure is INT, in which
/// case \c int_violation explains it).
struct GraphCheck {
  bool member{false};
  std::vector<DepEdge> witness;          ///< cycle demonstrating exclusion
  std::optional<Violation> int_violation;

  explicit operator bool() const { return member; }
};

/// GraphSER (Theorem 8): INT ∧ acyclic(SO ∪ WR ∪ WW ∪ RW).
[[nodiscard]] GraphCheck check_graph_ser(const DependencyGraph& g);
[[nodiscard]] GraphCheck check_graph_ser(const DependencyGraph& g,
                                         const DepRelations& rel);

/// GraphSI (Theorem 9): INT ∧ acyclic((SO ∪ WR ∪ WW) ; RW?). Equivalently:
/// every cycle of the graph has at least two *adjacent* anti-dependency
/// edges.
///
/// The membership verdict is decided by the implicit-edge cycle search of
/// cycles.hpp in O(V + E) adjacency scans; only a failed check (rare, and
/// on small graphs in practice) falls back to the materialised reference
/// below to build the witness — so verdicts and witnesses are identical to
/// check_graph_si_reference on every input, at a fraction of its cost.
[[nodiscard]] GraphCheck check_graph_si(const DependencyGraph& g);
[[nodiscard]] GraphCheck check_graph_si(const DependencyGraph& g,
                                        const DepRelations& rel);

/// Reference implementation of the Theorem 9 check: materialises
/// D ∪ D;RW with the relation algebra and runs the bitset cycle search.
/// Kept as the differential-testing and benchmarking baseline.
[[nodiscard]] GraphCheck check_graph_si_reference(const DependencyGraph& g,
                                                  const DepRelations& rel);

/// GraphPSI (Theorem 21): INT ∧ irreflexive((SO ∪ WR ∪ WW)+ ; RW?).
/// Equivalently: every cycle has at least two anti-dependency edges.
///
/// Decided via SCC condensation of D plus DAG reachability propagation
/// (cycles.hpp), never materialising the O(n³/64) transitive closure on
/// the membership path; failures fall back to the reference for witnesses.
[[nodiscard]] GraphCheck check_graph_psi(const DependencyGraph& g);
[[nodiscard]] GraphCheck check_graph_psi(const DependencyGraph& g,
                                         const DepRelations& rel);

/// Reference implementation of the Theorem 21 check (materialised D+).
[[nodiscard]] GraphCheck check_graph_psi_reference(const DependencyGraph& g,
                                                   const DepRelations& rel);

/// Dynamic robustness criterion against SI (Theorem 19):
/// G ∈ GraphSI \ GraphSER — the graph exhibits an SI-only anomaly.
/// Returns the witness cycle of the GraphSER failure when true.
struct RobustnessWitness {
  bool anomaly{false};              ///< true iff G is in the difference set
  std::vector<DepEdge> cycle;       ///< cycle excluded from the stronger model
  std::optional<Violation> int_violation;
};
[[nodiscard]] RobustnessWitness si_anomaly(const DependencyGraph& g);

/// Dynamic robustness criterion against parallel SI towards SI
/// (Theorem 22): G ∈ GraphPSI \ GraphSI.
[[nodiscard]] RobustnessWitness psi_anomaly(const DependencyGraph& g);

/// Expands a cycle of the composed relation C = D ∪ D;RW (or D+ ; RW? for
/// PSI) back into concrete typed edges of \p g. Exposed for testing.
[[nodiscard]] std::vector<DepEdge> expand_composed_cycle(
    const DependencyGraph& g, const DepRelations& rel,
    const std::vector<TxnId>& cycle, bool through_dplus);

}  // namespace sia
