#include "graph/enumeration.hpp"

#include <algorithm>

namespace sia {

std::string to_string(Model m) {
  switch (m) {
    case Model::kSER:
      return "SER";
    case Model::kSI:
      return "SI";
    case Model::kPSI:
      return "PSI";
  }
  return "?";
}

GraphCheck check_graph(const DependencyGraph& g, Model m) {
  switch (m) {
    case Model::kSER:
      return check_graph_ser(g);
    case Model::kSI:
      return check_graph_si(g);
    case Model::kPSI:
      return check_graph_psi(g);
  }
  throw ModelError("check_graph: unknown model");
}

namespace {

/// One external read awaiting a WR source.
struct PendingRead {
  TxnId reader;
  ObjId obj;
  std::vector<TxnId> candidates;  ///< writers of obj with matching value
};

class GraphEnumerator {
 public:
  GraphEnumerator(const History& h,
                  const std::function<bool(const DependencyGraph&)>& visit)
      : h_(h), visit_(visit), current_(h) {
    // Collect reads and their candidate writers.
    for (TxnId s = 0; s < h.txn_count(); ++s) {
      for (ObjId x : h.txn(s).external_read_set()) {
        PendingRead pr{s, x, {}};
        const Value v = *h.txn(s).external_read(x);
        for (TxnId t : h.writers_of(x)) {
          if (t != s && h.txn(t).final_write(x) == v) pr.candidates.push_back(t);
        }
        reads_.push_back(std::move(pr));
      }
    }
    for (ObjId x : h.objects()) {
      std::vector<TxnId> writers = h.writers_of(x);
      if (writers.empty()) continue;
      object_ids_.push_back(x);
      write_objects_.push_back(std::move(writers));
    }
  }

  std::size_t run() {
    assign_read(0);
    return count_;
  }

 private:
  /// Depth-first choice of a WR source for each read, then of a WW
  /// permutation for each object.
  void assign_read(std::size_t idx) {
    if (stop_) return;
    if (idx == reads_.size()) {
      assign_ww(0);
      return;
    }
    const PendingRead& pr = reads_[idx];
    if (pr.candidates.empty()) return;  // no Definition 6 extension exists
    for (TxnId t : pr.candidates) {
      current_.set_read_from(pr.obj, t, pr.reader);
      assign_read(idx + 1);
      if (stop_) return;
    }
  }

  void assign_ww(std::size_t idx) {
    if (stop_) return;
    if (idx == object_ids_.size()) {
      ++count_;
      if (!visit_(current_)) stop_ = true;
      return;
    }
    std::vector<TxnId> perm = write_objects_[idx];
    std::sort(perm.begin(), perm.end());
    do {
      current_.set_write_order(object_ids_[idx], perm);
      assign_ww(idx + 1);
      if (stop_) return;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  const History& h_;
  const std::function<bool(const DependencyGraph&)>& visit_;
  DependencyGraph current_;
  std::vector<PendingRead> reads_;
  std::vector<ObjId> object_ids_;
  std::vector<std::vector<TxnId>> write_objects_;
  std::size_t count_{0};
  bool stop_{false};
};

}  // namespace

std::size_t enumerate_dependency_graphs(
    const History& h,
    const std::function<bool(const DependencyGraph&)>& visit) {
  return GraphEnumerator(h, visit).run();
}

HistDecision decide_history(const History& h, Model m) {
  HistDecision out;
  out.graphs_tried = enumerate_dependency_graphs(h, [&](const DependencyGraph& g) {
    if (check_graph(g, m).member) {
      out.allowed = true;
      out.witness = g;
      return false;  // stop at the first witness
    }
    return true;
  });
  return out;
}

}  // namespace sia
