#include "tools/json_min.hpp"

#include <cctype>
#include <cstdlib>

#include "tools/parse_error.hpp"

namespace sia {

namespace {

/// Cursor over the input that tracks 1-based line/column for errors.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("parse_json", line_, col_, what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      advance();
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    advance();
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    advance();
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = peek() == 't';
        if (!consume_keyword(v.boolean ? "true" : "false")) {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_keyword("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any serializer in this repo).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    std::string digits;
    if (peek() == '-') digits.push_back(take());
    const auto take_digits = [&] {
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        digits.push_back(take());
      }
    };
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    take_digits();
    if (!eof() && text_[pos_] == '.') {
      digits.push_back(take());
      take_digits();
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      digits.push_back(take());
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        digits.push_back(take());
      }
      take_digits();
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(digits.c_str(), nullptr);
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      advance();
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      advance();
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::size_t line_{1};
  std::size_t col_{1};
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw ModelError("JsonValue: missing member '" + std::string(key) + "'");
  }
  return *v;
}

JsonValue parse_json(std::string_view text) {
  Reader r(text);
  JsonValue v = r.parse_value();
  r.skip_ws();
  if (!r.eof()) r.fail("trailing content after document");
  return v;
}

}  // namespace sia
