#include "tools/dot.hpp"

#include <map>

namespace sia::dot {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string obj_name(ObjId x, const ObjectTable* objs) {
  if (objs != nullptr && x < objs->size()) return objs->name(x);
  return "obj" + std::to_string(x);
}

std::string edge_style(DepKind kind) {
  switch (kind) {
    case DepKind::kSO:
      return "color=gray50";
    case DepKind::kSOInv:
      return "color=gray70, style=dotted";
    case DepKind::kWR:
      return "color=black";
    case DepKind::kWW:
      return "color=blue";
    case DepKind::kRW:
      return "color=red, style=dashed";
  }
  return "";
}

std::string render_dependency_graph(const DependencyGraph& g,
                                    const ObjectTable* objs) {
  const History& h = g.history();
  std::string out = "digraph dependency_graph {\n  rankdir=LR;\n";
  // Session clusters.
  for (SessionId s = 0; s < h.session_count(); ++s) {
    out += "  subgraph cluster_s" + std::to_string(s) + " {\n";
    out += "    label=\"session " + std::to_string(s) + "\";\n";
    out += "    color=gray80;\n";
    for (const TxnId id : h.session(s)) {
      out += "    T" + std::to_string(id) + " [label=\"T" +
             std::to_string(id) + "\\n" +
             escape(objs ? to_string(h.txn(id), *objs)
                         : to_string(h.txn(id))) +
             "\", shape=box];\n";
    }
    out += "  }\n";
  }
  for (const DepEdge& e : g.edges()) {
    std::string label = to_string(e.kind);
    if (e.obj != kInvalidObj) label += "(" + obj_name(e.obj, objs) + ")";
    out += "  T" + std::to_string(e.from) + " -> T" + std::to_string(e.to) +
           " [label=\"" + escape(label) + "\", " + edge_style(e.kind) +
           "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string dependency_graph(const DependencyGraph& g) {
  return render_dependency_graph(g, nullptr);
}

std::string dependency_graph(const DependencyGraph& g,
                             const ObjectTable& objs) {
  return render_dependency_graph(g, &objs);
}

std::string execution(const AbstractExecution& x) {
  std::string out = "digraph execution {\n  rankdir=LR;\n";
  for (TxnId id = 0; id < x.txn_count(); ++id) {
    out += "  T" + std::to_string(id) + " [label=\"T" + std::to_string(id) +
           "\\n" + escape(to_string(x.history.txn(id))) + "\", shape=box];\n";
  }
  for (const auto& [a, b] : x.co.edges()) {
    if (x.vis.contains(a, b)) {
      out += "  T" + std::to_string(a) + " -> T" + std::to_string(b) +
             " [label=\"VIS\"];\n";
    } else {
      out += "  T" + std::to_string(a) + " -> T" + std::to_string(b) +
             " [label=\"CO\", color=gray60, style=dotted];\n";
    }
  }
  out += "}\n";
  return out;
}

namespace {

std::string render_typed_edges(
    const TypedGraph& g,
    const std::function<std::string(std::uint32_t)>& node_name) {
  std::string out;
  for (std::uint32_t from = 0; from < g.size(); ++from) {
    for (const auto& [to, mask] : g.successors(from)) {
      for (const DepKind kind :
           {DepKind::kSO, DepKind::kSOInv, DepKind::kWR, DepKind::kWW,
            DepKind::kRW}) {
        if ((mask & mask_of(kind)) == 0) continue;
        const std::string label =
            kind == DepKind::kSO
                ? "S"
                : kind == DepKind::kSOInv ? "P" : to_string(kind);
        out += "  " + node_name(from) + " -> " + node_name(to) +
               " [label=\"" + label + "\", " + edge_style(kind) + "];\n";
      }
    }
  }
  return out;
}

}  // namespace

std::string chopping_graph(const StaticChoppingGraph& scg) {
  std::string out = "digraph chopping_graph {\n  rankdir=LR;\n";
  const std::vector<Program>& programs = scg.programs();
  for (std::size_t i = 0; i < programs.size(); ++i) {
    out += "  subgraph cluster_p" + std::to_string(i) + " {\n";
    out += "    label=\"" + escape(programs[i].name) + "\";\n";
    out += "    color=gray80;\n";
    for (std::size_t j = 0; j < programs[i].pieces.size(); ++j) {
      const std::uint32_t node = scg.node_of(i, j);
      out += "    n" + std::to_string(node) + " [label=\"" +
             escape(scg.label(node)) + "\", shape=box];\n";
    }
    out += "  }\n";
  }
  out += render_typed_edges(scg.graph(), [](std::uint32_t n) {
    return "n" + std::to_string(n);
  });
  out += "}\n";
  return out;
}

std::string static_dependency_graph(const StaticDependencyGraph& g) {
  std::string out = "digraph static_dependency_graph {\n";
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    out += "  p" + std::to_string(i) + " [label=\"" + escape(g.label(i)) +
           "\", shape=box];\n";
  }
  out += render_typed_edges(g.graph(), [](std::uint32_t n) {
    return "p" + std::to_string(n);
  });
  out += "}\n";
  return out;
}

}  // namespace sia::dot
