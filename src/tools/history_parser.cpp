#include "tools/history_parser.hpp"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

#include "tools/parse_error.hpp"

namespace sia {

namespace {

/// A token plus its 1-based starting column, for error positions.
struct Token {
  std::string text;
  std::size_t col;
};

[[noreturn]] void fail(std::size_t line, std::size_t col,
                       const std::string& what) {
  throw ParseError("parse_history", line, col, what);
}

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    tokens.push_back(Token{line.substr(i, end - i), i + 1});
    i = end;
  }
  return tokens;
}

Value parse_value(const Token& token, std::size_t lineno) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(token.text, &pos);
    if (pos != token.text.size()) {
      fail(lineno, token.col, "bad value '" + token.text + "'");
    }
    return static_cast<Value>(v);
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    fail(lineno, token.col, "bad value '" + token.text + "'");
  }
}

}  // namespace

ParsedHistory parse_history(std::string_view text) {
  ParsedHistory out;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  bool in_session = false;
  bool saw_init = false;
  bool saw_session = false;
  SessionId current_session = 0;
  std::set<std::string> session_names;
  // Line of each appended transaction, in txn-id order (for the semantic
  // pass below, which runs once the whole write set is known).
  std::vector<std::size_t> txn_lines;

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<Token> tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0].text == "init") {
      if (saw_init) fail(lineno, tokens[0].col, "duplicate 'init'");
      if (saw_session) {
        fail(lineno, tokens[0].col, "'init' must precede sessions");
      }
      if (tokens.size() < 2) {
        fail(lineno, tokens[0].col, "'init' needs object names");
      }
      Transaction t;
      std::set<ObjId> init_objs;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const ObjId obj = out.objects.intern(tokens[i].text);
        if (!init_objs.insert(obj).second) {
          fail(lineno, tokens[i].col,
               "duplicate object '" + tokens[i].text + "' in 'init'");
        }
        t.append(write(obj, 0));
      }
      out.history.append_singleton(std::move(t));
      txn_lines.push_back(lineno);
      saw_init = true;
      continue;
    }
    if (tokens[0].text == "session") {
      if (in_session) {
        fail(lineno, tokens[0].col, "nested 'session' (missing '}')");
      }
      if (tokens.size() != 3 || tokens[2].text != "{") {
        fail(lineno, tokens[0].col, "expected 'session <name> {'");
      }
      if (!session_names.insert(tokens[1].text).second) {
        fail(lineno, tokens[1].col,
             "duplicate session name '" + tokens[1].text + "'");
      }
      current_session = static_cast<SessionId>(out.history.session_count());
      in_session = true;
      saw_session = true;
      continue;
    }
    if (tokens[0].text == "}") {
      if (!in_session) fail(lineno, tokens[0].col, "unmatched '}'");
      in_session = false;
      continue;
    }
    if (tokens[0].text == "txn") {
      if (!in_session) fail(lineno, tokens[0].col, "'txn' outside a session");
      if (tokens.size() < 2 || tokens[1].text != "{" ||
          tokens.back().text != "}") {
        fail(lineno, tokens[0].col, "expected 'txn { ... }' on one line");
      }
      Transaction t;
      const std::size_t ops_end = tokens.size() - 1;  // position of '}'
      std::size_t i = 2;
      while (i < ops_end) {
        const Token& kind = tokens[i];
        if (kind.text != "r" && kind.text != "w") {
          fail(lineno, kind.col,
               "expected 'r' or 'w', got '" + kind.text + "'");
        }
        if (i + 2 >= ops_end) {
          fail(lineno, kind.col, "operation needs '<obj> <value>'");
        }
        const ObjId obj = out.objects.intern(tokens[i + 1].text);
        const Value value = parse_value(tokens[i + 2], lineno);
        t.append(kind.text == "r" ? read(obj, value) : write(obj, value));
        i += 3;
      }
      if (t.empty()) fail(lineno, tokens[0].col, "empty transaction");
      out.history.append(current_session, std::move(t));
      txn_lines.push_back(lineno);
      continue;
    }
    fail(lineno, tokens[0].col,
         "expected 'init', 'session', 'txn' or '}', got '" + tokens[0].text +
             "'");
  }
  if (in_session) fail(lineno, 0, "missing final '}'");

  // Semantic pass: every external read needs *some* writer of the object
  // in the history (otherwise there is no version it could have observed
  // and the dependency-graph builders have no valid WR assignment).
  std::set<ObjId> written;
  for (TxnId id = 0; id < out.history.txn_count(); ++id) {
    for (const ObjId obj : out.history.txn(id).write_set()) {
      written.insert(obj);
    }
  }
  for (TxnId id = 0; id < out.history.txn_count(); ++id) {
    for (const ObjId obj : out.history.txn(id).external_read_set()) {
      if (written.count(obj) == 0) {
        fail(txn_lines[id], 0,
             "read of never-written object '" + out.objects.name(obj) +
                 "' (no 'init' entry and no write in any transaction)");
      }
    }
  }
  return out;
}

std::string format_history(const History& h, const ObjectTable& objects) {
  std::string out;
  TxnId first_client = 0;
  if (h.txn_count() > 0 && h.session(h.session_of(0)).size() == 1 &&
      h.txn(0).read_set().empty() && !h.txn(0).write_set().empty()) {
    out += "init";
    for (const ObjId x : h.txn(0).write_set()) out += " " + objects.name(x);
    out += "\n";
    first_client = 1;
  }
  for (SessionId s = 0; s < h.session_count(); ++s) {
    bool printed_header = false;
    for (const TxnId id : h.session(s)) {
      if (id < first_client) continue;
      if (!printed_header) {
        out += "session s" + std::to_string(s) + " {\n";
        printed_header = true;
      }
      out += "  txn {";
      for (const Event& e : h.txn(id).events()) {
        out += std::string(e.is_read() ? " r " : " w ") +
               objects.name(e.obj) + " " + std::to_string(e.value);
      }
      out += " }\n";
    }
    if (printed_header) out += "}\n";
  }
  return out;
}

}  // namespace sia
