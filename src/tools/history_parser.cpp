#include "tools/history_parser.hpp"

#include <cctype>
#include <sstream>
#include <vector>

namespace sia {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ModelError("parse_history: line " + std::to_string(line) + ": " +
                   what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

Value parse_value(const std::string& token, std::size_t lineno) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(token, &pos);
    if (pos != token.size()) fail(lineno, "bad value '" + token + "'");
    return static_cast<Value>(v);
  } catch (const std::exception&) {
    fail(lineno, "bad value '" + token + "'");
  }
}

}  // namespace

ParsedHistory parse_history(std::string_view text) {
  ParsedHistory out;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  bool in_session = false;
  bool saw_init = false;
  bool saw_session = false;
  SessionId current_session = 0;

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "init") {
      if (saw_init) fail(lineno, "duplicate 'init'");
      if (saw_session) fail(lineno, "'init' must precede sessions");
      if (tokens.size() < 2) fail(lineno, "'init' needs object names");
      Transaction t;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        t.append(write(out.objects.intern(tokens[i]), 0));
      }
      out.history.append_singleton(std::move(t));
      saw_init = true;
      continue;
    }
    if (tokens[0] == "session") {
      if (in_session) fail(lineno, "nested 'session' (missing '}')");
      if (tokens.size() != 3 || tokens[2] != "{") {
        fail(lineno, "expected 'session <name> {'");
      }
      current_session = static_cast<SessionId>(out.history.session_count());
      in_session = true;
      saw_session = true;
      continue;
    }
    if (tokens[0] == "}") {
      if (!in_session) fail(lineno, "unmatched '}'");
      in_session = false;
      continue;
    }
    if (tokens[0] == "txn") {
      if (!in_session) fail(lineno, "'txn' outside a session");
      if (tokens.size() < 2 || tokens[1] != "{" || tokens.back() != "}") {
        fail(lineno, "expected 'txn { ... }' on one line");
      }
      Transaction t;
      const std::size_t ops_end = tokens.size() - 1;  // position of '}'
      std::size_t i = 2;
      while (i < ops_end) {
        const std::string& kind = tokens[i];
        if (kind != "r" && kind != "w") {
          fail(lineno, "expected 'r' or 'w', got '" + kind + "'");
        }
        if (i + 2 >= ops_end) {
          fail(lineno, "operation needs '<obj> <value>'");
        }
        const ObjId obj = out.objects.intern(tokens[i + 1]);
        const Value value = parse_value(tokens[i + 2], lineno);
        t.append(kind == "r" ? read(obj, value) : write(obj, value));
        i += 3;
      }
      if (t.empty()) fail(lineno, "empty transaction");
      out.history.append(current_session, std::move(t));
      continue;
    }
    fail(lineno, "expected 'init', 'session', 'txn' or '}', got '" +
                     tokens[0] + "'");
  }
  if (in_session) fail(lineno, "missing final '}'");
  return out;
}

std::string format_history(const History& h, const ObjectTable& objects) {
  std::string out;
  TxnId first_client = 0;
  if (h.txn_count() > 0 && h.session(h.session_of(0)).size() == 1 &&
      h.txn(0).read_set().empty() && !h.txn(0).write_set().empty()) {
    out += "init";
    for (const ObjId x : h.txn(0).write_set()) out += " " + objects.name(x);
    out += "\n";
    first_client = 1;
  }
  for (SessionId s = 0; s < h.session_count(); ++s) {
    bool printed_header = false;
    for (const TxnId id : h.session(s)) {
      if (id < first_client) continue;
      if (!printed_header) {
        out += "session s" + std::to_string(s) + " {\n";
        printed_header = true;
      }
      out += "  txn {";
      for (const Event& e : h.txn(id).events()) {
        out += std::string(e.is_read() ? " r " : " w ") +
               objects.name(e.obj) + " " + std::to_string(e.value);
      }
      out += " }\n";
    }
    if (printed_header) out += "}\n";
  }
  return out;
}

}  // namespace sia
