#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"
#include "core/types.hpp"

/// \file program_parser.hpp
/// A small line-oriented text format for describing an application's
/// transaction programs — the input of the static analyses — so that the
/// analyser can be used without writing C++:
///
///     # transfer between two accounts, chopped into two pieces
///     program transfer {
///       piece "debit"  reads acct1 writes acct1
///       piece "credit" reads acct2 writes acct2
///     }
///     program lookupAll {
///       piece reads acct1 acct2
///     }
///
/// Read/write sets may also be *parametric* — subscripted tables over
/// declared integer parameters, so a suite can describe a schema instead
/// of enumerating objects:
///
///     program payment {
///       param w in 1..100
///       param w2 in 1..100 != w
///       piece "home"   reads warehouse[w]  writes warehouse[w]
///       piece "remote" reads warehouse[w2] writes stock[w2, 1..100000]
///     }
///
/// Grammar (one construct per line, '#' starts a comment):
///   program <name> {
///   param <name> [in <range>] [!= <name> ...]
///   piece ["<label>"] [reads <obj>...] [writes <obj>...]
///   }
/// where an <obj> is a plain name or a subscripted access
/// <table>[<dim>, ...]; a <dim> or <range> is an integer, a parameter
/// with optional offset (w, w+1), <lo>..<hi> over those, or '*'
/// (unbounded). Parameters must be declared before use; a table keeps one
/// subscript arity suite-wide; literal ranges must satisfy lo <= hi.
/// Object names are interned; a piece may omit either list. Parameter and
/// subscript intervals come back resolved (abstract_keys::resolve).

namespace sia {

/// Parse result: the programs plus the object-name table. Every Program
/// carries the span of its name token and every Piece the span of its
/// `piece` keyword (1-based line/col, see core/program.hpp), so analyses
/// can point diagnostics back into the suite text.
struct ParsedSuite {
  std::vector<Program> programs;
  ObjectTable objects;
};

/// Parses the format above. \throws ParseError (a ModelError carrying the
/// 1-based line and column, see tools/parse_error.hpp) on any syntax
/// error (unterminated program, piece outside a program, missing name,
/// stray tokens, ...) and on duplicate program names or duplicate objects
/// within one reads/writes list.
[[nodiscard]] ParsedSuite parse_programs(std::string_view text);

/// Renders programs back into the text format (inverse of
/// parse_programs up to whitespace/comments).
[[nodiscard]] std::string format_programs(const std::vector<Program>& programs,
                                          const ObjectTable& objects);

}  // namespace sia
