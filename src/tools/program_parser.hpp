#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"
#include "core/types.hpp"

/// \file program_parser.hpp
/// A small line-oriented text format for describing an application's
/// transaction programs — the input of the static analyses — so that the
/// analyser can be used without writing C++:
///
///     # transfer between two accounts, chopped into two pieces
///     program transfer {
///       piece "debit"  reads acct1 writes acct1
///       piece "credit" reads acct2 writes acct2
///     }
///     program lookupAll {
///       piece reads acct1 acct2
///     }
///
/// Grammar (one construct per line, '#' starts a comment):
///   program <name> {
///   piece ["<label>"] [reads <obj>...] [writes <obj>...]
///   }
/// Object names are interned; a piece may omit either list.

namespace sia {

/// Parse result: the programs plus the object-name table. Every Program
/// carries the span of its name token and every Piece the span of its
/// `piece` keyword (1-based line/col, see core/program.hpp), so analyses
/// can point diagnostics back into the suite text.
struct ParsedSuite {
  std::vector<Program> programs;
  ObjectTable objects;
};

/// Parses the format above. \throws ParseError (a ModelError carrying the
/// 1-based line and column, see tools/parse_error.hpp) on any syntax
/// error (unterminated program, piece outside a program, missing name,
/// stray tokens, ...) and on duplicate program names or duplicate objects
/// within one reads/writes list.
[[nodiscard]] ParsedSuite parse_programs(std::string_view text);

/// Renders programs back into the text format (inverse of
/// parse_programs up to whitespace/comments).
[[nodiscard]] std::string format_programs(const std::vector<Program>& programs,
                                          const ObjectTable& objects);

}  // namespace sia
