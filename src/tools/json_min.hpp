#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json_min.hpp
/// A minimal RFC 8259 JSON reader. The repo's serializers (analysis_json,
/// diagnostic, lint/sarif) only ever *write* JSON; this is the matching
/// read side, used by the tests to validate their output structurally
/// (e.g. that sia_lint's SARIF really is well-formed SARIF 2.1.0) instead
/// of by string comparison alone. Numbers are held as double — ample for
/// line/column/count payloads.

namespace sia {

/// One parsed JSON value; a small closed sum over the seven JSON shapes.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  /// Members in source order (SARIF consumers care about none of the
  /// ordering, but keeping it makes error messages reproducible).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is(Kind k) const { return kind == k; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find() that throws ModelError when the member is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses exactly one JSON document (trailing whitespace allowed).
/// \throws ParseError (tools/parse_error.hpp) with 1-based line/column on
/// malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace sia
