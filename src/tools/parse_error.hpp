#pragma once

#include <cstddef>
#include <string>

#include "core/types.hpp"

/// \file parse_error.hpp
/// Structured error for the text-format parsers. Derives from ModelError
/// so existing catch sites keep working, but carries the position as data
/// (1-based line, 1-based column; column 0 = whole line) so tools can
/// point at the offending token instead of grepping the message.

namespace sia {

class ParseError : public ModelError {
 public:
  ParseError(const std::string& parser, std::size_t line, std::size_t column,
             const std::string& what)
      : ModelError(parser + ": line " + std::to_string(line) +
                   (column > 0 ? ", col " + std::to_string(column) : "") +
                   ": " + what),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

}  // namespace sia
