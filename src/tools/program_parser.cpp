#include "tools/program_parser.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "tools/parse_error.hpp"

namespace sia {

namespace {

/// A token plus its 1-based starting column, for error positions.
struct Token {
  std::string text;
  std::size_t col;
};

[[noreturn]] void fail(std::size_t line, std::size_t col,
                       const std::string& what) {
  throw ParseError("parse_programs", line, col, what);
}

/// Splits a line into tokens; quoted strings form single tokens (with the
/// quotes kept, so the caller can recognise labels).
std::vector<Token> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        fail(lineno, i + 1, "unterminated string");
      }
      tokens.push_back(Token{line.substr(i, end - i + 1), i + 1});
      i = end + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end])) &&
           line[end] != '#') {
      ++end;
    }
    tokens.push_back(Token{line.substr(i, end - i), i + 1});
    i = end;
  }
  return tokens;
}

bool is_quoted(const std::string& token) {
  return token.size() >= 2 && token.front() == '"' && token.back() == '"';
}

/// Span of \p t on line \p lineno (columns are 1-based, end exclusive).
SourceSpan span_of(const Token& t, std::size_t lineno) {
  return SourceSpan{lineno, t.col, t.col + t.text.size()};
}

}  // namespace

ParsedSuite parse_programs(std::string_view text) {
  ParsedSuite suite;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  bool in_program = false;
  std::set<std::string> program_names;

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<Token> tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;

    if (tokens[0].text == "program") {
      if (in_program) {
        fail(lineno, tokens[0].col, "nested 'program' (missing '}')");
      }
      if (tokens.size() < 2 || tokens[1].text == "{" ||
          is_quoted(tokens[1].text)) {
        // Point just past 'program' (or at the bad token) rather than at
        // the keyword.
        const std::size_t col = tokens.size() < 2
                                    ? tokens[0].col + tokens[0].text.size()
                                    : tokens[1].col;
        fail(lineno, col, "expected a program name after 'program'");
      }
      if (tokens.size() < 3 || tokens[2].text != "{") {
        const std::size_t col = tokens.size() < 3
                                    ? tokens[1].col + tokens[1].text.size()
                                    : tokens[2].col;
        fail(lineno, col, "expected 'program <name> {'");
      }
      if (tokens.size() > 3) {
        fail(lineno, tokens[3].col, "unexpected tokens after '{'");
      }
      if (!program_names.insert(tokens[1].text).second) {
        fail(lineno, tokens[1].col,
             "duplicate program name '" + tokens[1].text + "'");
      }
      suite.programs.push_back(
          Program{tokens[1].text, {}, span_of(tokens[1], lineno)});
      in_program = true;
      continue;
    }
    if (tokens[0].text == "}") {
      if (!in_program) fail(lineno, tokens[0].col, "unmatched '}'");
      if (tokens.size() > 1) {
        fail(lineno, tokens[1].col, "unexpected tokens after '}'");
      }
      if (suite.programs.back().pieces.empty()) {
        fail(lineno, tokens[0].col,
             "program '" + suite.programs.back().name + "' has no pieces");
      }
      in_program = false;
      continue;
    }
    if (tokens[0].text == "piece") {
      if (!in_program) {
        fail(lineno, tokens[0].col, "'piece' outside a program");
      }
      Piece piece;
      piece.span = span_of(tokens[0], lineno);
      std::size_t i = 1;
      if (i < tokens.size() && is_quoted(tokens[i].text)) {
        piece.label = tokens[i].text.substr(1, tokens[i].text.size() - 2);
        ++i;
      }
      std::vector<ObjId>* current = nullptr;
      for (; i < tokens.size(); ++i) {
        if (tokens[i].text == "reads") {
          current = &piece.reads;
        } else if (tokens[i].text == "writes") {
          current = &piece.writes;
        } else if (current == nullptr) {
          fail(lineno, tokens[i].col,
               "expected 'reads' or 'writes', got '" + tokens[i].text + "'");
        } else if (is_quoted(tokens[i].text)) {
          fail(lineno, tokens[i].col, "object names must not be quoted");
        } else {
          const ObjId obj = suite.objects.intern(tokens[i].text);
          if (std::find(current->begin(), current->end(), obj) !=
              current->end()) {
            fail(lineno, tokens[i].col,
                 "duplicate object '" + tokens[i].text + "' in list");
          }
          current->push_back(obj);
        }
      }
      suite.programs.back().pieces.push_back(std::move(piece));
      continue;
    }
    fail(lineno, tokens[0].col,
         "expected 'program', 'piece' or '}', got '" + tokens[0].text + "'");
  }
  if (in_program) fail(lineno, 0, "missing final '}'");
  return suite;
}

std::string format_programs(const std::vector<Program>& programs,
                            const ObjectTable& objects) {
  std::string out;
  for (const Program& p : programs) {
    out += "program " + p.name + " {\n";
    for (const Piece& piece : p.pieces) {
      out += "  piece";
      if (!piece.label.empty()) out += " \"" + piece.label + "\"";
      if (!piece.reads.empty()) {
        out += " reads";
        for (const ObjId x : piece.reads) out += " " + objects.name(x);
      }
      if (!piece.writes.empty()) {
        out += " writes";
        for (const ObjId x : piece.writes) out += " " + objects.name(x);
      }
      out += "\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace sia
