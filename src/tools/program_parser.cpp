#include "tools/program_parser.hpp"

#include <sstream>

namespace sia {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ModelError("parse_programs: line " + std::to_string(line) + ": " +
                   what);
}

/// Splits a line into tokens; quoted strings form single tokens (with the
/// quotes kept, so the caller can recognise labels).
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string::npos) fail(lineno, "unterminated string");
      tokens.push_back(line.substr(i, end - i + 1));
      i = end + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end])) &&
           line[end] != '#') {
      ++end;
    }
    tokens.push_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

bool is_quoted(const std::string& token) {
  return token.size() >= 2 && token.front() == '"' && token.back() == '"';
}

}  // namespace

ParsedSuite parse_programs(std::string_view text) {
  ParsedSuite suite;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  bool in_program = false;

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;

    if (tokens[0] == "program") {
      if (in_program) fail(lineno, "nested 'program' (missing '}')");
      if (tokens.size() < 2 || tokens[1] == "{" || is_quoted(tokens[1])) {
        fail(lineno, "expected a program name after 'program'");
      }
      if (tokens.size() < 3 || tokens[2] != "{" || tokens.size() > 3) {
        fail(lineno, "expected 'program <name> {'");
      }
      suite.programs.push_back(Program{tokens[1], {}});
      in_program = true;
      continue;
    }
    if (tokens[0] == "}") {
      if (!in_program) fail(lineno, "unmatched '}'");
      if (tokens.size() > 1) fail(lineno, "unexpected tokens after '}'");
      if (suite.programs.back().pieces.empty()) {
        fail(lineno, "program '" + suite.programs.back().name +
                         "' has no pieces");
      }
      in_program = false;
      continue;
    }
    if (tokens[0] == "piece") {
      if (!in_program) fail(lineno, "'piece' outside a program");
      Piece piece;
      std::size_t i = 1;
      if (i < tokens.size() && is_quoted(tokens[i])) {
        piece.label = tokens[i].substr(1, tokens[i].size() - 2);
        ++i;
      }
      std::vector<ObjId>* current = nullptr;
      for (; i < tokens.size(); ++i) {
        if (tokens[i] == "reads") {
          current = &piece.reads;
        } else if (tokens[i] == "writes") {
          current = &piece.writes;
        } else if (current == nullptr) {
          fail(lineno, "expected 'reads' or 'writes', got '" + tokens[i] +
                           "'");
        } else if (is_quoted(tokens[i])) {
          fail(lineno, "object names must not be quoted");
        } else {
          current->push_back(suite.objects.intern(tokens[i]));
        }
      }
      suite.programs.back().pieces.push_back(std::move(piece));
      continue;
    }
    fail(lineno, "expected 'program', 'piece' or '}', got '" + tokens[0] +
                     "'");
  }
  if (in_program) fail(lineno, "missing final '}'");
  return suite;
}

std::string format_programs(const std::vector<Program>& programs,
                            const ObjectTable& objects) {
  std::string out;
  for (const Program& p : programs) {
    out += "program " + p.name + " {\n";
    for (const Piece& piece : p.pieces) {
      out += "  piece";
      if (!piece.label.empty()) out += " \"" + piece.label + "\"";
      if (!piece.reads.empty()) {
        out += " reads";
        for (const ObjId x : piece.reads) out += " " + objects.name(x);
      }
      if (!piece.writes.empty()) {
        out += " writes";
        for (const ObjId x : piece.writes) out += " " + objects.name(x);
      }
      out += "\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace sia
