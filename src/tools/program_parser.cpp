#include "tools/program_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "lint/abstract_keys.hpp"
#include "tools/parse_error.hpp"

namespace sia {

namespace {

/// A token plus its 1-based starting column, for error positions.
struct Token {
  std::string text;
  std::size_t col;
};

[[noreturn]] void fail(std::size_t line, std::size_t col,
                       const std::string& what) {
  throw ParseError("parse_programs", line, col, what);
}

/// Splits a line into tokens; quoted strings form single tokens (with the
/// quotes kept, so the caller can recognise labels), and a '[' pulls the
/// whole subscript — spaces included — into its token ("stock[w, 1..10]").
std::vector<Token> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // comment to end of line
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        fail(lineno, i + 1, "unterminated string");
      }
      tokens.push_back(Token{line.substr(i, end - i + 1), i + 1});
      i = end + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end])) &&
           line[end] != '#') {
      if (line[end] == '[') {
        const std::size_t close = line.find(']', end + 1);
        if (close == std::string::npos) {
          fail(lineno, end + 1, "unterminated subscript (missing ']')");
        }
        end = close;
      }
      ++end;
    }
    tokens.push_back(Token{line.substr(i, end - i), i + 1});
    i = end;
  }
  return tokens;
}

bool is_quoted(const std::string& token) {
  return token.size() >= 2 && token.front() == '"' && token.back() == '"';
}

/// Span of \p t on line \p lineno (columns are 1-based, end exclusive).
SourceSpan span_of(const Token& t, std::size_t lineno) {
  return SourceSpan{lineno, t.col, t.col + t.text.size()};
}

bool is_ident(std::string_view s) {
  if (s.empty() ||
      (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

std::int32_t param_index(const Program& prog, std::string_view name) {
  for (std::size_t i = 0; i < prog.params.size(); ++i) {
    if (prog.params[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

/// Parses one range end at absolute column \p col: an integer literal, a
/// parameter name with an optional ±offset, or '*' (unbounded towards
/// \p sign, which is -1 for a lower end and +1 for an upper end).
KeyTerm parse_term(const std::string& s, std::size_t lineno, std::size_t col,
                   const Program& prog, std::int8_t sign) {
  if (s.empty()) {
    fail(lineno, col, "expected an integer or parameter in range");
  }
  if (s == "*") return KeyTerm{0, -1, 0, sign};
  if (s[0] == '-' || std::isdigit(static_cast<unsigned char>(s[0]))) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE) {
      fail(lineno, col, "integer out of range: '" + s + "'");
    }
    if (end == nullptr || *end != '\0') {
      fail(lineno, col, "expected an integer or parameter, got '" + s + "'");
    }
    return KeyTerm{static_cast<std::int64_t>(v), -1, 0, 0};
  }
  std::size_t split = s.size();
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i] == '+' || s[i] == '-') {
      split = i;
      break;
    }
  }
  const std::string name = s.substr(0, split);
  if (!is_ident(name)) {
    fail(lineno, col, "expected an integer or parameter, got '" + s + "'");
  }
  const std::int32_t idx = param_index(prog, name);
  if (idx < 0) {
    fail(lineno, col,
         "unknown parameter '" + name + "' (declare it with 'param' first)");
  }
  std::int64_t offset = 0;
  if (split < s.size()) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s.c_str() + split, &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0' ||
        split + 1 == s.size()) {
      fail(lineno, col + split,
           "malformed offset '" + s.substr(split) + "' after parameter '" +
               name + "'");
    }
    offset = static_cast<std::int64_t>(v);
  }
  return KeyTerm{0, idx, offset, 0};
}

/// Parses one dimension ("7", "w+1", "1..100", "w..w2", "*") at absolute
/// column \p col. Literal ranges must be non-empty (lo <= hi).
KeyExpr parse_dim(const std::string& s, std::size_t lineno, std::size_t col,
                  const Program& prog) {
  if (s == "*") {
    return KeyExpr{KeyTerm{0, -1, 0, -1}, KeyTerm{0, -1, 0, +1}};
  }
  const std::size_t dots = s.find("..");
  if (dots == std::string::npos) {
    const KeyTerm t = parse_term(s, lineno, col, prog, 0);
    if (t.inf != 0) {
      fail(lineno, col, "'*' must stand alone or end a range");
    }
    return KeyExpr{t, t};
  }
  const KeyTerm lo = parse_term(s.substr(0, dots), lineno, col, prog, -1);
  const KeyTerm hi =
      parse_term(s.substr(dots + 2), lineno, col + dots + 2, prog, +1);
  if (lo.inf == 0 && lo.param < 0 && hi.inf == 0 && hi.param < 0 &&
      lo.literal > hi.literal) {
    fail(lineno, col,
         "empty range " + std::to_string(lo.literal) + ".." +
             std::to_string(hi.literal) + " (lower bound exceeds upper)");
  }
  return KeyExpr{lo, hi};
}

/// Parses a subscripted access token "table[dim, dim, ...]".
KeyAccess parse_access(const Token& t, std::size_t lineno, const Program& prog,
                       ObjectTable& objects) {
  const std::size_t open = t.text.find('[');
  const std::size_t close = t.text.find(']');
  if (open == 0) {
    fail(lineno, t.col, "expected a table name before '['");
  }
  if (close + 1 != t.text.size()) {
    fail(lineno, t.col + close + 1, "unexpected text after ']'");
  }
  KeyAccess access;
  access.table = objects.intern(t.text.substr(0, open));
  access.span = span_of(t, lineno);
  std::size_t start = open + 1;
  while (true) {
    std::size_t end = t.text.find(',', start);
    if (end == std::string::npos || end > close) end = close;
    // Trim surrounding spaces, keeping the column exact.
    std::size_t lo = start;
    std::size_t hi = end;
    while (lo < hi && t.text[lo] == ' ') ++lo;
    while (hi > lo && t.text[hi - 1] == ' ') --hi;
    if (lo == hi) {
      fail(lineno, t.col + start, "empty subscript dimension");
    }
    access.subs.push_back(
        parse_dim(t.text.substr(lo, hi - lo), lineno, t.col + lo, prog));
    if (end == close) break;
    start = end + 1;
  }
  return access;
}

}  // namespace

ParsedSuite parse_programs(std::string_view text) {
  ParsedSuite suite;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  bool in_program = false;
  std::set<std::string> program_names;
  // One subscript arity per table across the suite; 0 = plain object.
  std::map<ObjId, std::size_t> arity;
  const auto check_arity = [&](ObjId obj, std::size_t n, std::size_t lno,
                               std::size_t col, const std::string& name) {
    const auto [it, fresh] = arity.emplace(obj, n);
    if (!fresh && it->second != n) {
      fail(lno, col,
           "object '" + name + "' used with " + std::to_string(n) +
               " subscript(s) but previously with " +
               std::to_string(it->second));
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<Token> tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;

    if (tokens[0].text == "program") {
      if (in_program) {
        fail(lineno, tokens[0].col, "nested 'program' (missing '}')");
      }
      if (tokens.size() < 2 || tokens[1].text == "{" ||
          is_quoted(tokens[1].text)) {
        // Point just past 'program' (or at the bad token) rather than at
        // the keyword.
        const std::size_t col = tokens.size() < 2
                                    ? tokens[0].col + tokens[0].text.size()
                                    : tokens[1].col;
        fail(lineno, col, "expected a program name after 'program'");
      }
      if (tokens.size() < 3 || tokens[2].text != "{") {
        const std::size_t col = tokens.size() < 3
                                    ? tokens[1].col + tokens[1].text.size()
                                    : tokens[2].col;
        fail(lineno, col, "expected 'program <name> {'");
      }
      if (tokens.size() > 3) {
        fail(lineno, tokens[3].col, "unexpected tokens after '{'");
      }
      if (!program_names.insert(tokens[1].text).second) {
        fail(lineno, tokens[1].col,
             "duplicate program name '" + tokens[1].text + "'");
      }
      suite.programs.push_back(
          Program{tokens[1].text, {}, {}, span_of(tokens[1], lineno)});
      in_program = true;
      continue;
    }
    if (tokens[0].text == "}") {
      if (!in_program) fail(lineno, tokens[0].col, "unmatched '}'");
      if (tokens.size() > 1) {
        fail(lineno, tokens[1].col, "unexpected tokens after '}'");
      }
      if (suite.programs.back().pieces.empty()) {
        fail(lineno, tokens[0].col,
             "program '" + suite.programs.back().name + "' has no pieces");
      }
      in_program = false;
      continue;
    }
    if (tokens[0].text == "param") {
      if (!in_program) {
        fail(lineno, tokens[0].col, "'param' outside a program");
      }
      Program& prog = suite.programs.back();
      if (tokens.size() < 2 || !is_ident(tokens[1].text)) {
        const std::size_t col = tokens.size() < 2
                                    ? tokens[0].col + tokens[0].text.size()
                                    : tokens[1].col;
        fail(lineno, col, "expected a parameter name after 'param'");
      }
      if (param_index(prog, tokens[1].text) >= 0) {
        fail(lineno, tokens[1].col,
             "duplicate parameter '" + tokens[1].text + "'");
      }
      ParamDecl decl;
      decl.name = tokens[1].text;
      decl.span = span_of(tokens[1], lineno);
      std::size_t i = 2;
      if (i < tokens.size() && tokens[i].text == "in") {
        if (i + 1 >= tokens.size()) {
          fail(lineno, tokens[i].col + tokens[i].text.size(),
               "expected a range after 'in'");
        }
        const KeyExpr range =
            parse_dim(tokens[i + 1].text, lineno, tokens[i + 1].col, prog);
        decl.lo = range.lo;
        decl.hi = range.hi;
        i += 2;
      }
      while (i < tokens.size()) {
        if (tokens[i].text != "!=") {
          fail(lineno, tokens[i].col,
               "expected '!=', got '" + tokens[i].text + "'");
        }
        if (i + 1 >= tokens.size()) {
          fail(lineno, tokens[i].col + tokens[i].text.size(),
               "expected a parameter name after '!='");
        }
        const std::int32_t other = param_index(prog, tokens[i + 1].text);
        if (other < 0) {
          fail(lineno, tokens[i + 1].col,
               "unknown parameter '" + tokens[i + 1].text +
                   "' (declare it with 'param' first)");
        }
        decl.distinct.push_back(static_cast<std::uint32_t>(other));
        i += 2;
      }
      prog.params.push_back(std::move(decl));
      continue;
    }
    if (tokens[0].text == "piece") {
      if (!in_program) {
        fail(lineno, tokens[0].col, "'piece' outside a program");
      }
      Program& prog = suite.programs.back();
      Piece piece;
      piece.span = span_of(tokens[0], lineno);
      std::size_t i = 1;
      if (i < tokens.size() && is_quoted(tokens[i].text)) {
        piece.label = tokens[i].text.substr(1, tokens[i].text.size() - 2);
        ++i;
      }
      std::vector<ObjId>* objs = nullptr;
      std::vector<KeyAccess>* keys = nullptr;
      for (; i < tokens.size(); ++i) {
        if (tokens[i].text == "reads") {
          objs = &piece.reads;
          keys = &piece.key_reads;
        } else if (tokens[i].text == "writes") {
          objs = &piece.writes;
          keys = &piece.key_writes;
        } else if (objs == nullptr) {
          fail(lineno, tokens[i].col,
               "expected 'reads' or 'writes', got '" + tokens[i].text + "'");
        } else if (is_quoted(tokens[i].text)) {
          fail(lineno, tokens[i].col, "object names must not be quoted");
        } else if (tokens[i].text.find('[') != std::string::npos) {
          KeyAccess access = parse_access(tokens[i], lineno, prog,
                                          suite.objects);
          check_arity(access.table, access.subs.size(), lineno, tokens[i].col,
                      suite.objects.name(access.table));
          if (std::find(keys->begin(), keys->end(), access) != keys->end()) {
            fail(lineno, tokens[i].col,
                 "duplicate access '" + tokens[i].text + "' in list");
          }
          keys->push_back(std::move(access));
        } else {
          const ObjId obj = suite.objects.intern(tokens[i].text);
          check_arity(obj, 0, lineno, tokens[i].col, tokens[i].text);
          if (std::find(objs->begin(), objs->end(), obj) != objs->end()) {
            fail(lineno, tokens[i].col,
                 "duplicate object '" + tokens[i].text + "' in list");
          }
          objs->push_back(obj);
        }
      }
      prog.pieces.push_back(std::move(piece));
      continue;
    }
    fail(lineno, tokens[0].col,
         "expected 'program', 'param', 'piece' or '}', got '" +
             tokens[0].text + "'");
  }
  if (in_program) fail(lineno, 0, "missing final '}'");
  // Resolve parameter and subscript intervals so every consumer of the
  // suite sees ready-to-query KeyAccess::dims.
  abstract_keys::resolve(suite.programs);
  return suite;
}

std::string format_programs(const std::vector<Program>& programs,
                            const ObjectTable& objects) {
  std::string out;
  for (const Program& p : programs) {
    out += "program " + p.name + " {\n";
    for (const ParamDecl& decl : p.params) {
      out += "  param " + decl.name;
      if (decl.lo.inf == 0 || decl.hi.inf == 0) {
        out += " in ";
        if (decl.lo == decl.hi) {
          out += abstract_keys::render_key_term(decl.lo, p);
        } else {
          out += abstract_keys::render_key_term(decl.lo, p) + ".." +
                 abstract_keys::render_key_term(decl.hi, p);
        }
      }
      for (const std::uint32_t d : decl.distinct) {
        out += " != " + p.params[d].name;
      }
      out += "\n";
    }
    for (const Piece& piece : p.pieces) {
      out += "  piece";
      if (!piece.label.empty()) out += " \"" + piece.label + "\"";
      if (!piece.reads.empty() || !piece.key_reads.empty()) {
        out += " reads";
        for (const ObjId x : piece.reads) out += " " + objects.name(x);
        for (const KeyAccess& a : piece.key_reads) {
          out += " " + abstract_keys::render_key_access(a, p, objects);
        }
      }
      if (!piece.writes.empty() || !piece.key_writes.empty()) {
        out += " writes";
        for (const ObjId x : piece.writes) out += " " + objects.name(x);
        for (const KeyAccess& a : piece.key_writes) {
          out += " " + abstract_keys::render_key_access(a, p, objects);
        }
      }
      out += "\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace sia
