/// \file sia_analyze.cpp
/// Command-line front end to the static analyses: feed it a program-suite
/// description (see program_parser.hpp for the format) and get
///  - the chopping verdicts under SER / SI / PSI with critical cycles,
///  - the robustness verdicts (Theorems 19 and 22) at every precision,
///  - optionally a repaired (certified) chopping and Graphviz output.
///
/// Usage:
///   sia_analyze [--repair] [--autochop] [--dot] [--format json] <file | ->
///   sia_analyze --history [--dot] [--format json] <file | ->
///   sia_analyze --replay <witness.json | ->
///
/// In --replay mode the input is a witness document emitted by
/// `sia_lint --witness` (see src/witness/witness_json.hpp): the recorded
/// piece history is rebuilt from the events alone, its dependency graph
/// re-derived, and the anomaly verdict re-verified offline. Exit 0 when
/// the verdict reproduces (or the document is an explicit
/// refuted-under-bound mark, which carries nothing to replay), 1 when a
/// witnessed history fails to reproduce, 2 on malformed input.
///
/// In --history mode the input is a recorded trace (history_parser.hpp
/// format); the tool decides HistSER / HistSI / HistPSI membership
/// exactly and prints the witness dependency graph.
///
/// `--format json` emits the machine-readable report (verdict, witness
/// cycle, timing) through the same serializer the siad ANALYZE request
/// uses (tools/analysis_json.hpp). In programs mode the report also
/// carries a "diagnostics" array — source-located findings in the exact
/// per-diagnostic schema `sia_lint --format json` uses (one parser serves
/// both front ends). Errors become {"error": ...} on stdout.
///
/// Exit code (uniform with sia_lint): 0 when the suite is
/// SI-chopping-correct and SI-robust (or, in --history mode, the trace is
/// in HistSI), 1 on findings, 2 on usage/input errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chopping/repair.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "robustness/robustness.hpp"
#include "graph/enumeration.hpp"
#include "lint/checks.hpp"
#include "tools/analysis_json.hpp"
#include "tools/diagnostic.hpp"
#include "tools/dot.hpp"
#include "tools/history_parser.hpp"
#include "tools/program_parser.hpp"
#include "witness/witness_json.hpp"

using namespace sia;

namespace {

/// The violation findings, in the shared Diagnostic schema: every lint
/// check except the purely stylistic ones, with robustness candidates
/// concretised so the findings agree with this tool's (verified) exit
/// verdict.
std::vector<Diagnostic> suite_diagnostics(const std::string& path,
                                          const std::string& text,
                                          ParsedSuite suite) {
  lint::SuiteContext ctx;
  ctx.file = path;
  ctx.source = text;
  ctx.suite = std::move(suite);
  lint::CheckOptions opts;
  opts.concretize = true;
  static const std::vector<std::string> kViolationChecks = {
      "si-critical-cycle", "ser-critical-cycle", "psi-critical-cycle",
      "robust-si-ser", "robust-psi-si"};
  return lint::run_checks(ctx, opts, kViolationChecks, nullptr);
}

int usage() {
  std::fprintf(stderr,
               "usage: sia_analyze [--repair] [--autochop] [--dot] "
               "[--format json|text] <file|->\n"
               "       sia_analyze --history [--dot] [--format json|text] "
               "<file|->\n"
               "       sia_analyze --replay <witness.json|->\n"
               "  program format: see src/tools/program_parser.hpp\n"
               "  history format: see src/tools/history_parser.hpp\n"
               "  witness format: see src/witness/witness_json.hpp\n");
  return 2;
}

/// --replay: offline re-verification of one witness document.
int replay_witness(const std::string& text) {
  witness::ReplayReport rep;
  try {
    rep = witness::replay_witness_text(text);
  } catch (const ModelError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("witness: %s [%s] criterion %s, status %s\n", rep.file.c_str(),
              rep.check.c_str(), rep.criterion.c_str(), rep.status.c_str());
  if (!rep.replayable) {
    std::printf("nothing to replay (no witnessed history in the document)\n");
    return 0;
  }
  std::printf("replay verdict   : %s\n",
              rep.reproduced ? "anomaly REPRODUCED" : "NOT reproduced");
  std::printf("graphs examined  : %zu\n", rep.graphs_tried);
  std::printf("monitor          : %s%s%s\n",
              rep.monitor_confirmed ? "violation confirmed" : "no violation",
              rep.monitor_detail.empty() ? "" : " — ",
              rep.monitor_detail.c_str());
  return rep.reproduced ? 0 : 1;
}

/// JSON-mode error report: still on stdout (it *is* the report), exit 2.
int json_error(const std::string& what) {
  std::printf("{\"error\": %s}\n", json_quote(what).c_str());
  return 2;
}

int analyze_history(const std::string& text, bool want_dot) {
  ParsedHistory trace;
  try {
    trace = parse_history(text);
  } catch (const ModelError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("parsed %zu transactions in %zu sessions\n\n",
              trace.history.txn_count(), trace.history.session_count());
  bool in_si = false;
  std::optional<DependencyGraph> witness;
  for (const Model model : {Model::kSER, Model::kSI, Model::kPSI}) {
    const HistDecision d = decide_history(trace.history, model);
    std::printf("allowed under %-3s : %s   (%zu candidate graphs examined)\n",
                to_string(model).c_str(), d.allowed ? "yes" : "no",
                d.graphs_tried);
    if (model == Model::kSI) {
      in_si = d.allowed;
      witness = d.witness;
    }
    if (!witness && d.witness) witness = d.witness;
  }
  if (witness) {
    std::printf("\nwitness dependencies:\n");
    for (const DepEdge& e : witness->edges()) {
      if (e.kind == DepKind::kSO) continue;
      std::printf("  %s\n", to_string(e).c_str());
    }
    if (want_dot) {
      std::printf("\n%s",
                  dot::dependency_graph(*witness, trace.objects).c_str());
    }
  }
  return in_si ? 0 : 1;
}

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool want_repair = false;
  bool want_autochop = false;
  bool want_dot = false;
  bool want_history = false;
  bool want_json = false;
  bool want_replay = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") {
      want_repair = true;
    } else if (arg == "--history") {
      want_history = true;
    } else if (arg == "--replay") {
      want_replay = true;
    } else if (arg == "--autochop") {
      want_autochop = true;
    } else if (arg == "--dot") {
      want_dot = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc) return usage();
      const std::string format = argv[++i];
      if (format == "json") {
        want_json = true;
      } else if (format != "text") {
        return usage();
      }
    } else if (arg == "--help" || arg == "-h") {
      (void)usage();
      return 0;
    } else if (!path.empty()) {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();

  std::string text;
  try {
    text = read_input(path);
  } catch (const ModelError& e) {
    if (want_json) return json_error(e.what());
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (want_replay) return replay_witness(text);

  if (want_json) {
    try {
      if (want_history) {
        const HistoryAnalysis a = analyze_history_text(text);
        std::printf("%s", to_json(a).c_str());
        return a.in_si ? 0 : 1;
      }
      const SuiteAnalysis a = analyze_suite_text(text);
      const std::vector<Diagnostic> diags =
          suite_diagnostics(path, text, parse_programs(text));
      std::printf("%s", to_json(a, diags).c_str());
      return (a.si_choppable && a.si_robust) ? 0 : 1;
    } catch (const ModelError& e) {
      return json_error(e.what());
    }
  }

  if (want_history) return analyze_history(text, want_dot);

  ParsedSuite suite;
  try {
    suite = parse_programs(text);
  } catch (const ModelError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("parsed %zu programs over %zu objects\n\n",
              suite.programs.size(), suite.objects.size());

  // ---- chopping --------------------------------------------------------
  bool si_choppable = true;
  std::printf("chopping analysis (critical cycles, Cor. 18 / Thms 29, 31):\n");
  const StaticChoppingGraph scg(suite.programs);
  for (const Criterion crit :
       {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
    const ChoppingVerdict v = check_chopping_static(suite.programs, crit);
    std::printf("  %-3s : %s", to_string(crit).c_str(),
                v.correct ? "correct" : "INCORRECT");
    if (!v.complete) std::printf(" (cycle budget exhausted; conservative)");
    std::printf("\n");
    if (v.witness) {
      std::printf("        cycle: %s\n", scg.describe(*v.witness).c_str());
    }
    if (crit == Criterion::kSI) si_choppable = v.correct;
  }

  // ---- robustness -------------------------------------------------------
  std::printf("\nrobustness (Thm 19 against SI; Thm 22 against PSI):\n");
  const RobustnessVerdict plain = robust_against_si(suite.programs);
  const RobustnessVerdict refined = robust_against_si_refined(suite.programs);
  const RobustnessVerdict verified =
      robust_against_si_verified(suite.programs);
  const RobustnessVerdict psi = robust_against_psi(suite.programs);
  std::printf("  SI  (plain)    : %s\n", plain.robust ? "robust" : "NOT robust");
  std::printf("  SI  (refined)  : %s\n",
              refined.robust ? "robust" : "NOT robust");
  std::printf("  SI  (verified) : %s%s\n",
              verified.robust ? "robust" : "NOT robust",
              verified.verified ? " [concrete witness]" : "");
  std::printf("  PSI (towards SI): %s%s\n",
              psi.robust ? "robust" : "NOT robust",
              psi.verified ? " [concrete witness]" : "");

  // ---- diagnostics (shared with sia_lint) -------------------------------
  const std::vector<Diagnostic> diags = suite_diagnostics(path, text, suite);
  if (!diags.empty()) {
    std::printf("\n");
    for (const Diagnostic& d : diags) {
      std::printf("%s", render_human(d, text, false).c_str());
    }
  }

  // ---- repair / autochop -------------------------------------------------
  if (want_repair || (want_autochop && !si_choppable)) {
    const ChoppingPlan plan = repair_chopping(suite.programs);
    std::printf("\nrepaired chopping (%zu merges, certified: %s):\n",
                plan.merges.size(), plan.certified ? "yes" : "no");
    std::printf("%s", format_programs(plan.programs, suite.objects).c_str());
  }
  if (want_autochop) {
    const ChoppingPlan plan = auto_chop(suite.programs);
    std::printf("\nfinest certified chopping found (%zu pieces):\n",
                plan.piece_count());
    std::printf("%s", format_programs(plan.programs, suite.objects).c_str());
  }

  if (want_dot) {
    std::printf("\n// static chopping graph\n%s", dot::chopping_graph(scg).c_str());
    std::printf("\n// static dependency graph\n%s",
                dot::static_dependency_graph(
                    StaticDependencyGraph(suite.programs))
                    .c_str());
  }

  return (si_choppable && verified.robust) ? 0 : 1;
}
