#pragma once

#include <string>
#include <string_view>

#include "core/history.hpp"

/// \file history_parser.hpp
/// A line-oriented text format for recorded histories, so that traces
/// from external systems can be checked against the consistency models
/// without writing C++:
///
///     # write skew
///     init acct1 acct2          # initial version (value 0) of each object
///     session client1 {
///       txn { r acct1 0  r acct2 0  w acct1 -100 }
///     }
///     session client2 {
///       txn { r acct1 0  r acct2 0  w acct2 -100 }
///     }
///
/// Grammar (one construct per line, '#' starts a comment):
///   init <obj>...
///   session <name> {
///   txn { (r|w) <obj> <value> ... }
///   }
/// `r x 5` is a read of x returning 5; `w x 5` writes 5. The optional
/// `init` line adds the paper's initialising transaction (§2) in its own
/// session; at most one is allowed and it must come first.

namespace sia {

/// Parse result: the history plus the interned object names.
struct ParsedHistory {
  History history;
  ObjectTable objects;
};

/// Parses the format above. \throws ParseError (a ModelError carrying the
/// 1-based line and column, see tools/parse_error.hpp) on syntax errors
/// and on semantic ones: duplicate session names, duplicate objects in
/// 'init', or a read of an object no transaction ever writes (which would
/// leave downstream graph builders without a valid WR assignment).
[[nodiscard]] ParsedHistory parse_history(std::string_view text);

/// Renders a history back into the text format. The first transaction is
/// emitted as `init` when it is a write-only singleton-session
/// transaction (the usual initialiser shape).
[[nodiscard]] std::string format_history(const History& h,
                                         const ObjectTable& objects);

}  // namespace sia
