/// \file sia_lint.cpp
/// Diagnostics-grade front end to the static analyses: lint one or more
/// program-suite files (program_parser.hpp format) with the registered
/// checks and render source-located findings.
///
/// Usage:
///   sia_lint [options] <file.sia ...>
///     --format human|json|sarif   output format (default human)
///     --checks=<id,id,...>        run only the named checks
///     --domain=interval|concrete  how parametric key accesses are
///                                 analysed: sound interval abstraction
///                                 (default) or exhaustive instantiation
///                                 of every parameter valuation (exact,
///                                 small bounds only)
///     --werror                    promote warnings to errors
///     --fix-suggest               attach repaired-chopping fix-its
///     --concretize                confirm robustness findings with a
///                                 concrete dependency-graph witness
///     --baseline <file>           filter findings listed in the baseline
///     --write-baseline <file>     write the current findings' fingerprints
///     --witness[=budget]          execute the suite against the matching
///                                 MVCC engine and attach a concrete
///                                 anomaly history (or refuted-under-bound)
///                                 to every critical-cycle finding; budget
///                                 caps schedules explored per finding
///     --witness-dir <dir>         also write each witness document to
///                                 <dir>/<stem>.<check>.witness.json
///     --witness-seed <n>          tie-break perturbation for the search
///     --stats                     per-check wall-time to stderr
///     --color always|never|auto   ANSI colors in human output
///     --list-checks               print the registry and exit
///
/// Inline suppressions: `# sia-lint: disable(check-id, ...)` — trailing a
/// line it governs that line, standing alone it governs the next line.
///
/// Exit code: 0 clean (notes allowed), 1 findings, 2 usage/parse error.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "witness/attach.hpp"
#include "witness/witness_json.hpp"

using namespace sia;

namespace {

int usage(int code) {
  std::fprintf(
      stderr,
      "usage: sia_lint [--format human|json|sarif] [--checks=id,...]\n"
      "                [--domain=interval|concrete]\n"
      "                [--werror] [--fix-suggest] [--concretize]\n"
      "                [--baseline file] [--write-baseline file] [--stats]\n"
      "                [--witness[=budget]] [--witness-dir dir]\n"
      "                [--witness-seed n]\n"
      "                [--color always|never|auto] [--list-checks]\n"
      "                <file.sia ...>\n"
      "  suite format: see src/tools/program_parser.hpp\n"
      "  checks:       see --list-checks\n");
  return code;
}

int list_checks() {
  for (const lint::CheckInfo& c : lint::all_checks()) {
    std::printf("%-24s %-8s %s\n", c.id, to_string(c.default_severity).c_str(),
                c.summary);
  }
  return 0;
}

std::vector<std::string> split_ids(const std::string& list) {
  std::vector<std::string> out;
  std::string id;
  std::istringstream in{list};
  while (std::getline(in, id, ',')) {
    if (!id.empty()) out.push_back(id);
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    out = buf.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kHuman, kJson, kSarif };
  Format format = Format::kHuman;
  lint::LintOptions opts;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string color = "auto";
  bool want_stats = false;
  bool want_witness = false;
  witness::WitnessOptions wopts;
  std::string witness_dir;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sia_lint: %s needs a value\n", flag);
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--format") {
      const std::string f = value_of("--format");
      if (f == "human") {
        format = Format::kHuman;
      } else if (f == "json") {
        format = Format::kJson;
      } else if (f == "sarif") {
        format = Format::kSarif;
      } else {
        return usage(2);
      }
    } else if (arg.rfind("--checks=", 0) == 0) {
      opts.enabled = split_ids(arg.substr(9));
    } else if (arg == "--checks") {
      opts.enabled = split_ids(value_of("--checks"));
    } else if (arg.rfind("--domain=", 0) == 0 || arg == "--domain") {
      const std::string d =
          arg == "--domain" ? value_of("--domain") : arg.substr(9);
      if (d == "interval") {
        opts.domain = lint::LintOptions::Domain::kInterval;
      } else if (d == "concrete") {
        opts.domain = lint::LintOptions::Domain::kConcrete;
      } else {
        std::fprintf(stderr, "sia_lint: bad --domain '%s'\n", d.c_str());
        return usage(2);
      }
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--fix-suggest") {
      opts.check.fix_suggest = true;
    } else if (arg == "--concretize") {
      opts.check.concretize = true;
    } else if (arg == "--baseline") {
      baseline_path = value_of("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline_path = value_of("--write-baseline");
    } else if (arg == "--witness") {
      want_witness = true;
    } else if (arg.rfind("--witness=", 0) == 0) {
      want_witness = true;
      const std::string budget = arg.substr(10);
      char* end = nullptr;
      const unsigned long long n = std::strtoull(budget.c_str(), &end, 10);
      if (budget.empty() || end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "sia_lint: bad --witness budget '%s'\n",
                     budget.c_str());
        return usage(2);
      }
      wopts.max_schedules = static_cast<std::size_t>(n);
    } else if (arg == "--witness-dir") {
      witness_dir = value_of("--witness-dir");
    } else if (arg == "--witness-seed") {
      wopts.seed = static_cast<std::uint64_t>(
          std::strtoull(value_of("--witness-seed").c_str(), nullptr, 10));
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--color") {
      color = value_of("--color");
      if (color != "always" && color != "never" && color != "auto") {
        return usage(2);
      }
    } else if (arg == "--list-checks") {
      return list_checks();
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "sia_lint: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(2);

  for (const std::string& id : opts.enabled) {
    if (lint::find_check(id) == nullptr) {
      std::fprintf(stderr, "sia_lint: unknown check '%s' (see --list-checks)\n",
                   id.c_str());
      return 2;
    }
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::fprintf(stderr, "sia_lint: cannot open baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    opts.baseline = lint::parse_baseline(text);
  }

  std::vector<lint::SourceFile> files;
  for (const std::string& path : paths) {
    lint::SourceFile f;
    f.path = path;
    if (!read_file(path, f.text)) {
      std::fprintf(stderr, "sia_lint: cannot open '%s'\n", path.c_str());
      return 2;
    }
    files.push_back(std::move(f));
  }

  lint::LintRun run = lint::run_lint(files, opts);

  if (want_witness) {
    const witness::AttachStats wstats = witness::attach_witnesses(run, wopts);
    std::fprintf(stderr,
                 "sia_lint: witness: %zu witnessed, %zu refuted-under-bound, "
                 "%zu skipped (%zu schedules explored)\n",
                 wstats.witnessed, wstats.refuted, wstats.skipped,
                 wstats.schedules_explored);
    if (!witness_dir.empty()) {
      for (const lint::FileResult& f : run.files) {
        for (const Diagnostic& d : f.diagnostics) {
          if (!d.witness) continue;
          // <dir>/<stem>.<check>.witness.json, stem = basename minus .sia
          std::string stem = f.file;
          if (const std::size_t slash = stem.find_last_of('/');
              slash != std::string::npos) {
            stem = stem.substr(slash + 1);
          }
          if (stem.size() > 4 && stem.rfind(".sia") == stem.size() - 4) {
            stem.resize(stem.size() - 4);
          }
          const std::string path =
              witness_dir + "/" + stem + "." + d.check + ".witness.json";
          std::ofstream out(path);
          if (!out) {
            std::fprintf(stderr, "sia_lint: cannot write witness '%s'\n",
                         path.c_str());
            return 2;
          }
          out << d.witness->json << "\n";
        }
      }
    }
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "sia_lint: cannot write baseline '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << run.baseline_text();
  }

  switch (format) {
    case Format::kHuman: {
      const bool use_color =
          color == "always" || (color == "auto" && isatty(STDOUT_FILENO) != 0);
      std::fputs(lint::render_human(run, use_color).c_str(), stdout);
      break;
    }
    case Format::kJson:
      std::fputs(lint::to_json(run).c_str(), stdout);
      break;
    case Format::kSarif:
      std::fputs(lint::to_sarif(run).c_str(), stdout);
      break;
  }

  if (want_stats) {
    std::fprintf(stderr, "%-24s %12s %9s\n", "check", "seconds", "findings");
    for (const lint::CheckStats& s : run.stats()) {
      std::fprintf(stderr, "%-24s %12.6f %9zu\n", s.check.c_str(), s.seconds,
                   s.findings);
    }
    const char* domain =
        opts.domain == lint::LintOptions::Domain::kConcrete ? "concrete"
                                                            : "interval";
    for (const lint::FileResult& f : run.files) {
      if (!f.key_stats.parametric) continue;
      std::fprintf(stderr,
                   "%s: domain=%s params=%zu key-accesses=%zu "
                   "representable-keys=%llu scg-conflict-edges=%zu\n",
                   f.file.c_str(), domain, f.key_stats.params,
                   f.key_stats.key_accesses,
                   static_cast<unsigned long long>(
                       f.key_stats.representable_keys),
                   f.conflict_edges);
    }
  }
  return run.exit_code();
}
