#include "tools/analysis_json.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "chopping/static_chopping_graph.hpp"
#include "robustness/robustness.hpp"
#include "tools/history_parser.hpp"
#include "tools/program_parser.hpp"

namespace sia {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

const char* boolean(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

HistoryAnalysis analyze_history_text(const std::string& text) {
  const auto t0 = std::chrono::steady_clock::now();
  const ParsedHistory trace = parse_history(text);
  HistoryAnalysis a;
  a.txns = trace.history.txn_count();
  a.sessions = trace.history.session_count();
  std::optional<DependencyGraph> witness;
  for (const Model model : {Model::kSER, Model::kSI, Model::kPSI}) {
    const HistDecision d = decide_history(trace.history, model);
    a.models.push_back({model, d.allowed, d.graphs_tried});
    if (model == Model::kSI) {
      a.in_si = d.allowed;
      if (d.witness) witness = d.witness;
    }
    if (!witness && d.witness) witness = d.witness;
  }
  if (witness) {
    for (const DepEdge& e : witness->edges()) {
      if (e.kind == DepKind::kSO) continue;
      a.witness_edges.push_back(to_string(e));
    }
  }
  a.seconds = seconds_since(t0);
  return a;
}

std::string to_json(const HistoryAnalysis& a) {
  std::ostringstream out;
  out << "{\n  \"kind\": \"history\",\n"
      << "  \"transactions\": " << a.txns << ",\n"
      << "  \"sessions\": " << a.sessions << ",\n"
      << "  \"models\": [";
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    const auto& m = a.models[i];
    out << (i != 0 ? ", " : "") << "{\"model\": "
        << json_quote(to_string(m.model))
        << ", \"allowed\": " << boolean(m.allowed)
        << ", \"graphs_tried\": " << m.graphs_tried << "}";
  }
  out << "],\n"
      << "  \"verdict\": " << (a.in_si ? "\"consistent\"" : "\"violation\"")
      << ",\n  \"witness_edges\": [";
  for (std::size_t i = 0; i < a.witness_edges.size(); ++i) {
    out << (i != 0 ? ", " : "") << json_quote(a.witness_edges[i]);
  }
  out << "],\n  \"seconds\": " << fmt_seconds(a.seconds) << "\n}\n";
  return out.str();
}

SuiteAnalysis analyze_suite_text(const std::string& text) {
  const auto t0 = std::chrono::steady_clock::now();
  const ParsedSuite suite = parse_programs(text);
  SuiteAnalysis a;
  a.programs = suite.programs.size();
  a.objects = suite.objects.size();

  const StaticChoppingGraph scg(suite.programs);
  for (const Criterion crit :
       {Criterion::kSER, Criterion::kSI, Criterion::kPSI}) {
    const ChoppingVerdict v = check_chopping_static(suite.programs, crit);
    SuiteAnalysis::ChoppingResult r;
    r.criterion = to_string(crit);
    r.correct = v.correct;
    r.complete = v.complete;
    if (v.witness) r.cycle = scg.describe(*v.witness);
    a.chopping.push_back(std::move(r));
    if (crit == Criterion::kSI) a.si_choppable = v.correct;
  }

  const auto push_robust = [&a](const char* method,
                                const RobustnessVerdict& v) {
    a.robustness.push_back({method, v.robust, v.verified, v.description});
  };
  push_robust("si_plain", robust_against_si(suite.programs));
  push_robust("si_refined", robust_against_si_refined(suite.programs));
  const RobustnessVerdict verified = robust_against_si_verified(suite.programs);
  push_robust("si_verified", verified);
  push_robust("psi_towards_si", robust_against_psi(suite.programs));
  a.si_robust = verified.robust;
  a.seconds = seconds_since(t0);
  return a;
}

namespace {

/// Everything up to (and excluding) the trailing "seconds" member, so the
/// diagnostics-carrying overload can splice its array in before it.
std::ostringstream suite_json_prefix(const SuiteAnalysis& a) {
  std::ostringstream out;
  out << "{\n  \"kind\": \"programs\",\n"
      << "  \"programs\": " << a.programs << ",\n"
      << "  \"objects\": " << a.objects << ",\n"
      << "  \"chopping\": [";
  for (std::size_t i = 0; i < a.chopping.size(); ++i) {
    const auto& c = a.chopping[i];
    out << (i != 0 ? ", " : "") << "{\"criterion\": "
        << json_quote(c.criterion) << ", \"correct\": " << boolean(c.correct)
        << ", \"complete\": " << boolean(c.complete)
        << ", \"cycle\": " << json_quote(c.cycle) << "}";
  }
  out << "],\n  \"robustness\": [";
  for (std::size_t i = 0; i < a.robustness.size(); ++i) {
    const auto& r = a.robustness[i];
    out << (i != 0 ? ", " : "") << "{\"method\": " << json_quote(r.method)
        << ", \"robust\": " << boolean(r.robust)
        << ", \"verified\": " << boolean(r.verified)
        << ", \"description\": " << json_quote(r.description) << "}";
  }
  out << "],\n  \"verdict\": "
      << (a.si_choppable && a.si_robust ? "\"ok\"" : "\"violation\"");
  return out;
}

}  // namespace

std::string to_json(const SuiteAnalysis& a) {
  std::ostringstream out = suite_json_prefix(a);
  out << ",\n  \"seconds\": " << fmt_seconds(a.seconds) << "\n}\n";
  return out.str();
}

std::string to_json(const SuiteAnalysis& a,
                    const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out = suite_json_prefix(a);
  out << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    out << (i != 0 ? ",\n    " : "\n    ") << to_json(diagnostics[i]);
  }
  out << (diagnostics.empty() ? "]" : "\n  ]")
      << ",\n  \"seconds\": " << fmt_seconds(a.seconds) << "\n}\n";
  return out.str();
}

}  // namespace sia
