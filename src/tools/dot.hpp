#pragma once

#include <string>

#include "chopping/static_chopping_graph.hpp"
#include "core/abstract_execution.hpp"
#include "graph/dependency_graph.hpp"
#include "robustness/static_dependency_graph.hpp"

/// \file dot.hpp
/// Graphviz (DOT) rendering of every graph the library manipulates —
/// dependency graphs with typed, object-annotated edges (the paper's
/// bold-arrow figures), abstract executions (VIS/CO), static chopping
/// graphs and static dependency graphs. Pipe into `dot -Tsvg` to get
/// pictures in the style of Figures 2, 4, 5, 6, 11 and 12.

namespace sia::dot {

/// Dependency graph: one node per transaction (session clusters), edges
/// labelled SO / WR(x) / WW(x) / RW(x); anti-dependencies are drawn
/// dashed, matching the paper's figures.
[[nodiscard]] std::string dependency_graph(const DependencyGraph& g);
[[nodiscard]] std::string dependency_graph(const DependencyGraph& g,
                                           const ObjectTable& objs);

/// Abstract execution: VIS edges solid, CO-only edges dotted grey.
[[nodiscard]] std::string execution(const AbstractExecution& x);

/// Static chopping graph: program clusters, successor/predecessor edges
/// grey, conflict edges labelled with their kinds.
[[nodiscard]] std::string chopping_graph(const StaticChoppingGraph& scg);

/// Static dependency graph of the robustness analyses.
[[nodiscard]] std::string static_dependency_graph(
    const StaticDependencyGraph& g);

}  // namespace sia::dot
