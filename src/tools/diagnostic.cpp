#include "tools/diagnostic.hpp"

#include <algorithm>
#include <sstream>

#include "tools/analysis_json.hpp"

namespace sia {

namespace {

constexpr const char* kReset = "\x1b[0m";
constexpr const char* kBold = "\x1b[1m";

const char* severity_color(Severity s) {
  switch (s) {
    case Severity::kError: return "\x1b[1;31m";    // bold red
    case Severity::kWarning: return "\x1b[1;35m";  // bold magenta
    case Severity::kNote: return "\x1b[1;36m";     // bold cyan
  }
  return "";
}

/// The 1-based line \p lineno of \p source ("" when out of range).
std::string_view source_line(std::string_view source, std::size_t lineno) {
  std::size_t begin = 0;
  for (std::size_t i = 1; i < lineno; ++i) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) return {};
    begin = nl + 1;
  }
  if (begin >= source.size()) return {};
  const std::size_t end = source.find('\n', begin);
  return source.substr(begin,
                       end == std::string_view::npos ? end : end - begin);
}

void append_location(std::string& out, const std::string& file,
                     const SourceSpan& span) {
  out += file;
  if (span.line != 0) {
    out += ":" + std::to_string(span.line);
    if (span.col != 0) out += ":" + std::to_string(span.col);
  }
}

}  // namespace

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::fingerprint() const {
  return check + "|" + file + "|" + context;
}

DiagnosticCounts count_diagnostics(const std::vector<Diagnostic>& diags) {
  DiagnosticCounts c;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case Severity::kError: ++c.errors; break;
      case Severity::kWarning: ++c.warnings; break;
      case Severity::kNote: ++c.notes; break;
    }
  }
  return c;
}

std::string render_human(const Diagnostic& d, std::string_view source,
                         bool color) {
  std::string out;
  const auto emit_line = [&](const std::string& file, const SourceSpan& span,
                             Severity sev, const std::string& message,
                             const std::string& suffix) {
    if (color) out += kBold;
    append_location(out, file, span);
    out += ": ";
    if (color) out += severity_color(sev);
    out += to_string(sev) + ": ";
    if (color) {
      out += kReset;
      out += kBold;
    }
    out += message + suffix;
    if (color) out += kReset;
    out += "\n";
    // The offending source line with a caret under the span.
    if (span.line == 0 || span.col == 0) return;
    const std::string_view text = source_line(source, span.line);
    if (text.empty() || span.col > text.size()) return;
    out += "  ";
    out += text;
    out += "\n  ";
    out.append(span.col - 1, ' ');
    if (color) out += "\x1b[1;32m";
    out += "^";
    if (span.end_col > span.col + 1) {
      out.append(std::min(span.end_col, text.size() + 1) - span.col - 1, '~');
    }
    if (color) out += kReset;
    out += "\n";
  };

  emit_line(d.file, d.span, d.severity, d.message, " [" + d.check + "]");
  for (const RelatedLocation& r : d.related) {
    emit_line(r.file.empty() ? d.file : r.file, r.span, Severity::kNote,
              r.message, "");
  }
  if (d.fix) {
    emit_line(d.file, SourceSpan{}, Severity::kNote,
              d.fix->description + "; suggested replacement:", "");
    std::istringstream lines{d.fix->replacement};
    std::string line;
    while (std::getline(lines, line)) out += "  | " + line + "\n";
  }
  if (d.witness) {
    emit_line(d.file, SourceSpan{}, Severity::kNote, d.witness->summary, "");
  }
  return out;
}

std::string to_json(const Diagnostic& d) {
  std::ostringstream out;
  out << "{\"check\": " << json_quote(d.check)
      << ", \"severity\": " << json_quote(to_string(d.severity))
      << ", \"file\": " << json_quote(d.file) << ", \"line\": " << d.span.line
      << ", \"col\": " << d.span.col << ", \"end_col\": " << d.span.end_col
      << ", \"message\": " << json_quote(d.message)
      << ", \"context\": " << json_quote(d.context) << ", \"related\": [";
  for (std::size_t i = 0; i < d.related.size(); ++i) {
    const RelatedLocation& r = d.related[i];
    out << (i != 0 ? ", " : "") << "{\"file\": " << json_quote(r.file)
        << ", \"line\": " << r.span.line << ", \"col\": " << r.span.col
        << ", \"message\": " << json_quote(r.message) << "}";
  }
  out << "]";
  if (d.fix) {
    out << ", \"fix\": {\"description\": " << json_quote(d.fix->description)
        << ", \"replacement\": " << json_quote(d.fix->replacement) << "}";
  }
  if (d.witness) {
    // The witness document is itself JSON; embed it verbatim.
    out << ", \"witness\": " << d.witness->json;
  }
  out << "}";
  return out.str();
}

}  // namespace sia
