#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"

/// \file diagnostic.hpp
/// Source-located findings — the shared currency of the analyzer front
/// ends. `sia_lint` (src/lint) produces Diagnostics from its check
/// registry and `sia_analyze` routes its violation reporting through the
/// same type, so the human, JSON and SARIF renderers agree on one schema:
/// a check id, a severity, a primary span into the suite file, related
/// locations (e.g. the remaining steps of a critical cycle) and an
/// optional fix-it replacement.

namespace sia {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] std::string to_string(Severity s);

/// A secondary location attached to a finding (SARIF relatedLocations,
/// clang-style "note:" lines in human output).
struct RelatedLocation {
  std::string file;
  SourceSpan span;
  std::string message;
};

/// A suggested repair: a full replacement for the suite file's text
/// (choppings are whole-suite properties, so fixes are whole-suite too).
struct FixIt {
  std::string description;
  std::string replacement;
};

/// Outcome of the witness engine (src/witness) for one critical-cycle
/// finding, carried as plain strings so this header stays free of witness
/// types: `json` is the full single-line witness document (embedded
/// verbatim in JSON/SARIF output and replayable by `sia_analyze
/// --replay`), `summary` the one-line human note.
struct WitnessInfo {
  std::string status;  ///< "witnessed" / "refuted-under-bound"
  std::size_t schedules_explored{0};
  std::size_t budget{0};
  std::string summary;
  std::string json;
};

/// One finding of one check over one file.
struct Diagnostic {
  std::string check;  ///< registry id, e.g. "si-critical-cycle"
  Severity severity{Severity::kWarning};
  std::string file;
  SourceSpan span;  ///< primary location (line 0 = whole file)
  std::string message;
  std::vector<RelatedLocation> related;
  std::optional<FixIt> fix;
  /// Position-independent context for baselines (e.g. "lookupAll[0]"):
  /// stable under edits that only move lines around.
  std::string context;
  /// Concrete witness (or bounded refutation) attached by --witness.
  std::optional<WitnessInfo> witness;

  /// Baseline key: "<check>|<file>|<context>".
  [[nodiscard]] std::string fingerprint() const;
};

/// Totals by severity (after suppression / baseline filtering).
struct DiagnosticCounts {
  std::size_t errors{0};
  std::size_t warnings{0};
  std::size_t notes{0};

  [[nodiscard]] bool findings() const { return errors + warnings > 0; }
};

[[nodiscard]] DiagnosticCounts count_diagnostics(
    const std::vector<Diagnostic>& diags);

/// Clang-style rendering: "file:line:col: warning: msg [check]" with the
/// source line and a caret underneath (when \p source, the file's text,
/// contains the span), then one "note:" line per related location and the
/// fix-it suggestion when present. \p color enables ANSI colors.
[[nodiscard]] std::string render_human(const Diagnostic& d,
                                       std::string_view source, bool color);

/// One-object JSON rendering (shared by `sia_lint --format json` and
/// `sia_analyze --format json`).
[[nodiscard]] std::string to_json(const Diagnostic& d);

}  // namespace sia
