#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/enumeration.hpp"
#include "tools/diagnostic.hpp"

/// \file analysis_json.hpp
/// The machine-readable face of the analyses: structured results of the
/// history-membership and program-suite checks plus their JSON rendering.
/// One serializer serves both front ends — `sia_analyze --format json`
/// and the service's ANALYZE request — so a violation always looks the
/// same to downstream tooling: a verdict, a witness, and the wall-clock
/// spent deciding.

namespace sia {

/// RFC 8259 string quoting (returns the string with surrounding quotes).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Result of deciding one recorded trace against all three models.
struct HistoryAnalysis {
  std::size_t txns{0};
  std::size_t sessions{0};
  struct ModelResult {
    Model model{Model::kSER};
    bool allowed{false};
    std::size_t graphs_tried{0};
  };
  std::vector<ModelResult> models;  ///< SER, SI, PSI in order
  bool in_si{false};
  /// Non-SO dependency edges of the witness graph (the SI witness when
  /// one exists, otherwise the first witness found).
  std::vector<std::string> witness_edges;
  double seconds{0.0};
};

/// Parses \p text (history_parser.hpp format) and decides HistSER /
/// HistSI / HistPSI membership exactly. \throws ParseError / ModelError
/// on bad input.
[[nodiscard]] HistoryAnalysis analyze_history_text(const std::string& text);

[[nodiscard]] std::string to_json(const HistoryAnalysis& a);

/// Result of the static analyses over one program suite.
struct SuiteAnalysis {
  std::size_t programs{0};
  std::size_t objects{0};
  struct ChoppingResult {
    std::string criterion;
    bool correct{false};
    bool complete{true};
    std::string cycle;  ///< critical-cycle description, "" when correct
  };
  std::vector<ChoppingResult> chopping;
  struct RobustnessResult {
    std::string method;
    bool robust{false};
    bool verified{false};
    std::string description;
  };
  std::vector<RobustnessResult> robustness;
  bool si_choppable{false};
  bool si_robust{false};
  double seconds{0.0};
};

/// Parses \p text (program_parser.hpp format) and runs the chopping and
/// robustness analyses of sia_analyze. \throws ParseError / ModelError.
[[nodiscard]] SuiteAnalysis analyze_suite_text(const std::string& text);

[[nodiscard]] std::string to_json(const SuiteAnalysis& a);

/// Like to_json(a) but with source-located findings appended under
/// "diagnostics", one object per Diagnostic in the exact schema
/// `sia_lint --format json` uses — so CI tooling can consume either
/// front end with one parser.
[[nodiscard]] std::string to_json(const SuiteAnalysis& a,
                                  const std::vector<Diagnostic>& diagnostics);

}  // namespace sia
