#include "core/abstract_execution.hpp"

#include <algorithm>

namespace sia::axioms {

namespace {

std::string txn_name(TxnId t) { return "T" + std::to_string(t); }

std::optional<Violation> fail(std::string axiom, std::string detail) {
  return Violation{std::move(axiom), std::move(detail)};
}

std::optional<Violation> check_strict_partial(const Relation& r,
                                              const std::string& name) {
  if (!r.is_irreflexive())
    return fail(name, name + " is not irreflexive");
  if (!r.is_transitive()) return fail(name, name + " is not transitive");
  return std::nullopt;
}

}  // namespace

std::optional<TxnId> max_in(const Relation& rel,
                            const std::vector<TxnId>& set) {
  for (TxnId a : set) {
    const bool dominates = std::all_of(
        set.begin(), set.end(),
        [&](TxnId b) { return a == b || rel.contains(b, a); });
    if (dominates) return a;
  }
  return std::nullopt;
}

std::optional<TxnId> min_in(const Relation& rel,
                            const std::vector<TxnId>& set) {
  for (TxnId a : set) {
    const bool dominated = std::all_of(
        set.begin(), set.end(),
        [&](TxnId b) { return a == b || rel.contains(a, b); });
    if (dominated) return a;
  }
  return std::nullopt;
}

std::optional<Violation> check_pre_wellformed(const AbstractExecution& x) {
  if (x.vis.size() != x.txn_count() || x.co.size() != x.txn_count())
    return fail("WF", "VIS/CO universe size differs from history");
  if (auto v = check_strict_partial(x.vis, "VIS")) return v;
  if (auto v = check_strict_partial(x.co, "CO")) return v;
  if (!x.co.is_acyclic()) return fail("WF", "CO is cyclic");
  if (!x.vis.subset_of(x.co)) return fail("WF", "VIS is not a subset of CO");
  return std::nullopt;
}

std::optional<Violation> check_wellformed(const AbstractExecution& x) {
  if (auto v = check_pre_wellformed(x)) return v;
  if (!x.co.is_total()) return fail("WF", "CO is not total");
  return std::nullopt;
}

std::optional<Violation> check_int(const History& h) {
  for (TxnId t = 0; t < h.txn_count(); ++t) {
    if (auto idx = h.txn(t).int_violation()) {
      return fail("INT", txn_name(t) + " event #" + std::to_string(*idx) +
                             " " + to_string(h.txn(t)[*idx]) +
                             " disagrees with the preceding operation on the "
                             "same object");
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_ext(const AbstractExecution& x) {
  const History& h = x.history;
  for (TxnId t = 0; t < h.txn_count(); ++t) {
    for (ObjId obj : h.txn(t).external_read_set()) {
      const Value expected = *h.txn(t).external_read(obj);
      // VIS^{-1}(T) ∩ WriteTx_obj
      std::vector<TxnId> candidates;
      for (TxnId s : x.vis.predecessors(t)) {
        if (h.txn(s).writes(obj)) candidates.push_back(s);
      }
      if (candidates.empty()) {
        return fail("EXT", txn_name(t) + " reads obj" + std::to_string(obj) +
                               " but no visible transaction writes it");
      }
      const auto writer = max_in(x.co, candidates);
      if (!writer) {
        return fail("EXT",
                    "max_CO undefined over visible writers of obj" +
                        std::to_string(obj) + " for " + txn_name(t));
      }
      const Value written = *h.txn(*writer).final_write(obj);
      if (written != expected) {
        return fail("EXT", txn_name(t) + " reads " + std::to_string(expected) +
                               " from obj" + std::to_string(obj) +
                               " but the CO-latest visible writer " +
                               txn_name(*writer) + " wrote " +
                               std::to_string(written));
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_session(const AbstractExecution& x) {
  if (!x.history.session_order().subset_of(x.vis))
    return fail("SESSION", "SO is not a subset of VIS");
  return std::nullopt;
}

std::optional<Violation> check_prefix(const AbstractExecution& x) {
  if (!x.co.compose(x.vis).subset_of(x.vis))
    return fail("PREFIX", "CO ; VIS is not a subset of VIS");
  return std::nullopt;
}

std::optional<Violation> check_noconflict(const AbstractExecution& x) {
  const History& h = x.history;
  for (ObjId obj : h.objects()) {
    const std::vector<TxnId> writers = h.writers_of(obj);
    for (std::size_t i = 0; i < writers.size(); ++i) {
      for (std::size_t j = i + 1; j < writers.size(); ++j) {
        const TxnId a = writers[i];
        const TxnId b = writers[j];
        if (!x.vis.contains(a, b) && !x.vis.contains(b, a)) {
          return fail("NOCONFLICT",
                      txn_name(a) + " and " + txn_name(b) +
                          " both write obj" + std::to_string(obj) +
                          " but are unrelated by VIS");
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_totalvis(const AbstractExecution& x) {
  if (!(x.vis == x.co)) return fail("TOTALVIS", "VIS differs from CO");
  return std::nullopt;
}

std::optional<Violation> check_transvis(const AbstractExecution& x) {
  if (!x.vis.is_transitive()) return fail("TRANSVIS", "VIS is not transitive");
  return std::nullopt;
}

std::optional<Violation> check_exec_si(const AbstractExecution& x) {
  if (auto v = check_wellformed(x)) return v;
  if (auto v = check_int(x.history)) return v;
  if (auto v = check_ext(x)) return v;
  if (auto v = check_session(x)) return v;
  if (auto v = check_prefix(x)) return v;
  if (auto v = check_noconflict(x)) return v;
  return std::nullopt;
}

std::optional<Violation> check_pre_exec_si(const AbstractExecution& x) {
  if (auto v = check_pre_wellformed(x)) return v;
  if (auto v = check_int(x.history)) return v;
  if (auto v = check_ext(x)) return v;
  if (auto v = check_session(x)) return v;
  if (auto v = check_prefix(x)) return v;
  if (auto v = check_noconflict(x)) return v;
  return std::nullopt;
}

std::optional<Violation> check_exec_ser(const AbstractExecution& x) {
  if (auto v = check_wellformed(x)) return v;
  if (auto v = check_int(x.history)) return v;
  if (auto v = check_ext(x)) return v;
  if (auto v = check_session(x)) return v;
  if (auto v = check_totalvis(x)) return v;
  return std::nullopt;
}

std::optional<Violation> check_exec_psi(const AbstractExecution& x) {
  if (auto v = check_wellformed(x)) return v;
  if (auto v = check_int(x.history)) return v;
  if (auto v = check_ext(x)) return v;
  if (auto v = check_session(x)) return v;
  if (auto v = check_transvis(x)) return v;
  if (auto v = check_noconflict(x)) return v;
  return std::nullopt;
}

}  // namespace sia::axioms
