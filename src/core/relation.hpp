#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

/// \file relation.hpp
/// Dense binary relations over transaction ids {0, ..., n-1} with the
/// algebra the paper's proofs are written in: union, sequential composition
/// (R1 ; R2), transitive closure (R+), reflexive closure (R?), inversion,
/// acyclicity, totality, and incremental closure insertion (the step of the
/// Theorem 10(i) construction).
///
/// Representation: a row-major bit matrix (std::uint64_t words). All bulk
/// operations are word-parallel; transitive closure is bitset Warshall,
/// O(n^3 / 64). Intended scale is up to a few thousand transactions per
/// analysed history, where this representation is both the fastest and the
/// simplest option.
///
/// Above kParallelThreshold rows the O(n^3/64) kernels switch to
/// multi-threaded variants (compose partitions destination rows across the
/// parallel.hpp pool; transitive closure runs 64-row-blocked Warshall with
/// the off-block panel update parallelised), and the bulk set operations
/// partition their word range. Small relations keep the scalar kernels so
/// tiny histories pay no thread overhead. Both variants of each kernel are
/// public: the *_serial forms are the reference implementations the
/// differential tests and the old-vs-new benchmarks run against.

namespace sia {

class Relation {
 public:
  /// Universe size at which compose / transitive_closure dispatch to their
  /// parallel kernels and the bulk set ops start splitting their word
  /// range. Below it the scalar kernels win on overhead.
  static constexpr std::size_t kParallelThreshold = 256;

  /// Empty relation over a universe of size \p n.
  explicit Relation(std::size_t n = 0);

  /// The identity relation {(a, a) | a < n}.
  [[nodiscard]] static Relation identity(std::size_t n);

  /// Relation from an explicit edge list.
  [[nodiscard]] static Relation from_edges(
      std::size_t n, const std::vector<std::pair<TxnId, TxnId>>& edges);

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] bool contains(TxnId a, TxnId b) const;
  void add(TxnId a, TxnId b);
  void remove(TxnId a, TxnId b);

  /// row(dst) |= row(src): dst's successor set absorbs src's in one
  /// word-parallel pass — the propagation primitive of DAG reachability.
  void absorb_row(TxnId dst, TxnId src);

  /// Number of pairs in the relation.
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] bool empty() const { return edge_count() == 0; }

  /// All pairs, lexicographically ordered.
  [[nodiscard]] std::vector<std::pair<TxnId, TxnId>> edges() const;

  /// Calls \p fn for every successor b with (a, b) in the relation,
  /// in increasing order of b.
  void for_successors(TxnId a, const std::function<void(TxnId)>& fn) const;

  /// Successors of \p a as a vector (increasing order).
  [[nodiscard]] std::vector<TxnId> successors(TxnId a) const;

  /// Predecessors of \p a as a vector (increasing order): R^{-1}(a) in the
  /// paper's notation.
  [[nodiscard]] std::vector<TxnId> predecessors(TxnId a) const;

  // ----- algebra -------------------------------------------------------

  /// In-place union.
  Relation& operator|=(const Relation& other);
  [[nodiscard]] friend Relation operator|(Relation lhs, const Relation& rhs) {
    lhs |= rhs;
    return lhs;
  }

  /// In-place intersection.
  Relation& operator&=(const Relation& other);
  [[nodiscard]] friend Relation operator&(Relation lhs, const Relation& rhs) {
    lhs &= rhs;
    return lhs;
  }

  /// In-place difference (pairs in this but not in other).
  Relation& operator-=(const Relation& other);
  [[nodiscard]] friend Relation operator-(Relation lhs, const Relation& rhs) {
    lhs -= rhs;
    return lhs;
  }

  friend bool operator==(const Relation&, const Relation&);

  /// Sequential composition R1 ; R2 = {(a,b) | ∃c. (a,c) ∈ R1 ∧ (c,b) ∈ R2}.
  /// Dispatches to compose_parallel above kParallelThreshold.
  [[nodiscard]] Relation compose(const Relation& other) const;

  /// Reference single-threaded composition kernel.
  [[nodiscard]] Relation compose_serial(const Relation& other) const;

  /// Row-partitioned composition: destination rows are independent, so the
  /// outer loop is split across the parallel.hpp pool. Identical result to
  /// compose_serial at every size (the differential tests enforce this).
  [[nodiscard]] Relation compose_parallel(const Relation& other) const;

  /// Transitive closure R+. Dispatches to transitive_closure_blocked above
  /// kParallelThreshold.
  [[nodiscard]] Relation transitive_closure() const;

  /// Reference single-threaded bitset-Warshall closure kernel.
  [[nodiscard]] Relation transitive_closure_serial() const;

  /// Blocked bitset Warshall: intermediates are processed 64 at a time —
  /// a serial in-block closure phase followed by a panel update of all
  /// remaining rows, which is row-partitioned across the pool. One
  /// fork/join per 64 intermediates instead of per intermediate.
  [[nodiscard]] Relation transitive_closure_blocked() const;

  /// Reflexive closure R? = R ∪ id.
  [[nodiscard]] Relation reflexive_closure() const;

  /// Reflexive-transitive closure R*.
  [[nodiscard]] Relation reflexive_transitive_closure() const;

  /// Inverse relation R^{-1}.
  [[nodiscard]] Relation inverse() const;

  // ----- predicates -----------------------------------------------------

  [[nodiscard]] bool is_irreflexive() const;

  /// True iff the relation, viewed as a directed graph, has no cycle
  /// (self-loops count as cycles). Linear-time DFS.
  [[nodiscard]] bool is_acyclic() const;

  /// True iff transitive.
  [[nodiscard]] bool is_transitive() const;

  /// True iff every pair of distinct elements of the universe is related
  /// one way or the other (totality of a strict order, Definition 3).
  [[nodiscard]] bool is_total() const;

  /// True iff the relation is a strict total order: irreflexive,
  /// transitive and total.
  [[nodiscard]] bool is_strict_total_order() const;

  /// True iff every pair of this relation is in \p other.
  [[nodiscard]] bool subset_of(const Relation& other) const;

  /// Some pair of distinct elements unrelated in either direction, if any.
  /// Scanning order is deterministic (lexicographic), making the
  /// Theorem 10(i) construction reproducible.
  [[nodiscard]] std::optional<std::pair<TxnId, TxnId>> unrelated_pair() const;

  // ----- graph queries ---------------------------------------------------

  /// A topological order of the universe consistent with the relation, or
  /// nullopt if cyclic.
  [[nodiscard]] std::optional<std::vector<TxnId>> topological_order() const;

  /// A simple cycle v0 -> v1 -> ... -> vk -> v0 (returned as [v0..vk]), or
  /// nullopt if acyclic.
  [[nodiscard]] std::optional<std::vector<TxnId>> find_cycle() const;

  /// A shortest path from \p from to \p to along relation edges
  /// (inclusive of both endpoints), or nullopt if unreachable. BFS.
  [[nodiscard]] std::optional<std::vector<TxnId>> find_path(TxnId from,
                                                            TxnId to) const;

  /// True iff \p to is reachable from \p from by one or more edges.
  [[nodiscard]] bool reaches(TxnId from, TxnId to) const;

  /// Smallest c with (a, c) in this and (b, c) in \p other — one
  /// word-parallel AND of the two successor rows. With other = R^{-1} this
  /// answers "smallest c with (a, c) here and (c, b) in R", the
  /// intermediate-vertex query of composed-cycle expansion.
  [[nodiscard]] std::optional<TxnId> first_common_successor(
      TxnId a, const Relation& other, TxnId b) const;

  /// Precondition: this relation is transitively closed. True iff \p to is
  /// reachable from \p from by one or more edges of (this ∪ extra), where
  /// \p extra is a sparse adjacency overlay (indices past its size have no
  /// overlay edges). Because this relation is closed, a row absorbed into
  /// the reached set never needs re-expansion through closure edges, so the
  /// scan is O(reached · n/64) plus the overlay degree — the exact deferred
  /// cycle check of ConsistencyMonitor::commit_all.
  [[nodiscard]] bool closed_reaches_with(
      TxnId from, TxnId to,
      const std::vector<std::vector<TxnId>>& extra) const;

  // ----- closure maintenance (Theorem 10(i) construction) ----------------

  /// Precondition: this relation is transitively closed. Inserts (a, b)
  /// and restores transitive closedness in O(n^2/64):
  ///   for every p with p = a or (p, a): row(p) |= row(b) ∪ {b}.
  /// This is exactly the paper's step CO_{i+1} = (CO_i ∪ {(T_i, S_i)})+.
  void add_edge_transitively(TxnId a, TxnId b);

  /// Renders the edge list, e.g. "{(0,1), (2,0)}".
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] const std::uint64_t* row(TxnId a) const {
    return bits_.data() + static_cast<std::size_t>(a) * words_;
  }
  [[nodiscard]] std::uint64_t* row(TxnId a) {
    return bits_.data() + static_cast<std::size_t>(a) * words_;
  }

  std::size_t n_{0};
  std::size_t words_{0};
  std::vector<std::uint64_t> bits_;
};

}  // namespace sia
