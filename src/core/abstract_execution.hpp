#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/relation.hpp"

/// \file abstract_execution.hpp
/// Abstract executions (Definition 3): a history extended with a visibility
/// relation VIS and a commit order CO, the declarative counterparts of
/// "whose writes are in my snapshot" and "who committed first" in the SI
/// concurrency-control algorithm.

namespace sia {

/// X = (T, SO, VIS, CO). Definition 3 requires VIS ⊆ CO, VIS a strict
/// partial order and CO a strict total order; Definition 11 (pre-execution)
/// relaxes CO to a strict partial order. The struct itself does not enforce
/// these — see axioms::check_wellformed() / check_pre_wellformed().
struct AbstractExecution {
  History history;
  Relation vis;
  Relation co;

  [[nodiscard]] std::size_t txn_count() const { return history.txn_count(); }
};

/// Description of a failed axiom check, for diagnostics.
struct Violation {
  std::string axiom;   ///< e.g. "EXT", "PREFIX"
  std::string detail;  ///< human-readable explanation with txn ids
};

/// The consistency axioms of Figure 1 plus the structural conditions of
/// Definitions 3 and 11. Each check returns nullopt on success or the first
/// violation found.
namespace axioms {

/// max_R(A): the element a of \p set such that every other b in set has
/// (b, a) ∈ rel; nullopt when no such element exists (undefined in the
/// paper's notation). For a total order this is the maximum.
[[nodiscard]] std::optional<TxnId> max_in(const Relation& rel,
                                          const std::vector<TxnId>& set);

/// min_R(A), dually.
[[nodiscard]] std::optional<TxnId> min_in(const Relation& rel,
                                          const std::vector<TxnId>& set);

/// Definition 3 structural conditions with CO required total:
/// VIS and CO strict partial orders, CO total, VIS ⊆ CO.
[[nodiscard]] std::optional<Violation> check_wellformed(
    const AbstractExecution& x);

/// Definition 11 structural conditions (CO may be partial).
[[nodiscard]] std::optional<Violation> check_pre_wellformed(
    const AbstractExecution& x);

/// INT: within each transaction, a read preceded by an operation on the
/// same object returns the value of the last such operation.
[[nodiscard]] std::optional<Violation> check_int(const History& h);

/// EXT: if T ⊢ read(x, n) then max_CO(VIS^{-1}(T) ∩ WriteTx_x) ⊢
/// write(x, n); the maximum must exist (histories include an initialising
/// transaction to guarantee this, cf. §2).
[[nodiscard]] std::optional<Violation> check_ext(const AbstractExecution& x);

/// SESSION: SO ⊆ VIS.
[[nodiscard]] std::optional<Violation> check_session(
    const AbstractExecution& x);

/// PREFIX: CO ; VIS ⊆ VIS.
[[nodiscard]] std::optional<Violation> check_prefix(
    const AbstractExecution& x);

/// NOCONFLICT: distinct transactions writing the same object are related
/// by VIS one way or the other.
[[nodiscard]] std::optional<Violation> check_noconflict(
    const AbstractExecution& x);

/// TOTALVIS: VIS = CO (hence total) — serializability.
[[nodiscard]] std::optional<Violation> check_totalvis(
    const AbstractExecution& x);

/// TRANSVIS: VIS transitive — parallel SI (Definition 20).
[[nodiscard]] std::optional<Violation> check_transvis(
    const AbstractExecution& x);

/// ExecSI membership (Definition 4): wellformed ∧ INT ∧ EXT ∧ SESSION ∧
/// PREFIX ∧ NOCONFLICT.
[[nodiscard]] std::optional<Violation> check_exec_si(
    const AbstractExecution& x);

/// PreExecSI membership (Definition 11): as ExecSI but CO may be partial.
[[nodiscard]] std::optional<Violation> check_pre_exec_si(
    const AbstractExecution& x);

/// ExecSER membership (Definition 4): wellformed ∧ INT ∧ EXT ∧ SESSION ∧
/// TOTALVIS.
[[nodiscard]] std::optional<Violation> check_exec_ser(
    const AbstractExecution& x);

/// ExecPSI membership (Definition 20): INT ∧ EXT ∧ SESSION ∧ TRANSVIS ∧
/// NOCONFLICT (CO total as in Definition 3).
[[nodiscard]] std::optional<Violation> check_exec_psi(
    const AbstractExecution& x);

[[nodiscard]] inline bool is_exec_si(const AbstractExecution& x) {
  return !check_exec_si(x).has_value();
}
[[nodiscard]] inline bool is_exec_ser(const AbstractExecution& x) {
  return !check_exec_ser(x).has_value();
}
[[nodiscard]] inline bool is_exec_psi(const AbstractExecution& x) {
  return !check_exec_psi(x).has_value();
}

}  // namespace axioms

}  // namespace sia
