#include "core/event.hpp"

#include <ostream>

namespace sia {

std::string to_string(const Event& e) {
  return std::string(e.is_read() ? "read(" : "write(") + "obj" +
         std::to_string(e.obj) + ", " + std::to_string(e.value) + ")";
}

std::string to_string(const Event& e, const ObjectTable& objs) {
  return std::string(e.is_read() ? "read(" : "write(") + objs.name(e.obj) +
         ", " + std::to_string(e.value) + ")";
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << to_string(e);
}

}  // namespace sia
