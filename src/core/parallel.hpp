#pragma once

#include <cstddef>
#include <functional>

/// \file parallel.hpp
/// A minimal process-wide fork/join helper for the relation kernels: a
/// lazily started pool of worker threads plus parallel_for, which splits an
/// index range into fixed-size chunks and runs a body over them on all
/// workers (the calling thread participates). Designed for the row-blocked
/// bit-matrix kernels in relation.cpp, where every chunk touches disjoint
/// rows and no synchronisation beyond the final join is needed.
///
/// The pool sizes itself to std::thread::hardware_concurrency(), capped by
/// the SIA_THREADS environment variable when set (SIA_THREADS=1 forces every
/// parallel_for to run inline, which is also the automatic behaviour on
/// single-core hosts). Nested parallel_for calls execute the nested range
/// inline on the calling worker rather than deadlocking on the pool.

namespace sia {

/// Number of threads parallel_for may use (>= 1). Resolved once per
/// process from hardware_concurrency() and SIA_THREADS.
[[nodiscard]] std::size_t parallel_thread_count();

/// Invokes body(chunk_begin, chunk_end) over a partition of [begin, end)
/// into chunks of at most \p grain indices. Chunks run concurrently on the
/// pool; the call returns only after every chunk has completed. Falls back
/// to a single inline body(begin, end) call when the range fits one grain,
/// the pool has a single thread, or the caller is itself a pool worker.
///
/// The body must be safe to run concurrently on disjoint chunks; exceptions
/// thrown by it terminate the process (the kernels it serves never throw).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace sia
