#include "core/transaction.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sia {

std::optional<Value> Transaction::final_write(ObjId x) const {
  std::optional<Value> result;
  for (const Event& e : events_) {
    if (e.is_write() && e.obj == x) result = e.value;
  }
  return result;
}

std::optional<Value> Transaction::external_read(ObjId x) const {
  for (const Event& e : events_) {
    if (e.obj != x) continue;
    if (e.is_read()) return e.value;
    return std::nullopt;  // first access is a write
  }
  return std::nullopt;
}

bool Transaction::writes(ObjId x) const {
  return std::any_of(events_.begin(), events_.end(), [x](const Event& e) {
    return e.is_write() && e.obj == x;
  });
}

bool Transaction::accesses(ObjId x) const {
  return std::any_of(events_.begin(), events_.end(),
                     [x](const Event& e) { return e.obj == x; });
}

namespace {

std::vector<ObjId> distinct_objects(const std::vector<Event>& events,
                                    bool (*pred)(const Event&)) {
  std::vector<ObjId> out;
  std::unordered_set<ObjId> seen;
  for (const Event& e : events) {
    if (pred(e) && seen.insert(e.obj).second) out.push_back(e.obj);
  }
  return out;
}

}  // namespace

std::vector<ObjId> Transaction::write_set() const {
  return distinct_objects(events_,
                          [](const Event& e) { return e.is_write(); });
}

std::vector<ObjId> Transaction::read_set() const {
  return distinct_objects(events_, [](const Event& e) { return e.is_read(); });
}

std::vector<ObjId> Transaction::external_read_set() const {
  std::vector<ObjId> out;
  std::unordered_set<ObjId> seen;
  for (const Event& e : events_) {
    if (!seen.insert(e.obj).second) continue;
    if (e.is_read()) out.push_back(e.obj);
  }
  return out;
}

std::optional<std::size_t> Transaction::int_violation() const {
  std::unordered_map<ObjId, Value> last;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    auto it = last.find(e.obj);
    if (e.is_read() && it != last.end() && it->second != e.value) return i;
    last[e.obj] = e.value;
  }
  return std::nullopt;
}

bool Transaction::internally_consistent() const {
  return !int_violation().has_value();
}

namespace {

template <typename Fmt>
std::string render(const Transaction& t, Fmt fmt) {
  std::string out = "[";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += "; ";
    out += fmt(t[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string to_string(const Transaction& t) {
  return render(t, [](const Event& e) { return to_string(e); });
}

std::string to_string(const Transaction& t, const ObjectTable& objs) {
  return render(t, [&objs](const Event& e) { return to_string(e, objs); });
}

}  // namespace sia
