#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

/// \file program.hpp
/// Static program abstraction used by the chopping analysis (§5) and the
/// robustness analyses (§6): each program is the code of one (possibly
/// chopped) transaction, given as pieces with read and write sets R_i^j /
/// W_i^j over-approximating the objects the piece may access.

namespace sia {

/// Position of a construct in its source text (1-based line and column;
/// 0 means unknown — programs built in C++ have no source). end_col is
/// one past the last column of the token, 0 when only a point is known.
/// Carried on Program/Piece so analyses over parsed suites can render
/// source-located diagnostics (tools/diagnostic.hpp).
struct SourceSpan {
  std::size_t line{0};
  std::size_t col{0};
  std::size_t end_col{0};

  [[nodiscard]] bool known() const { return line != 0; }
  [[nodiscard]] bool operator==(const SourceSpan&) const = default;
};

/// One piece of a chopped transaction: the objects it may read and write.
struct Piece {
  std::string label;          ///< e.g. "acct1 = acct1 - 100"
  std::vector<ObjId> reads;   ///< R_i^j
  std::vector<ObjId> writes;  ///< W_i^j
  SourceSpan span{};          ///< the `piece` line, when parsed from text

  [[nodiscard]] bool may_read(ObjId x) const;
  [[nodiscard]] bool may_write(ObjId x) const;
};

/// A program P_i: the code of the sessions resulting from chopping one
/// transaction into k_i pieces. A program with a single piece is an
/// unchopped transaction (the robustness analyses of §6 use those).
struct Program {
  std::string name;
  std::vector<Piece> pieces;
  SourceSpan span{};  ///< the program's name token, when parsed from text

  /// Union of the pieces' read sets (the whole transaction's read set).
  [[nodiscard]] std::vector<ObjId> read_set() const;

  /// Union of the pieces' write sets.
  [[nodiscard]] std::vector<ObjId> write_set() const;
};

/// Collapses each program to a single piece — the transaction the chopping
/// originated from. Used to compare chopped vs unchopped behaviour.
[[nodiscard]] std::vector<Program> unchop(const std::vector<Program>& programs);

}  // namespace sia
