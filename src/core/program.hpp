#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/types.hpp"

/// \file program.hpp
/// Static program abstraction used by the chopping analysis (§5) and the
/// robustness analyses (§6): each program is the code of one (possibly
/// chopped) transaction, given as pieces with read and write sets R_i^j /
/// W_i^j over-approximating the objects the piece may access.
///
/// Read/write sets come in two forms that coexist in one Piece:
///  - concrete objects (`reads` / `writes`, plain ObjIds) — the original
///    model, one interned name per object;
///  - parametric key accesses (`key_reads` / `key_writes`) — a table plus
///    one subscript expression per key dimension (`stock[w, 1..100]`),
///    over integer parameters declared on the program. The abstract-keys
///    engine (lint/abstract_keys.hpp) resolves every subscript to a
///    closed interval per dimension (KeyAccess::dims), and all static
///    analyses take their may-conflict edges from interval intersection.
/// A concrete object is exactly the degenerate zero-dimension case, so
/// suites without parameters behave bit-identically to the original
/// exact-set analyses.

namespace sia {

/// Position of a construct in its source text (1-based line and column;
/// 0 means unknown — programs built in C++ have no source). end_col is
/// one past the last column of the token, 0 when only a point is known.
/// Carried on Program/Piece so analyses over parsed suites can render
/// source-located diagnostics (tools/diagnostic.hpp).
struct SourceSpan {
  std::size_t line{0};
  std::size_t col{0};
  std::size_t end_col{0};

  [[nodiscard]] bool known() const { return line != 0; }
  [[nodiscard]] bool operator==(const SourceSpan&) const = default;
};

/// Sentinels for unbounded interval ends (−∞ / +∞ in the key domain).
inline constexpr std::int64_t kKeyMin = std::numeric_limits<std::int64_t>::min();
inline constexpr std::int64_t kKeyMax = std::numeric_limits<std::int64_t>::max();

/// One end of a subscript or parameter range, syntactically: an integer
/// literal, a parameter reference plus an integer offset (`w`, `w+1`,
/// `w-2`), or an unbounded end (`*`, rendered as ±∞ depending on side).
struct KeyTerm {
  std::int64_t literal{0};  ///< value when param < 0 and inf == 0
  std::int32_t param{-1};   ///< index into the owning Program's params
  std::int64_t offset{0};   ///< added to the parameter's bound
  std::int8_t inf{0};       ///< -1 / +1: this end is unbounded

  [[nodiscard]] bool is_param() const { return param >= 0 && inf == 0; }
  [[nodiscard]] bool operator==(const KeyTerm&) const = default;
};

/// One subscript dimension, syntactically: `lo..hi` (point expressions
/// like `w` or `7` have lo == hi; `*` has lo = −∞, hi = +∞).
struct KeyExpr {
  KeyTerm lo;
  KeyTerm hi;

  [[nodiscard]] bool operator==(const KeyExpr&) const = default;
};

/// A resolved closed integer interval of keys (the interval abstract
/// domain's non-⊥ elements; kKeyMin/kKeyMax stand for unbounded ends).
struct KeyRange {
  std::int64_t lo{kKeyMin};
  std::int64_t hi{kKeyMax};

  [[nodiscard]] bool empty() const { return lo > hi; }
  [[nodiscard]] bool intersects(const KeyRange& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  [[nodiscard]] bool operator==(const KeyRange&) const = default;
};

/// One parametric access: a table and one expression per key dimension.
/// `dims` is filled by the abstract-keys engine (one resolved interval per
/// subscript) before any analysis consumes the piece.
struct KeyAccess {
  ObjId table{kInvalidObj};   ///< interned table name (e.g. "stock")
  std::vector<KeyExpr> subs;  ///< syntactic subscripts, one per dimension
  std::vector<KeyRange> dims; ///< resolved intervals, same arity as subs
  SourceSpan span{};          ///< the access token, when parsed from text

  [[nodiscard]] bool operator==(const KeyAccess& o) const {
    return table == o.table && subs == o.subs;
  }
};

/// An integer parameter of a program (`param w in 1..100 != w2`): each
/// run-time instance of the program picks one value per parameter within
/// its range; `distinct` lists parameters this one can never equal in the
/// same instance. `resolved` is the abstract fixpoint's interval.
struct ParamDecl {
  std::string name;
  KeyTerm lo{0, -1, 0, -1};  ///< defaults to an unbounded range
  KeyTerm hi{0, -1, 0, +1};
  std::vector<std::uint32_t> distinct;
  SourceSpan span{};
  KeyRange resolved{};
};

/// One piece of a chopped transaction: the objects it may read and write.
struct Piece {
  std::string label;          ///< e.g. "acct1 = acct1 - 100"
  std::vector<ObjId> reads;   ///< R_i^j (concrete objects)
  std::vector<ObjId> writes;  ///< W_i^j (concrete objects)
  std::vector<KeyAccess> key_reads;   ///< parametric reads
  std::vector<KeyAccess> key_writes;  ///< parametric writes
  SourceSpan span{};          ///< the `piece` line, when parsed from text

  [[nodiscard]] bool may_read(ObjId x) const;
  [[nodiscard]] bool may_write(ObjId x) const;

  /// True when the piece touches no object, concrete or parametric.
  [[nodiscard]] bool accesses_nothing() const {
    return reads.empty() && writes.empty() && key_reads.empty() &&
           key_writes.empty();
  }
};

/// A program P_i: the code of the sessions resulting from chopping one
/// transaction into k_i pieces. A program with a single piece is an
/// unchopped transaction (the robustness analyses of §6 use those).
struct Program {
  std::string name;
  std::vector<Piece> pieces;
  std::vector<ParamDecl> params;  ///< integer parameters, possibly empty
  SourceSpan span{};  ///< the program's name token, when parsed from text

  /// Union of the pieces' read sets (the whole transaction's read set).
  [[nodiscard]] std::vector<ObjId> read_set() const;

  /// Union of the pieces' write sets.
  [[nodiscard]] std::vector<ObjId> write_set() const;

  /// True when any piece carries a parametric key access.
  [[nodiscard]] bool parametric() const;
};

/// True when any program in the suite carries a parametric key access.
[[nodiscard]] bool any_parametric(const std::vector<Program>& programs);

/// Collapses each program to a single piece — the transaction the chopping
/// originated from. Used to compare chopped vs unchopped behaviour.
[[nodiscard]] std::vector<Program> unchop(const std::vector<Program>& programs);

}  // namespace sia
