#include "core/program.hpp"

#include <algorithm>
#include <set>

namespace sia {

bool Piece::may_read(ObjId x) const {
  return std::find(reads.begin(), reads.end(), x) != reads.end();
}

bool Piece::may_write(ObjId x) const {
  return std::find(writes.begin(), writes.end(), x) != writes.end();
}

namespace {

std::vector<ObjId> union_of(const std::vector<Piece>& pieces,
                            const std::vector<ObjId> Piece::*member) {
  std::set<ObjId> out;
  for (const Piece& p : pieces) {
    for (ObjId x : p.*member) out.insert(x);
  }
  return {out.begin(), out.end()};
}

std::vector<KeyAccess> key_union_of(
    const std::vector<Piece>& pieces,
    const std::vector<KeyAccess> Piece::*member) {
  std::vector<KeyAccess> out;
  for (const Piece& p : pieces) {
    for (const KeyAccess& a : p.*member) {
      if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
    }
  }
  return out;
}

}  // namespace

std::vector<ObjId> Program::read_set() const {
  return union_of(pieces, &Piece::reads);
}

std::vector<ObjId> Program::write_set() const {
  return union_of(pieces, &Piece::writes);
}

bool Program::parametric() const {
  return std::any_of(pieces.begin(), pieces.end(), [](const Piece& p) {
    return !p.key_reads.empty() || !p.key_writes.empty();
  });
}

bool any_parametric(const std::vector<Program>& programs) {
  return std::any_of(programs.begin(), programs.end(),
                     [](const Program& p) { return p.parametric(); });
}

std::vector<Program> unchop(const std::vector<Program>& programs) {
  std::vector<Program> out;
  out.reserve(programs.size());
  for (const Program& p : programs) {
    const SourceSpan piece_span =
        p.pieces.empty() ? p.span : p.pieces.front().span;
    Piece merged{p.name, p.read_set(), p.write_set(),
                 key_union_of(p.pieces, &Piece::key_reads),
                 key_union_of(p.pieces, &Piece::key_writes), piece_span};
    out.push_back(Program{p.name, {std::move(merged)}, p.params, p.span});
  }
  return out;
}

}  // namespace sia
