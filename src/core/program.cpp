#include "core/program.hpp"

#include <algorithm>
#include <set>

namespace sia {

bool Piece::may_read(ObjId x) const {
  return std::find(reads.begin(), reads.end(), x) != reads.end();
}

bool Piece::may_write(ObjId x) const {
  return std::find(writes.begin(), writes.end(), x) != writes.end();
}

namespace {

std::vector<ObjId> union_of(const std::vector<Piece>& pieces,
                            const std::vector<ObjId> Piece::*member) {
  std::set<ObjId> out;
  for (const Piece& p : pieces) {
    for (ObjId x : p.*member) out.insert(x);
  }
  return {out.begin(), out.end()};
}

}  // namespace

std::vector<ObjId> Program::read_set() const {
  return union_of(pieces, &Piece::reads);
}

std::vector<ObjId> Program::write_set() const {
  return union_of(pieces, &Piece::writes);
}

std::vector<Program> unchop(const std::vector<Program>& programs) {
  std::vector<Program> out;
  out.reserve(programs.size());
  for (const Program& p : programs) {
    const SourceSpan piece_span =
        p.pieces.empty() ? p.span : p.pieces.front().span;
    out.push_back(Program{
        p.name,
        {Piece{p.name, p.read_set(), p.write_set(), piece_span}},
        p.span});
  }
  return out;
}

}  // namespace sia
