#include "core/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace sia {

namespace {

/// One fork/join batch: workers repeatedly claim the next grain-sized chunk
/// of [next, end) until the range is exhausted.
struct Job {
  std::atomic<std::size_t> next{0};
  std::size_t end{0};
  std::size_t grain{1};
  const std::function<void(std::size_t, std::size_t)>* body{nullptr};
  std::atomic<std::size_t> active{0};  ///< workers still inside run()

  void run() {
    for (;;) {
      const std::size_t chunk = next.fetch_add(grain, std::memory_order_relaxed);
      if (chunk >= end) return;
      (*body)(chunk, std::min(chunk + grain, end));
    }
  }
};

thread_local bool t_inside_pool = false;

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t thread_count() const { return workers_.size() + 1; }

  void dispatch(Job& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++epoch_;
    }
    cv_.notify_all();
    job.run();  // the caller is one of the workers
    // Wait until every worker that picked the job up has left run().
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;
    done_cv_.wait(lock, [&job] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  Pool() {
    std::size_t threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    if (const char* env = std::getenv("SIA_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) threads = static_cast<std::size_t>(v);
    }
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        job = job_;
        if (job != nullptr) job->active.fetch_add(1, std::memory_order_acq_rel);
      }
      if (job == nullptr) continue;  // job finished before we woke up
      job->run();
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_{nullptr};
  std::uint64_t epoch_{0};
  bool stop_{false};
};

}  // namespace

std::size_t parallel_thread_count() { return Pool::instance().thread_count(); }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  // Inline when there is nothing to split, no one to split across, or the
  // caller is a pool worker already (nested parallelism runs sequentially).
  if (end - begin <= grain || t_inside_pool ||
      Pool::instance().thread_count() == 1) {
    body(begin, end);
    return;
  }
  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.body = &body;
  Pool::instance().dispatch(job);
}

}  // namespace sia
