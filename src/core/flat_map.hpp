#pragma once

#include <algorithm>
#include <initializer_list>
#include <map>
#include <utility>
#include <vector>

/// \file flat_map.hpp
/// A minimal sorted-vector map for the monitor ingest hot path. The
/// node-based std::map in MonitoredCommit cost one allocation per entry
/// on every decoded commit (profile: the dominant allocator churn at
/// million-commit stream rates); a flat sorted vector is one allocation
/// per commit, cache-dense to iterate, and keeps std::map's ascending
/// iteration order — so wire encodings and reconstructed graphs stay
/// byte-identical. Only the operations the ingest path uses are provided.
///
/// Size assumption: entries stay small (a commit's read set). Ascending
/// insertion — the wire decoder and std::map conversions — appends in
/// O(1) amortised; out-of-order insertion pays an O(size) vector insert
/// per entry, quadratic in the worst case, so this is the wrong
/// container for large random-order maps.

namespace sia {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = typename std::vector<value_type>::iterator;

  FlatMap() = default;

  FlatMap(std::initializer_list<value_type> init) {
    for (const value_type& kv : init) (*this)[kv.first] = kv.second;
  }

  /// Implicit conversion from std::map keeps existing call sites (tests,
  /// builders) source-compatible; the input is already sorted.
  FlatMap(const std::map<K, V>& m) : entries_(m.begin(), m.end()) {}
  FlatMap(std::map<K, V>&& m) : entries_(m.begin(), m.end()) {}

  V& operator[](const K& key) {
    // Keys arriving in ascending order (the common case: decoded wire
    // frames preserve the encoder's sorted iteration) append in O(1).
    if (entries_.empty() || entries_.back().first < key) {
      entries_.emplace_back(key, V{});
      return entries_.back().second;
    }
    auto it = lower(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, {key, V{}})->second;
  }

  [[nodiscard]] const_iterator find(const K& key) const {
    auto it = lower(key);
    if (it != entries_.end() && it->first == key) return it;
    return entries_.end();
  }

  [[nodiscard]] std::size_t count(const K& key) const {
    return find(key) != end() ? 1 : 0;
  }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  friend bool operator==(const FlatMap&, const FlatMap&) = default;

 private:
  [[nodiscard]] typename std::vector<value_type>::const_iterator lower(
      const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& kv, const K& k) { return kv.first < k; });
  }
  [[nodiscard]] typename std::vector<value_type>::iterator lower(
      const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& kv, const K& k) { return kv.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace sia
