#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file types.hpp
/// Fundamental identifier types of the transactional model of
/// Cerone & Gotsman, "Analysing Snapshot Isolation" (PODC'16), and the
/// object-name interning table.

namespace sia {

/// Identifier of a shared object ("x, y, acct1 ..." in the paper).
/// Objects are interned strings; analyses work on dense ids.
using ObjId = std::uint32_t;

/// Value stored in an object. The paper's model is untyped registers over
/// an arbitrary value domain; a 64-bit integer loses no generality.
using Value = std::int64_t;

/// Index of a transaction within a History (dense, 0-based).
using TxnId = std::uint32_t;

/// Index of a session within a History (dense, 0-based).
using SessionId = std::uint32_t;

inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();
inline constexpr ObjId kInvalidObj = std::numeric_limits<ObjId>::max();

/// Error thrown when an input violates a structural precondition of the
/// paper's definitions (e.g. a malformed dependency graph per Definition 6).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Bidirectional map between human-readable object names and dense ObjIds.
///
/// All analyses and engines operate on ObjIds; the table is only consulted
/// when building inputs from source text and when pretty-printing results.
class ObjectTable {
 public:
  /// Interns \p name, returning its id (existing or fresh).
  ObjId intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const ObjId id = static_cast<ObjId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of \p name or throws ModelError if never interned.
  [[nodiscard]] ObjId lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end())
      throw ModelError("ObjectTable: unknown object '" + std::string(name) +
                       "'");
    return it->second;
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return ids_.find(std::string(name)) != ids_.end();
  }

  /// Name of \p id; ids are only ever produced by intern().
  [[nodiscard]] const std::string& name(ObjId id) const {
    if (id >= names_.size())
      throw ModelError("ObjectTable: invalid object id " + std::to_string(id));
    return names_[id];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ObjId> ids_;
};

}  // namespace sia
