#include "core/relation.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>

#include "core/parallel.hpp"

namespace sia {

namespace {

constexpr std::size_t kWordBits = 64;

/// Rows handed to one pool task by the row-partitioned kernels.
constexpr std::size_t kRowGrain = 16;

/// Words handed to one pool task by the bulk set operations; below
/// kBulkParallelWords total the scalar loop wins.
constexpr std::size_t kWordGrain = std::size_t{1} << 15;
constexpr std::size_t kBulkParallelWords = std::size_t{1} << 17;

template <typename WordOp>
void bulk_words(std::vector<std::uint64_t>& dst,
                const std::vector<std::uint64_t>& src, WordOp op) {
  if (dst.size() < kBulkParallelWords) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = op(dst[i], src[i]);
    return;
  }
  parallel_for(0, dst.size(), kWordGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   dst[i] = op(dst[i], src[i]);
                 }
               });
}

}  // namespace

Relation::Relation(std::size_t n)
    : n_(n), words_((n + kWordBits - 1) / kWordBits), bits_(n_ * words_, 0) {}

Relation Relation::identity(std::size_t n) {
  Relation r(n);
  for (TxnId a = 0; a < n; ++a) r.add(a, a);
  return r;
}

Relation Relation::from_edges(
    std::size_t n, const std::vector<std::pair<TxnId, TxnId>>& edges) {
  Relation r(n);
  for (const auto& [a, b] : edges) r.add(a, b);
  return r;
}

bool Relation::contains(TxnId a, TxnId b) const {
  assert(a < n_ && b < n_);
  return (row(a)[b / kWordBits] >> (b % kWordBits)) & 1u;
}

void Relation::add(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  row(a)[b / kWordBits] |= std::uint64_t{1} << (b % kWordBits);
}

void Relation::remove(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  row(a)[b / kWordBits] &= ~(std::uint64_t{1} << (b % kWordBits));
}

void Relation::absorb_row(TxnId dst, TxnId src) {
  assert(dst < n_ && src < n_);
  if (dst == src) return;
  const std::uint64_t* rs = row(src);
  std::uint64_t* rd = row(dst);
  for (std::size_t w = 0; w < words_; ++w) rd[w] |= rs[w];
}

std::size_t Relation::edge_count() const {
  std::size_t count = 0;
  for (std::uint64_t w : bits_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

std::vector<std::pair<TxnId, TxnId>> Relation::edges() const {
  std::vector<std::pair<TxnId, TxnId>> out;
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { out.emplace_back(a, b); });
  }
  return out;
}

void Relation::for_successors(TxnId a,
                              const std::function<void(TxnId)>& fn) const {
  const std::uint64_t* r = row(a);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t word = r[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(static_cast<TxnId>(w * kWordBits + static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
}

std::vector<TxnId> Relation::successors(TxnId a) const {
  std::vector<TxnId> out;
  for_successors(a, [&](TxnId b) { out.push_back(b); });
  return out;
}

std::vector<TxnId> Relation::predecessors(TxnId a) const {
  std::vector<TxnId> out;
  for (TxnId b = 0; b < n_; ++b) {
    if (contains(b, a)) out.push_back(b);
  }
  return out;
}

Relation& Relation::operator|=(const Relation& other) {
  assert(n_ == other.n_);
  bulk_words(bits_, other.bits_,
             [](std::uint64_t a, std::uint64_t b) { return a | b; });
  return *this;
}

Relation& Relation::operator&=(const Relation& other) {
  assert(n_ == other.n_);
  bulk_words(bits_, other.bits_,
             [](std::uint64_t a, std::uint64_t b) { return a & b; });
  return *this;
}

Relation& Relation::operator-=(const Relation& other) {
  assert(n_ == other.n_);
  bulk_words(bits_, other.bits_,
             [](std::uint64_t a, std::uint64_t b) { return a & ~b; });
  return *this;
}

bool operator==(const Relation& lhs, const Relation& rhs) {
  return lhs.n_ == rhs.n_ && lhs.bits_ == rhs.bits_;
}

Relation Relation::compose(const Relation& other) const {
  return n_ >= kParallelThreshold ? compose_parallel(other)
                                  : compose_serial(other);
}

Relation Relation::compose_serial(const Relation& other) const {
  assert(n_ == other.n_);
  Relation out(n_);
  for (TxnId a = 0; a < n_; ++a) {
    std::uint64_t* dst = out.row(a);
    for_successors(a, [&](TxnId c) {
      const std::uint64_t* src = other.row(c);
      for (std::size_t w = 0; w < words_; ++w) dst[w] |= src[w];
    });
  }
  return out;
}

Relation Relation::compose_parallel(const Relation& other) const {
  assert(n_ == other.n_);
  Relation out(n_);
  // Destination rows are written by exactly one task; `other` is read-only.
  parallel_for(0, n_, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (TxnId a = lo; a < hi; ++a) {
      const std::uint64_t* ra = row(a);
      std::uint64_t* dst = out.row(a);
      for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t word = ra[w];
        while (word != 0) {
          const std::size_t c =
              w * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
          const std::uint64_t* src = other.row(static_cast<TxnId>(c));
          for (std::size_t v = 0; v < words_; ++v) dst[v] |= src[v];
          word &= word - 1;
        }
      }
    }
  });
  return out;
}

Relation Relation::transitive_closure() const {
  return n_ >= kParallelThreshold ? transitive_closure_blocked()
                                  : transitive_closure_serial();
}

Relation Relation::transitive_closure_serial() const {
  Relation out = *this;
  // Bitset Warshall: after iteration k, out contains all paths whose
  // intermediate vertices are < k+1.
  for (TxnId k = 0; k < n_; ++k) {
    const std::uint64_t* rk = out.row(k);
    // Copy row k since row(i) may alias it when i == k.
    std::vector<std::uint64_t> krow(rk, rk + words_);
    for (TxnId i = 0; i < n_; ++i) {
      if (!out.contains(i, k)) continue;
      std::uint64_t* ri = out.row(i);
      for (std::size_t w = 0; w < words_; ++w) ri[w] |= krow[w];
    }
  }
  return out;
}

Relation Relation::transitive_closure_blocked() const {
  Relation out = *this;
  // Blocked Warshall over word-aligned blocks of 64 intermediates. After
  // the step for block [k0, k1), `out` holds every path whose intermediate
  // vertices are < k1 — the phase-1 sub-Warshall gives the block's own rows
  // their closure over in-block intermediates, after which each remaining
  // row only needs to absorb the block rows it can enter (phase 2, where
  // distinct rows are independent and the loop is pool-partitioned).
  for (std::size_t k0 = 0; k0 < n_; k0 += kWordBits) {
    const std::size_t k1 = std::min(k0 + kWordBits, n_);
    for (TxnId k = k0; k < k1; ++k) {
      const std::uint64_t* rk = out.row(k);
      for (TxnId i = k0; i < k1; ++i) {
        if (i == k || !out.contains(i, k)) continue;
        std::uint64_t* ri = out.row(i);
        for (std::size_t w = 0; w < words_; ++w) ri[w] |= rk[w];
      }
    }
    parallel_for(0, n_, kRowGrain, [&](std::size_t lo, std::size_t hi) {
      for (TxnId i = lo; i < hi; ++i) {
        if (k0 <= i && i < k1) continue;  // closed in phase 1
        std::uint64_t* ri = out.row(i);
        for (TxnId k = k0; k < k1; ++k) {
          if (!out.contains(i, k)) continue;
          const std::uint64_t* rk = out.row(k);
          for (std::size_t w = 0; w < words_; ++w) ri[w] |= rk[w];
        }
      }
    });
  }
  return out;
}

Relation Relation::reflexive_closure() const {
  Relation out = *this;
  for (TxnId a = 0; a < n_; ++a) out.add(a, a);
  return out;
}

Relation Relation::reflexive_transitive_closure() const {
  return transitive_closure().reflexive_closure();
}

Relation Relation::inverse() const {
  Relation out(n_);
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { out.add(b, a); });
  }
  return out;
}

bool Relation::is_irreflexive() const {
  for (TxnId a = 0; a < n_; ++a) {
    if (contains(a, a)) return false;
  }
  return true;
}

bool Relation::is_acyclic() const { return !find_cycle().has_value(); }

bool Relation::is_transitive() const {
  const Relation comp = compose(*this);
  return comp.subset_of(*this);
}

bool Relation::is_total() const {
  for (TxnId a = 0; a < n_; ++a) {
    for (TxnId b = a + 1; b < n_; ++b) {
      if (!contains(a, b) && !contains(b, a)) return false;
    }
  }
  return true;
}

bool Relation::is_strict_total_order() const {
  return is_irreflexive() && is_transitive() && is_total();
}

bool Relation::subset_of(const Relation& other) const {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

std::optional<std::pair<TxnId, TxnId>> Relation::unrelated_pair() const {
  for (TxnId a = 0; a < n_; ++a) {
    for (TxnId b = a + 1; b < n_; ++b) {
      if (!contains(a, b) && !contains(b, a)) return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxnId>> Relation::topological_order() const {
  std::vector<std::size_t> indegree(n_, 0);
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { ++indegree[b]; });
  }
  std::deque<TxnId> ready;
  for (TxnId a = 0; a < n_; ++a) {
    if (indegree[a] == 0) ready.push_back(a);
  }
  std::vector<TxnId> order;
  order.reserve(n_);
  while (!ready.empty()) {
    const TxnId a = ready.front();
    ready.pop_front();
    order.push_back(a);
    for_successors(a, [&](TxnId b) {
      if (--indegree[b] == 0) ready.push_back(b);
    });
  }
  if (order.size() != n_) return std::nullopt;
  return order;
}

std::optional<std::vector<TxnId>> Relation::find_cycle() const {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n_, Color::kWhite);
  std::vector<TxnId> parent(n_, kInvalidTxn);

  // Iterative DFS; on back edge (u, v) reconstruct the cycle v ... u.
  struct Frame {
    TxnId node;
    std::vector<TxnId> succ;
    std::size_t next{0};
  };
  for (TxnId start = 0; start < n_; ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({start, successors(start), 0});
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next >= f.succ.size()) {
        color[f.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = f.succ[f.next++];
      if (color[next] == Color::kGray) {
        // Back edge: cycle next -> ... -> f.node -> next.
        std::vector<TxnId> cycle;
        cycle.push_back(next);
        if (next != f.node) {
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            cycle.push_back(it->node);
            if (it->node == next) break;
          }
          // cycle currently: next, u_k, ..., next — drop duplicate tail,
          // then reverse the path portion into forward order.
          cycle.pop_back();
          std::reverse(cycle.begin() + 1, cycle.end());
        }
        return cycle;
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        parent[next] = f.node;
        stack.push_back({next, successors(next), 0});
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxnId>> Relation::find_path(TxnId from,
                                                      TxnId to) const {
  assert(from < n_ && to < n_);
  std::vector<TxnId> parent(n_, kInvalidTxn);
  std::vector<bool> visited(n_, false);
  std::deque<TxnId> queue;
  // BFS over one-or-more-edge paths, so do not mark `from` visited up
  // front: `to == from` requires an actual cycle through `from`.
  queue.push_back(from);
  bool found = false;
  while (!queue.empty() && !found) {
    const TxnId u = queue.front();
    queue.pop_front();
    for_successors(u, [&](TxnId v) {
      if (found) return;
      if (v == to) {
        parent[v] = u;
        found = true;
        return;
      }
      if (!visited[v]) {
        visited[v] = true;
        parent[v] = u;
        queue.push_back(v);
      }
    });
  }
  if (!found) return std::nullopt;
  std::vector<TxnId> path;
  path.push_back(to);
  TxnId cur = parent[to];
  while (cur != kInvalidTxn && cur != from) {
    path.push_back(cur);
    cur = parent[cur];
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

bool Relation::reaches(TxnId from, TxnId to) const {
  return find_path(from, to).has_value();
}

std::optional<TxnId> Relation::first_common_successor(
    TxnId a, const Relation& other, TxnId b) const {
  assert(a < n_ && b < other.n_ && words_ == other.words_);
  const std::uint64_t* ra = row(a);
  const std::uint64_t* rb = other.row(b);
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t word = ra[w] & rb[w];
    if (word != 0) {
      return static_cast<TxnId>(
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(word)));
    }
  }
  return std::nullopt;
}

bool Relation::closed_reaches_with(
    TxnId from, TxnId to,
    const std::vector<std::vector<TxnId>>& extra) const {
  assert(from < n_ && to < n_);
  // `reached` = nodes with a (≥1)-edge path from `from`; a worklist node is
  // expanded at most once (`absorbed`). Closure rows of nodes reached
  // through a closure row are subsets of rows already absorbed, so only
  // nodes with overlay edges (or reached through an overlay edge) are
  // queued for expansion.
  std::vector<std::uint64_t> reached(words_, 0);
  std::vector<std::uint64_t> absorbed(words_, 0);
  const auto test = [](const std::vector<std::uint64_t>& set, TxnId t) {
    return ((set[t / kWordBits] >> (t % kWordBits)) & 1u) != 0;
  };
  const auto mark = [](std::vector<std::uint64_t>& set, TxnId t) {
    set[t / kWordBits] |= std::uint64_t{1} << (t % kWordBits);
  };
  const auto has_overlay = [&extra](TxnId t) {
    return t < extra.size() && !extra[t].empty();
  };
  std::vector<TxnId> work{from};
  while (!work.empty()) {
    const TxnId u = work.back();
    work.pop_back();
    if (test(absorbed, u)) continue;
    mark(absorbed, u);
    const std::uint64_t* ru = row(u);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t fresh = ru[w] & ~reached[w];
      reached[w] |= ru[w];
      while (fresh != 0) {
        const TxnId v = static_cast<TxnId>(
            w * kWordBits + static_cast<std::size_t>(std::countr_zero(fresh)));
        if (has_overlay(v)) work.push_back(v);
        fresh &= fresh - 1;
      }
    }
    if (u < extra.size()) {
      for (const TxnId v : extra[u]) {
        if (!test(reached, v)) {
          mark(reached, v);
          work.push_back(v);  // row(v) is not implied by any absorbed row
        }
      }
    }
    if (test(reached, to)) return true;
  }
  return test(reached, to);
}

void Relation::add_edge_transitively(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  // row(b) ∪ {b}, snapshotted before mutation in case a reaches b.
  std::vector<std::uint64_t> brow(row(b), row(b) + words_);
  brow[b / kWordBits] |= std::uint64_t{1} << (b % kWordBits);
  for (TxnId p = 0; p < n_; ++p) {
    if (p != a && !contains(p, a)) continue;
    std::uint64_t* rp = row(p);
    for (std::size_t w = 0; w < words_; ++w) rp[w] |= brow[w];
  }
}

std::string Relation::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [a, b] : edges()) {
    if (!first) out += ", ";
    first = false;
    out += "(" + std::to_string(a) + "," + std::to_string(b) + ")";
  }
  out += "}";
  return out;
}

}  // namespace sia
