#include "core/relation.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>

namespace sia {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

Relation::Relation(std::size_t n)
    : n_(n), words_((n + kWordBits - 1) / kWordBits), bits_(n_ * words_, 0) {}

Relation Relation::identity(std::size_t n) {
  Relation r(n);
  for (TxnId a = 0; a < n; ++a) r.add(a, a);
  return r;
}

Relation Relation::from_edges(
    std::size_t n, const std::vector<std::pair<TxnId, TxnId>>& edges) {
  Relation r(n);
  for (const auto& [a, b] : edges) r.add(a, b);
  return r;
}

bool Relation::contains(TxnId a, TxnId b) const {
  assert(a < n_ && b < n_);
  return (row(a)[b / kWordBits] >> (b % kWordBits)) & 1u;
}

void Relation::add(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  row(a)[b / kWordBits] |= std::uint64_t{1} << (b % kWordBits);
}

void Relation::remove(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  row(a)[b / kWordBits] &= ~(std::uint64_t{1} << (b % kWordBits));
}

std::size_t Relation::edge_count() const {
  std::size_t count = 0;
  for (std::uint64_t w : bits_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

std::vector<std::pair<TxnId, TxnId>> Relation::edges() const {
  std::vector<std::pair<TxnId, TxnId>> out;
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { out.emplace_back(a, b); });
  }
  return out;
}

void Relation::for_successors(TxnId a,
                              const std::function<void(TxnId)>& fn) const {
  const std::uint64_t* r = row(a);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t word = r[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(static_cast<TxnId>(w * kWordBits + static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
}

std::vector<TxnId> Relation::successors(TxnId a) const {
  std::vector<TxnId> out;
  for_successors(a, [&](TxnId b) { out.push_back(b); });
  return out;
}

std::vector<TxnId> Relation::predecessors(TxnId a) const {
  std::vector<TxnId> out;
  for (TxnId b = 0; b < n_; ++b) {
    if (contains(b, a)) out.push_back(b);
  }
  return out;
}

Relation& Relation::operator|=(const Relation& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return *this;
}

Relation& Relation::operator&=(const Relation& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= other.bits_[i];
  return *this;
}

Relation& Relation::operator-=(const Relation& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~other.bits_[i];
  return *this;
}

bool operator==(const Relation& lhs, const Relation& rhs) {
  return lhs.n_ == rhs.n_ && lhs.bits_ == rhs.bits_;
}

Relation Relation::compose(const Relation& other) const {
  assert(n_ == other.n_);
  Relation out(n_);
  for (TxnId a = 0; a < n_; ++a) {
    std::uint64_t* dst = out.row(a);
    for_successors(a, [&](TxnId c) {
      const std::uint64_t* src = other.row(c);
      for (std::size_t w = 0; w < words_; ++w) dst[w] |= src[w];
    });
  }
  return out;
}

Relation Relation::transitive_closure() const {
  Relation out = *this;
  // Bitset Warshall: after iteration k, out contains all paths whose
  // intermediate vertices are < k+1.
  for (TxnId k = 0; k < n_; ++k) {
    const std::uint64_t* rk = out.row(k);
    // Copy row k since row(i) may alias it when i == k.
    std::vector<std::uint64_t> krow(rk, rk + words_);
    for (TxnId i = 0; i < n_; ++i) {
      if (!out.contains(i, k)) continue;
      std::uint64_t* ri = out.row(i);
      for (std::size_t w = 0; w < words_; ++w) ri[w] |= krow[w];
    }
  }
  return out;
}

Relation Relation::reflexive_closure() const {
  Relation out = *this;
  for (TxnId a = 0; a < n_; ++a) out.add(a, a);
  return out;
}

Relation Relation::reflexive_transitive_closure() const {
  return transitive_closure().reflexive_closure();
}

Relation Relation::inverse() const {
  Relation out(n_);
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { out.add(b, a); });
  }
  return out;
}

bool Relation::is_irreflexive() const {
  for (TxnId a = 0; a < n_; ++a) {
    if (contains(a, a)) return false;
  }
  return true;
}

bool Relation::is_acyclic() const { return !find_cycle().has_value(); }

bool Relation::is_transitive() const {
  const Relation comp = compose(*this);
  return comp.subset_of(*this);
}

bool Relation::is_total() const {
  for (TxnId a = 0; a < n_; ++a) {
    for (TxnId b = a + 1; b < n_; ++b) {
      if (!contains(a, b) && !contains(b, a)) return false;
    }
  }
  return true;
}

bool Relation::is_strict_total_order() const {
  return is_irreflexive() && is_transitive() && is_total();
}

bool Relation::subset_of(const Relation& other) const {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

std::optional<std::pair<TxnId, TxnId>> Relation::unrelated_pair() const {
  for (TxnId a = 0; a < n_; ++a) {
    for (TxnId b = a + 1; b < n_; ++b) {
      if (!contains(a, b) && !contains(b, a)) return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxnId>> Relation::topological_order() const {
  std::vector<std::size_t> indegree(n_, 0);
  for (TxnId a = 0; a < n_; ++a) {
    for_successors(a, [&](TxnId b) { ++indegree[b]; });
  }
  std::deque<TxnId> ready;
  for (TxnId a = 0; a < n_; ++a) {
    if (indegree[a] == 0) ready.push_back(a);
  }
  std::vector<TxnId> order;
  order.reserve(n_);
  while (!ready.empty()) {
    const TxnId a = ready.front();
    ready.pop_front();
    order.push_back(a);
    for_successors(a, [&](TxnId b) {
      if (--indegree[b] == 0) ready.push_back(b);
    });
  }
  if (order.size() != n_) return std::nullopt;
  return order;
}

std::optional<std::vector<TxnId>> Relation::find_cycle() const {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n_, Color::kWhite);
  std::vector<TxnId> parent(n_, kInvalidTxn);

  // Iterative DFS; on back edge (u, v) reconstruct the cycle v ... u.
  struct Frame {
    TxnId node;
    std::vector<TxnId> succ;
    std::size_t next{0};
  };
  for (TxnId start = 0; start < n_; ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({start, successors(start), 0});
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next >= f.succ.size()) {
        color[f.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = f.succ[f.next++];
      if (color[next] == Color::kGray) {
        // Back edge: cycle next -> ... -> f.node -> next.
        std::vector<TxnId> cycle;
        cycle.push_back(next);
        if (next != f.node) {
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            cycle.push_back(it->node);
            if (it->node == next) break;
          }
          // cycle currently: next, u_k, ..., next — drop duplicate tail,
          // then reverse the path portion into forward order.
          cycle.pop_back();
          std::reverse(cycle.begin() + 1, cycle.end());
        }
        return cycle;
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        parent[next] = f.node;
        stack.push_back({next, successors(next), 0});
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxnId>> Relation::find_path(TxnId from,
                                                      TxnId to) const {
  assert(from < n_ && to < n_);
  std::vector<TxnId> parent(n_, kInvalidTxn);
  std::vector<bool> visited(n_, false);
  std::deque<TxnId> queue;
  // BFS over one-or-more-edge paths, so do not mark `from` visited up
  // front: `to == from` requires an actual cycle through `from`.
  queue.push_back(from);
  bool found = false;
  while (!queue.empty() && !found) {
    const TxnId u = queue.front();
    queue.pop_front();
    for_successors(u, [&](TxnId v) {
      if (found) return;
      if (v == to) {
        parent[v] = u;
        found = true;
        return;
      }
      if (!visited[v]) {
        visited[v] = true;
        parent[v] = u;
        queue.push_back(v);
      }
    });
  }
  if (!found) return std::nullopt;
  std::vector<TxnId> path;
  path.push_back(to);
  TxnId cur = parent[to];
  while (cur != kInvalidTxn && cur != from) {
    path.push_back(cur);
    cur = parent[cur];
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

bool Relation::reaches(TxnId from, TxnId to) const {
  return find_path(from, to).has_value();
}

void Relation::add_edge_transitively(TxnId a, TxnId b) {
  assert(a < n_ && b < n_);
  // row(b) ∪ {b}, snapshotted before mutation in case a reaches b.
  std::vector<std::uint64_t> brow(row(b), row(b) + words_);
  brow[b / kWordBits] |= std::uint64_t{1} << (b % kWordBits);
  for (TxnId p = 0; p < n_; ++p) {
    if (p != a && !contains(p, a)) continue;
    std::uint64_t* rp = row(p);
    for (std::size_t w = 0; w < words_; ++w) rp[w] |= brow[w];
  }
}

std::string Relation::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [a, b] : edges()) {
    if (!first) out += ", ";
    first = false;
    out += "(" + std::to_string(a) + "," + std::to_string(b) + ")";
  }
  out += "}";
  return out;
}

}  // namespace sia
