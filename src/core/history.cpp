#include "core/history.hpp"

#include <algorithm>
#include <set>

namespace sia {

TxnId History::append(SessionId s, Transaction t) {
  if (s >= sessions_.size()) sessions_.resize(s + 1);
  const TxnId id = static_cast<TxnId>(txns_.size());
  txns_.push_back(std::move(t));
  session_of_.push_back(s);
  session_index_.push_back(sessions_[s].size());
  sessions_[s].push_back(id);
  return id;
}

TxnId History::append_singleton(Transaction t) {
  return append(static_cast<SessionId>(sessions_.size()), std::move(t));
}

Relation History::session_order() const {
  Relation so(txn_count());
  for (const auto& sess : sessions_) {
    for (std::size_t i = 0; i < sess.size(); ++i) {
      for (std::size_t j = i + 1; j < sess.size(); ++j) {
        so.add(sess[i], sess[j]);
      }
    }
  }
  return so;
}

Relation History::same_session() const {
  Relation eq(txn_count());
  for (const auto& sess : sessions_) {
    for (TxnId a : sess) {
      for (TxnId b : sess) eq.add(a, b);
    }
  }
  return eq;
}

std::vector<ObjId> History::objects() const {
  std::set<ObjId> objs;
  for (const Transaction& t : txns_) {
    for (const Event& e : t.events()) objs.insert(e.obj);
  }
  return {objs.begin(), objs.end()};
}

std::vector<TxnId> History::writers_of(ObjId x) const {
  std::vector<TxnId> out;
  for (TxnId id = 0; id < txns_.size(); ++id) {
    if (txns_[id].writes(x)) out.push_back(id);
  }
  return out;
}

bool History::internally_consistent() const {
  return std::all_of(txns_.begin(), txns_.end(), [](const Transaction& t) {
    return t.internally_consistent();
  });
}

namespace {

template <typename Fmt>
std::string render(const History& h, Fmt fmt) {
  std::string out;
  for (SessionId s = 0; s < h.session_count(); ++s) {
    out += "s" + std::to_string(s) + ":";
    for (TxnId id : h.session(s)) {
      out += " T" + std::to_string(id) + "=" + fmt(h.txn(id));
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string to_string(const History& h) {
  return render(h, [](const Transaction& t) { return to_string(t); });
}

std::string to_string(const History& h, const ObjectTable& objs) {
  return render(h,
                [&objs](const Transaction& t) { return to_string(t, objs); });
}

HistoryBuilder& HistoryBuilder::txn(std::vector<Event> events) {
  if (!started_) {
    current_ = static_cast<SessionId>(history_.session_count());
    started_ = true;
  }
  last_ = history_.append(current_, Transaction(std::move(events)));
  return *this;
}

TxnId HistoryBuilder::init_txn(const std::vector<ObjId>& objs, Value value) {
  std::vector<Event> events;
  events.reserve(objs.size());
  for (ObjId x : objs) events.push_back(write(x, value));
  last_ = history_.append_singleton(Transaction(std::move(events)));
  // Keep subsequent txn() calls out of the initialiser's session.
  started_ = false;
  return last_;
}

}  // namespace sia
