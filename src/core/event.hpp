#pragma once

#include <iosfwd>
#include <string>

#include "core/types.hpp"

/// \file event.hpp
/// Read/write events (Definition 1 of the paper): a transaction is a set of
/// events over operations op(e) ∈ {read(x,n), write(x,n)} together with a
/// program order.

namespace sia {

/// Kind of an operation performed by an event.
enum class EventKind : std::uint8_t { kRead, kWrite };

/// A single operation instance inside a transaction: read(x,n) or
/// write(x,n). Events are value types; identity within a transaction is
/// positional (its index in the transaction's program order).
struct Event {
  EventKind kind{EventKind::kRead};
  ObjId obj{kInvalidObj};
  Value value{0};

  [[nodiscard]] bool is_read() const { return kind == EventKind::kRead; }
  [[nodiscard]] bool is_write() const { return kind == EventKind::kWrite; }

  friend bool operator==(const Event&, const Event&) = default;
};

/// Convenience constructors mirroring the paper's notation.
[[nodiscard]] inline Event read(ObjId x, Value n) {
  return Event{EventKind::kRead, x, n};
}
[[nodiscard]] inline Event write(ObjId x, Value n) {
  return Event{EventKind::kWrite, x, n};
}

/// Renders "read(x, n)" / "write(x, n)" with the numeric object id.
[[nodiscard]] std::string to_string(const Event& e);

/// Renders with the object's interned name.
[[nodiscard]] std::string to_string(const Event& e, const ObjectTable& objs);

std::ostream& operator<<(std::ostream& os, const Event& e);

}  // namespace sia
