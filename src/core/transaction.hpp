#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/types.hpp"

/// \file transaction.hpp
/// Transactions (Definition 1): a finite, totally ordered sequence of
/// events. The program order po is the index order of the event vector
/// (every total order is isomorphic to such a sequence, and the paper only
/// ever uses po as a total order).

namespace sia {

/// A committed transaction: its events in program order.
///
/// Provides the derived judgements used throughout the paper:
///  - `T ⊢ write(x, n)` — T writes to x and the *last* value written is n
///    (final_write());
///  - `T ⊢ read(x, n)`  — T reads x *before* writing to it and n is the
///    value of the first such read, i.e. the first event of T on x is a
///    read returning n (external_read());
///  - membership of WriteTx_x (writes());
///  - the per-transaction internal consistency axiom INT.
class Transaction {
 public:
  Transaction() = default;
  explicit Transaction(std::vector<Event> events)
      : events_(std::move(events)) {}

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const Event& operator[](std::size_t i) const {
    return events_[i];
  }

  /// Appends an event at the end of program order.
  void append(const Event& e) { events_.push_back(e); }

  /// `T ⊢ write(x, n)`: value of the last write of this transaction to
  /// \p x, or nullopt if the transaction never writes x.
  [[nodiscard]] std::optional<Value> final_write(ObjId x) const;

  /// `T ⊢ read(x, n)`: value returned by the first operation of this
  /// transaction on \p x, provided that operation is a read; nullopt if the
  /// transaction never accesses x or writes it first. This is the
  /// "externally visible" read whose value must be explained by other
  /// transactions (axiom EXT / relation WR).
  [[nodiscard]] std::optional<Value> external_read(ObjId x) const;

  /// True iff the transaction writes to \p x (membership of WriteTx_x).
  [[nodiscard]] bool writes(ObjId x) const;

  /// True iff the transaction contains any event on \p x.
  [[nodiscard]] bool accesses(ObjId x) const;

  /// Distinct objects written, in first-access order.
  [[nodiscard]] std::vector<ObjId> write_set() const;

  /// Distinct objects with an external read (see external_read()), in
  /// first-access order.
  [[nodiscard]] std::vector<ObjId> external_read_set() const;

  /// Distinct objects read anywhere in the transaction, in first-access
  /// order (used by static over-approximations).
  [[nodiscard]] std::vector<ObjId> read_set() const;

  /// Axiom INT (Figure 1) restricted to this transaction: every read event
  /// preceded in po by an operation on the same object returns the value of
  /// the last such operation.
  [[nodiscard]] bool internally_consistent() const;

  /// Like internally_consistent(), but returns the index of the first
  /// violating read event, or nullopt when consistent. Used for
  /// diagnostics.
  [[nodiscard]] std::optional<std::size_t> int_violation() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;

 private:
  std::vector<Event> events_;
};

/// Renders "[read(x,0); write(x,1)]".
[[nodiscard]] std::string to_string(const Transaction& t);
[[nodiscard]] std::string to_string(const Transaction& t,
                                    const ObjectTable& objs);

}  // namespace sia
