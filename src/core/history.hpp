#pragma once

#include <string>
#include <vector>

#include "core/relation.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"

/// \file history.hpp
/// Histories (Definition 2): a finite set of transactions partitioned into
/// sessions, with the session order SO relating earlier to later
/// transactions of the same session. Following the paper we analyse
/// *strong session* SI/SER/PSI, so sessions are first-class.

namespace sia {

/// A history H = (T, SO).
///
/// Transactions are stored in a dense vector; TxnId is the index. Sessions
/// are sequences of TxnIds; SO is the union of the per-session total
/// orders. Every transaction belongs to exactly one session (a transaction
/// outside any client session is modelled as a singleton session, e.g. the
/// initialisation transaction).
class History {
 public:
  History() = default;

  /// Appends \p t as the next transaction of session \p s (creating
  /// sessions up to s if needed). Returns the new transaction's id.
  TxnId append(SessionId s, Transaction t);

  /// Appends a transaction in a fresh singleton session.
  TxnId append_singleton(Transaction t);

  [[nodiscard]] std::size_t txn_count() const { return txns_.size(); }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  [[nodiscard]] const Transaction& txn(TxnId id) const { return txns_[id]; }
  [[nodiscard]] const std::vector<Transaction>& txns() const { return txns_; }

  /// Transactions of session \p s in session order.
  [[nodiscard]] const std::vector<TxnId>& session(SessionId s) const {
    return sessions_[s];
  }

  /// Session that transaction \p id belongs to.
  [[nodiscard]] SessionId session_of(TxnId id) const {
    return session_of_[id];
  }

  /// Position of transaction \p id within its session.
  [[nodiscard]] std::size_t session_index_of(TxnId id) const {
    return session_index_[id];
  }

  /// The session order SO: (T, S) iff same session and T earlier.
  /// SO is a union of total orders (strict within each session).
  [[nodiscard]] Relation session_order() const;

  /// The equivalence ≈_H grouping transactions of the same session
  /// (SO ∪ SO^{-1} ∪ id), as a relation.
  [[nodiscard]] Relation same_session() const;

  /// True iff T ≈_H S.
  [[nodiscard]] bool same_session(TxnId a, TxnId b) const {
    return session_of_[a] == session_of_[b];
  }

  /// All objects accessed anywhere in the history (sorted, distinct).
  [[nodiscard]] std::vector<ObjId> objects() const;

  /// Transactions in WriteTx_x, i.e. those writing to \p x, in TxnId order.
  [[nodiscard]] std::vector<TxnId> writers_of(ObjId x) const;

  /// Axiom INT over all transactions (T |= INT in the paper).
  [[nodiscard]] bool internally_consistent() const;

  friend bool operator==(const History&, const History&) = default;

 private:
  std::vector<Transaction> txns_;
  std::vector<std::vector<TxnId>> sessions_;
  std::vector<SessionId> session_of_;
  std::vector<std::size_t> session_index_;
};

/// Renders each session on one line, e.g.
///   "s0: [write(x,1)] [read(x,1)]\n s1: ...".
[[nodiscard]] std::string to_string(const History& h);
[[nodiscard]] std::string to_string(const History& h, const ObjectTable& objs);

/// Fluent builder for hand-constructing the paper's example histories.
///
///   HistoryBuilder b;
///   auto x = b.obj("x");
///   b.session().txn({write(x, 1)}).txn({read(x, 1)});
///   History h = b.build();
class HistoryBuilder {
 public:
  /// Interns an object name.
  ObjId obj(std::string_view name) { return objects_.intern(name); }

  /// Starts a new session; subsequent txn() calls append to it.
  HistoryBuilder& session() {
    current_ = static_cast<SessionId>(history_.session_count());
    started_ = true;
    return *this;
  }

  /// Appends a transaction (events in program order) to the current
  /// session. Returns the builder; last_txn() exposes the id.
  HistoryBuilder& txn(std::vector<Event> events);

  /// Appends a transaction writing \p value to every listed object, in its
  /// own singleton session — the paper's initialisation transaction that
  /// "writes initial versions of all objects".
  TxnId init_txn(const std::vector<ObjId>& objs, Value value = 0);

  [[nodiscard]] TxnId last_txn() const { return last_; }

  [[nodiscard]] History build() const { return history_; }
  [[nodiscard]] const ObjectTable& objects() const { return objects_; }

 private:
  ObjectTable objects_;
  History history_;
  SessionId current_{0};
  bool started_{false};
  TxnId last_{kInvalidTxn};
};

}  // namespace sia
