#include "chopping/static_chopping_graph.hpp"

#include <algorithm>

#include "lint/abstract_keys.hpp"

namespace sia {

StaticChoppingGraph::StaticChoppingGraph(std::vector<Program> programs)
    : programs_(std::move(programs)) {
  // Resolve parametric key accesses to per-dimension intervals; the
  // conflict edges below come from the sound may-overlap queries, which
  // reduce to exact ObjId intersection on concrete suites.
  abstract_keys::resolve(programs_);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    first_node_.push_back(next);
    for (std::size_t j = 0; j < programs_[i].pieces.size(); ++j) {
      piece_of_.emplace_back(i, j);
      ++next;
    }
  }
  graph_ = TypedGraph(next);

  // Successor / predecessor edges within each program.
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    const std::size_t k = programs_[i].pieces.size();
    for (std::size_t j1 = 0; j1 < k; ++j1) {
      for (std::size_t j2 = j1 + 1; j2 < k; ++j2) {
        graph_.add_edge(node_of(i, j1), node_of(i, j2), DepKind::kSO);
        graph_.add_edge(node_of(i, j2), node_of(i, j1), DepKind::kSOInv);
      }
    }
  }

  // Conflict edges between pieces of different programs.
  for (std::uint32_t n1 = 0; n1 < graph_.size(); ++n1) {
    for (std::uint32_t n2 = 0; n2 < graph_.size(); ++n2) {
      const auto [i1, j1] = piece_of_[n1];
      const auto [i2, j2] = piece_of_[n2];
      if (i1 == i2) continue;
      const Piece& p1 = programs_[i1].pieces[j1];
      const Piece& p2 = programs_[i2].pieces[j2];
      if (abstract_keys::writes_reads_overlap(p1, p2)) {
        graph_.add_edge(n1, n2, DepKind::kWR);
        ++conflict_edges_;
      }
      if (abstract_keys::writes_writes_overlap(p1, p2)) {
        graph_.add_edge(n1, n2, DepKind::kWW);
        ++conflict_edges_;
      }
      if (abstract_keys::reads_writes_overlap(p1, p2)) {
        graph_.add_edge(n1, n2, DepKind::kRW);
        ++conflict_edges_;
      }
    }
  }
}

std::uint32_t StaticChoppingGraph::node_of(std::size_t i,
                                           std::size_t j) const {
  return first_node_[i] + static_cast<std::uint32_t>(j);
}

std::pair<std::size_t, std::size_t> StaticChoppingGraph::piece_of(
    std::uint32_t node) const {
  return piece_of_[node];
}

std::string StaticChoppingGraph::label(std::uint32_t node) const {
  const auto [i, j] = piece_of_[node];
  const Piece& piece = programs_[i].pieces[j];
  std::string out =
      programs_[i].name + "[" + std::to_string(j) + "]";
  if (!piece.label.empty()) out += ": " + piece.label;
  return out;
}

std::string StaticChoppingGraph::describe(const TypedCycle& c) const {
  std::string out;
  for (std::size_t i = 0; i < c.length(); ++i) {
    out += "(" + label(c.vertices[i]) + ")";
    const TypeMask m = c.masks[i];
    std::string kinds;
    for (DepKind k : {DepKind::kSO, DepKind::kSOInv, DepKind::kWR,
                      DepKind::kWW, DepKind::kRW}) {
      if ((m & mask_of(k)) != 0) {
        if (!kinds.empty()) kinds += "|";
        kinds += to_string(k);
      }
    }
    out += " -" + kinds + "-> ";
  }
  if (!c.vertices.empty()) out += "(" + label(c.vertices[0]) + ")";
  return out;
}

ChoppingVerdict check_chopping_static(const std::vector<Program>& programs,
                                      Criterion crit, std::size_t budget) {
  const StaticChoppingGraph scg(programs);
  return find_critical_cycle(scg.graph(), crit, budget);
}

}  // namespace sia
