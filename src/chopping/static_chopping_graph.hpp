#pragma once

#include <string>
#include <vector>

#include "chopping/criteria.hpp"
#include "core/program.hpp"

/// \file static_chopping_graph.hpp
/// The static chopping graph SCG(P) of §5 and the static chopping
/// analyses: Corollary 18 (SI), Theorem 29 (SER, Appendix B.1) and
/// Theorem 31 (PSI, Appendix B.2).

namespace sia {

/// SCG(P): nodes are the pieces (i, j) of the programs; edges are
///  - successor edges within a program (j1 < j2), predecessor edges
///    (j1 > j2);
///  - between pieces of *different* programs: a read dependency when
///    W₁ ∩ R₂ ≠ ∅, a write dependency when W₁ ∩ W₂ ≠ ∅, and an
///    anti-dependency when R₁ ∩ W₂ ≠ ∅.
/// The edge set over-approximates the DCG of every dependency graph the
/// programs can produce.
class StaticChoppingGraph {
 public:
  explicit StaticChoppingGraph(std::vector<Program> programs);

  [[nodiscard]] const TypedGraph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<Program>& programs() const {
    return programs_;
  }

  /// Number of piece nodes.
  [[nodiscard]] std::size_t node_count() const { return graph_.size(); }

  /// WR/WW/RW edges added between pieces of different programs — the
  /// precision figure reported by `sia_lint --stats`.
  [[nodiscard]] std::size_t conflict_edge_count() const {
    return conflict_edges_;
  }

  /// Flat node index of piece \p j of program \p i.
  [[nodiscard]] std::uint32_t node_of(std::size_t i, std::size_t j) const;

  /// (program, piece) of a flat node index.
  [[nodiscard]] std::pair<std::size_t, std::size_t> piece_of(
      std::uint32_t node) const;

  /// "transfer[1]: acct2 = acct2 + 100" — for witness rendering.
  [[nodiscard]] std::string label(std::uint32_t node) const;

  /// Renders a cycle as "label -WR-> label -P-> ...".
  [[nodiscard]] std::string describe(const TypedCycle& c) const;

 private:
  std::vector<Program> programs_;
  std::vector<std::uint32_t> first_node_;  ///< program -> first flat index
  std::vector<std::pair<std::size_t, std::size_t>> piece_of_;
  TypedGraph graph_;
  std::size_t conflict_edges_{0};
};

/// The chopping defined by \p programs is correct under the criterion's
/// model if SCG(P) contains no critical cycle (Corollary 18 / Theorems 29
/// and 31). `verdict.correct` is the sound answer; a witness explains
/// incorrect (or potentially incorrect) choppings.
[[nodiscard]] ChoppingVerdict check_chopping_static(
    const std::vector<Program>& programs, Criterion crit = Criterion::kSI,
    std::size_t budget = kDefaultCycleBudget);

}  // namespace sia
