#include "chopping/criteria.hpp"

namespace sia {

std::string to_string(Criterion c) {
  switch (c) {
    case Criterion::kSER:
      return "SER";
    case Criterion::kSI:
      return "SI";
    case Criterion::kPSI:
      return "PSI";
  }
  return "?";
}

bool critical(const TypedCycle& c, Criterion crit) {
  switch (crit) {
    case Criterion::kSER:
      return ser_critical(c);
    case Criterion::kSI:
      return si_critical(c);
    case Criterion::kPSI:
      return psi_critical(c);
  }
  return false;
}

ChoppingVerdict find_critical_cycle(const TypedGraph& g, Criterion crit,
                                    std::size_t budget) {
  ChoppingVerdict verdict;
  const EnumerationStats stats =
      enumerate_simple_cycles(g, budget, [&](const TypedCycle& c) {
        if (critical(c, crit)) {
          verdict.witness = c;
          return false;  // stop: criterion violated
        }
        return true;
      });
  verdict.complete = stats.complete;
  verdict.cycles_examined = stats.cycles_seen;
  verdict.correct = stats.complete && !verdict.witness.has_value();
  return verdict;
}

}  // namespace sia
