#include "chopping/repair.hpp"

#include <algorithm>
#include <set>

namespace sia {

std::size_t ChoppingPlan::piece_count() const {
  std::size_t count = 0;
  for (const Program& p : programs) count += p.pieces.size();
  return count;
}

namespace {

/// Fuses pieces \p j and \p j + 1 of \p program.
void merge_pieces(Program& program, std::size_t j) {
  Piece& left = program.pieces[j];
  const Piece& right = program.pieces[j + 1];
  if (!right.label.empty()) {
    left.label += left.label.empty() ? right.label : "; " + right.label;
  }
  std::set<ObjId> reads(left.reads.begin(), left.reads.end());
  reads.insert(right.reads.begin(), right.reads.end());
  std::set<ObjId> writes(left.writes.begin(), left.writes.end());
  writes.insert(right.writes.begin(), right.writes.end());
  left.reads.assign(reads.begin(), reads.end());
  left.writes.assign(writes.begin(), writes.end());
  for (std::vector<KeyAccess> Piece::*member :
       {&Piece::key_reads, &Piece::key_writes}) {
    for (const KeyAccess& a : right.*member) {
      auto& list = left.*member;
      if (std::find(list.begin(), list.end(), a) == list.end()) {
        list.push_back(a);
      }
    }
  }
  program.pieces.erase(program.pieces.begin() + static_cast<std::ptrdiff_t>(j) + 1);
}

/// Locates a predecessor step in a critical cycle and returns the
/// (program, lower piece index) pair whose fusion attacks the cycle.
std::optional<std::pair<std::size_t, std::size_t>> pick_merge(
    const StaticChoppingGraph& scg, const TypedCycle& cycle) {
  for (std::size_t i = 0; i < cycle.length(); ++i) {
    if ((cycle.masks[i] & kMaskSOInv) == 0) continue;
    const auto [prog_a, piece_a] = scg.piece_of(cycle.vertices[i]);
    const auto [prog_b, piece_b] =
        scg.piece_of(cycle.vertices[(i + 1) % cycle.length()]);
    if (prog_a != prog_b) continue;  // defensive; P edges are intra-program
    const std::size_t low = std::min(piece_a, piece_b);
    return std::make_pair(prog_a, low);
  }
  return std::nullopt;
}

}  // namespace

ChoppingPlan repair_chopping(std::vector<Program> programs, Criterion crit,
                             std::size_t budget) {
  ChoppingPlan plan;
  plan.programs = std::move(programs);
  for (;;) {
    const StaticChoppingGraph scg(plan.programs);
    const ChoppingVerdict verdict =
        find_critical_cycle(scg.graph(), crit, budget);
    if (verdict.correct) {
      plan.certified = true;
      return plan;
    }
    std::optional<std::pair<std::size_t, std::size_t>> target;
    std::string reason;
    if (verdict.witness) {
      target = pick_merge(scg, *verdict.witness);
      reason = scg.describe(*verdict.witness);
    }
    if (!target) {
      // Budget exhausted (or no usable witness): fall back to coarsening
      // the most-chopped program; once everything is single-piece there
      // are no predecessor edges left and the next round must certify —
      // unless even that exceeds the budget, in which case give up.
      std::size_t widest = 0;
      for (std::size_t i = 1; i < plan.programs.size(); ++i) {
        if (plan.programs[i].pieces.size() >
            plan.programs[widest].pieces.size()) {
          widest = i;
        }
      }
      if (plan.programs.empty() ||
          plan.programs[widest].pieces.size() < 2) {
        plan.certified = false;  // nothing left to merge
        return plan;
      }
      target = std::make_pair(widest, std::size_t{0});
      reason = "cycle budget exhausted; coarsening defensively";
    }
    merge_pieces(plan.programs[target->first], target->second);
    plan.merges.push_back(MergeStep{target->first, target->second, reason});
  }
}

std::vector<Program> explode_programs(const std::vector<Program>& programs) {
  std::vector<Program> out;
  out.reserve(programs.size());
  for (const Program& p : programs) {
    Program fine;
    fine.name = p.name;
    fine.params = p.params;
    // One piece per object (and per distinct parametric access), in order
    // of first access across the original pieces (reads and writes of one
    // object stay together).
    std::vector<ObjId> order;
    std::set<ObjId> seen;
    std::vector<KeyAccess> key_order;
    for (const Piece& piece : p.pieces) {
      for (const ObjId x : piece.reads) {
        if (seen.insert(x).second) order.push_back(x);
      }
      for (const ObjId x : piece.writes) {
        if (seen.insert(x).second) order.push_back(x);
      }
      for (const std::vector<KeyAccess> Piece::*member :
           {&Piece::key_reads, &Piece::key_writes}) {
        for (const KeyAccess& a : piece.*member) {
          if (std::find(key_order.begin(), key_order.end(), a) ==
              key_order.end()) {
            key_order.push_back(a);
          }
        }
      }
    }
    const std::vector<ObjId> reads = p.read_set();
    const std::vector<ObjId> writes = p.write_set();
    for (const ObjId x : order) {
      Piece piece;
      piece.label = "obj" + std::to_string(x);
      if (std::find(reads.begin(), reads.end(), x) != reads.end()) {
        piece.reads.push_back(x);
      }
      if (std::find(writes.begin(), writes.end(), x) != writes.end()) {
        piece.writes.push_back(x);
      }
      fine.pieces.push_back(std::move(piece));
    }
    for (const KeyAccess& a : key_order) {
      Piece piece;
      piece.label = "key" + std::to_string(a.table);
      const auto in_any = [&](const std::vector<KeyAccess> Piece::*member) {
        return std::any_of(p.pieces.begin(), p.pieces.end(),
                           [&](const Piece& orig) {
                             const auto& list = orig.*member;
                             return std::find(list.begin(), list.end(), a) !=
                                    list.end();
                           });
      };
      if (in_any(&Piece::key_reads)) piece.key_reads.push_back(a);
      if (in_any(&Piece::key_writes)) piece.key_writes.push_back(a);
      fine.pieces.push_back(std::move(piece));
    }
    if (fine.pieces.empty()) {
      fine.pieces.push_back(Piece{"(empty)", {}, {}});
    }
    out.push_back(std::move(fine));
  }
  return out;
}

ChoppingPlan auto_chop(const std::vector<Program>& programs, Criterion crit,
                       std::size_t budget) {
  return repair_chopping(explode_programs(programs), crit, budget);
}

}  // namespace sia
