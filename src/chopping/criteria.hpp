#pragma once

#include <optional>
#include <string>

#include "graph/cycles.hpp"

/// \file criteria.hpp
/// The three chopping-correctness criteria as per-cycle predicates over
/// typed chopping-graph cycles, and the generic critical-cycle search they
/// share:
///  - SI  (§5, Theorem 16 / Corollary 18),
///  - SER (Appendix B.1, Definition 28 / Theorem 29),
///  - PSI (Appendix B.2, Definition 30 / Theorem 31).

namespace sia {

/// Which consistency model's chopping criterion to apply.
enum class Criterion : std::uint8_t { kSER, kSI, kPSI };

[[nodiscard]] std::string to_string(Criterion c);

/// Applies the criterion's criticality predicate to one vertex-simple
/// cycle (conditions (i) are guaranteed by the enumerator).
[[nodiscard]] bool critical(const TypedCycle& c, Criterion crit);

/// Verdict of a chopping analysis.
struct ChoppingVerdict {
  /// True iff no critical cycle exists (and the search completed): the
  /// chopping is correct under the criterion's model.
  bool correct{false};
  /// False iff the cycle-enumeration budget was exhausted before either
  /// finding a critical cycle or completing; the analysis then
  /// conservatively reports correct == false.
  bool complete{true};
  /// A critical cycle, when one was found.
  std::optional<TypedCycle> witness;
  /// Simple cycles examined.
  std::size_t cycles_examined{0};
};

inline constexpr std::size_t kDefaultCycleBudget = 2'000'000;

/// Searches \p g for a cycle critical under \p crit.
[[nodiscard]] ChoppingVerdict find_critical_cycle(
    const TypedGraph& g, Criterion crit,
    std::size_t budget = kDefaultCycleBudget);

}  // namespace sia
