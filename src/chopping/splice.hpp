#pragma once

#include "graph/dependency_graph.hpp"

/// \file splice.hpp
/// Splicing (§5): merging every session of a history into a single
/// transaction, and lifting a dependency graph along the splice. Splicing
/// is how the chopping analysis relates executions of the *chopped*
/// application back to executions of the original one.

namespace sia {

/// splice(H): each session becomes one transaction whose events are the
/// concatenation, in session order, of the session's transactions' events;
/// the result has only singleton sessions (SO = ∅). The spliced
/// transaction of session s has TxnId s.
[[nodiscard]] History splice_history(const History& h);

/// splice(G) (proof of Theorem 16): lifts WR and WW to spliced
/// transactions —
///   T̃ --WR_spl(x)--> S̃  iff  T̃ ≠ S̃ ∧ ∃T ≈ T', S ≈ S'. T' --WR(x)--> S'
/// and similarly for WW; RW is re-derived per Definition 5.
///
/// The lift exists (and the result satisfies Definition 6) whenever DCG(G)
/// has no critical cycles (Lemmas 17, 26, 27). When the preconditions do
/// not hold, the lift may be ill-defined; this function then throws
/// ModelError describing the obstruction (ambiguous WR source, interleaved
/// WW orders, or a Definition 6 violation of the lifted graph).
[[nodiscard]] DependencyGraph splice_graph(const DependencyGraph& g);

/// True iff G is spliceable as defined in §5: there exists a dependency
/// graph G' ∈ GraphSI with H_{G'} = splice(H_G). Decided *exactly* by
/// exhaustive extension enumeration over splice(H_G) (small histories
/// only); Theorem 16's criterion — checked by check_chopping_dynamic() —
/// is the scalable sufficient condition.
[[nodiscard]] bool spliceable(const DependencyGraph& g);

}  // namespace sia
