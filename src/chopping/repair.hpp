#pragma once

#include <string>
#include <vector>

#include "chopping/static_chopping_graph.hpp"

/// \file repair.hpp
/// Chopping *synthesis*: §5 motivates chopping as a performance
/// optimisation, and Corollary 18 gives the safety check — this module
/// closes the loop. Given programs, it searches for a fine chopping that
/// the static criterion certifies, by starting from a candidate chopping
/// and merging adjacent pieces that participate in critical cycles until
/// none remain. Merging is always safe (a coarser chopping produces
/// fewer behaviours; the coarsest — one piece per program — is trivially
/// correct since predecessor edges disappear), so the procedure
/// terminates with a correct chopping.

namespace sia {

/// One merge performed by the repair loop (pieces \p piece and
/// \p piece + 1 of program \p program were fused).
struct MergeStep {
  std::size_t program;
  std::size_t piece;
  std::string reason;  ///< rendering of the critical cycle that forced it
};

/// Result of repair_chopping / auto_chop.
struct ChoppingPlan {
  std::vector<Program> programs;  ///< the certified chopping
  std::vector<MergeStep> merges;  ///< what was fused, in order
  /// Total pieces in the result (the objective being maximised).
  [[nodiscard]] std::size_t piece_count() const;
  /// True iff the final chopping passes the criterion (always true unless
  /// the cycle budget was exhausted even for the coarsest chopping).
  bool certified{false};
};

/// Repeatedly runs the static analysis and, while a critical cycle
/// exists, merges the two pieces around one of its predecessor edges
/// (the cycle needs a "conflict, predecessor, conflict" fragment; fusing
/// the predecessor's endpoints removes that fragment). Deterministic:
/// always the first predecessor edge of the reported witness.
[[nodiscard]] ChoppingPlan repair_chopping(std::vector<Program> programs,
                                           Criterion crit = Criterion::kSI,
                                           std::size_t budget = kDefaultCycleBudget);

/// Maximal chopping search: first splits every program into single-access
/// pieces (one piece per accessed object, reads and writes of the same
/// object fused), then repairs. The result is a correct chopping at least
/// as fine as the input and often strictly finer.
[[nodiscard]] ChoppingPlan auto_chop(const std::vector<Program>& programs,
                                     Criterion crit = Criterion::kSI,
                                     std::size_t budget = kDefaultCycleBudget);

/// The single-access split used by auto_chop (exposed for tests): one
/// piece per object the program touches, preserving object order of first
/// access; reads and writes of one object share a piece.
[[nodiscard]] std::vector<Program> explode_programs(
    const std::vector<Program>& programs);

}  // namespace sia
