#include "chopping/dynamic_chopping_graph.hpp"

namespace sia {

TypedGraph build_dcg(const DependencyGraph& g) {
  const History& h = g.history();
  TypedGraph out(g.txn_count());

  const Relation so = h.session_order();
  for (const auto& [a, b] : so.edges()) {
    out.add_edge(a, b, DepKind::kSO);
    out.add_edge(b, a, DepKind::kSOInv);
  }

  for (const DepEdge& e : g.edges()) {
    if (e.kind == DepKind::kSO) continue;  // already added (with inverses)
    if (h.same_session(e.from, e.to)) continue;  // intra-session: removed
    out.add_edge(e.from, e.to, e.kind);
  }
  return out;
}

ChoppingVerdict check_chopping_dynamic(const DependencyGraph& g,
                                       Criterion crit, std::size_t budget) {
  return find_critical_cycle(build_dcg(g), crit, budget);
}

}  // namespace sia
