#include "chopping/splice.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "graph/enumeration.hpp"

namespace sia {

History splice_history(const History& h) {
  History out;
  for (SessionId s = 0; s < h.session_count(); ++s) {
    Transaction merged;
    for (TxnId id : h.session(s)) {
      for (const Event& e : h.txn(id).events()) merged.append(e);
    }
    out.append_singleton(std::move(merged));
  }
  return out;
}

DependencyGraph splice_graph(const DependencyGraph& g) {
  const History& h = g.history();
  DependencyGraph out(splice_history(h));

  // Lift WR: inter-session read dependencies, unique source per
  // (object, spliced reader).
  for (ObjId x : g.annotated_objects()) {
    std::map<TxnId, TxnId> lifted;  // spliced reader -> spliced writer
    for (TxnId s = 0; s < h.txn_count(); ++s) {
      const auto src = g.read_source(x, s);
      if (!src) continue;
      const SessionId reader = h.session_of(s);
      const SessionId writer = h.session_of(*src);
      if (reader == writer) continue;  // becomes an internal read
      auto [it, inserted] = lifted.emplace(reader, writer);
      if (!inserted && it->second != writer) {
        throw ModelError(
            "splice_graph: spliced transaction S" + std::to_string(reader) +
            " would read obj" + std::to_string(x) +
            " from two different spliced writers (S" +
            std::to_string(it->second) + " and S" + std::to_string(writer) +
            ") — DCG(G) has a critical cycle");
      }
    }
    for (const auto& [reader, writer] : lifted) {
      // The lifted edge only makes sense if the spliced reader still
      // externally reads x; Lemma 26 guarantees this when DCG(G) has no
      // critical cycles.
      if (!out.history().txn(reader).external_read(x).has_value()) {
        throw ModelError(
            "splice_graph: spliced transaction S" + std::to_string(reader) +
            " writes obj" + std::to_string(x) +
            " before reading it, yet has an inter-session WR edge — DCG(G) "
            "has a critical cycle");
      }
      out.set_read_from(x, writer, reader);
    }
  }

  // Lift WW: sessions' writes to x must occupy disjoint intervals of the
  // WW(x) order; the interval order is then the lifted total order.
  for (ObjId x : g.annotated_objects()) {
    const std::vector<TxnId>& order = g.write_order(x);
    if (order.empty()) continue;
    struct Interval {
      std::size_t min = std::numeric_limits<std::size_t>::max();
      std::size_t max = 0;
    };
    std::map<SessionId, Interval> intervals;
    for (std::size_t i = 0; i < order.size(); ++i) {
      Interval& iv = intervals[h.session_of(order[i])];
      iv.min = std::min(iv.min, i);
      iv.max = std::max(iv.max, i);
    }
    std::vector<std::pair<SessionId, Interval>> sorted(intervals.begin(),
                                                       intervals.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.second.min < b.second.min;
              });
    std::vector<TxnId> lifted_order;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i + 1 < sorted.size() &&
          sorted[i].second.max > sorted[i + 1].second.min) {
        throw ModelError(
            "splice_graph: WW(obj" + std::to_string(x) +
            ") interleaves the writes of sessions " +
            std::to_string(sorted[i].first) + " and " +
            std::to_string(sorted[i + 1].first) +
            " — DCG(G) has a critical cycle");
      }
      lifted_order.push_back(sorted[i].first);
    }
    out.set_write_order(x, std::move(lifted_order));
  }

  if (auto v = out.validate()) {
    throw ModelError("splice_graph: lifted graph violates Definition 6: " +
                     v->detail);
  }
  return out;
}

bool spliceable(const DependencyGraph& g) {
  return decide_history(splice_history(g.history()), Model::kSI).allowed;
}

}  // namespace sia
