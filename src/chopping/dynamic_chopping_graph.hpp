#pragma once

#include "chopping/criteria.hpp"
#include "graph/dependency_graph.hpp"

/// \file dynamic_chopping_graph.hpp
/// The dynamic chopping graph DCG(G) of §5 and the dynamic chopping
/// criterion (Theorem 16): if DCG(G) contains no critical cycle, G is
/// spliceable.

namespace sia {

/// DCG(G): over the transactions of G,
///  - successor edges: SO (same session, earlier → later);
///  - predecessor edges: SO^{-1};
///  - conflict edges: WR/WW/RW edges between transactions of *different*
///    sessions (dependencies within a session are removed).
[[nodiscard]] TypedGraph build_dcg(const DependencyGraph& g);

/// Theorem 16 as an analysis: searches DCG(G) for an SI-critical cycle
/// (or a SER-/PSI-critical one via \p crit, per Appendix B). Verdict
/// `correct == true` certifies that G is spliceable under the criterion's
/// model.
[[nodiscard]] ChoppingVerdict check_chopping_dynamic(
    const DependencyGraph& g, Criterion crit = Criterion::kSI,
    std::size_t budget = kDefaultCycleBudget);

}  // namespace sia
