#pragma once

#include <cstdint>
#include <string>

#include "core/program.hpp"

/// \file domain.hpp
/// The interval abstract domain over 64-bit integer keys: the lattice the
/// abstract-keys engine (abstract_keys.hpp) iterates to a fixpoint when it
/// resolves parametric subscripts. Elements are ⊥ (empty) plus all closed
/// intervals [lo, hi] with lo ≤ hi, where kKeyMin / kKeyMax stand for the
/// unbounded ends −∞ / +∞; ⊤ is [−∞, +∞]. Join and meet are the usual
/// convex hull and intersection; widening jumps any unstable bound to its
/// infinity so every ascending chain stabilises in at most two steps per
/// bound (DESIGN.md §4j).

namespace sia::domain {

/// An interval lattice element. Default-constructed is ⊥.
struct Interval {
  std::int64_t lo{kKeyMax};  ///< ⊥ is encoded lo > hi
  std::int64_t hi{kKeyMin};

  [[nodiscard]] static Interval bottom() { return {}; }
  [[nodiscard]] static Interval top() { return {kKeyMin, kKeyMax}; }
  [[nodiscard]] static Interval point(std::int64_t v) { return {v, v}; }

  [[nodiscard]] bool is_bottom() const { return lo > hi; }
  [[nodiscard]] bool is_top() const { return lo == kKeyMin && hi == kKeyMax; }

  /// Number of keys in the interval, saturating at kKeyMax (unbounded or
  /// overflowing intervals report kKeyMax). Used by the precision stats.
  [[nodiscard]] std::uint64_t width() const;

  [[nodiscard]] bool contains(std::int64_t v) const {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] bool operator==(const Interval&) const = default;
};

/// Least upper bound (convex hull).
[[nodiscard]] Interval join(const Interval& a, const Interval& b);

/// Greatest lower bound (intersection).
[[nodiscard]] Interval meet(const Interval& a, const Interval& b);

/// Standard interval widening a ∇ b: a bound of b that escapes a jumps to
/// its infinity. Guarantees termination of the chaotic iteration: each
/// bound can change at most twice (once to the new value via join steps
/// before the widening delay, once to ±∞).
[[nodiscard]] Interval widen(const Interval& a, const Interval& b);

/// a ⊑ b in the lattice order.
[[nodiscard]] bool leq(const Interval& a, const Interval& b);

/// a + k with saturation at the infinities (∞ + k = ∞).
[[nodiscard]] std::int64_t sat_add(std::int64_t a, std::int64_t k);

/// Conversions to/from the resolved-range type carried on KeyAccess.
[[nodiscard]] Interval from_range(const KeyRange& r);
[[nodiscard]] KeyRange to_range(const Interval& i);

/// Renders "[lo, hi]" with "-inf"/"+inf" for the sentinels, "⊥" for bottom.
[[nodiscard]] std::string to_string(const Interval& i);

}  // namespace sia::domain
