#include "lint/abstract_keys.hpp"

#include <algorithm>
#include <unordered_map>

namespace sia::abstract_keys {

namespace {

using domain::Interval;

/// Lower-bound evaluation of a range end under the current parameter
/// intervals; a ⊥ parameter poisons the whole bound (sets *bot).
std::int64_t eval_lo(const KeyTerm& t, const std::vector<Interval>& params,
                     bool* bot) {
  if (t.inf < 0) return kKeyMin;
  if (t.inf > 0) return kKeyMax;
  if (t.param >= 0) {
    const Interval& p = params[static_cast<std::size_t>(t.param)];
    if (p.is_bottom()) {
      *bot = true;
      return kKeyMax;
    }
    return domain::sat_add(p.lo, t.offset);
  }
  return t.literal;
}

/// Upper-bound evaluation, symmetric to eval_lo.
std::int64_t eval_hi(const KeyTerm& t, const std::vector<Interval>& params,
                     bool* bot) {
  if (t.inf < 0) return kKeyMin;
  if (t.inf > 0) return kKeyMax;
  if (t.param >= 0) {
    const Interval& p = params[static_cast<std::size_t>(t.param)];
    if (p.is_bottom()) {
      *bot = true;
      return kKeyMin;
    }
    return domain::sat_add(p.hi, t.offset);
  }
  return t.literal;
}

/// The constraint transformer F_i: the interval of values the i-th
/// parameter's declared range permits under the current assignment.
Interval transfer(const ParamDecl& decl, const std::vector<Interval>& params) {
  bool bot = false;
  const std::int64_t lo = eval_lo(decl.lo, params, &bot);
  const std::int64_t hi = eval_hi(decl.hi, params, &bot);
  if (bot || lo > hi) return Interval::bottom();
  return Interval{lo, hi};
}

void check_term(const KeyTerm& t, const Program& prog, const char* where) {
  if (t.param >= 0 &&
      static_cast<std::size_t>(t.param) >= prog.params.size()) {
    throw ModelError("abstract_keys: " + std::string(where) + " in program '" +
                     prog.name + "' references parameter index " +
                     std::to_string(t.param) + " out of range");
  }
}

/// Chaotic iteration over one program's parameter constraints: start from
/// the sound cross-reference-free evaluation (refs behave as ∓∞, i.e. F
/// over ⊤), then round-robin meet-refinement. Every iterate
/// over-approximates the valid valuations, so the round budget only
/// bounds precision, never soundness.
std::vector<Interval> solve_params(const Program& prog) {
  const std::size_t n = prog.params.size();
  std::vector<Interval> params(n, Interval::top());
  for (std::size_t i = 0; i < n; ++i) {
    check_term(prog.params[i].lo, prog, "parameter bound");
    check_term(prog.params[i].hi, prog, "parameter bound");
    for (std::uint32_t d : prog.params[i].distinct) {
      if (d >= n) {
        throw ModelError("abstract_keys: '!=' in program '" + prog.name +
                         "' references parameter index " + std::to_string(d) +
                         " out of range");
      }
    }
    params[i] = transfer(prog.params[i], params);
  }
  const std::size_t rounds = 2 * n + 4;
  for (std::size_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Interval next = domain::meet(params[i], transfer(prog.params[i], params));
      if (next != params[i]) {
        params[i] = next;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return params;
}

void resolve_access(KeyAccess& access, const Program& prog,
                    const std::vector<Interval>& params) {
  access.dims.clear();
  access.dims.reserve(access.subs.size());
  for (const KeyExpr& sub : access.subs) {
    check_term(sub.lo, prog, "subscript");
    check_term(sub.hi, prog, "subscript");
    bool bot = false;
    const std::int64_t lo = eval_lo(sub.lo, params, &bot);
    const std::int64_t hi = eval_hi(sub.hi, params, &bot);
    access.dims.push_back(bot || lo > hi ? KeyRange{1, 0} : KeyRange{lo, hi});
  }
}

bool declared_distinct(const Program& prog, std::int32_t a, std::int32_t b) {
  const auto has = [&](std::int32_t i, std::int32_t j) {
    const auto& d = prog.params[static_cast<std::size_t>(i)].distinct;
    return std::find(d.begin(), d.end(), static_cast<std::uint32_t>(j)) !=
           d.end();
  };
  return has(a, b) || has(b, a);
}

}  // namespace

std::string render_key_term(const KeyTerm& t, const Program& prog) {
  if (t.inf != 0) return "*";
  if (t.param >= 0) {
    std::string out = prog.params[static_cast<std::size_t>(t.param)].name;
    if (t.offset > 0) out += "+" + std::to_string(t.offset);
    if (t.offset < 0) out += std::to_string(t.offset);
    return out;
  }
  return std::to_string(t.literal);
}

void resolve(std::vector<Program>& programs) {
  // One arity per table across the whole suite.
  std::unordered_map<ObjId, std::size_t> arity;
  for (const Program& prog : programs) {
    for (const Piece& piece : prog.pieces) {
      for (const std::vector<KeyAccess> Piece::*member :
           {&Piece::key_reads, &Piece::key_writes}) {
        for (const KeyAccess& a : piece.*member) {
          const auto [it, fresh] = arity.emplace(a.table, a.subs.size());
          if (!fresh && it->second != a.subs.size()) {
            throw ModelError(
                "abstract_keys: table used with inconsistent subscript "
                "arity (" +
                std::to_string(it->second) + " vs " +
                std::to_string(a.subs.size()) + ") in program '" + prog.name +
                "'");
          }
        }
      }
    }
  }
  for (Program& prog : programs) {
    if (prog.params.empty() && !prog.parametric()) continue;
    const std::vector<Interval> params = solve_params(prog);
    for (std::size_t i = 0; i < params.size(); ++i) {
      prog.params[i].resolved = domain::to_range(params[i]);
    }
    for (Piece& piece : prog.pieces) {
      for (KeyAccess& a : piece.key_reads) resolve_access(a, prog, params);
      for (KeyAccess& a : piece.key_writes) resolve_access(a, prog, params);
    }
  }
}

bool accesses_overlap(const KeyAccess& a, const KeyAccess& b) {
  if (a.table != b.table || a.dims.size() != b.dims.size()) return false;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    if (!a.dims[d].intersects(b.dims[d])) return false;
  }
  return true;
}

bool sets_overlap(const std::vector<ObjId>& a_objs,
                  const std::vector<KeyAccess>& a_keys,
                  const std::vector<ObjId>& b_objs,
                  const std::vector<KeyAccess>& b_keys) {
  if (std::any_of(a_objs.begin(), a_objs.end(), [&b_objs](ObjId x) {
        return std::find(b_objs.begin(), b_objs.end(), x) != b_objs.end();
      })) {
    return true;
  }
  for (const KeyAccess& a : a_keys) {
    for (const KeyAccess& b : b_keys) {
      if (accesses_overlap(a, b)) return true;
    }
  }
  return false;
}

bool writes_reads_overlap(const Piece& a, const Piece& b) {
  return sets_overlap(a.writes, a.key_writes, b.reads, b.key_reads);
}

bool writes_writes_overlap(const Piece& a, const Piece& b) {
  return sets_overlap(a.writes, a.key_writes, b.writes, b.key_writes);
}

bool reads_writes_overlap(const Piece& a, const Piece& b) {
  return sets_overlap(a.reads, a.key_reads, b.writes, b.key_writes);
}

bool accesses_overlap_same_instance(const Program& prog, const KeyAccess& a,
                                    const KeyAccess& b) {
  if (a.table != b.table || a.dims.size() != b.dims.size()) return false;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const KeyExpr& x = a.subs[d];
    const KeyExpr& y = b.subs[d];
    const bool x_point = x.lo == x.hi && x.lo.is_param();
    const bool y_point = y.lo == y.hi && y.lo.is_param();
    if (x_point && y_point) {
      if (x.lo.param == y.lo.param) {
        // p+c1 vs p+c2 in one instance: equal iff the offsets are.
        if (x.lo.offset != y.lo.offset) return false;
        continue;
      }
      if (x.lo.offset == y.lo.offset &&
          declared_distinct(prog, x.lo.param, y.lo.param)) {
        return false;  // p != q ⇒ p+c ≠ q+c
      }
    }
    if (!a.dims[d].intersects(b.dims[d])) return false;
  }
  return true;
}

std::string render_key_access(const KeyAccess& access, const Program& prog,
                              const ObjectTable& objects) {
  std::string out = objects.name(access.table) + "[";
  for (std::size_t d = 0; d < access.subs.size(); ++d) {
    if (d != 0) out += ", ";
    const KeyExpr& sub = access.subs[d];
    if (sub.lo.inf < 0 && sub.hi.inf > 0) {
      out += "*";
    } else if (sub.lo == sub.hi) {
      out += render_key_term(sub.lo, prog);
    } else {
      out += render_key_term(sub.lo, prog) + ".." +
             render_key_term(sub.hi, prog);
    }
  }
  return out + "]";
}

KeyStats key_stats(const std::vector<Program>& programs) {
  KeyStats stats;
  // Joined footprint per table: the keys any access may touch.
  std::unordered_map<ObjId, std::vector<Interval>> footprint;
  for (const Program& prog : programs) {
    stats.params += prog.params.size();
    for (const Piece& piece : prog.pieces) {
      for (const std::vector<KeyAccess> Piece::*member :
           {&Piece::key_reads, &Piece::key_writes}) {
        for (const KeyAccess& a : piece.*member) {
          stats.parametric = true;
          ++stats.key_accesses;
          auto& dims = footprint[a.table];
          dims.resize(a.dims.size(), Interval::bottom());
          for (std::size_t d = 0; d < a.dims.size(); ++d) {
            dims[d] = domain::join(dims[d], domain::from_range(a.dims[d]));
          }
        }
      }
    }
  }
  const std::uint64_t cap = static_cast<std::uint64_t>(kKeyMax);
  for (const auto& [table, dims] : footprint) {
    std::uint64_t keys = 1;
    for (const Interval& dim : dims) {
      const std::uint64_t w = dim.width();
      keys = (w != 0 && keys > cap / w) ? cap : keys * w;
    }
    stats.representable_keys = stats.representable_keys > cap - keys
                                   ? cap
                                   : stats.representable_keys + keys;
  }
  return stats;
}

std::vector<Program> clamp_universe(std::vector<Program> programs,
                                    std::int64_t n) {
  resolve(programs);
  const Interval universe{1, n};
  std::vector<Program> out;
  for (Program& prog : programs) {
    if (prog.params.empty() && !prog.parametric()) {
      out.push_back(std::move(prog));
      continue;
    }
    bool dead = false;
    for (ParamDecl& p : prog.params) {
      const Interval clamped =
          domain::meet(domain::from_range(p.resolved), universe);
      if (clamped.is_bottom()) {
        dead = true;
        break;
      }
      p.lo = KeyTerm{clamped.lo, -1, 0, 0};
      p.hi = KeyTerm{clamped.hi, -1, 0, 0};
    }
    if (dead) continue;  // no valid instance in the n-key universe
    for (Piece& piece : prog.pieces) {
      for (std::vector<KeyAccess> Piece::*member :
           {&Piece::key_reads, &Piece::key_writes}) {
        for (KeyAccess& a : piece.*member) {
          for (KeyExpr& sub : a.subs) {
            if (sub.lo == sub.hi) continue;  // point subscripts untouched
            if (sub.lo.inf < 0) sub.lo = KeyTerm{1, -1, 0, 0};
            if (sub.lo.param < 0 && sub.lo.inf == 0) {
              sub.lo.literal = std::max<std::int64_t>(sub.lo.literal, 1);
            }
            if (sub.hi.inf > 0) sub.hi = KeyTerm{n, -1, 0, 0};
            if (sub.hi.param < 0 && sub.hi.inf == 0) {
              sub.hi.literal = std::min(sub.hi.literal, n);
            }
          }
        }
      }
    }
    out.push_back(std::move(prog));
  }
  resolve(out);
  return out;
}

namespace {

/// Substituted value of a range end under one valuation.
std::int64_t subst(const KeyTerm& t, const std::vector<std::int64_t>& vals,
                   const Program& prog, const char* what) {
  if (t.inf != 0) {
    throw ModelError("instantiate: unbounded " + std::string(what) +
                     " in program '" + prog.name +
                     "' cannot be enumerated (clamp the universe first)");
  }
  if (t.param >= 0) {
    return domain::sat_add(vals[static_cast<std::size_t>(t.param)], t.offset);
  }
  return t.literal;
}

void append_unique(std::vector<ObjId>& list, ObjId obj) {
  if (std::find(list.begin(), list.end(), obj) == list.end()) {
    list.push_back(obj);
  }
}

/// Expands one access under one valuation into concrete "table[k,...]"
/// objects appended to \p list.
void expand_access(const KeyAccess& access,
                   const std::vector<std::int64_t>& vals, const Program& prog,
                   ObjectTable& objects, const InstantiateOptions& opts,
                   std::vector<ObjId>& list) {
  std::vector<KeyRange> dims;
  std::uint64_t total = 1;
  for (const KeyExpr& sub : access.subs) {
    const std::int64_t lo = subst(sub.lo, vals, prog, "subscript");
    const std::int64_t hi = subst(sub.hi, vals, prog, "subscript");
    if (lo > hi) return;  // empty under this valuation: no keys accessed
    const std::uint64_t w =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (w > opts.max_objects || total > opts.max_objects / w) {
      throw ModelError("instantiate: access '" +
                       render_key_access(access, prog, objects) +
                       "' in program '" + prog.name + "' expands past " +
                       std::to_string(opts.max_objects) + " objects");
    }
    total *= w;
    dims.push_back(KeyRange{lo, hi});
  }
  // By value: the interns below grow the table and would dangle a
  // reference into it.
  const std::string table = objects.name(access.table);
  std::vector<std::int64_t> key(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) key[d] = dims[d].lo;
  while (true) {
    std::string name = table + "[";
    for (std::size_t d = 0; d < key.size(); ++d) {
      if (d != 0) name += ",";
      name += std::to_string(key[d]);
    }
    name += "]";
    append_unique(list, objects.intern(name));
    if (objects.size() > opts.max_objects) {
      throw ModelError("instantiate: more than " +
                       std::to_string(opts.max_objects) + " objects");
    }
    // Odometer over the key space.
    std::size_t d = key.size();
    while (d > 0 && key[d - 1] == dims[d - 1].hi) {
      key[d - 1] = dims[d - 1].lo;
      --d;
    }
    if (d == 0) break;
    ++key[d - 1];
  }
}

}  // namespace

std::vector<Program> instantiate(const std::vector<Program>& programs,
                                 ObjectTable& objects,
                                 const InstantiateOptions& opts) {
  std::vector<Program> resolved = programs;
  resolve(resolved);
  std::vector<Program> out;
  std::size_t instances = 0;
  for (const Program& prog : resolved) {
    if (prog.params.empty() && !prog.parametric()) {
      out.push_back(prog);
      continue;
    }
    // Enumerate valuations of the (bounded) parameter ranges.
    std::uint64_t count = 1;
    for (const ParamDecl& p : prog.params) {
      if (p.resolved.empty()) {
        count = 0;
        break;
      }
      if (p.resolved.lo == kKeyMin || p.resolved.hi == kKeyMax) {
        throw ModelError("instantiate: parameter '" + p.name +
                         "' of program '" + prog.name +
                         "' has an unbounded range");
      }
      const std::uint64_t w = static_cast<std::uint64_t>(p.resolved.hi) -
                              static_cast<std::uint64_t>(p.resolved.lo) + 1;
      if (w > opts.max_instances || count > opts.max_instances / w) {
        throw ModelError("instantiate: program '" + prog.name +
                         "' expands past " +
                         std::to_string(opts.max_instances) + " instances");
      }
      count *= w;
    }
    std::vector<std::int64_t> vals;
    for (const ParamDecl& p : prog.params) vals.push_back(p.resolved.lo);
    for (std::uint64_t v = 0; v < count; ++v) {
      const bool ok = [&] {
        for (std::size_t i = 0; i < prog.params.size(); ++i) {
          for (std::uint32_t j : prog.params[i].distinct) {
            if (vals[i] == vals[j]) return false;
          }
        }
        return true;
      }();
      if (ok) {
        if (++instances > opts.max_instances) {
          throw ModelError("instantiate: suite expands past " +
                           std::to_string(opts.max_instances) + " instances");
        }
        Program inst;
        inst.name = prog.name;
        for (std::size_t i = 0; i < prog.params.size(); ++i) {
          inst.name += (i == 0 ? "@" : ",") + prog.params[i].name + "=" +
                       std::to_string(vals[i]);
        }
        inst.span = prog.span;
        for (const Piece& piece : prog.pieces) {
          Piece p;
          p.label = piece.label;
          p.span = piece.span;
          p.reads = piece.reads;
          p.writes = piece.writes;
          for (const KeyAccess& a : piece.key_reads) {
            expand_access(a, vals, prog, objects, opts, p.reads);
          }
          for (const KeyAccess& a : piece.key_writes) {
            expand_access(a, vals, prog, objects, opts, p.writes);
          }
          inst.pieces.push_back(std::move(p));
        }
        out.push_back(std::move(inst));
      }
      // Odometer over the valuation space.
      std::size_t i = prog.params.size();
      while (i > 0 && vals[i - 1] == prog.params[i - 1].resolved.hi) {
        vals[i - 1] = prog.params[i - 1].resolved.lo;
        --i;
      }
      if (i == 0) break;
      ++vals[i - 1];
    }
  }
  return out;
}

}  // namespace sia::abstract_keys
