#pragma once

#include <string_view>
#include <vector>

#include "chopping/criteria.hpp"
#include "tools/diagnostic.hpp"
#include "tools/program_parser.hpp"

/// \file checks.hpp
/// The sia_lint check registry: every named analysis the driver can run
/// over one parsed suite file. Checks come in three families —
///  - critical-cycle checks (si-/ser-/psi-critical-cycle): the static
///    chopping analyses of Cor. 18 / Thm 29 / Thm 31, rendered as caret
///    diagnostics whose related locations walk the SCG cycle witness;
///  - robustness checks (robust-si-ser, robust-psi-si): Thm 19 / Thm 22
///    over the static dependency graph, optionally confirmed by the
///    concretization layer (robustness/concretize.hpp);
///  - structural lints (empty-piece, write-never-read,
///    duplicate-piece-access, single-piece-program): cheap shape checks
///    that catch suite-file mistakes before they distort the analyses.

namespace sia::lint {

/// Knobs shared by every check invocation.
struct CheckOptions {
  /// Confirm robustness counterexamples with a concrete dependency-graph
  /// witness (robust_against_si_verified instead of robust_against_si).
  bool concretize{false};
  /// Attach a repaired-chopping fix-it (chopping/repair.hpp) to
  /// critical-cycle findings.
  bool fix_suggest{false};
  /// Cycle-enumeration budget for the chopping analyses.
  std::size_t cycle_budget{kDefaultCycleBudget};
};

/// One suite file under analysis.
struct SuiteContext {
  std::string file;    ///< display path (diagnostics, SARIF uri)
  std::string source;  ///< raw text (caret rendering, fix regions)
  ParsedSuite suite;
};

/// A registered check. `run` appends its findings; it never throws.
struct CheckInfo {
  const char* id;
  const char* summary;  ///< one-line rule description (SARIF rules[])
  Severity default_severity;
  void (*run)(const SuiteContext&, const CheckOptions&,
              std::vector<Diagnostic>&);
};

/// The registry, in deterministic (rendering) order. The pseudo-rule for
/// parse failures ("parse-error") is not listed here — the driver emits
/// it before any check runs.
[[nodiscard]] const std::vector<CheckInfo>& all_checks();

/// Registry lookup; nullptr for unknown ids.
[[nodiscard]] const CheckInfo* find_check(std::string_view id);

/// Runs the checks enabled by \p enabled_ids (empty = all) over one
/// suite, in registry order. When \p check_seconds is non-null it
/// receives one wall-clock entry per registry slot (0.0 for disabled
/// checks) for the driver's --stats aggregation.
[[nodiscard]] std::vector<Diagnostic> run_checks(
    const SuiteContext& ctx, const CheckOptions& opts,
    const std::vector<std::string>& enabled_ids,
    std::vector<double>* check_seconds);

}  // namespace sia::lint
