#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "chopping/static_chopping_graph.hpp"
#include "core/parallel.hpp"
#include "tools/analysis_json.hpp"
#include "tools/parse_error.hpp"

namespace sia::lint {

namespace {

/// Does \p line contain non-space characters before \p pos?
bool has_code_before(std::string_view line, std::size_t pos) {
  for (std::size_t i = 0; i < pos; ++i) {
    if (!std::isspace(static_cast<unsigned char>(line[i]))) return true;
  }
  return false;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.col != b.span.col) {
                       return a.span.col < b.span.col;
                     }
                     return a.check < b.check;
                   });
}

void lint_one_file(const SourceFile& in, const LintOptions& opts,
                   FileResult& out) {
  out.file = in.path;
  out.source = in.text;
  const SuppressionSet suppressions = scan_suppressions(in.text);

  std::vector<Diagnostic> raw;
  SuiteContext ctx;
  ctx.file = in.path;
  ctx.source = in.text;
  try {
    ctx.suite = parse_programs(in.text);
    out.key_stats = abstract_keys::key_stats(ctx.suite.programs);
    if (opts.domain == LintOptions::Domain::kConcrete &&
        any_parametric(ctx.suite.programs)) {
      // Exhaustive instantiation: the exact oracle for the interval
      // verdicts. Throws (→ the ModelError handler below) when the
      // declared bounds are unbounded or too large to enumerate.
      ctx.suite.programs =
          abstract_keys::instantiate(ctx.suite.programs, ctx.suite.objects);
    }
    out.conflict_edges =
        StaticChoppingGraph(ctx.suite.programs).conflict_edge_count();
    raw = run_checks(ctx, opts.check, opts.enabled, &out.check_seconds);
  } catch (const ParseError& e) {
    out.parse_failed = true;
    Diagnostic d;
    d.check = "parse-error";
    d.severity = Severity::kError;
    d.file = in.path;
    d.span = SourceSpan{e.line(), e.column(),
                        e.column() == 0 ? 0 : e.column() + 1};
    d.message = e.what();
    d.context = "line:" + std::to_string(e.line());
    raw.push_back(std::move(d));
  } catch (const ModelError& e) {
    out.parse_failed = true;
    Diagnostic d;
    d.check = "parse-error";
    d.severity = Severity::kError;
    d.file = in.path;
    d.message = e.what();
    d.context = "file";
    raw.push_back(std::move(d));
  }

  for (Diagnostic& d : raw) {
    if (d.check != "parse-error" &&
        suppressions.suppressed(d.check, d.span.line)) {
      ++out.suppressed;
      continue;
    }
    if (opts.baseline.count(d.fingerprint()) != 0) {
      ++out.baselined;
      continue;
    }
    if (opts.werror && d.severity == Severity::kWarning) {
      d.severity = Severity::kError;
    }
    out.diagnostics.push_back(std::move(d));
  }
  sort_diagnostics(out.diagnostics);
}

}  // namespace

SuppressionSet scan_suppressions(std::string_view source) {
  SuppressionSet out;
  std::istringstream in{std::string(source)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    const std::size_t marker = line.find("sia-lint:", hash);
    if (marker == std::string::npos) continue;
    const std::size_t open = line.find("disable(", marker);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    // A trailing comment governs its own line; a standalone comment
    // governs the line below it.
    const std::size_t target =
        has_code_before(line, hash) ? lineno : lineno + 1;
    std::string inner = line.substr(open + 8, close - open - 8);
    std::replace(inner.begin(), inner.end(), ',', ' ');
    std::istringstream ids{inner};
    std::string id;
    while (ids >> id) out.add(target, id);
  }
  return out;
}

std::unordered_set<std::string> parse_baseline(std::string_view text) {
  std::unordered_set<std::string> out;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    std::size_t begin = 0;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin]))) {
      ++begin;
    }
    if (begin < line.size()) out.insert(line.substr(begin));
  }
  return out;
}

int LintRun::exit_code() const {
  if (parse_failed) return 2;
  return counts.findings() ? 1 : 0;
}

std::vector<CheckStats> LintRun::stats() const {
  const std::vector<CheckInfo>& registry = all_checks();
  std::vector<CheckStats> out;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    CheckStats s;
    s.check = registry[i].id;
    bool ran = false;
    for (const FileResult& f : files) {
      if (i < f.check_seconds.size()) {
        s.seconds += f.check_seconds[i];
        ran = ran || f.check_seconds[i] > 0.0;
      }
      for (const Diagnostic& d : f.diagnostics) {
        if (d.check == s.check) ++s.findings;
      }
    }
    if (ran || s.findings > 0) out.push_back(std::move(s));
  }
  return out;
}

std::string LintRun::baseline_text() const {
  std::string out =
      "# sia_lint baseline: one accepted finding per line "
      "(check|file|context)\n";
  for (const FileResult& f : files) {
    for (const Diagnostic& d : f.diagnostics) {
      if (d.check == "parse-error") continue;
      out += d.fingerprint() + "\n";
    }
  }
  return out;
}

LintRun run_lint(const std::vector<SourceFile>& files,
                 const LintOptions& opts) {
  LintRun run;
  run.files.resize(files.size());
  parallel_for(0, files.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      lint_one_file(files[i], opts, run.files[i]);
    }
  });
  for (const FileResult& f : run.files) {
    const DiagnosticCounts c = count_diagnostics(f.diagnostics);
    run.counts.errors += c.errors;
    run.counts.warnings += c.warnings;
    run.counts.notes += c.notes;
    run.suppressed += f.suppressed;
    run.baselined += f.baselined;
    run.parse_failed = run.parse_failed || f.parse_failed;
  }
  return run;
}

std::string render_human(const LintRun& run, bool color) {
  std::string out;
  for (const FileResult& f : run.files) {
    for (const Diagnostic& d : f.diagnostics) {
      out += sia::render_human(d, f.source, color);
    }
  }
  std::ostringstream summary;
  summary << run.counts.errors << " error(s), " << run.counts.warnings
          << " warning(s), " << run.counts.notes << " note(s)";
  if (run.suppressed > 0) summary << ", " << run.suppressed << " suppressed";
  if (run.baselined > 0) summary << ", " << run.baselined << " baselined";
  summary << " across " << run.files.size() << " file(s)\n";
  out += summary.str();
  return out;
}

std::string to_json(const LintRun& run) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"sia_lint\",\n  \"version\": \"" << kLintVersion
      << "\",\n  \"files\": [";
  for (std::size_t i = 0; i < run.files.size(); ++i) {
    const FileResult& f = run.files[i];
    out << (i != 0 ? "," : "") << "\n    {\"file\": " << json_quote(f.file)
        << ", \"parse_failed\": " << (f.parse_failed ? "true" : "false")
        << ", \"diagnostics\": [";
    for (std::size_t j = 0; j < f.diagnostics.size(); ++j) {
      out << (j != 0 ? ",\n      " : "\n      ")
          << sia::to_json(f.diagnostics[j]);
    }
    out << (f.diagnostics.empty() ? "]" : "\n    ]") << "}";
  }
  out << (run.files.empty() ? "]" : "\n  ]") << ",\n  \"summary\": {"
      << "\"errors\": " << run.counts.errors
      << ", \"warnings\": " << run.counts.warnings
      << ", \"notes\": " << run.counts.notes
      << ", \"suppressed\": " << run.suppressed
      << ", \"baselined\": " << run.baselined << ", \"verdict\": "
      << (run.parse_failed
              ? "\"parse-error\""
              : (run.counts.findings() ? "\"findings\"" : "\"ok\""))
      << "}\n}\n";
  return out.str();
}

}  // namespace sia::lint
