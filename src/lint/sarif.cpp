#include "lint/sarif.hpp"

#include <sstream>

#include "tools/analysis_json.hpp"

namespace sia::lint {

namespace {

constexpr const char* kSchemaUri =
    "https://json.schemastore.org/sarif-2.1.0.json";
constexpr const char* kInfoUri =
    "https://github.com/sia/sia#sia_lint";

/// Region one past the end of \p source, for whole-file replacements:
/// (1,1)..(L+1,1) when the text ends in a newline, else (1,1)..(L,len+1).
std::pair<std::size_t, std::size_t> end_of(const std::string& source) {
  std::size_t line = 1;
  std::size_t col = 1;
  for (const char c : source) {
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return {line, col};
}

void append_region(std::ostringstream& out, const SourceSpan& span) {
  out << "\"region\": {\"startLine\": " << span.line;
  if (span.col != 0) out << ", \"startColumn\": " << span.col;
  if (span.end_col > span.col) out << ", \"endColumn\": " << span.end_col;
  out << "}";
}

void append_location(std::ostringstream& out, const std::string& file,
                     const SourceSpan& span) {
  out << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
      << json_quote(file) << "}";
  if (span.line != 0) {
    out << ", ";
    append_region(out, span);
  }
  out << "}";
}

void append_result(std::ostringstream& out, const FileResult& f,
                   const Diagnostic& d, std::size_t rule_index) {
  out << "      {\"ruleId\": " << json_quote(d.check)
      << ", \"ruleIndex\": " << rule_index
      << ", \"level\": " << json_quote(to_string(d.severity))
      << ",\n       \"message\": {\"text\": " << json_quote(d.message)
      << "},\n       \"locations\": [";
  append_location(out, d.file, d.span);
  out << "}]";
  if (!d.related.empty()) {
    out << ",\n       \"relatedLocations\": [";
    for (std::size_t i = 0; i < d.related.size(); ++i) {
      const RelatedLocation& r = d.related[i];
      out << (i != 0 ? ", " : "");
      append_location(out, r.file.empty() ? d.file : r.file, r.span);
      out << ", \"message\": {\"text\": " << json_quote(r.message) << "}}";
    }
    out << "]";
  }
  out << ",\n       \"partialFingerprints\": {\"siaLintContext/v1\": "
      << json_quote(d.fingerprint()) << "}";
  if (d.fix) {
    const auto [end_line, end_col] = end_of(f.source);
    out << ",\n       \"fixes\": [{\"description\": {\"text\": "
        << json_quote(d.fix->description)
        << "},\n         \"artifactChanges\": [{\"artifactLocation\": "
           "{\"uri\": "
        << json_quote(d.file)
        << "},\n           \"replacements\": [{\"deletedRegion\": "
           "{\"startLine\": 1, \"startColumn\": 1, \"endLine\": "
        << end_line << ", \"endColumn\": " << end_col
        << "},\n             \"insertedContent\": {\"text\": "
        << json_quote(d.fix->replacement) << "}}]}]}]";
  }
  if (d.witness) {
    // The witness document is JSON already; embed it verbatim as a
    // SARIF property bag.
    out << ",\n       \"properties\": {\"witness\": " << d.witness->json
        << "}";
  }
  out << "}";
}

}  // namespace

std::string to_sarif(const LintRun& run) {
  const std::vector<CheckInfo>& registry = all_checks();
  std::ostringstream out;
  out << "{\n  \"$schema\": " << json_quote(kSchemaUri)
      << ",\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"sia_lint\", \"version\": \""
      << kLintVersion << "\",\n      \"informationUri\": "
      << json_quote(kInfoUri) << ",\n      \"rules\": [\n";
  for (std::size_t i = 0; i < registry.size(); ++i) {
    out << "        {\"id\": " << json_quote(registry[i].id)
        << ", \"shortDescription\": {\"text\": "
        << json_quote(registry[i].summary)
        << "}, \"defaultConfiguration\": {\"level\": "
        << json_quote(to_string(registry[i].default_severity)) << "}},\n";
  }
  out << "        {\"id\": \"parse-error\", \"shortDescription\": {\"text\": "
         "\"the suite file does not parse\"}, \"defaultConfiguration\": "
         "{\"level\": \"error\"}}\n      ]}},\n"
      << "    \"columnKind\": \"unicodeCodePoints\",\n"
      << "    \"results\": [";

  // Rule index lookup: registry order, parse-error appended last.
  const auto rule_index = [&registry](const std::string& id) -> std::size_t {
    for (std::size_t i = 0; i < registry.size(); ++i) {
      if (id == registry[i].id) return i;
    }
    return registry.size();  // parse-error
  };

  bool first = true;
  for (const FileResult& f : run.files) {
    for (const Diagnostic& d : f.diagnostics) {
      out << (first ? "\n" : ",\n");
      first = false;
      append_result(out, f, d, rule_index(d.check));
    }
  }
  out << (first ? "]" : "\n    ]") << "\n  }]\n}\n";
  return out.str();
}

}  // namespace sia::lint
