#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "core/types.hpp"
#include "lint/domain.hpp"

/// \file abstract_keys.hpp
/// The abstract-keys engine: resolves parametric read/write sets to
/// per-dimension key intervals (domain.hpp) and answers the sound
/// `may_overlap` queries every static analysis builds its conflict edges
/// from (DESIGN.md §4j).
///
/// Soundness contract: for any run-time instantiation of the programs,
/// two accesses that can touch a common object satisfy may-overlap here.
/// Thus SCG / static-dependency-graph edges computed from these queries
/// over-approximate the real conflict edges, and every "safe" verdict
/// (no critical cycle, robust) remains sound on parametric suites. On
/// suites without parameters the queries reduce to exact ObjId equality,
/// so verdicts are bit-identical to the original concrete analyses.

namespace sia::abstract_keys {

/// Resolves every program's parameter intervals and every key access's
/// per-dimension intervals (KeyAccess::dims, ParamDecl::resolved) by
/// chaotic iteration over the program's range constraints: each
/// parameter starts at the sound evaluation of its bounds with
/// cross-references replaced by ∓∞, then round-robin refinement meets in
/// re-evaluated bounds until stable (or a round budget, every iterate
/// being a sound over-approximation of the valid valuations). A ⊥
/// parameter interval means no valid valuation assigns that parameter;
/// its accesses resolve to empty dimensions and never overlap anything.
///
/// Idempotent; cheap on concrete suites (no parameters, no work).
/// \throws ModelError on inconsistent subscript arity for one table or a
/// subscript referencing a parameter index out of range (the parser
/// rejects both earlier; this guards programs built directly in C++).
void resolve(std::vector<Program>& programs);

/// May these two (resolved) accesses touch a common object? Same table,
/// same arity, and every dimension's intervals intersect. Accesses to
/// different tables or of different arity never overlap (the parser
/// enforces one arity per table; concrete objects are the zero-arity
/// case and live in a disjoint namespace from subscripted tables).
[[nodiscard]] bool accesses_overlap(const KeyAccess& a, const KeyAccess& b);

/// May an access set (concrete objects + resolved key accesses) share an
/// object with another? Concrete-vs-concrete is exact ObjId equality —
/// bit-identical to the original analyses on concrete suites.
[[nodiscard]] bool sets_overlap(const std::vector<ObjId>& a_objs,
                                const std::vector<KeyAccess>& a_keys,
                                const std::vector<ObjId>& b_objs,
                                const std::vector<KeyAccess>& b_keys);

/// Piece-level conveniences used by the conflict-edge builders:
/// W_a ∩ R_b, W_a ∩ W_b, R_a ∩ W_b respectively.
[[nodiscard]] bool writes_reads_overlap(const Piece& a, const Piece& b);
[[nodiscard]] bool writes_writes_overlap(const Piece& a, const Piece& b);
[[nodiscard]] bool reads_writes_overlap(const Piece& a, const Piece& b);

/// Overlap between two accesses of the *same* run-time instance of
/// \p prog: parameters hold one value per instance, so two point
/// subscripts on the same parameter with equal offsets denote the same
/// key, and parameters declared distinct (`!=`) never collide. Used by
/// the duplicate-piece-access check; cross-program queries must use
/// accesses_overlap (disequalities do not relate different instances).
[[nodiscard]] bool accesses_overlap_same_instance(const Program& prog,
                                                  const KeyAccess& a,
                                                  const KeyAccess& b);

/// Renders an access back to source syntax: "stock[w, 1..100]".
[[nodiscard]] std::string render_key_access(const KeyAccess& access,
                                            const Program& prog,
                                            const ObjectTable& objects);

/// Renders a single range end: "7", "w", "w+1", "*" (unbounded).
[[nodiscard]] std::string render_key_term(const KeyTerm& t,
                                          const Program& prog);

/// Suite-level precision statistics for `sia_lint --stats`.
struct KeyStats {
  bool parametric{false};
  std::size_t params{0};        ///< parameter declarations across the suite
  std::size_t key_accesses{0};  ///< parametric accesses across the suite
  /// Keys representable by the parametric accesses: per table the joined
  /// footprint's key count, summed over tables, saturating at kKeyMax.
  std::uint64_t representable_keys{0};
};
[[nodiscard]] KeyStats key_stats(const std::vector<Program>& programs);

/// Copy of the suite restricted to the n-key universe [1, n]: every
/// parameter range and every literal or unbounded range-subscript end is
/// intersected with [1, n] ("an n-warehouse instantiation"). Programs
/// whose clamped parameter range becomes empty have no valid instance
/// and are dropped. Point subscripts and parameter-referencing range
/// ends are left alone (the clamped parameters already bound them).
/// The result is re-resolved.
[[nodiscard]] std::vector<Program> clamp_universe(std::vector<Program> programs,
                                                  std::int64_t n);

struct InstantiateOptions {
  std::size_t max_instances = 4096;  ///< explosion guard: program copies
  std::size_t max_objects = 65536;   ///< explosion guard: interned keys
};

/// Exhaustively instantiates parametric programs over their declared
/// (resolved) bounds: one concrete program per parameter valuation
/// satisfying the disequalities, named "name@w=1,d=2"; every subscripted
/// access expands to the concrete objects "table[k1,k2]" interned into
/// \p objects. Concrete programs pass through unchanged. The result has
/// no parametric accesses, so the exact concrete analyses apply — the
/// differential oracle for the interval verdicts.
/// \throws ModelError on an unbounded range or when a guard trips.
[[nodiscard]] std::vector<Program> instantiate(
    const std::vector<Program>& programs, ObjectTable& objects,
    const InstantiateOptions& opts = {});

}  // namespace sia::abstract_keys
