#include "lint/domain.hpp"

#include <algorithm>

namespace sia::domain {

std::uint64_t Interval::width() const {
  if (is_bottom()) return 0;
  if (lo == kKeyMin || hi == kKeyMax) {
    return static_cast<std::uint64_t>(kKeyMax);
  }
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == std::numeric_limits<std::uint64_t>::max()) {
    return static_cast<std::uint64_t>(kKeyMax);
  }
  return std::min<std::uint64_t>(span + 1, static_cast<std::uint64_t>(kKeyMax));
}

Interval join(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.is_bottom() ? Interval::bottom() : m;
}

Interval widen(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return {b.lo < a.lo ? kKeyMin : a.lo, b.hi > a.hi ? kKeyMax : a.hi};
}

bool leq(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return true;
  if (b.is_bottom()) return false;
  return b.lo <= a.lo && a.hi <= b.hi;
}

std::int64_t sat_add(std::int64_t a, std::int64_t k) {
  if (a == kKeyMin || a == kKeyMax || k == 0) return a;
  if (k > 0 && a > kKeyMax - k) return kKeyMax;
  if (k < 0 && a < kKeyMin - k) return kKeyMin;
  return a + k;
}

Interval from_range(const KeyRange& r) {
  return r.empty() ? Interval::bottom() : Interval{r.lo, r.hi};
}

KeyRange to_range(const Interval& i) {
  return i.is_bottom() ? KeyRange{1, 0} : KeyRange{i.lo, i.hi};
}

std::string to_string(const Interval& i) {
  if (i.is_bottom()) return "bot";
  const auto end = [](std::int64_t v) -> std::string {
    if (v == kKeyMin) return "-inf";
    if (v == kKeyMax) return "+inf";
    return std::to_string(v);
  };
  return "[" + end(i.lo) + ", " + end(i.hi) + "]";
}

}  // namespace sia::domain
