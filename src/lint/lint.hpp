#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/abstract_keys.hpp"
#include "lint/checks.hpp"

/// \file lint.hpp
/// The sia_lint driver: runs the check registry over many suite files in
/// parallel (core/parallel.hpp) and renders the findings as human,
/// JSON or SARIF output. Two adoption mechanisms keep existing suites
/// lintable incrementally:
///  - inline suppressions: a `# sia-lint: disable(check-id, ...)` comment
///    suppresses matching findings on its own line (when the line has
///    code) or on the following line (when the comment stands alone);
///    `disable(all)` suppresses every check there;
///  - baselines: a text file of finding fingerprints
///    ("check|file|context", one per line, '#' comments) that filters
///    previously-accepted findings out of the run.

namespace sia::lint {

/// Inline `# sia-lint: disable(...)` comments of one file, resolved to
/// the lines they govern.
class SuppressionSet {
 public:
  void add(std::size_t line, const std::string& check) {
    by_line_[line].insert(check);
  }

  /// True iff \p check (or "all") is disabled on \p line.
  [[nodiscard]] bool suppressed(const std::string& check,
                                std::size_t line) const {
    const auto it = by_line_.find(line);
    if (it == by_line_.end()) return false;
    return it->second.count("all") != 0 || it->second.count(check) != 0;
  }

  [[nodiscard]] bool empty() const { return by_line_.empty(); }

 private:
  std::unordered_map<std::size_t, std::unordered_set<std::string>> by_line_;
};

/// Scans \p source for suppression comments.
[[nodiscard]] SuppressionSet scan_suppressions(std::string_view source);

/// Parses a baseline file's text into the fingerprint set.
[[nodiscard]] std::unordered_set<std::string> parse_baseline(
    std::string_view text);

/// Driver configuration (the CLI flags, minus output formatting).
struct LintOptions {
  /// How parametric key accesses reach the analyses (--domain): kInterval
  /// analyses the abstract intervals directly (sound, O(pieces));
  /// kConcrete exhaustively instantiates every parameter valuation first
  /// (exact, the differential oracle — only viable at small bounds, a
  /// guarded ModelError otherwise). Concrete suites are identical under
  /// both.
  enum class Domain { kInterval, kConcrete };
  Domain domain{Domain::kInterval};
  /// Check ids to run; empty = every registered check.
  std::vector<std::string> enabled;
  /// Promote warnings to errors in the rendered output.
  bool werror{false};
  /// Fingerprints to filter out (from --baseline).
  std::unordered_set<std::string> baseline;
  CheckOptions check;
};

/// One input: a display path plus its text. The CLI reads files from
/// disk; tests and the bench feed in-memory sources with stable names so
/// output stays deterministic.
struct SourceFile {
  std::string path;
  std::string text;
};

/// Per-file outcome.
struct FileResult {
  std::string file;
  std::string source;
  std::vector<Diagnostic> diagnostics;  ///< post-filter, by line/col
  bool parse_failed{false};
  std::size_t suppressed{0};
  std::size_t baselined{0};
  /// Wall-clock per registry slot (indexed like all_checks()).
  std::vector<double> check_seconds;
  /// Abstract-domain precision figures for --stats: the parsed suite's
  /// parametric footprint and the SCG conflict-edge count the analyses
  /// actually saw.
  abstract_keys::KeyStats key_stats;
  std::size_t conflict_edges{0};
};

/// Aggregated per-check timing for --stats.
struct CheckStats {
  std::string check;
  double seconds{0};
  std::size_t findings{0};
};

/// Outcome of one driver run over all files.
struct LintRun {
  std::vector<FileResult> files;
  DiagnosticCounts counts;  ///< totals over every file, post-filter
  std::size_t suppressed{0};
  std::size_t baselined{0};
  bool parse_failed{false};

  /// Uniform analyzer exit code: 2 on any parse failure, 1 when findings
  /// (warnings or errors) remain, 0 when clean (notes do not count).
  [[nodiscard]] int exit_code() const;

  /// Per-check totals across files, registry order, checks that ran.
  [[nodiscard]] std::vector<CheckStats> stats() const;

  /// Fingerprints of every remaining finding (for --write-baseline).
  [[nodiscard]] std::string baseline_text() const;
};

/// Parses and checks every file (files analyzed in parallel via
/// parallel_for; per-file work stays sequential).
[[nodiscard]] LintRun run_lint(const std::vector<SourceFile>& files,
                               const LintOptions& opts);

/// Human rendering of the whole run: caret diagnostics per file plus a
/// closing summary line ("N errors, M warnings, K notes ...").
[[nodiscard]] std::string render_human(const LintRun& run, bool color);

/// JSON report: {"tool", "version", "files": [...], "summary": {...}} —
/// diagnostics use the same object schema as sia_analyze --format json.
[[nodiscard]] std::string to_json(const LintRun& run);

inline constexpr const char* kLintVersion = "1.0.0";

}  // namespace sia::lint
