#include "lint/checks.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "chopping/repair.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "lint/abstract_keys.hpp"
#include "robustness/robustness.hpp"

namespace sia::lint {

namespace {

std::string piece_context(const Program& p, std::size_t j) {
  return p.name + "[" + std::to_string(j) + "]";
}

/// "WR|RW" — the kinds available on one cycle step.
std::string kinds_string(TypeMask m) {
  std::string kinds;
  for (DepKind k : {DepKind::kSO, DepKind::kSOInv, DepKind::kWR, DepKind::kWW,
                    DepKind::kRW}) {
    if ((m & mask_of(k)) != 0) {
      if (!kinds.empty()) kinds += "|";
      kinds += to_string(k);
    }
  }
  return kinds;
}

const char* theorem_of(Criterion crit) {
  switch (crit) {
    case Criterion::kSI: return "Corollary 18";
    case Criterion::kSER: return "Theorem 29";
    case Criterion::kPSI: return "Theorem 31";
  }
  return "?";
}

// ----- critical-cycle checks (Cor. 18 / Thm 29 / Thm 31) -------------------

void critical_cycle_check(Criterion crit, const char* id,
                          const SuiteContext& ctx, const CheckOptions& opts,
                          std::vector<Diagnostic>& out) {
  const std::vector<Program>& programs = ctx.suite.programs;
  if (programs.empty()) return;
  const StaticChoppingGraph scg(programs);
  const ChoppingVerdict v =
      find_critical_cycle(scg.graph(), crit, opts.cycle_budget);
  if (v.correct) return;

  Diagnostic d;
  d.check = id;
  d.severity = Severity::kWarning;
  d.file = ctx.file;
  if (v.witness) {
    const TypedCycle& c = *v.witness;
    const std::size_t n = c.length();
    // Primary location: the piece that observes the broken atomicity —
    // the first cycle vertex entered *and* left via conflict edges (for
    // Fig. 5 that is the lookupAll piece reading both accounts mid
    // transfer). Every cycle has one: a critical cycle contains a
    // "conflict, predecessor, conflict" fragment, so not every step is a
    // successor/predecessor edge.
    std::size_t primary = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_conflict(c.masks[(i + n - 1) % n]) && is_conflict(c.masks[i])) {
        primary = i;
        break;
      }
    }
    const auto [pi, pj] = scg.piece_of(c.vertices[primary]);
    d.span = programs[pi].pieces[pj].span;
    d.context = piece_context(programs[pi], pj);
    d.message = "chopping is incorrect under " + to_string(crit) + " (" +
                theorem_of(crit) + "): SCG(P) has a critical cycle through " +
                d.context;
    for (std::size_t k = 0; k < n; ++k) {
      const auto [i, j] = scg.piece_of(c.vertices[k]);
      RelatedLocation r;
      r.file = ctx.file;
      r.span = programs[i].pieces[j].span;
      r.message = "cycle step " + std::to_string(k + 1) + ": " +
                  scg.label(c.vertices[k]) + " -" + kinds_string(c.masks[k]) +
                  "-> " + scg.label(c.vertices[(k + 1) % n]);
      d.related.push_back(std::move(r));
    }
  } else {
    d.context = "cycle-budget";
    d.message = "cycle enumeration budget exhausted after " +
                std::to_string(v.cycles_examined) +
                " cycles; the chopping is conservatively not certified "
                "under " +
                to_string(crit);
  }
  if (opts.fix_suggest) {
    const ChoppingPlan plan = repair_chopping(programs, crit, opts.cycle_budget);
    if (plan.certified) {
      FixIt fix;
      fix.description = "merging " + std::to_string(plan.merges.size()) +
                        " adjacent piece pair(s) yields a chopping "
                        "certified under " +
                        to_string(crit);
      fix.replacement = format_programs(plan.programs, ctx.suite.objects);
      d.fix = std::move(fix);
    }
  }
  out.push_back(std::move(d));
}

void check_si_cycle(const SuiteContext& ctx, const CheckOptions& opts,
                    std::vector<Diagnostic>& out) {
  critical_cycle_check(Criterion::kSI, "si-critical-cycle", ctx, opts, out);
}

void check_ser_cycle(const SuiteContext& ctx, const CheckOptions& opts,
                     std::vector<Diagnostic>& out) {
  critical_cycle_check(Criterion::kSER, "ser-critical-cycle", ctx, opts, out);
}

void check_psi_cycle(const SuiteContext& ctx, const CheckOptions& opts,
                     std::vector<Diagnostic>& out) {
  critical_cycle_check(Criterion::kPSI, "psi-critical-cycle", ctx, opts, out);
}

// ----- robustness checks (Thm 19 / Thm 22) ---------------------------------

void robustness_diagnostic(const char* id, const RobustnessVerdict& v,
                           const std::string& headline,
                           const SuiteContext& ctx,
                           std::vector<Diagnostic>& out) {
  if (v.robust) return;
  const std::vector<Program>& programs = ctx.suite.programs;
  Diagnostic d;
  d.check = id;
  d.severity = Severity::kWarning;
  d.file = ctx.file;
  d.message = headline + ": " + v.description;
  if (v.verified) {
    d.message += " [confirmed by a concrete dependency-graph witness]";
  }
  if (!v.witness.empty() && v.witness[0] < programs.size()) {
    const Program& first = programs[v.witness[0]];
    d.span = first.span;
    d.context = first.name;
    for (std::size_t k = 0; k < v.witness.size(); ++k) {
      if (v.witness[k] >= programs.size()) continue;
      const Program& p = programs[v.witness[k]];
      RelatedLocation r;
      r.file = ctx.file;
      r.span = p.span;
      r.message =
          "dependency-cycle step " + std::to_string(k + 1) + ": program '" +
          p.name + "'";
      d.related.push_back(std::move(r));
    }
  } else {
    d.context = "no-witness";
  }
  out.push_back(std::move(d));
}

void check_robust_si(const SuiteContext& ctx, const CheckOptions& opts,
                     std::vector<Diagnostic>& out) {
  if (ctx.suite.programs.empty()) return;
  const RobustnessVerdict v = opts.concretize
                                  ? robust_against_si_verified(
                                        ctx.suite.programs)
                                  : robust_against_si(ctx.suite.programs);
  robustness_diagnostic(
      "robust-si-ser", v,
      "application is not robust against SI (Theorem 19): histories under "
      "SI may be non-serializable",
      ctx, out);
}

void check_robust_psi(const SuiteContext& ctx, const CheckOptions& opts,
                      std::vector<Diagnostic>& out) {
  (void)opts;  // robust_against_psi always concretises its candidates
  if (ctx.suite.programs.empty()) return;
  const RobustnessVerdict v = robust_against_psi(ctx.suite.programs);
  robustness_diagnostic(
      "robust-psi-si", v,
      "application is not robust against parallel SI (Theorem 22): "
      "histories under PSI may violate SI",
      ctx, out);
}

// ----- structural lints ----------------------------------------------------

void check_empty_piece(const SuiteContext& ctx, const CheckOptions&,
                       std::vector<Diagnostic>& out) {
  for (const Program& p : ctx.suite.programs) {
    for (std::size_t j = 0; j < p.pieces.size(); ++j) {
      const Piece& piece = p.pieces[j];
      if (!piece.accesses_nothing()) continue;
      Diagnostic d;
      d.check = "empty-piece";
      d.severity = Severity::kWarning;
      d.file = ctx.file;
      d.span = piece.span;
      d.context = piece_context(p, j);
      d.message = "piece " + std::to_string(j) + " of program '" + p.name +
                  "' reads and writes nothing; it cannot affect or observe "
                  "any object";
      out.push_back(std::move(d));
    }
  }
}

void check_write_never_read(const SuiteContext& ctx, const CheckOptions&,
                            std::vector<Diagnostic>& out) {
  std::set<ObjId> read_anywhere;
  for (const Program& p : ctx.suite.programs) {
    for (const Piece& piece : p.pieces) {
      read_anywhere.insert(piece.reads.begin(), piece.reads.end());
    }
  }
  std::set<ObjId> reported;
  for (const Program& p : ctx.suite.programs) {
    for (std::size_t j = 0; j < p.pieces.size(); ++j) {
      for (const ObjId x : p.pieces[j].writes) {
        if (read_anywhere.count(x) != 0 || !reported.insert(x).second) {
          continue;
        }
        Diagnostic d;
        d.check = "write-never-read";
        d.severity = Severity::kWarning;
        d.file = ctx.file;
        d.span = p.pieces[j].span;
        d.context = "obj:" + ctx.suite.objects.name(x);
        d.message = "object '" + ctx.suite.objects.name(x) +
                    "' is written (program '" + p.name + "', piece " +
                    std::to_string(j) + ") but never read by any program";
        out.push_back(std::move(d));
      }
    }
  }
  // Parametric analogue: a key write no key read may ever overlap. (A
  // missed overlap would need a read of the same table intersecting on
  // every dimension, so interval disjointness is exact disuse here.)
  std::set<std::string> key_reported;
  for (const Program& p : ctx.suite.programs) {
    for (std::size_t j = 0; j < p.pieces.size(); ++j) {
      for (const KeyAccess& w : p.pieces[j].key_writes) {
        const bool read = [&] {
          for (const Program& q : ctx.suite.programs) {
            for (const Piece& piece : q.pieces) {
              for (const KeyAccess& r : piece.key_reads) {
                if (abstract_keys::accesses_overlap(w, r)) return true;
              }
            }
          }
          return false;
        }();
        if (read) continue;
        const std::string rendered =
            abstract_keys::render_key_access(w, p, ctx.suite.objects);
        if (!key_reported.insert(rendered).second) continue;
        Diagnostic d;
        d.check = "write-never-read";
        d.severity = Severity::kWarning;
        d.file = ctx.file;
        d.span = w.span.known() ? w.span : p.pieces[j].span;
        d.context = "obj:" + rendered;
        d.message = "access '" + rendered + "' is written (program '" +
                    p.name + "', piece " + std::to_string(j) +
                    ") but no program reads any overlapping keys";
        out.push_back(std::move(d));
      }
    }
  }
}

void check_duplicate_access(const SuiteContext& ctx, const CheckOptions&,
                            std::vector<Diagnostic>& out) {
  for (const Program& p : ctx.suite.programs) {
    // (object, is_write) -> pieces listing that access.
    std::map<std::pair<ObjId, bool>, std::vector<std::size_t>> accesses;
    for (std::size_t j = 0; j < p.pieces.size(); ++j) {
      for (const ObjId x : p.pieces[j].reads) {
        accesses[{x, false}].push_back(j);
      }
      for (const ObjId x : p.pieces[j].writes) {
        accesses[{x, true}].push_back(j);
      }
    }
    for (const auto& [key, pieces] : accesses) {
      if (pieces.size() < 2) continue;
      const auto [x, is_write] = key;
      Diagnostic d;
      d.check = "duplicate-piece-access";
      d.severity = Severity::kWarning;
      d.file = ctx.file;
      d.span = p.pieces[pieces[1]].span;
      d.context = piece_context(p, pieces[1]) + ":" +
                  (is_write ? "writes:" : "reads:") +
                  ctx.suite.objects.name(x);
      d.message = std::string("program '") + p.name + "' " +
                  (is_write ? "writes" : "reads") + " object '" +
                  ctx.suite.objects.name(x) + "' in " +
                  std::to_string(pieces.size()) +
                  " pieces; under chopping each piece commits separately, "
                  "so the repeated access spans transaction boundaries";
      RelatedLocation r;
      r.file = ctx.file;
      r.span = p.pieces[pieces[0]].span;
      r.message = "first " + std::string(is_write ? "write" : "read") +
                  " of '" + ctx.suite.objects.name(x) + "' is here (piece " +
                  std::to_string(pieces[0]) + ")";
      d.related.push_back(std::move(r));
      out.push_back(std::move(d));
    }
    // Parametric analogue, refined by `!=` declarations: two pieces of
    // one run-time instance may touch a common key (parameters hold one
    // value per instance, so w vs w2 with `w != w2` never collide).
    for (const bool is_write : {false, true}) {
      const std::vector<KeyAccess> Piece::*member =
          is_write ? &Piece::key_writes : &Piece::key_reads;
      for (std::size_t j2 = 1; j2 < p.pieces.size(); ++j2) {
        for (const KeyAccess& b : p.pieces[j2].*member) {
          for (std::size_t j1 = 0; j1 < j2; ++j1) {
            const auto& list = p.pieces[j1].*member;
            const auto hit = std::find_if(
                list.begin(), list.end(), [&](const KeyAccess& a) {
                  return abstract_keys::accesses_overlap_same_instance(p, a,
                                                                       b);
                });
            if (hit == list.end()) continue;
            const std::string rendered_a =
                abstract_keys::render_key_access(*hit, p, ctx.suite.objects);
            const std::string rendered_b =
                abstract_keys::render_key_access(b, p, ctx.suite.objects);
            Diagnostic d;
            d.check = "duplicate-piece-access";
            d.severity = Severity::kWarning;
            d.file = ctx.file;
            d.span = b.span.known() ? b.span : p.pieces[j2].span;
            d.context = piece_context(p, j2) + ":" +
                        (is_write ? "writes:" : "reads:") + rendered_b;
            d.message = std::string("program '") + p.name + "' " +
                        (is_write ? "writes" : "reads") + " keys of '" +
                        rendered_b + "' already " +
                        (is_write ? "written" : "read") + " as '" +
                        rendered_a + "' in piece " + std::to_string(j1) +
                        "; under chopping each piece commits separately, so "
                        "the repeated access spans transaction boundaries";
            RelatedLocation r;
            r.file = ctx.file;
            r.span = hit->span.known() ? hit->span : p.pieces[j1].span;
            r.message = "first overlapping " +
                        std::string(is_write ? "write" : "read") + " '" +
                        rendered_a + "' is here (piece " +
                        std::to_string(j1) + ")";
            d.related.push_back(std::move(r));
            out.push_back(std::move(d));
            break;  // one finding per duplicated access
          }
        }
      }
    }
  }
}

void check_single_piece(const SuiteContext& ctx, const CheckOptions&,
                        std::vector<Diagnostic>& out) {
  if (ctx.suite.programs.size() < 2) return;  // nothing to chop against
  for (const Program& p : ctx.suite.programs) {
    if (p.pieces.size() != 1) continue;
    Diagnostic d;
    d.check = "single-piece-program";
    d.severity = Severity::kNote;
    d.file = ctx.file;
    d.span = p.span;
    d.context = p.name;
    d.message = "program '" + p.name +
                "' is a single piece, so the chopping criteria are trivial "
                "for it; `sia_analyze --autochop` can search for a finer "
                "certified chopping";
    out.push_back(std::move(d));
  }
}

}  // namespace

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"si-critical-cycle",
       "SCG(P) has an SI-critical cycle: the chopping is incorrect under "
       "snapshot isolation (Corollary 18)",
       Severity::kWarning, check_si_cycle},
      {"ser-critical-cycle",
       "SCG(P) has a SER-critical cycle: the chopping is incorrect under "
       "serializability (Theorem 29)",
       Severity::kWarning, check_ser_cycle},
      {"psi-critical-cycle",
       "SCG(P) has a PSI-critical cycle: the chopping is incorrect under "
       "parallel snapshot isolation (Theorem 31)",
       Severity::kWarning, check_psi_cycle},
      {"robust-si-ser",
       "the application is not robust against SI: some history under SI "
       "is not serializable (Theorem 19)",
       Severity::kWarning, check_robust_si},
      {"robust-psi-si",
       "the application is not robust against parallel SI: some history "
       "under PSI violates SI (Theorem 22)",
       Severity::kWarning, check_robust_psi},
      {"empty-piece", "a piece reads and writes nothing", Severity::kWarning,
       check_empty_piece},
      {"write-never-read",
       "an object is written but never read by any program",
       Severity::kWarning, check_write_never_read},
      {"duplicate-piece-access",
       "a program accesses one object in several pieces",
       Severity::kWarning, check_duplicate_access},
      {"single-piece-program",
       "a single-piece program, for which chopping analysis is trivial",
       Severity::kNote, check_single_piece},
  };
  return kChecks;
}

const CheckInfo* find_check(std::string_view id) {
  for (const CheckInfo& c : all_checks()) {
    if (id == c.id) return &c;
  }
  return nullptr;
}

std::vector<Diagnostic> run_checks(const SuiteContext& ctx,
                                   const CheckOptions& opts,
                                   const std::vector<std::string>& enabled_ids,
                                   std::vector<double>* check_seconds) {
  const std::vector<CheckInfo>& registry = all_checks();
  if (check_seconds != nullptr) {
    check_seconds->assign(registry.size(), 0.0);
  }
  std::vector<Diagnostic> out;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const CheckInfo& check = registry[i];
    if (!enabled_ids.empty() &&
        std::find(enabled_ids.begin(), enabled_ids.end(), check.id) ==
            enabled_ids.end()) {
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    check.run(ctx, opts, out);
    if (check_seconds != nullptr) {
      (*check_seconds)[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
  }
  return out;
}

}  // namespace sia::lint
