#pragma once

#include <string>

#include "lint/lint.hpp"

/// \file sarif.hpp
/// SARIF 2.1.0 (OASIS Static Analysis Results Interchange Format) output
/// for sia_lint, so GitHub code scanning and CI gates consume findings
/// directly. One run per invocation; the tool.driver.rules array lists
/// the whole check registry (plus the "parse-error" pseudo-rule) and
/// every result carries ruleIndex, physical locations with regions,
/// relatedLocations for cycle witnesses, partialFingerprints matching
/// the baseline fingerprint, and fixes when --fix-suggest produced a
/// certified repair.

namespace sia::lint {

/// Renders the whole run as one SARIF 2.1.0 log (a single run object).
[[nodiscard]] std::string to_sarif(const LintRun& run);

}  // namespace sia::lint
