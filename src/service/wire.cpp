#include "service/wire.hpp"

#include <array>
#include <cstring>

namespace sia::service {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(std::vector<std::uint8_t>& out,
               const std::vector<std::uint8_t>& b) {
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

/// Bounds-checked little-endian reader (the RecorderLog Cursor).
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos{0};

  [[nodiscard]] std::size_t remaining() const { return size - pos; }

  bool u8(std::uint8_t& v) {
    if (pos + 1 > size) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > size) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > size) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool string(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || n > remaining()) return false;
    s.assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& b) {
    std::uint32_t n = 0;
    if (!u32(n) || n > remaining()) return false;
    b.assign(data + pos, data + pos + n);
    pos += n;
    return true;
  }
  /// Reads a count that precedes elements of at least \p elem_bytes each;
  /// rejecting counts the remaining bytes cannot possibly hold bounds
  /// every subsequent reserve() by the actual input size.
  bool count(std::uint32_t& n, std::size_t elem_bytes) {
    if (!u32(n)) return false;
    return static_cast<std::size_t>(n) <= remaining() / elem_bytes;
  }
};

void put_commit(std::vector<std::uint8_t>& out, const MonitoredCommit& c) {
  put_u32(out, c.session);
  put_u32(out, static_cast<std::uint32_t>(c.txn.size()));
  for (const Event& e : c.txn.events()) {
    put_u8(out, static_cast<std::uint8_t>(e.kind));
    put_u32(out, e.obj);
    put_u64(out, static_cast<std::uint64_t>(e.value));
  }
  put_u32(out, static_cast<std::uint32_t>(c.read_sources.size()));
  for (const auto& [obj, src] : c.read_sources) {
    put_u32(out, obj);
    put_u32(out, src);
  }
}

bool get_commit(Cursor& c, MonitoredCommit& out) {
  out = MonitoredCommit{};
  if (!c.u32(out.session)) return false;
  std::uint32_t n = 0;
  if (!c.count(n, 13)) return false;  // u8 kind + u32 obj + u64 value
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t kind = 0;
    std::uint32_t obj = 0;
    std::uint64_t value = 0;
    if (!c.u8(kind) || !c.u32(obj) || !c.u64(value)) return false;
    if (kind > static_cast<std::uint8_t>(EventKind::kWrite)) return false;
    out.txn.append(Event{static_cast<EventKind>(kind), obj,
                         static_cast<Value>(value)});
  }
  if (!c.count(n, 8)) return false;  // u32 obj + u32 source
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t obj = 0;
    std::uint32_t src = 0;
    if (!c.u32(obj) || !c.u32(src)) return false;
    out.read_sources[obj] = src;
  }
  return true;
}

/// A verdict-shaped reply body (kVerdictReply and kClosed share it).
void put_verdict_body(std::vector<std::uint8_t>& out, const Message& m) {
  put_u64(out, m.stream);
  put_u8(out, m.verdict);
  put_u64(out, m.commit_count);
  put_u64(out, m.capacity);
  put_u32(out, m.violating);
  put_string(out, m.text);
}

bool get_verdict_body(Cursor& c, Message& out) {
  return c.u64(out.stream) && c.u8(out.verdict) && out.verdict <= 2 &&
         c.u64(out.commit_count) && c.u64(out.capacity) &&
         c.u32(out.violating) && c.string(out.text);
}

/// kStatusReply body: the streaming monitor's flat-memory gauges plus
/// the server-global replication fields (role, epoch, lag).
void put_status_body(std::vector<std::uint8_t>& out, const Message& m) {
  put_u64(out, m.stream);
  put_u8(out, m.verdict);
  put_u64(out, m.commit_count);
  put_u64(out, m.retained);
  put_u64(out, m.pruned);
  put_u64(out, m.watermark);
  put_u64(out, m.approx_bytes);
  put_u8(out, m.role);
  put_u64(out, m.epoch);
  put_u64(out, m.lag_frames);
  put_u64(out, m.lag_bytes);
}

bool get_status_body(Cursor& c, Message& out) {
  return c.u64(out.stream) && c.u8(out.verdict) && out.verdict <= 2 &&
         c.u64(out.commit_count) && c.u64(out.retained) &&
         c.u64(out.pruned) && c.u64(out.watermark) &&
         c.u64(out.approx_bytes) && c.u8(out.role) && out.role <= 2 &&
         c.u64(out.epoch) && c.u64(out.lag_frames) && c.u64(out.lag_bytes);
}

}  // namespace

bool is_request(MsgType t) {
  switch (t) {
    case MsgType::kOpenStream:
    case MsgType::kCommit:
    case MsgType::kVerdict:
    case MsgType::kAnalyze:
    case MsgType::kClose:
    case MsgType::kDrain:
    case MsgType::kStatus:
    case MsgType::kReplHello:
    case MsgType::kReplAppend:
    case MsgType::kPromote:
      return true;
    default:
      return false;
  }
}

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kOpenStream: return "OPEN_STREAM";
    case MsgType::kCommit: return "COMMIT";
    case MsgType::kVerdict: return "VERDICT";
    case MsgType::kAnalyze: return "ANALYZE";
    case MsgType::kClose: return "CLOSE";
    case MsgType::kDrain: return "DRAIN";
    case MsgType::kStatus: return "STATUS";
    case MsgType::kStreamOpened: return "STREAM_OPENED";
    case MsgType::kCommitted: return "COMMITTED";
    case MsgType::kVerdictReply: return "VERDICT_REPLY";
    case MsgType::kAnalyzed: return "ANALYZED";
    case MsgType::kClosed: return "CLOSED";
    case MsgType::kDrained: return "DRAINED";
    case MsgType::kStatusReply: return "STATUS_REPLY";
    case MsgType::kReplHello: return "REPL_HELLO";
    case MsgType::kReplAppend: return "REPL_APPEND";
    case MsgType::kPromote: return "PROMOTE";
    case MsgType::kReplWelcome: return "REPL_WELCOME";
    case MsgType::kReplAck: return "REPL_ACK";
    case MsgType::kPromoted: return "PROMOTED";
    case MsgType::kRetryLater: return "RETRY_LATER";
    case MsgType::kMalformed: return "MALFORMED";
    case MsgType::kError: return "ERROR";
    case MsgType::kFenced: return "FENCED";
  }
  return "UNKNOWN(" + std::to_string(static_cast<unsigned>(t)) + ")";
}

std::string to_string(Role r) {
  switch (r) {
    case Role::kPrimary: return "primary";
    case Role::kFollower: return "follower";
    case Role::kFencedRole: return "fenced";
  }
  return "unknown";
}

std::string to_string(ServiceModel m) {
  switch (m) {
    case ServiceModel::kSER: return "SER";
    case ServiceModel::kSI: return "SI";
    case ServiceModel::kPSI: return "PSI";
    case ServiceModel::kSSI: return "SSI";
  }
  return "UNKNOWN(" + std::to_string(static_cast<unsigned>(m)) + ")";
}

Model check_model(ServiceModel m) {
  switch (m) {
    case ServiceModel::kSER: return Model::kSER;
    case ServiceModel::kSI: return Model::kSI;
    case ServiceModel::kPSI: return Model::kPSI;
    case ServiceModel::kSSI: return Model::kSER;  // SSI commits are SER
  }
  return Model::kSER;
}

std::uint32_t wire_crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_payload(const Message& m) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case MsgType::kOpenStream:
      // stream is 0 on a client open (the server assigns the id); the
      // replicated/WAL form carries the assigned id so replay is exact.
      put_u64(out, m.stream);
      put_u8(out, m.model);
      put_u64(out, m.capacity);
      break;
    case MsgType::kCommit:
      put_u64(out, m.stream);
      put_u64(out, m.seq);
      put_u32(out, static_cast<std::uint32_t>(m.commits.size()));
      for (const MonitoredCommit& c : m.commits) put_commit(out, c);
      break;
    case MsgType::kVerdict:
    case MsgType::kClose:
    case MsgType::kStatus:
    case MsgType::kStreamOpened:
    case MsgType::kRetryLater:
      put_u64(out, m.stream);
      break;
    case MsgType::kAnalyze:
    case MsgType::kAnalyzed:
    case MsgType::kMalformed:
    case MsgType::kError:
      put_string(out, m.text);
      break;
    case MsgType::kDrain:
    case MsgType::kDrained:
    case MsgType::kPromote:
      break;
    case MsgType::kCommitted:
      put_u64(out, m.stream);
      put_u64(out, m.seq);
      put_u8(out, m.verdict);
      put_u32(out, static_cast<std::uint32_t>(m.ids.size()));
      for (const TxnId id : m.ids) put_u32(out, id);
      put_u32(out, static_cast<std::uint32_t>(m.quarantined.size()));
      for (const std::uint32_t q : m.quarantined) put_u32(out, q);
      break;
    case MsgType::kReplHello:
      put_u64(out, m.epoch);
      put_u64(out, m.capacity);
      break;
    case MsgType::kReplWelcome:
    case MsgType::kFenced:
      put_u64(out, m.epoch);
      break;
    case MsgType::kReplAppend:
      put_u64(out, m.stream);
      put_u64(out, m.seq);
      put_u64(out, m.epoch);
      put_bytes(out, m.raw);
      break;
    case MsgType::kReplAck:
      put_u64(out, m.stream);
      put_u64(out, m.seq);
      put_u64(out, m.epoch);
      break;
    case MsgType::kPromoted:
      put_u64(out, m.epoch);
      put_u8(out, m.role);
      break;
    case MsgType::kVerdictReply:
    case MsgType::kClosed:
      put_verdict_body(out, m);
      break;
    case MsgType::kStatusReply:
      put_status_body(out, m);
      break;
  }
  return out;
}

bool decode_payload(const std::uint8_t* data, std::size_t size,
                    Message& out) {
  Cursor c{data, size};
  out = Message{};
  std::uint8_t type = 0;
  if (!c.u8(type)) return false;
  out.type = static_cast<MsgType>(type);
  std::uint32_t n = 0;
  switch (out.type) {
    case MsgType::kOpenStream:
      if (!c.u64(out.stream) || !c.u8(out.model) || out.model > 3 ||
          !c.u64(out.capacity)) {
        return false;
      }
      break;
    case MsgType::kCommit: {
      // A commit is at least session + two counts = 12 bytes.
      if (!c.u64(out.stream) || !c.u64(out.seq) || !c.count(n, 12)) {
        return false;
      }
      out.commits.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!get_commit(c, out.commits[i])) return false;
      }
      break;
    }
    case MsgType::kVerdict:
    case MsgType::kClose:
    case MsgType::kStatus:
    case MsgType::kStreamOpened:
    case MsgType::kRetryLater:
      if (!c.u64(out.stream)) return false;
      break;
    case MsgType::kAnalyze:
    case MsgType::kAnalyzed:
    case MsgType::kMalformed:
    case MsgType::kError:
      if (!c.string(out.text)) return false;
      break;
    case MsgType::kDrain:
    case MsgType::kDrained:
    case MsgType::kPromote:
      break;
    case MsgType::kCommitted: {
      if (!c.u64(out.stream) || !c.u64(out.seq) || !c.u8(out.verdict) ||
          out.verdict > 2) {
        return false;
      }
      if (!c.count(n, 4)) return false;
      out.ids.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!c.u32(out.ids[i])) return false;
      }
      if (!c.count(n, 4)) return false;
      out.quarantined.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!c.u32(out.quarantined[i])) return false;
      }
      break;
    }
    case MsgType::kVerdictReply:
    case MsgType::kClosed:
      if (!get_verdict_body(c, out)) return false;
      break;
    case MsgType::kStatusReply:
      if (!get_status_body(c, out)) return false;
      break;
    case MsgType::kReplHello:
      if (!c.u64(out.epoch) || !c.u64(out.capacity)) return false;
      break;
    case MsgType::kReplWelcome:
    case MsgType::kFenced:
      if (!c.u64(out.epoch)) return false;
      break;
    case MsgType::kReplAppend:
      if (!c.u64(out.stream) || !c.u64(out.seq) || !c.u64(out.epoch) ||
          !c.bytes(out.raw)) {
        return false;
      }
      break;
    case MsgType::kReplAck:
      if (!c.u64(out.stream) || !c.u64(out.seq) || !c.u64(out.epoch)) {
        return false;
      }
      break;
    case MsgType::kPromoted:
      if (!c.u64(out.epoch) || !c.u8(out.role) || out.role > 2) return false;
      break;
    default:
      return false;  // unknown message type
  }
  return c.pos == c.size;  // trailing garbage means a framing bug
}

std::vector<std::uint8_t> encode_frame(const Message& m) {
  const std::vector<std::uint8_t> payload = encode_payload(m);
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 8);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, wire_crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Message& out, std::string* error) {
  // Reclaim consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buffered() < 8) return Status::kNeedMore;
  Cursor header{buf_.data() + pos_, 8};
  std::uint32_t len = 0;
  std::uint32_t sum = 0;
  (void)header.u32(len);
  (void)header.u32(sum);
  if (len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "oversized frame (" + std::to_string(len) + " bytes)";
    }
    return Status::kMalformed;
  }
  if (buffered() - 8 < len) return Status::kNeedMore;
  const std::uint8_t* payload = buf_.data() + pos_ + 8;
  if (wire_crc32(payload, len) != sum) {
    if (error != nullptr) *error = "frame checksum mismatch";
    return Status::kMalformed;
  }
  if (!decode_payload(payload, len, out)) {
    if (error != nullptr) *error = "undecodable payload";
    return Status::kMalformed;
  }
  pos_ += 8 + len;
  return Status::kFrame;
}

}  // namespace sia::service
