/// \file siad.cpp
/// The SI-checking daemon: a long-running server exposing the
/// ConsistencyMonitor and the exact history analyses over TCP (see
/// wire.hpp for the protocol). Streams are sharded across worker threads;
/// overload is answered with RETRY_LATER, never with queue growth.
///
/// Usage:
///   siad [--port N] [--shards N] [--queue N] [--ceiling N]
///
///   --port N      TCP port (default 7401; 0 = ephemeral, printed)
///   --shards N    worker shards (default: hardware threads, SIA_THREADS)
///   --queue N     per-shard admission queue bound (default 256)
///   --ceiling N   per-stream monitor transaction ceiling (default 0 =
///                 unlimited; saturated streams report kSaturated)
///
/// SIGTERM / SIGINT triggers the graceful drain: stop accepting, flush
/// every shard queue (acking all in-flight commits), push final CLOSED
/// verdicts for open streams, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: siad [--port N] [--shards N] [--queue N] "
               "[--ceiling N]\n");
  return 2;
}

bool parse_num(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

}  // namespace

int main(int argc, char** argv) {
  sia::service::ServerConfig cfg;
  cfg.port = 7401;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (i + 1 < argc && parse_num(argv[i + 1], value)) {
      if (arg == "--port") {
        cfg.port = static_cast<std::uint16_t>(value);
        ++i;
        continue;
      }
      if (arg == "--shards") {
        cfg.shards = value;
        ++i;
        continue;
      }
      if (arg == "--queue") {
        cfg.queue_capacity = value;
        ++i;
        continue;
      }
      if (arg == "--ceiling") {
        cfg.stream_ceiling = value;
        ++i;
        continue;
      }
    }
    return usage();
  }

  // Threads inherit the mask, so block before start(): the drain signal
  // must reach sigwait below, not some shard worker's default handler.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  sia::service::Server server(cfg);
  try {
    server.start();
  } catch (const sia::ModelError& e) {
    std::fprintf(stderr, "siad: %s\n", e.what());
    return 1;
  }
  std::printf("siad: listening on 127.0.0.1:%u (%zu shards, queue %zu)\n",
              server.port(), server.shard_count(), cfg.queue_capacity);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("siad: signal %d, draining\n", sig);
  std::fflush(stdout);
  server.drain();
  const sia::service::ServerStats s = server.stats();
  std::printf(
      "siad: drained (%llu connections, %llu frames, %llu commits, "
      "%llu retry-later, %llu malformed)\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.frames),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.retry_later),
      static_cast<unsigned long long>(s.malformed));
  return 0;
}
