/// \file siad.cpp
/// The SI-checking daemon: a long-running server exposing the
/// ConsistencyMonitor and the exact history analyses over TCP (see
/// wire.hpp for the protocol). Streams are sharded across worker threads;
/// overload is answered with RETRY_LATER, never with queue growth.
///
/// Usage:
///   siad [--port N] [--shards N] [--queue N] [--ceiling N]
///        [--gc-window N] [--keep-log]
///        [--wal-dir PATH] [--fsync none|interval|commit]
///        [--fsync-interval N] [--replicate-to HOST:PORT] [--standby]
///        [--heartbeat-ms N] [--auto-promote-ms N]
///
///   --port N      TCP port (default 7401; 0 = ephemeral, printed)
///   --shards N    worker shards (default: hardware threads, SIA_THREADS)
///   --queue N     per-shard admission queue bound (default 256)
///   --ceiling N   per-stream transaction ceiling (default 0 = unlimited;
///                 an explicit ceiling still drops + reports kSaturated)
///   --gc-window N staleness window in commits for the streaming
///                 monitor's stable-prefix GC (default 8192; 0 disables
///                 GC and retention grows with the stream)
///   --keep-log    retain per-stream commit logs for graph()
///                 reconstruction (default off: the log would defeat the
///                 flat-memory property)
///
/// Replication (DESIGN.md §4h):
///   --wal-dir PATH         append every state-mutating frame to
///                          per-shard RecorderLog WALs under PATH
///   --fsync POLICY         WAL durability: none (default), interval,
///                          commit
///   --fsync-interval N     appends between fsyncs under --fsync interval
///                          (default 64)
///   --replicate-to H:P     primary: ship WAL frames to the standby's
///                          port synchronously (client acks wait for the
///                          standby's REPL_ACK)
///   --standby              start as the warm standby: replay replicated
///                          frames, refuse client writes with
///                          "not primary" until promoted
///   --heartbeat-ms N       primary->standby heartbeat interval
///                          (default 100)
///   --auto-promote-ms N    standby: self-promote after N ms of
///                          heartbeat silence (default 0 = only the
///                          explicit PROMOTE op promotes)
///
/// Streams run on StreamingMonitor: memory per stream is proportional to
/// the GC window, not the stream length, so the default config sustains
/// endless streams without saturating.
///
/// SIGTERM / SIGINT triggers the graceful drain: stop accepting, flush
/// every shard queue (acking all in-flight commits), push final CLOSED
/// verdicts for open streams, exit 0.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: siad [--port N] [--shards N] [--queue N] "
               "[--ceiling N] [--gc-window N] [--keep-log]\n"
               "            [--wal-dir PATH] [--fsync none|interval|commit] "
               "[--fsync-interval N]\n"
               "            [--replicate-to HOST:PORT] [--standby] "
               "[--heartbeat-ms N] [--auto-promote-ms N]\n");
  return 2;
}

bool parse_num(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

/// "HOST:PORT" (dotted-quad host) -> (host, port); false on anything else.
bool parse_endpoint(const std::string& s, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  std::uint64_t p = 0;
  if (!parse_num(s.c_str() + colon + 1, p) || p == 0 || p > 65535) {
    return false;
  }
  host = s.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sia::service::ServerConfig cfg;
  cfg.port = 7401;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--keep-log") {
      cfg.keep_log = true;
      continue;
    }
    if (arg == "--standby") {
      cfg.follower = true;
      continue;
    }
    if (arg == "--wal-dir" && i + 1 < argc) {
      cfg.repl.wal_dir = argv[++i];
      continue;
    }
    if (arg == "--fsync" && i + 1 < argc) {
      if (!sia::mvcc::fsync_policy_from_string(argv[++i], cfg.repl.fsync)) {
        return usage();
      }
      continue;
    }
    if (arg == "--replicate-to" && i + 1 < argc) {
      if (!parse_endpoint(argv[++i], cfg.repl.peer_host,
                          cfg.repl.peer_port)) {
        return usage();
      }
      continue;
    }
    std::uint64_t value = 0;
    if (i + 1 < argc && parse_num(argv[i + 1], value)) {
      if (arg == "--port") {
        cfg.port = static_cast<std::uint16_t>(value);
        ++i;
        continue;
      }
      if (arg == "--shards") {
        cfg.shards = value;
        ++i;
        continue;
      }
      if (arg == "--queue") {
        cfg.queue_capacity = value;
        ++i;
        continue;
      }
      if (arg == "--ceiling") {
        cfg.stream_ceiling = value;
        ++i;
        continue;
      }
      if (arg == "--gc-window") {
        cfg.gc_window = value;
        ++i;
        continue;
      }
      if (arg == "--fsync-interval") {
        cfg.repl.fsync_interval = std::max<std::uint64_t>(1, value);
        ++i;
        continue;
      }
      if (arg == "--heartbeat-ms") {
        cfg.repl.heartbeat_interval_ms = value;
        ++i;
        continue;
      }
      if (arg == "--auto-promote-ms") {
        cfg.repl.auto_promote_ms = value;
        ++i;
        continue;
      }
    }
    return usage();
  }

  // Threads inherit the mask, so block before start(): the drain signal
  // must reach sigwait below, not some shard worker's default handler.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  sia::service::Server server(cfg);
  try {
    server.start();
  } catch (const sia::ModelError& e) {
    std::fprintf(stderr, "siad: %s\n", e.what());
    return 1;
  }
  std::printf(
      "siad: listening on 127.0.0.1:%u (%zu shards, queue %zu, "
      "gc window %zu%s)\n",
      server.port(), server.shard_count(), cfg.queue_capacity, cfg.gc_window,
      cfg.keep_log ? ", keep-log" : "");
  if (cfg.repl.enabled() || cfg.follower) {
    std::string detail;
    if (cfg.repl.wal_enabled()) {
      detail += ", wal " + cfg.repl.wal_dir + " (fsync " +
                sia::mvcc::to_string(cfg.repl.fsync) + ")";
    }
    if (cfg.repl.shipping_enabled()) {
      detail += ", replicating to " + cfg.repl.peer_host + ":" +
                std::to_string(cfg.repl.peer_port);
    }
    if (cfg.follower && cfg.repl.auto_promote_ms > 0) {
      detail += ", auto-promote after " +
                std::to_string(cfg.repl.auto_promote_ms) + " ms";
    }
    std::printf("siad: role %s, epoch %llu%s\n",
                sia::service::to_string(server.role()).c_str(),
                static_cast<unsigned long long>(server.epoch()),
                detail.c_str());
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("siad: signal %d, draining\n", sig);
  std::fflush(stdout);
  server.drain();
  const sia::service::ServerStats s = server.stats();
  std::printf(
      "siad: drained (%llu connections, %llu frames, %llu commits, "
      "%llu retry-later, %llu malformed)\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.frames),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.retry_later),
      static_cast<unsigned long long>(s.malformed));
  return 0;
}
