#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "service/wire.hpp"

/// \file client.hpp
/// Blocking client for siad: one TCP connection, strict request/reply.
/// The only unsolicited frame a server ever pushes is the CLOSED final
/// verdict of a draining stream; the client parks those in drained() so a
/// load generator can reconcile its own ack counts against the server's
/// final word (the "nothing dropped silently" audit).
///
/// RETRY_LATER is surfaced two ways: commit() returns it verbatim, and
/// commit_retry() maps it onto the existing fault::RetryPolicy — bounded
/// exponential backoff with deterministic jitter, one policy "step"
/// sleeping kBackoffStep so a draining or overloaded shard has real time
/// to make progress between attempts.
///
/// FailoverClient wraps a ServiceClient with an endpoint list and the
/// replicated-pair failure modes: "not primary" errors and dead
/// connections rotate to the next endpoint, reconnection is *fenced* (a
/// server is only accepted if STATUS(0) reports role primary and an
/// epoch >= the highest this client has seen, so a deposed zombie is
/// never rejoined), and commits carry client-assigned per-stream
/// sequence numbers so a resend after failover is exactly-once (the
/// server answers a duplicate from its replicated seq cache).

namespace sia::service {

class ServiceClient {
 public:
  /// One RetryPolicy backoff step, in microseconds of wall sleep.
  static constexpr std::uint64_t kBackoffStepUs = 50;

  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to \p host (dotted-quad IPv4) : \p port.
  /// \throws ModelError on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// OPEN_STREAM with bounded retries on RETRY_LATER; returns the stream
  /// id. \throws ModelError on protocol errors or budget exhaustion.
  [[nodiscard]] std::uint64_t open_stream(ServiceModel model,
                                          std::uint64_t ceiling = 0);

  /// Convenience for pre-SSI call sites: Model values map one-to-one onto
  /// the identically-numbered ServiceModel.
  [[nodiscard]] std::uint64_t open_stream(Model model,
                                          std::uint64_t ceiling = 0) {
    return open_stream(static_cast<ServiceModel>(model), ceiling);
  }

  /// One COMMIT round-trip. The reply is kCommitted or kRetryLater.
  /// \p seq is the optional exactly-once sequence number (0 = none): pass
  /// 1, 2, 3, ... per stream and a duplicate resend is answered from the
  /// server's cache instead of being re-ingested.
  Message commit(std::uint64_t stream,
                 const std::vector<MonitoredCommit>& batch,
                 std::uint64_t seq = 0);

  /// commit() with RETRY_LATER mapped onto \p policy. Returns the final
  /// reply — still kRetryLater if the budget ran out. \p stats (optional)
  /// reports attempts and backoff served, like RetryingClient::run.
  Message commit_retry(std::uint64_t stream,
                       const std::vector<MonitoredCommit>& batch,
                       const fault::RetryPolicy& policy,
                       fault::RetryStats* stats = nullptr);

  Message verdict(std::uint64_t stream);
  /// STATUS round-trip: the stream's flat-memory gauges (retained,
  /// pruned, watermark, approx_bytes) plus verdict and commit count.
  /// STATUS(0) is the server-global form: role, epoch, replication lag.
  Message status(std::uint64_t stream);
  Message close_stream(std::uint64_t stream);

  /// PROMOTE round-trip (operator failover): returns the kPromoted reply
  /// with the follower's new epoch and role.
  Message promote();

  /// ANALYZE round-trip: returns the JSON report.
  /// \throws ModelError when the server rejects the input.
  [[nodiscard]] std::string analyze(const std::string& history_text);

  /// DRAIN round-trip: returns once every shard flushed its queue.
  void drain();

  /// Sends \p request and blocks for its reply. Unsolicited CLOSED frames
  /// received meanwhile are recorded in drained().
  Message request(const Message& request);

  /// Final verdicts the server pushed while draining, keyed by stream.
  [[nodiscard]] const std::map<std::uint64_t, Message>& drained() const {
    return drained_;
  }

 private:
  Message read_message();
  void send_all(const std::vector<std::uint8_t>& bytes);

  int fd_{-1};
  FrameDecoder decoder_;
  std::map<std::uint64_t, Message> drained_;
};

/// One server of a replicated pair.
struct Endpoint {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
};

/// Failover-aware client over an endpoint list (see the file comment).
/// Like ServiceClient it is single-threaded and blocking; unlike it, every
/// operation retries across RETRY_LATER, dead connections and deposed
/// primaries under one bounded RetryPolicy budget, and throws ModelError
/// only when the budget is exhausted with no live primary found.
class FailoverClient {
 public:
  explicit FailoverClient(std::vector<Endpoint> endpoints,
                          fault::RetryPolicy policy = {});

  /// Finds and connects to the current primary (fenced: epoch must not
  /// regress). \throws ModelError when no endpoint qualifies in budget.
  void connect();
  void close() { client_.close(); connected_ = false; }
  [[nodiscard]] bool connected() const { return connected_; }

  [[nodiscard]] std::uint64_t open_stream(ServiceModel model,
                                          std::uint64_t ceiling = 0);
  /// Exactly-once commit: \p seq must increase by 1 per stream batch.
  /// Returns the final reply — kCommitted, or kRetryLater if the budget
  /// ran out mid-overload.
  Message commit(std::uint64_t stream, std::uint64_t seq,
                 const std::vector<MonitoredCommit>& batch);
  Message status(std::uint64_t stream);
  Message server_status() { return status(0); }
  Message close_stream(std::uint64_t stream);

  /// Highest fencing epoch observed (0 before the first connect).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Completed primary switches (epoch advanced or endpoint rotated).
  [[nodiscard]] std::size_t failovers() const { return failovers_; }
  [[nodiscard]] std::size_t endpoint_index() const { return current_; }
  /// The wrapped single-connection client (drained() etc.).
  [[nodiscard]] ServiceClient& raw() { return client_; }

 private:
  /// Connect + fenced-primary gate for endpoints_[idx].
  [[nodiscard]] bool try_connect(std::size_t idx);
  /// Rotates through the endpoint list under the policy budget.
  void reconnect();
  /// Request with rotate-on-failure; \p request is re-sent verbatim after
  /// a failover, so it must be idempotent (seq-carrying COMMITs are).
  Message roundtrip(const Message& request);

  std::vector<Endpoint> endpoints_;
  fault::RetryPolicy policy_;
  ServiceClient client_;
  std::size_t current_{0};
  std::uint64_t epoch_{0};
  std::size_t failovers_{0};
  bool connected_{false};
};

}  // namespace sia::service
