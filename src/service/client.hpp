#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "service/wire.hpp"

/// \file client.hpp
/// Blocking client for siad: one TCP connection, strict request/reply.
/// The only unsolicited frame a server ever pushes is the CLOSED final
/// verdict of a draining stream; the client parks those in drained() so a
/// load generator can reconcile its own ack counts against the server's
/// final word (the "nothing dropped silently" audit).
///
/// RETRY_LATER is surfaced two ways: commit() returns it verbatim, and
/// commit_retry() maps it onto the existing fault::RetryPolicy — bounded
/// exponential backoff with deterministic jitter, one policy "step"
/// sleeping kBackoffStep so a draining or overloaded shard has real time
/// to make progress between attempts.

namespace sia::service {

class ServiceClient {
 public:
  /// One RetryPolicy backoff step, in microseconds of wall sleep.
  static constexpr std::uint64_t kBackoffStepUs = 50;

  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to \p host (dotted-quad IPv4) : \p port.
  /// \throws ModelError on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// OPEN_STREAM with bounded retries on RETRY_LATER; returns the stream
  /// id. \throws ModelError on protocol errors or budget exhaustion.
  [[nodiscard]] std::uint64_t open_stream(ServiceModel model,
                                          std::uint64_t ceiling = 0);

  /// Convenience for pre-SSI call sites: Model values map one-to-one onto
  /// the identically-numbered ServiceModel.
  [[nodiscard]] std::uint64_t open_stream(Model model,
                                          std::uint64_t ceiling = 0) {
    return open_stream(static_cast<ServiceModel>(model), ceiling);
  }

  /// One COMMIT round-trip. The reply is kCommitted or kRetryLater.
  Message commit(std::uint64_t stream,
                 const std::vector<MonitoredCommit>& batch);

  /// commit() with RETRY_LATER mapped onto \p policy. Returns the final
  /// reply — still kRetryLater if the budget ran out. \p stats (optional)
  /// reports attempts and backoff served, like RetryingClient::run.
  Message commit_retry(std::uint64_t stream,
                       const std::vector<MonitoredCommit>& batch,
                       const fault::RetryPolicy& policy,
                       fault::RetryStats* stats = nullptr);

  Message verdict(std::uint64_t stream);
  /// STATUS round-trip: the stream's flat-memory gauges (retained,
  /// pruned, watermark, approx_bytes) plus verdict and commit count.
  Message status(std::uint64_t stream);
  Message close_stream(std::uint64_t stream);

  /// ANALYZE round-trip: returns the JSON report.
  /// \throws ModelError when the server rejects the input.
  [[nodiscard]] std::string analyze(const std::string& history_text);

  /// DRAIN round-trip: returns once every shard flushed its queue.
  void drain();

  /// Sends \p request and blocks for its reply. Unsolicited CLOSED frames
  /// received meanwhile are recorded in drained().
  Message request(const Message& request);

  /// Final verdicts the server pushed while draining, keyed by stream.
  [[nodiscard]] const std::map<std::uint64_t, Message>& drained() const {
    return drained_;
  }

 private:
  Message read_message();
  void send_all(const std::vector<std::uint8_t>& bytes);

  int fd_{-1};
  FrameDecoder decoder_;
  std::map<std::uint64_t, Message> drained_;
};

}  // namespace sia::service
