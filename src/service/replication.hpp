#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/incremental.hpp"
#include "mvcc/recorder_log.hpp"
#include "service/wire.hpp"

/// \file replication.hpp
/// Warm-standby replication for siad (DESIGN.md §4h): the primary appends
/// every state-mutating client frame (OPEN_STREAM with its assigned id,
/// accepted COMMIT, CLOSE) to a per-shard RecorderLog WAL and ships the
/// same frames to a follower over the ordinary wire protocol. Replay
/// determinism of the streaming monitor makes the follower's state
/// bit-identical to the primary's by construction — the frames *are* the
/// state.
///
/// Frame shape, both on disk and on the wire: the WAL payload is
///     u64 shard seq | encode_payload(inner message)
/// and REPL_APPEND carries (shard, seq, epoch, inner payload bytes). The
/// per-shard sequence is gapless from 1; a gap or an undecodable inner
/// frame on the follower means the link delivered a corrupt prefix and
/// the follower quarantines (sticky, like a malformed monitor verdict)
/// rather than diverge silently.
///
/// The sender ships synchronously in the failover sense: the primary
/// defers each client ack until the follower's REPL_ACK for the
/// corresponding frame (the AckHook), so an acknowledged commit is never
/// lost by killing the primary. If the link dies or was never up, the
/// sender completes hooks immediately and goes *degraded* — sticky
/// local-ack mode with the durability caveat documented in DESIGN.md;
/// re-establishing a pair means restarting it.
///
/// Fencing: the sender carries the primary's epoch in every frame. A
/// follower that has been promoted (operator PROMOTE or heartbeat loss)
/// adopts epoch + 1 and answers stale frames with FENCED; the sender then
/// reports fenced() and the deposed primary stops accepting writes.

namespace sia::service {

struct ReplicationConfig {
  /// Directory for per-shard WAL files (wal-<shard>.log). Empty = no WAL.
  std::string wal_dir;
  /// Durability policy for the WAL appends (see mvcc::FsyncPolicy).
  mvcc::FsyncPolicy fsync{mvcc::FsyncPolicy::kNone};
  std::size_t fsync_interval{64};
  /// Follower address the primary ships frames to; port 0 = ship nothing
  /// (WAL-only durability).
  std::string peer_host{"127.0.0.1"};
  std::uint16_t peer_port{0};
  /// Heartbeat cadence: an idle sender emits REPL_HELLO this often so the
  /// follower can tell silence from death.
  std::uint64_t heartbeat_interval_ms{100};
  /// Follower: promote self after this long without hearing the primary
  /// (0 = only explicit PROMOTE). The clock starts at the first
  /// replication frame heard, so a follower booted before its primary
  /// does not promote spuriously.
  std::uint64_t auto_promote_ms{0};
  /// Shipped-but-unacked frame cap; beyond it the sender stops pulling
  /// from its queue, bounding both sides' memory.
  std::size_t window{256};
  /// Initial connect attempts before declaring the link dead (50 ms
  /// apart); once up, any failure degrades immediately.
  std::size_t connect_attempts{40};

  [[nodiscard]] bool wal_enabled() const { return !wal_dir.empty(); }
  [[nodiscard]] bool shipping_enabled() const { return peer_port != 0; }
  [[nodiscard]] bool enabled() const {
    return wal_enabled() || shipping_enabled();
  }
};

/// WAL file for shard \p shard under \p dir.
[[nodiscard]] std::string wal_path(const std::string& dir, std::size_t shard);

/// Creates \p dir if missing (single level). \throws ModelError on
/// failure other than already-exists.
void ensure_dir(const std::string& dir);

/// WAL payload framing: u64 shard seq | inner wire payload.
[[nodiscard]] std::vector<std::uint8_t> encode_wal_frame(
    std::uint64_t seq, const std::uint8_t* payload, std::size_t size);
inline std::vector<std::uint8_t> encode_wal_frame(
    std::uint64_t seq, const std::vector<std::uint8_t>& payload) {
  return encode_wal_frame(seq, payload.data(), payload.size());
}

/// Splits a WAL payload back into (seq, decoded inner message). Returns
/// false on a short header or an undecodable inner frame.
[[nodiscard]] bool decode_wal_frame(const std::vector<std::uint8_t>& frame,
                                    std::uint64_t& seq, Message& inner);

/// Offline replay of a WAL directory: every intact frame of every shard
/// log, in per-shard seq order, applied to fresh StreamingMonitors. This
/// is the audit oracle for failover tests — a promoted follower's STATUS
/// gauges must match what replaying its own WAL from scratch produces.
struct WalReplay {
  /// Stream id -> monitor state after replay (closed streams removed,
  /// exactly as the live server removes them).
  std::map<std::uint64_t, StreamingMonitor> streams;
  std::size_t frames{0};     ///< intact WAL frames applied
  bool torn_tail{false};     ///< some shard log ended mid-frame
  bool gap{false};           ///< a shard's seq sequence had a hole
};

[[nodiscard]] WalReplay replay_wal(const std::string& dir, std::size_t shards,
                                   const StreamingConfig& cfg);

/// The primary-side shipping thread. Owns the socket to the follower;
/// shard threads hand it (shard, seq, payload, hook) tuples via ship()
/// and it streams REPL_APPEND frames, matches REPL_ACKs FIFO per shard,
/// heartbeats when idle, and tracks lag gauges. All hook invocations
/// happen on the sender thread (or inside stop()/degrade, on the calling
/// thread) — hooks must be thread-safe and non-blocking.
class ReplicationSender {
 public:
  /// Invoked exactly once per shipped frame: when the follower acked it,
  /// or when the link died / was fenced and the frame's fate is local.
  using AckHook = std::function<void()>;

  ReplicationSender(ReplicationConfig cfg, std::uint64_t epoch,
                    std::size_t shards);
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  void start();

  /// Stops the thread. Outstanding hooks are always completed (never
  /// leaked); \p flush_first additionally waits up to \p flush_ms for the
  /// follower to ack everything in flight (graceful drain wants this, a
  /// simulated SIGKILL does not).
  void stop(bool flush_first, std::uint64_t flush_ms = 2000);

  /// Queues one frame for shipping. Returns false — without queueing —
  /// if the sender is degraded or fenced: the caller owns the ack.
  [[nodiscard]] bool ship(std::size_t shard, std::uint64_t seq,
                          std::vector<std::uint8_t> payload, AckHook hook);

  /// Blocks until queue + in-flight are empty, or \p timeout_ms passed,
  /// or the link died. True iff everything was acked.
  bool flush(std::uint64_t timeout_ms);

  /// Link died (or never came up); primary acks locally. Sticky.
  [[nodiscard]] bool degraded() const;
  /// A newer primary fenced us; the server must stop accepting writes.
  [[nodiscard]] bool fenced() const;
  /// The winning epoch carried by the FENCED reply (0 if not fenced).
  [[nodiscard]] std::uint64_t fence_epoch() const;

  [[nodiscard]] std::uint64_t lag_frames() const;
  [[nodiscard]] std::uint64_t lag_bytes() const;
  [[nodiscard]] std::uint64_t shipped() const;
  [[nodiscard]] std::uint64_t acked() const;

 private:
  struct Item {
    std::size_t shard{0};
    std::uint64_t seq{0};
    std::vector<std::uint8_t> payload;
    AckHook hook;
  };
  struct Pending {
    std::uint64_t seq{0};
    std::size_t bytes{0};
    AckHook hook;
  };

  void run();
  [[nodiscard]] bool connect_and_hello();
  [[nodiscard]] bool send_all(const std::vector<std::uint8_t>& bytes);
  /// Completes every queued/in-flight hook and marks the link dead.
  void fail_link(bool fence, std::uint64_t winner_epoch);
  void close_fd();

  ReplicationConfig cfg_;
  std::uint64_t epoch_;
  std::size_t shards_;

  mutable std::mutex mutex_;
  std::condition_variable flush_cv_;  ///< wakes flush() waiters
  std::deque<Item> queue_;
  std::vector<std::deque<Pending>> pending_;
  std::size_t pending_frames_{0};
  std::uint64_t queued_bytes_{0};
  std::uint64_t pending_bytes_{0};
  bool stop_{false};
  bool degraded_{false};
  bool fenced_{false};
  std::uint64_t fence_epoch_{0};
  std::uint64_t shipped_{0};
  std::uint64_t acked_{0};

  int fd_{-1};
  /// Self-pipe: ship()/stop() write a byte to wake the sender's poll().
  int wake_pipe_[2]{-1, -1};
  std::thread thread_;
  bool started_{false};
};

}  // namespace sia::service
