#include "service/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "graph/incremental.hpp"
#include "service/client.hpp"
#include "workload/generator.hpp"
#include "workload/stream_source.hpp"

namespace sia::service {

namespace {

using Clock = std::chrono::steady_clock;

/// The commit sequence for one stream, pre-generated from a run of the
/// engine matching cfg.model so read sources are engine truth (exactly
/// what an in-process replay would feed a monitor) — and so the server's
/// audit really holds each engine's histories to its own model.
std::vector<MonitoredCommit> stream_commits(const LoadgenConfig& cfg,
                                            std::size_t stream_index) {
  workload::WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.sessions = 2;
  spec.txns_per_session = std::max<std::size_t>(1, cfg.txns_per_stream / 2);
  spec.ops_per_txn = cfg.ops_per_txn;
  spec.write_ratio = cfg.write_ratio;
  spec.seed = cfg.seed + stream_index * 7919;
  spec.concurrent = false;  // deterministic per-stream history
  mvcc::RecordedRun run;
  switch (cfg.model) {
    case ServiceModel::kSER: run = workload::run_ser(spec); break;
    case ServiceModel::kSI: run = workload::run_si(spec); break;
    case ServiceModel::kPSI: run = workload::run_psi(spec, 2); break;
    case ServiceModel::kSSI: run = workload::run_ssi(spec); break;
  }
  return monitored_commits(run.graph);
}

/// Offline truth: the same batches through a local monitor.
MonitorVerdict offline_verdict(ServiceModel model,
                               const std::vector<MonitoredCommit>& commits,
                               std::size_t batch_size, std::size_t batches) {
  ConsistencyMonitor monitor(check_model(model));
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t lo = b * batch_size;
    const std::size_t hi = std::min(lo + batch_size, commits.size());
    if (lo >= hi) break;
    (void)monitor.commit_all_guarded(
        {commits.begin() + static_cast<std::ptrdiff_t>(lo),
         commits.begin() + static_cast<std::ptrdiff_t>(hi)});
  }
  return monitor.verdict();
}

struct StreamOutcome {
  std::uint64_t acked{0};      ///< commits acknowledged (ids minus quarantine)
  std::uint64_t batches_acked{0};
  std::uint64_t rejected{0};
  bool closed_by_server{false};
  bool have_final{false};
  Message final_verdict;  ///< kClosed (ours or the server's drain push)
};

}  // namespace

LoadReport run_load(const LoadgenConfig& cfg) {
  LoadReport report;
  report.streams = cfg.connections * cfg.streams_per_connection;

  // Pre-generate all stream traffic before timing starts.
  std::vector<std::vector<MonitoredCommit>> traffic(report.streams);
  for (std::size_t s = 0; s < report.streams; ++s) {
    traffic[s] = stream_commits(cfg, s);
  }

  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  const auto t0 = Clock::now();

  std::vector<std::thread> threads;
  threads.reserve(cfg.connections);
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    threads.emplace_back([&, c] {
      LoadReport local;
      std::vector<double> local_latencies;
      ServiceClient client;
      try {
        client.connect(cfg.host, cfg.port);
      } catch (const ModelError&) {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        ++report.protocol_errors;
        return;
      }

      const std::size_t base = c * cfg.streams_per_connection;
      std::vector<std::uint64_t> stream_ids(cfg.streams_per_connection, 0);
      std::vector<StreamOutcome> outcomes(cfg.streams_per_connection);
      std::vector<std::size_t> next_batch(cfg.streams_per_connection, 0);
      bool connection_dead = false;
      try {
        for (std::size_t k = 0; k < cfg.streams_per_connection; ++k) {
          stream_ids[k] = client.open_stream(cfg.model);
        }
      } catch (const ModelError&) {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        ++report.protocol_errors;
        return;
      }

      // Streams advance round-robin, one batch per turn, so every shard
      // sees interleaved load rather than one stream at a time.
      bool progressed = true;
      while (progressed && !connection_dead) {
        progressed = false;
        for (std::size_t k = 0;
             k < cfg.streams_per_connection && !connection_dead; ++k) {
          const std::vector<MonitoredCommit>& commits = traffic[base + k];
          StreamOutcome& out = outcomes[k];
          if (out.closed_by_server || out.rejected > 0) continue;
          const std::size_t lo = next_batch[k] * cfg.batch_size;
          if (lo >= commits.size()) continue;
          const std::size_t hi =
              std::min(lo + cfg.batch_size, commits.size());
          const std::vector<MonitoredCommit> batch(
              commits.begin() + static_cast<std::ptrdiff_t>(lo),
              commits.begin() + static_cast<std::ptrdiff_t>(hi));
          local.commits_sent += batch.size();
          ++local.batches;
          fault::RetryStats rs;
          const auto rt0 = Clock::now();
          Message reply;
          try {
            reply = client.commit_retry(stream_ids[k], batch, cfg.retry, &rs);
          } catch (const ModelError&) {
            // Server drained (or died) under us; the batch was never
            // acked — count it rejected, not lost.
            local.drained_mid_run = true;
            ++local.rejected;
            connection_dead = true;
            break;
          }
          local_latencies.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - rt0)
                  .count());
          local.retry_later += rs.attempts - 1;
          if (reply.type == MsgType::kCommitted) {
            out.acked += reply.ids.size() - reply.quarantined.size();
            ++out.batches_acked;
            ++next_batch[k];
            progressed = true;
          } else if (reply.type == MsgType::kRetryLater) {
            ++local.rejected;
            ++out.rejected;
          } else {
            ++local.protocol_errors;
            ++out.rejected;
          }
        }
      }

      // Close every stream for its final verdict; on a drained server the
      // pushed CLOSED frames in client.drained() stand in.
      for (std::size_t k = 0; k < cfg.streams_per_connection; ++k) {
        StreamOutcome& out = outcomes[k];
        if (!connection_dead) {
          try {
            Message closed = client.close_stream(stream_ids[k]);
            if (closed.type == MsgType::kClosed) {
              out.final_verdict = std::move(closed);
              out.have_final = true;
            } else if (closed.type != MsgType::kRetryLater) {
              ++local.protocol_errors;
            }
          } catch (const ModelError&) {
            local.drained_mid_run = true;
            connection_dead = true;
          }
        }
        if (!out.have_final) {
          const auto it = client.drained().find(stream_ids[k]);
          if (it != client.drained().end()) {
            out.final_verdict = it->second;
            out.have_final = true;
          }
        }
      }

      // Audit: the server's final commit count must equal what we saw
      // acked (nothing dropped silently, nothing invented), and its
      // verdict must equal the offline replay of the acked prefix.
      for (std::size_t k = 0; k < cfg.streams_per_connection; ++k) {
        const StreamOutcome& out = outcomes[k];
        local.commits_acked += out.acked;
        if (!out.have_final) continue;
        if (out.final_verdict.commit_count != out.acked) {
          ++local.ack_count_mismatches;
        }
        const MonitorVerdict expected =
            offline_verdict(cfg.model, traffic[base + k], cfg.batch_size,
                            out.batches_acked);
        if (static_cast<MonitorVerdict>(out.final_verdict.verdict) !=
            expected) {
          ++local.verdict_mismatches;
        }
      }

      const std::lock_guard<std::mutex> lock(merge_mutex);
      report.commits_sent += local.commits_sent;
      report.commits_acked += local.commits_acked;
      report.batches += local.batches;
      report.retry_later += local.retry_later;
      report.rejected += local.rejected;
      report.protocol_errors += local.protocol_errors;
      report.verdict_mismatches += local.verdict_mismatches;
      report.ack_count_mismatches += local.ack_count_mismatches;
      report.drained_mid_run = report.drained_mid_run || local.drained_mid_run;
      latencies_ms.insert(latencies_ms.end(), local_latencies.begin(),
                          local_latencies.end());
    });
  }
  for (std::thread& t : threads) t.join();

  report.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  report.commits_per_sec =
      report.seconds > 0
          ? static_cast<double>(report.commits_acked) / report.seconds
          : 0.0;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto pct = [&latencies_ms](double p) {
      const std::size_t i = std::min(
          latencies_ms.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(
                                           latencies_ms.size())));
      return latencies_ms[i];
    };
    report.p50_ms = pct(0.50);
    report.p99_ms = pct(0.99);
  }
  return report;
}

bool clean(const LoadReport& r) {
  return r.protocol_errors == 0 && r.verdict_mismatches == 0 &&
         r.ack_count_mismatches == 0;
}

EndlessReport run_endless(const LoadgenConfig& cfg) {
  EndlessReport report;
  // Endless mode always drives the failover-aware client: with just the
  // primary listed it degenerates to a retrying ServiceClient; with a
  // standby it rides out a primary kill mid-run. Commits carry seq
  // numbers 1, 2, 3, ... so a resend after failover is exactly-once and
  // the ack-count audit stays exact across the switch.
  std::vector<Endpoint> endpoints{{cfg.host, cfg.port}};
  if (cfg.failover_port != 0) {
    endpoints.push_back({cfg.failover_host, cfg.failover_port});
  }
  FailoverClient client(endpoints, cfg.retry);
  client.connect();  // unreachable server throws here

  workload::StreamSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.ops_per_txn = cfg.ops_per_txn;
  spec.write_ratio = cfg.write_ratio;
  spec.seed = cfg.seed;
  workload::StreamSource source(spec);
  // The local truth. Default StreamingConfig: same GC defaults as siad —
  // but verdict parity does not depend on the windows matching, only on
  // the stream's snapshot lag staying inside both (it does: 512 < 8192).
  StreamingMonitor local(check_model(cfg.model));

  std::vector<std::uint64_t> retained_samples;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration<double>(cfg.duration_seconds);

  std::uint64_t stream = 0;
  try {
    stream = client.open_stream(cfg.model);
  } catch (const ModelError&) {
    ++report.protocol_errors;
    return report;
  }

  const auto sample_status = [&]() -> bool {
    Message st;
    try {
      st = client.status(stream);
    } catch (const ModelError&) {
      report.drained_mid_run = true;
      return false;
    }
    if (st.type != MsgType::kStatusReply) {
      if (st.type != MsgType::kRetryLater) ++report.protocol_errors;
      return true;
    }
    ++report.status_samples;
    if (st.verdict != static_cast<std::uint8_t>(local.verdict())) {
      ++report.verdict_mismatches;
    }
    if (st.commit_count != report.commits_acked) {
      ++report.count_mismatches;
    }
    retained_samples.push_back(st.retained);
    report.max_retained = std::max(report.max_retained, st.retained);
    report.max_bytes = std::max(report.max_bytes, st.approx_bytes);
    report.final_retained = st.retained;
    report.final_bytes = st.approx_bytes;
    report.final_pruned = st.pruned;
    report.final_watermark = st.watermark;
    report.final_role = st.role;
    report.final_epoch = st.epoch;
    report.final_lag_frames = st.lag_frames;
    report.final_lag_bytes = st.lag_bytes;
    return true;
  };

  std::vector<MonitoredCommit> batch;
  bool batch_pending = false;
  std::uint64_t seq = 0;  // exactly-once: one per batch, bumped on ack
  while (Clock::now() < deadline && !report.drained_mid_run) {
    if (!batch_pending) {
      batch.clear();
      for (std::size_t i = 0; i < cfg.batch_size; ++i) {
        batch.push_back(source.next());
      }
      report.commits_sent += batch.size();
      ++seq;
      batch_pending = true;
    }
    Message reply;
    try {
      reply = client.commit(stream, seq, batch);
    } catch (const ModelError&) {
      report.drained_mid_run = true;
      break;
    }
    if (reply.type == MsgType::kRetryLater) {
      ++report.retry_later;  // budget exhausted; same batch + seq next turn
      continue;
    }
    if (reply.type != MsgType::kCommitted) {
      ++report.protocol_errors;
      break;
    }
    // The server acked: mirror the batch into the local truth. The
    // stream is SI-consistent by construction, so quarantines here
    // would themselves be a protocol-level surprise worth counting.
    report.commits_acked += reply.ids.size() - reply.quarantined.size();
    report.protocol_errors += reply.quarantined.size();
    (void)local.commit_all_guarded(batch);
    batch_pending = false;
    if (++report.batches % cfg.status_every == 0) {
      if (!sample_status()) break;
    }
  }
  if (!report.drained_mid_run) {
    (void)sample_status();  // final gauge snapshot
    try {
      (void)client.close_stream(stream);
    } catch (const ModelError&) {
      report.drained_mid_run = true;
    }
  }
  report.failovers = client.failovers();
  report.final_epoch = std::max(report.final_epoch, client.epoch());

  report.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  report.commits_per_sec =
      report.seconds > 0
          ? static_cast<double>(report.commits_acked) / report.seconds
          : 0.0;
  // Plateau: the last quarter of samples must not set a new retained
  // high-water mark. Too few samples proves nothing either way.
  if (retained_samples.size() >= 8) {
    const std::size_t tail = retained_samples.size() / 4;
    std::uint64_t head_max = 0;
    std::uint64_t tail_max = 0;
    for (std::size_t i = 0; i < retained_samples.size(); ++i) {
      auto& side =
          i < retained_samples.size() - tail ? head_max : tail_max;
      side = std::max(side, retained_samples[i]);
    }
    report.memory_plateaued = tail_max <= head_max;
  }
  return report;
}

bool clean(const EndlessReport& r) {
  return r.protocol_errors == 0 && r.verdict_mismatches == 0 &&
         r.count_mismatches == 0 &&
         (r.status_samples < 8 || r.memory_plateaued);
}

std::string to_json(const LoadgenConfig& cfg, const LoadReport& r) {
  std::ostringstream out;
  char num[64];
  const auto f2 = [&num](double v) {
    std::snprintf(num, sizeof(num), "%.3f", v);
    return std::string(num);
  };
  out << "{\"connections\": " << cfg.connections
      << ", \"streams\": " << r.streams
      << ", \"txns_per_stream\": " << cfg.txns_per_stream
      << ", \"batch_size\": " << cfg.batch_size
      << ", \"commits_acked\": " << r.commits_acked
      << ", \"commits_per_sec\": " << f2(r.commits_per_sec)
      << ", \"p50_ms\": " << f2(r.p50_ms) << ", \"p99_ms\": " << f2(r.p99_ms)
      << ", \"retry_later\": " << r.retry_later
      << ", \"rejected\": " << r.rejected
      << ", \"protocol_errors\": " << r.protocol_errors
      << ", \"verdict_mismatches\": " << r.verdict_mismatches
      << ", \"ack_count_mismatches\": " << r.ack_count_mismatches
      << ", \"seconds\": " << f2(r.seconds) << "}";
  return out.str();
}

std::string to_json(const LoadgenConfig& cfg, const EndlessReport& r) {
  std::ostringstream out;
  char num[64];
  const auto f2 = [&num](double v) {
    std::snprintf(num, sizeof(num), "%.3f", v);
    return std::string(num);
  };
  out << "{\"mode\": \"endless\", \"duration_seconds\": "
      << f2(cfg.duration_seconds) << ", \"batch_size\": " << cfg.batch_size
      << ", \"commits_acked\": " << r.commits_acked
      << ", \"commits_per_sec\": " << f2(r.commits_per_sec)
      << ", \"status_samples\": " << r.status_samples
      << ", \"max_retained\": " << r.max_retained
      << ", \"final_retained\": " << r.final_retained
      << ", \"max_bytes\": " << r.max_bytes
      << ", \"final_pruned\": " << r.final_pruned
      << ", \"final_watermark\": " << r.final_watermark
      << ", \"memory_plateaued\": " << (r.memory_plateaued ? "true" : "false")
      << ", \"failovers\": " << r.failovers
      << ", \"final_epoch\": " << r.final_epoch << ", \"final_role\": \""
      << to_string(static_cast<Role>(r.final_role))
      << "\", \"lag_frames\": " << r.final_lag_frames
      << ", \"lag_bytes\": " << r.final_lag_bytes
      << ", \"retry_later\": " << r.retry_later
      << ", \"protocol_errors\": " << r.protocol_errors
      << ", \"verdict_mismatches\": " << r.verdict_mismatches
      << ", \"count_mismatches\": " << r.count_mismatches
      << ", \"seconds\": " << f2(r.seconds) << "}";
  return out.str();
}

void print_report(const LoadgenConfig& cfg, const EndlessReport& r) {
  std::printf(
      "sia_loadgen: endless stream (%s), %.1f s budget, batch %zu, "
      "STATUS every %zu batches\n",
      to_string(cfg.model).c_str(), cfg.duration_seconds, cfg.batch_size,
      cfg.status_every);
  std::printf("  commits  : %llu sent, %llu acked, %llu batches\n",
              static_cast<unsigned long long>(r.commits_sent),
              static_cast<unsigned long long>(r.commits_acked),
              static_cast<unsigned long long>(r.batches));
  std::printf("  memory   : retained max %llu final %llu, bytes max %llu, "
              "pruned %llu, watermark %llu -> %s\n",
              static_cast<unsigned long long>(r.max_retained),
              static_cast<unsigned long long>(r.final_retained),
              static_cast<unsigned long long>(r.max_bytes),
              static_cast<unsigned long long>(r.final_pruned),
              static_cast<unsigned long long>(r.final_watermark),
              r.status_samples < 8     ? "too few samples"
              : r.memory_plateaued ? "plateaued"
                                   : "GROWING");
  std::printf("  rate     : %.0f commits/sec over %.3f s%s\n",
              r.commits_per_sec, r.seconds,
              r.drained_mid_run ? " (server drained mid-run)" : "");
  std::printf(
      "  replica  : role %s, epoch %llu, lag %llu frames / %llu bytes, "
      "%llu failover(s)\n",
      to_string(static_cast<Role>(r.final_role)).c_str(),
      static_cast<unsigned long long>(r.final_epoch),
      static_cast<unsigned long long>(r.final_lag_frames),
      static_cast<unsigned long long>(r.final_lag_bytes),
      static_cast<unsigned long long>(r.failovers));
  std::printf(
      "  audit    : %llu protocol errors, %llu verdict mismatches, "
      "%llu count mismatches over %llu samples -> %s\n",
      static_cast<unsigned long long>(r.protocol_errors),
      static_cast<unsigned long long>(r.verdict_mismatches),
      static_cast<unsigned long long>(r.count_mismatches),
      static_cast<unsigned long long>(r.status_samples),
      clean(r) ? "clean" : "NOT CLEAN");
}

void print_report(const LoadgenConfig& cfg, const LoadReport& r) {
  std::printf(
      "sia_loadgen: %zu connections x %zu streams (%s), %zu txns/stream, "
      "batch %zu\n",
      cfg.connections, cfg.streams_per_connection,
      to_string(cfg.model).c_str(), cfg.txns_per_stream, cfg.batch_size);
  std::printf("  commits  : %llu sent, %llu acked, %llu batches\n",
              static_cast<unsigned long long>(r.commits_sent),
              static_cast<unsigned long long>(r.commits_acked),
              static_cast<unsigned long long>(r.batches));
  std::printf("  backoff  : %llu RETRY_LATER absorbed, %llu rejected%s\n",
              static_cast<unsigned long long>(r.retry_later),
              static_cast<unsigned long long>(r.rejected),
              r.drained_mid_run ? " (server drained mid-run)" : "");
  std::printf("  latency  : p50 %.3f ms, p99 %.3f ms\n", r.p50_ms, r.p99_ms);
  std::printf("  rate     : %.0f commits/sec over %.3f s\n",
              r.commits_per_sec, r.seconds);
  std::printf(
      "  audit    : %llu protocol errors, %llu verdict mismatches, "
      "%llu ack-count mismatches -> %s\n",
      static_cast<unsigned long long>(r.protocol_errors),
      static_cast<unsigned long long>(r.verdict_mismatches),
      static_cast<unsigned long long>(r.ack_count_mismatches),
      clean(r) ? "clean" : "NOT CLEAN");
}

}  // namespace sia::service
