#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "graph/monitor.hpp"
#include "service/wire.hpp"

/// \file loadgen.hpp
/// The sia_loadgen core: drives a live siad with N connections × M
/// streams of engine-generated commit traffic, measures commit-request
/// latency (p50/p99) and throughput, and audits the service against an
/// offline replay — every stream's commits are also fed through a local
/// ConsistencyMonitor with the same batching, and the server's final
/// verdict, violating id and commit count must match. Built as a library
/// so the CLI driver and bench_service_throughput share one harness.
///
/// The endless mode (run_endless) is the flat-memory audit: one
/// duration-bounded workload::StreamSource stream, each batch mirrored
/// into a local StreamingMonitor, with periodic STATUS samples checking
/// that the server's verdict and commit count track the local replay and
/// that its retained-transaction gauge plateaus instead of growing with
/// the stream.

namespace sia::service {

struct LoadgenConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{7401};
  std::size_t connections{4};
  std::size_t streams_per_connection{2};
  /// Committed transactions fed per stream (workload-generated).
  std::size_t txns_per_stream{64};
  /// Commits per COMMIT request.
  std::size_t batch_size{8};
  /// Which engine generates the bounded-mode traffic, and which model the
  /// server (and the offline replay) audits it against — see check_model.
  ServiceModel model{ServiceModel::kSI};
  std::uint32_t num_keys{16};
  std::size_t ops_per_txn{4};
  double write_ratio{0.5};
  std::uint64_t seed{42};
  fault::RetryPolicy retry{};
  /// Endless mode: wall-clock budget in seconds (0 = classic bounded
  /// mode; run_load ignores this, the CLI dispatches on it).
  double duration_seconds{0.0};
  /// Endless mode: batches between STATUS samples.
  std::size_t status_every{64};
  /// Endless mode: warm standby to fail over to (port 0 = none). With a
  /// standby configured the driver uses a FailoverClient — exactly-once
  /// sequenced commits, fenced reconnect — so killing the primary
  /// mid-run costs availability, never a verdict.
  std::string failover_host{"127.0.0.1"};
  std::uint16_t failover_port{0};
};

struct LoadReport {
  std::size_t streams{0};
  std::uint64_t commits_sent{0};
  std::uint64_t commits_acked{0};  ///< acked by COMMITTED (minus quarantined)
  std::uint64_t batches{0};
  std::uint64_t retry_later{0};  ///< RETRY_LATER replies absorbed by backoff
  std::uint64_t rejected{0};     ///< batches given up on (budget / drain)
  std::uint64_t protocol_errors{0};
  std::uint64_t verdict_mismatches{0};  ///< server vs offline replay
  std::uint64_t ack_count_mismatches{0};  ///< server count != client count
  bool drained_mid_run{false};  ///< server drained under us (expected on
                                ///< SIGTERM tests, an event otherwise)
  double seconds{0.0};
  double commits_per_sec{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
};

/// Runs the workload against a live server. Never throws for server-side
/// overload or drain — those are counted; throws ModelError only when the
/// server is unreachable at startup.
[[nodiscard]] LoadReport run_load(const LoadgenConfig& cfg);

/// Result of the duration-bounded endless-stream audit.
struct EndlessReport {
  std::uint64_t commits_sent{0};
  std::uint64_t commits_acked{0};
  std::uint64_t batches{0};
  std::uint64_t retry_later{0};   ///< RETRY_LATER replies absorbed
  std::uint64_t protocol_errors{0};
  /// STATUS verdict != local StreamingMonitor verdict.
  std::uint64_t verdict_mismatches{0};
  /// STATUS commit count != commits the client saw acked.
  std::uint64_t count_mismatches{0};
  std::uint64_t status_samples{0};
  // Server-side flat-memory gauges over the run.
  std::uint64_t max_retained{0};
  std::uint64_t final_retained{0};
  std::uint64_t max_bytes{0};
  std::uint64_t final_bytes{0};
  std::uint64_t final_pruned{0};
  std::uint64_t final_watermark{0};
  /// Retained gauge stopped growing: the max over the last quarter of
  /// samples does not exceed the max seen before it (needs >= 8 samples).
  bool memory_plateaued{false};
  bool drained_mid_run{false};
  // Replication / failover over the run (zeros without a standby).
  std::uint64_t failovers{0};      ///< primary switches the client survived
  std::uint64_t final_epoch{0};    ///< fencing epoch at the end
  std::uint8_t final_role{0};      ///< Role of the server answering last
  std::uint64_t final_lag_frames{0};  ///< replication lag, frames behind
  std::uint64_t final_lag_bytes{0};   ///< replication lag, bytes behind
  double seconds{0.0};
  double commits_per_sec{0.0};
};

/// Drives one endless StreamSource stream for cfg.duration_seconds,
/// auditing verdicts and server-side memory as described above. Throws
/// ModelError only when the server is unreachable at startup.
[[nodiscard]] EndlessReport run_endless(const LoadgenConfig& cfg);

/// Clean = no protocol errors, no verdict/count mismatches, and the
/// retained gauge plateaued (when the run was long enough to tell).
[[nodiscard]] bool clean(const EndlessReport& r);

[[nodiscard]] std::string to_json(const LoadgenConfig& cfg,
                                  const EndlessReport& r);

void print_report(const LoadgenConfig& cfg, const EndlessReport& r);

/// True when the run is clean: no protocol errors, no verdict or ack-count
/// mismatches. (RETRY_LATER and drain are normal operation, not failures.)
[[nodiscard]] bool clean(const LoadReport& r);

[[nodiscard]] std::string to_json(const LoadgenConfig& cfg,
                                  const LoadReport& r);

void print_report(const LoadgenConfig& cfg, const LoadReport& r);

}  // namespace sia::service
