#include "service/replication.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sia::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t)
          .count());
}

}  // namespace

std::string wal_path(const std::string& dir, std::size_t shard) {
  return dir + "/wal-" + std::to_string(shard) + ".log";
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw ModelError("replication: cannot create WAL dir '" + dir +
                   "': " + std::strerror(errno));
}

std::vector<std::uint8_t> encode_wal_frame(std::uint64_t seq,
                                           const std::uint8_t* payload,
                                           std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + size);
  for (int i = 0; i < 8; ++i) out.push_back((seq >> (8 * i)) & 0xFFu);
  out.insert(out.end(), payload, payload + size);
  return out;
}

bool decode_wal_frame(const std::vector<std::uint8_t>& frame,
                      std::uint64_t& seq, Message& inner) {
  if (frame.size() < 8) return false;
  seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<std::uint64_t>(frame[i]) << (8 * i);
  }
  return decode_payload(frame.data() + 8, frame.size() - 8, inner);
}

WalReplay replay_wal(const std::string& dir, std::size_t shards,
                     const StreamingConfig& cfg) {
  WalReplay out;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::string path = wal_path(dir, shard);
    if (::access(path.c_str(), F_OK) != 0) continue;
    mvcc::RecorderLog::ReplayReport report;
    const auto frames = mvcc::RecorderLog::replay_raw(path, &report);
    if (report.torn_tail) out.torn_tail = true;
    std::uint64_t last_seq = 0;
    for (const auto& frame : frames) {
      std::uint64_t seq = 0;
      Message inner;
      if (!decode_wal_frame(frame, seq, inner) || seq != last_seq + 1) {
        out.gap = out.gap || seq != last_seq + 1;
        break;  // corrupt or holed shard log: trust only the prefix
      }
      last_seq = seq;
      ++out.frames;
      switch (inner.type) {
        case MsgType::kOpenStream: {
          StreamingConfig scfg = cfg;
          if (inner.capacity != 0) scfg.max_transactions = inner.capacity;
          out.streams.try_emplace(
              inner.stream,
              check_model(static_cast<ServiceModel>(inner.model)), scfg);
          break;
        }
        case MsgType::kCommit: {
          auto it = out.streams.find(inner.stream);
          if (it != out.streams.end()) {
            (void)it->second.commit_all_guarded(inner.commits);
          }
          break;
        }
        case MsgType::kClose:
          out.streams.erase(inner.stream);
          break;
        default:
          break;  // unknown inner op: ignore, like the live follower
      }
    }
  }
  return out;
}

ReplicationSender::ReplicationSender(ReplicationConfig cfg,
                                     std::uint64_t epoch, std::size_t shards)
    : cfg_(std::move(cfg)), epoch_(epoch), shards_(shards),
      pending_(shards) {}

ReplicationSender::~ReplicationSender() { stop(false, 0); }

void ReplicationSender::start() {
  if (started_ || !cfg_.shipping_enabled()) return;
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw ModelError("replication: pipe2: " +
                     std::string(std::strerror(errno)));
  }
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void ReplicationSender::stop(bool flush_first, std::uint64_t flush_ms) {
  if (flush_first && started_) (void)flush(flush_ms);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // Already stopped; nothing in flight by now.
      return;
    }
    stop_ = true;
  }
  if (started_) {
    const std::uint8_t byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
    thread_.join();
  }
  fail_link(false, 0);  // completes any abandoned hooks
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

bool ReplicationSender::ship(std::size_t shard, std::uint64_t seq,
                             std::vector<std::uint8_t> payload,
                             AckHook hook) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stop_ || degraded_ || fenced_) return false;
    queued_bytes_ += payload.size();
    queue_.push_back(Item{shard, seq, std::move(payload), std::move(hook)});
  }
  const std::uint8_t byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
  return true;
}

bool ReplicationSender::flush(std::uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  flush_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return degraded_ || fenced_ ||
           (queue_.empty() && pending_frames_ == 0);
  });
  return !degraded_ && !fenced_ && queue_.empty() && pending_frames_ == 0;
}

bool ReplicationSender::degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

bool ReplicationSender::fenced() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fenced_;
}

std::uint64_t ReplicationSender::fence_epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fence_epoch_;
}

std::uint64_t ReplicationSender::lag_frames() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + pending_frames_;
}

std::uint64_t ReplicationSender::lag_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_bytes_ + pending_bytes_;
}

std::uint64_t ReplicationSender::shipped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shipped_;
}

std::uint64_t ReplicationSender::acked() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return acked_;
}

void ReplicationSender::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ReplicationSender::fail_link(bool fence, std::uint64_t winner_epoch) {
  std::vector<AckHook> hooks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    degraded_ = true;
    if (fence) {
      fenced_ = true;
      fence_epoch_ = winner_epoch;
    }
    for (Item& item : queue_) {
      if (item.hook) hooks.push_back(std::move(item.hook));
    }
    queue_.clear();
    for (auto& shard_pending : pending_) {
      for (Pending& p : shard_pending) {
        if (p.hook) hooks.push_back(std::move(p.hook));
      }
      shard_pending.clear();
    }
    pending_frames_ = 0;
    queued_bytes_ = 0;
    pending_bytes_ = 0;
  }
  close_fd();
  // Complete abandoned frames locally: the primary acks the client itself
  // (degraded mode) — nothing is ever left hanging.
  for (AckHook& hook : hooks) hook();
  flush_cv_.notify_all();
}

bool ReplicationSender::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // closed, reset, or SO_SNDTIMEO expired
  }
  return true;
}

bool ReplicationSender::connect_and_hello() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.peer_port);
  if (::inet_pton(AF_INET, cfg_.peer_host.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  for (std::size_t attempt = 0; attempt < cfg_.connect_attempts; ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return false;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    close_fd();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (fd_ < 0) return false;
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = 5;  // a stuck peer must not wedge the sender forever
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  Message hello;
  hello.type = MsgType::kReplHello;
  hello.epoch = epoch_;
  hello.capacity = shards_;
  if (!send_all(encode_frame(hello))) return false;

  // Wait for REPL_WELCOME (or FENCED) with a bounded patience.
  FrameDecoder decoder;
  std::array<std::uint8_t, 4096> buf;
  const auto deadline = Clock::now() + std::chrono::milliseconds(2000);
  for (;;) {
    Message reply;
    const FrameDecoder::Status st = decoder.next(reply);
    if (st == FrameDecoder::Status::kFrame) {
      if (reply.type == MsgType::kReplWelcome) return true;
      if (reply.type == MsgType::kFenced) {
        const std::lock_guard<std::mutex> lock(mutex_);
        fenced_ = true;
        fence_epoch_ = reply.epoch;
      }
      return false;
    }
    if (st == FrameDecoder::Status::kMalformed) return false;
    if (Clock::now() >= deadline) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 100) < 0 && errno != EINTR) return false;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), MSG_DONTWAIT);
    if (n > 0) {
      decoder.feed(buf.data(), static_cast<std::size_t>(n));
    } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                          errno != EINTR)) {
      return false;
    }
  }
}

void ReplicationSender::run() {
  if (!connect_and_hello()) {
    fail_link(fenced(), fence_epoch());
    return;
  }
  FrameDecoder decoder;
  std::array<std::uint8_t, 65536> buf;
  std::vector<Item> batch;
  auto last_sent = Clock::now();

  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;  // leftovers completed by stop()'s fail_link
    }

    // 1. Pull a batch within the in-flight window and ship it.
    batch.clear();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      while (!queue_.empty() &&
             pending_frames_ + batch.size() < cfg_.window) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) {
      // Coalesce the whole batch into one write: at steady state the
      // per-frame syscall, not the bytes, is the shipping cost.
      std::vector<std::uint8_t> wire;
      std::vector<std::size_t> payload_bytes(batch.size());
      for (std::size_t bi = 0; bi < batch.size(); ++bi) {
        Item& item = batch[bi];
        Message append;
        append.type = MsgType::kReplAppend;
        append.stream = item.shard;
        append.seq = item.seq;
        append.epoch = epoch_;
        append.raw = std::move(item.payload);
        payload_bytes[bi] = append.raw.size();
        const std::vector<std::uint8_t> frame = encode_frame(append);
        wire.insert(wire.end(), frame.begin(), frame.end());
      }
      if (!send_all(wire)) {
        // Park the batch as pending so fail_link completes every hook
        // exactly once (a partial write is moot: the link is dead).
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          for (Item& item : batch) {
            pending_[item.shard].push_back(
                Pending{item.seq, 0, std::move(item.hook)});
            ++pending_frames_;
          }
        }
        fail_link(false, 0);
        return;
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t bi = 0; bi < batch.size(); ++bi) {
          const std::size_t bytes = payload_bytes[bi];
          queued_bytes_ -= bytes < queued_bytes_ ? bytes : queued_bytes_;
          pending_[batch[bi].shard].push_back(
              Pending{batch[bi].seq, bytes, std::move(batch[bi].hook)});
          ++pending_frames_;
          pending_bytes_ += bytes;
          ++shipped_;
        }
      }
      last_sent = Clock::now();
    }

    // 2. Heartbeat when idle so the follower can tell silence from death.
    if (ms_since(last_sent) >= cfg_.heartbeat_interval_ms) {
      Message hb;
      hb.type = MsgType::kReplHello;
      hb.epoch = epoch_;
      hb.capacity = shards_;
      if (!send_all(encode_frame(hb))) {
        fail_link(false, 0);
        return;
      }
      last_sent = Clock::now();
    }

    // 3. Wait for acks or new work (self-pipe), bounded by the heartbeat.
    pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const std::uint64_t since = ms_since(last_sent);
    const int timeout = static_cast<int>(
        since >= cfg_.heartbeat_interval_ms
            ? 0
            : cfg_.heartbeat_interval_ms - since);
    if (::poll(pfds, 2, timeout) < 0 && errno != EINTR) {
      fail_link(false, 0);
      return;
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      std::array<std::uint8_t, 256> drain;
      while (::read(wake_pipe_[0], drain.data(), drain.size()) > 0) {
      }
    }

    // 4. Drain acks.
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      for (;;) {
        const ssize_t n = ::recv(fd_, buf.data(), buf.size(), MSG_DONTWAIT);
        if (n > 0) {
          decoder.feed(buf.data(), static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        fail_link(false, 0);  // follower closed the link
        return;
      }
      for (;;) {
        Message reply;
        const FrameDecoder::Status st = decoder.next(reply);
        if (st == FrameDecoder::Status::kNeedMore) break;
        if (st == FrameDecoder::Status::kMalformed) {
          fail_link(false, 0);
          return;
        }
        if (reply.type == MsgType::kReplWelcome) continue;  // heartbeat ack
        if (reply.type == MsgType::kFenced) {
          fail_link(true, reply.epoch);
          return;
        }
        if (reply.type != MsgType::kReplAck || reply.stream >= shards_) {
          fail_link(false, 0);  // protocol violation
          return;
        }
        AckHook hook;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          auto& shard_pending = pending_[reply.stream];
          if (shard_pending.empty() ||
              shard_pending.front().seq != reply.seq) {
            // Ack for a frame we do not have in flight: corrupt link.
            hook = nullptr;
          } else {
            Pending& front = shard_pending.front();
            hook = std::move(front.hook);
            pending_bytes_ -= front.bytes < pending_bytes_ ? front.bytes
                                                           : pending_bytes_;
            shard_pending.pop_front();
            --pending_frames_;
            ++acked_;
          }
        }
        if (!hook) {
          fail_link(false, 0);
          return;
        }
        hook();
        flush_cv_.notify_all();
      }
    }
  }
}

}  // namespace sia::service
