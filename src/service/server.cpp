#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/parallel.hpp"
#include "tools/analysis_json.hpp"

namespace sia::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ModelError("siad: " + what + ": " + std::strerror(errno));
}

/// Monotonic milliseconds for heartbeat bookkeeping (never 0, so 0 can
/// mean "never heard").
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) |
         1u;
}

}  // namespace

/// One accepted socket. The IO thread owns the read side (decoder);
/// workers and the IO thread both write replies, serialised by
/// write_mutex. Closed fds are owned by the destructor so that a worker
/// holding a Job's shared_ptr can still (fail to) reply after the IO
/// thread dropped the connection.
struct Server::Connection {
  int fd{-1};
  FrameDecoder decoder;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Blocking, serialised frame write; the socket is non-blocking (epoll
  /// read side), so EAGAIN waits for writability. Returns false once the
  /// peer is gone — replies to dead clients are dropped, not errors.
  bool send_message(const Message& m) {
    const std::vector<std::uint8_t> frame = encode_frame(m);
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!open.load(std::memory_order_acquire)) return false;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        struct pollfd p{fd, POLLOUT, 0};
        (void)::poll(&p, 1, 1000);
        continue;
      }
      open.store(false, std::memory_order_release);
      return false;
    }
    return true;
  }
};

/// One stream: a streaming monitor plus the connection final verdicts go
/// to. GC runs inside commit_all_guarded; the shard thread owns the
/// monitor outright so the watermark advances without any locking.
struct Server::StreamState {
  StreamingMonitor monitor;
  std::weak_ptr<Connection> owner;
  /// Exactly-once bookkeeping: the last client-assigned COMMIT seq this
  /// stream applied (0 = none yet) and the reply it earned. Both are
  /// derived from the replicated frames themselves, so a promoted
  /// follower answers a post-failover resend from the same cache.
  std::uint64_t last_seq{0};
  Message last_commit_reply;

  StreamState(Model m, StreamingConfig cfg, std::weak_ptr<Connection> conn)
      : monitor(m, cfg), owner(std::move(conn)) {}
};

struct Server::Job {
  std::shared_ptr<Connection> conn;
  Message msg;
  /// kDrain barrier: the last shard to see it sends DRAINED.
  std::shared_ptr<std::atomic<std::size_t>> barrier;
  /// Shutdown sentinel; always the queue's last entry.
  bool stop{false};
};

struct Server::Shard {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Job> queue;
  /// Once true no further job is admitted (the stop sentinel is queued).
  bool stopping{false};
  /// Streams owned by this shard; only its worker thread touches them.
  std::unordered_map<std::uint64_t, StreamState> streams;
  std::thread thread;
  /// Position in shards_ (the REPL_APPEND address and WAL file suffix).
  std::size_t index{0};
  /// Replication WAL (nullptr when disabled); written by the shard
  /// thread only, inside the same critical path that mutates the monitor.
  std::unique_ptr<mvcc::RecorderLog> wal;
  /// Primary: last replication seq assigned. Follower: last seq applied.
  /// Gapless from 1; shard-thread-only.
  std::uint64_t repl_seq{0};
};

Server::Server(ServerConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = parallel_thread_count();
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
}

Server::~Server() {
  try {
    drain();
  } catch (...) {
    // Destructor: nothing sensible left to do with a teardown failure.
  }
}

void Server::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind to port " + std::to_string(cfg_.port));
  }
  if (::listen(listen_fd_, 128) < 0) throw_errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  role_.store(
      static_cast<std::uint8_t>(cfg_.follower ? Role::kFollower
                                              : Role::kPrimary),
      std::memory_order_release);
  epoch_.store(cfg_.follower ? 0 : 1, std::memory_order_release);

  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }
  if (cfg_.repl.wal_enabled()) {
    ensure_dir(cfg_.repl.wal_dir);
    for (auto& shard : shards_) {
      shard->wal = std::make_unique<mvcc::RecorderLog>(
          wal_path(cfg_.repl.wal_dir, shard->index), /*truncate=*/true,
          cfg_.repl.fsync, cfg_.repl.fsync_interval);
    }
  }
  if (!cfg_.follower && cfg_.repl.shipping_enabled()) {
    sender_ = std::make_unique<ReplicationSender>(cfg_.repl, /*epoch=*/1,
                                                  cfg_.shards);
    sender_->start();
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
}

void Server::drain() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting: pull the listen socket out of the loop. The IO
  //    thread keeps running — in-flight requests still get replies, and
  //    anything arriving from here on is answered RETRY_LATER.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);

  // 2. Flush every shard: admit nothing more, queue the stop sentinel
  //    behind the backlog. FIFO order means every admitted job is
  //    processed — and acknowledged — before the shard finalises.
  for (auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      shard->stopping = true;
      shard->queue.push_back(Job{nullptr, Message{}, nullptr, /*stop=*/true});
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  // 3. Let the follower catch up: every shipped frame is acked (and its
  //    deferred client reply released) before the sockets go away. Then
  //    make the WAL tail durable regardless of fsync policy.
  if (sender_ != nullptr) sender_->stop(/*flush_first=*/true);
  for (auto& shard : shards_) {
    if (shard->wal != nullptr) shard->wal->sync();
  }

  // 4. Stop the IO thread; it closes the connections on the way out.
  io_stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (io_thread_.joinable()) io_thread_.join();

  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  stopped_ = true;
}

void Server::hard_stop() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  draining_.store(true, std::memory_order_release);

  // Kill the IO thread first: no further frame leaves the process, like a
  // real SIGKILL. Connections are marked closed on the way out, so any
  // worker still holding one writes into the void.
  io_stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (io_thread_.joinable()) io_thread_.join();

  // Shards: jump the queue with a front-of-line stop sentinel — no
  // backlog flush, no finalisation acks reach anyone.
  for (auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      shard->stopping = true;
      shard->queue.push_front(Job{nullptr, Message{}, nullptr, /*stop=*/true});
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  // Abandon in-flight replication (hooks complete against dead sockets).
  if (sender_ != nullptr) sender_->stop(/*flush_first=*/false);

  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  stopped_ = true;
}

void Server::promote() {
  Role expected = Role::kFollower;
  auto expected_raw = static_cast<std::uint8_t>(expected);
  if (!role_.compare_exchange_strong(
          expected_raw, static_cast<std::uint8_t>(Role::kPrimary),
          std::memory_order_acq_rel)) {
    return;  // already primary (idempotent) or fenced (terminal)
  }
  // Never heard a primary (explicit operator PROMOTE at boot): assume the
  // lowest possible deposed epoch, 1, so the new epoch still dominates.
  const std::uint64_t deposed =
      std::max<std::uint64_t>(primary_epoch_.load(std::memory_order_acquire),
                              1);
  epoch_.store(deposed + 1, std::memory_order_release);
  n_promotions_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Server::epoch() const {
  return role() == Role::kFollower
             ? primary_epoch_.load(std::memory_order_acquire)
             : epoch_.load(std::memory_order_acquire);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.frames = n_frames_.load(std::memory_order_relaxed);
  s.commits = n_commits_.load(std::memory_order_relaxed);
  s.retry_later = n_retry_later_.load(std::memory_order_relaxed);
  s.malformed = n_malformed_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.analyzes = n_analyzes_.load(std::memory_order_relaxed);
  if (sender_ != nullptr) {
    s.repl_shipped = sender_->shipped();
    s.repl_acked = sender_->acked();
  }
  s.repl_applied = n_repl_applied_.load(std::memory_order_relaxed);
  s.fenced = n_fenced_.load(std::memory_order_relaxed);
  s.promotions = n_promotions_.load(std::memory_order_relaxed);
  return s;
}

void Server::io_loop() {
  std::array<epoll_event, 64> events;
  std::array<std::uint8_t, 16384> buf;
  while (!io_stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Replication housekeeping rides the epoll tick (<= 200 ms latency):
    // a primary that was fenced stops accepting writes; a follower that
    // lost the heartbeat promotes itself.
    if (sender_ != nullptr && role() == Role::kPrimary && sender_->fenced()) {
      role_.store(static_cast<std::uint8_t>(Role::kFencedRole),
                  std::memory_order_release);
    }
    if (role() == Role::kFollower && cfg_.repl.auto_promote_ms > 0 &&
        !repl_quarantined()) {
      const std::uint64_t heard =
          last_repl_heard_ms_.load(std::memory_order_acquire);
      if (heard != 0 && now_ms() - heard > cfg_.repl.auto_promote_ms) {
        promote();
      }
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drainv = 0;
        (void)!::read(wake_fd_, &drainv, sizeof(drainv));
        continue;
      }
      if (fd == listen_fd_) {
        for (;;) {
          const int cfd =
              ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
          if (cfd < 0) break;
          const int one = 1;
          (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) == 0) {
            connections_.emplace(cfd, std::make_shared<Connection>(cfd));
            n_connections_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ::close(cfd);
          }
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      bool closed = false;
      for (;;) {
        const ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
        if (r > 0) {
          conn->decoder.feed(buf.data(), static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r < 0 && errno == EINTR) continue;
        closed = true;  // orderly EOF or a hard error
        break;
      }
      // Drain the decoder even when the peer already closed: pipelined
      // requests that made it in are still served.
      for (;;) {
        Message msg;
        std::string error;
        const FrameDecoder::Status st = conn->decoder.next(msg, &error);
        if (st == FrameDecoder::Status::kNeedMore) break;
        if (st == FrameDecoder::Status::kMalformed) {
          n_malformed_.fetch_add(1, std::memory_order_relaxed);
          Message reply;
          reply.type = MsgType::kMalformed;
          reply.text = error;
          (void)conn->send_message(reply);
          closed = true;  // cannot resync a byte stream after a bad frame
          break;
        }
        n_frames_.fetch_add(1, std::memory_order_relaxed);
        dispatch(conn, std::move(msg));
      }
      if (closed) close_connection(fd);
    }
  }
  // Teardown: mark peers closed and drop them.
  for (auto& [fd, conn] : connections_) {
    conn->open.store(false, std::memory_order_release);
  }
  connections_.clear();
}

void Server::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->open.store(false, std::memory_order_release);
  connections_.erase(it);  // fd closed by ~Connection when workers let go
}

void Server::reply_retry_later(const std::shared_ptr<Connection>& conn,
                               std::uint64_t stream) {
  n_retry_later_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kRetryLater;
  reply.stream = stream;
  (void)conn->send_message(reply);
}

bool Server::try_enqueue(Shard& shard, Job&& job, bool force) {
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stopping ||
        (!force && shard.queue.size() >= cfg_.queue_capacity)) {
      return false;
    }
    shard.queue.push_back(std::move(job));
  }
  shard.cv.notify_one();
  return true;
}

bool Server::require_primary(const std::shared_ptr<Connection>& conn,
                             std::uint64_t stream) {
  const Role r = role();
  if (r == Role::kPrimary) return true;
  n_errors_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kError;
  reply.stream = stream;
  reply.text = r == Role::kFollower
                   ? "not primary: follower standby"
                   : "not primary: fenced at epoch " +
                         std::to_string(epoch_.load(std::memory_order_acquire));
  (void)conn->send_message(reply);
  return false;
}

void Server::dispatch(const std::shared_ptr<Connection>& conn,
                      Message&& msg) {
  if (!is_request(msg.type)) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    Message reply;
    reply.type = MsgType::kError;
    reply.text = "not a request: " + to_string(msg.type);
    (void)conn->send_message(reply);
    return;
  }
  const bool draining = draining_.load(std::memory_order_acquire);
  switch (msg.type) {
    case MsgType::kOpenStream: {
      if (draining) {
        reply_retry_later(conn, 0);
        return;
      }
      if (!require_primary(conn, 0)) return;
      const std::uint64_t id =
          next_stream_.fetch_add(1, std::memory_order_relaxed);
      msg.stream = id;
      Shard& shard = *shards_[id % shards_.size()];
      if (!try_enqueue(shard, Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, 0);
      }
      return;
    }
    case MsgType::kCommit:
    case MsgType::kVerdict:
    case MsgType::kStatus:
    case MsgType::kClose: {
      if (msg.type == MsgType::kStatus && msg.stream == 0) {
        // Server-global status: role / epoch / lag, answered from the IO
        // thread — it must work mid-drain and on a quarantined follower.
        (void)conn->send_message(global_status_reply());
        return;
      }
      if (draining) {
        reply_retry_later(conn, msg.stream);
        return;
      }
      if ((msg.type == MsgType::kCommit || msg.type == MsgType::kClose) &&
          !require_primary(conn, msg.stream)) {
        return;
      }
      const std::uint64_t stream = msg.stream;
      Shard& shard = *shards_[stream % shards_.size()];
      if (!try_enqueue(shard, Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, stream);
      }
      return;
    }
    case MsgType::kReplHello: {
      Message reply;
      if (role() != Role::kFollower) {
        n_fenced_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kFenced;
        reply.epoch = epoch_.load(std::memory_order_acquire);
      } else if (msg.epoch <
                 primary_epoch_.load(std::memory_order_acquire)) {
        n_fenced_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kFenced;
        reply.epoch = primary_epoch_.load(std::memory_order_acquire);
      } else if (msg.capacity != shards_.size()) {
        // Replay determinism needs identical sharding on both sides.
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.text = "shard count mismatch: primary " +
                     std::to_string(msg.capacity) + ", follower " +
                     std::to_string(shards_.size());
      } else {
        primary_epoch_.store(msg.epoch, std::memory_order_release);
        last_repl_heard_ms_.store(now_ms(), std::memory_order_release);
        reply.type = MsgType::kReplWelcome;
        reply.epoch = msg.epoch;
      }
      (void)conn->send_message(reply);
      return;
    }
    case MsgType::kReplAppend: {
      if (role() != Role::kFollower) {
        n_fenced_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = MsgType::kFenced;
        reply.epoch = epoch_.load(std::memory_order_acquire);
        (void)conn->send_message(reply);
        return;
      }
      if (msg.epoch < primary_epoch_.load(std::memory_order_acquire)) {
        n_fenced_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = MsgType::kFenced;
        reply.epoch = primary_epoch_.load(std::memory_order_acquire);
        (void)conn->send_message(reply);
        return;
      }
      if (msg.stream >= shards_.size()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = MsgType::kError;
        reply.text = "bad replication shard " + std::to_string(msg.stream);
        (void)conn->send_message(reply);
        return;
      }
      primary_epoch_.store(msg.epoch, std::memory_order_release);
      last_repl_heard_ms_.store(now_ms(), std::memory_order_release);
      if (draining) {
        reply_retry_later(conn, msg.stream);
        return;
      }
      // Force-enqueued: admission is bounded by the sender's in-flight
      // window, not by queue_capacity, and replication must never starve
      // behind client reads on the same shard.
      Shard& shard = *shards_[msg.stream];
      if (!try_enqueue(shard, Job{conn, std::move(msg), nullptr},
                       /*force=*/true)) {
        reply_retry_later(conn, msg.stream);
      }
      return;
    }
    case MsgType::kPromote: {
      Message reply;
      if (role() == Role::kFencedRole) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.text = "fenced: a newer primary exists";
      } else {
        promote();  // idempotent on a primary
        reply.type = MsgType::kPromoted;
        reply.epoch = epoch_.load(std::memory_order_acquire);
        reply.role = role_.load(std::memory_order_acquire);
      }
      (void)conn->send_message(reply);
      return;
    }
    case MsgType::kAnalyze: {
      if (draining) {
        reply_retry_later(conn, 0);
        return;
      }
      const std::size_t s =
          analyze_rr_.fetch_add(1, std::memory_order_relaxed) %
          shards_.size();
      if (!try_enqueue(*shards_[s], Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, 0);
      }
      return;
    }
    case MsgType::kDrain: {
      if (draining) {
        // Queues are being flushed anyway; answer directly.
        Message reply;
        reply.type = MsgType::kDrained;
        (void)conn->send_message(reply);
        return;
      }
      // A flush barrier through every shard; force-enqueued (control
      // traffic must not starve behind the very backlog it flushes).
      auto barrier =
          std::make_shared<std::atomic<std::size_t>>(shards_.size());
      for (auto& shard : shards_) {
        {
          const std::lock_guard<std::mutex> lock(shard->mutex);
          if (shard->stopping) {
            // drain() raced us; its flush supersedes this one.
            if (barrier->fetch_sub(1) == 1) {
              Message reply;
              reply.type = MsgType::kDrained;
              (void)conn->send_message(reply);
            }
            continue;
          }
          shard->queue.push_back(Job{conn, Message{msg}, barrier});
        }
        shard->cv.notify_one();
      }
      return;
    }
    default:
      return;  // unreachable: is_request() filtered
  }
}

Message Server::verdict_reply(MsgType type, std::uint64_t stream,
                              const StreamingMonitor& monitor) {
  Message reply;
  reply.type = type;
  reply.stream = stream;
  reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
  reply.commit_count = monitor.size();
  reply.capacity = monitor.capacity();
  reply.violating = monitor.violating_commit().value_or(0);
  reply.text = monitor.violation_detail();
  return reply;
}

Message Server::status_reply(std::uint64_t stream,
                             const StreamingMonitor& monitor) {
  Message reply;
  reply.type = MsgType::kStatusReply;
  reply.stream = stream;
  reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
  reply.commit_count = monitor.size();
  reply.retained = monitor.retained();
  reply.pruned = monitor.pruned();
  reply.watermark = monitor.watermark();
  reply.approx_bytes = monitor.approx_bytes();
  reply.role = role_.load(std::memory_order_acquire);
  reply.epoch = epoch();
  if (sender_ != nullptr) {
    reply.lag_frames = sender_->lag_frames();
    reply.lag_bytes = sender_->lag_bytes();
  }
  return reply;
}

Message Server::global_status_reply() {
  Message reply;
  reply.type = MsgType::kStatusReply;
  reply.stream = 0;
  reply.commit_count = n_commits_.load(std::memory_order_relaxed);
  reply.role = role_.load(std::memory_order_acquire);
  reply.epoch = epoch();
  if (sender_ != nullptr) {
    reply.lag_frames = sender_->lag_frames();
    reply.lag_bytes = sender_->lag_bytes();
  }
  return reply;
}

void Server::shard_loop(Shard& shard) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&shard] { return !shard.queue.empty(); });
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (job.stop) {
      finalize_streams(shard);
      return;
    }
    if (cfg_.worker_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.worker_delay_us));
    }
    process(shard, job);
  }
}

Message Server::apply_open_stream(Shard& shard, const Message& msg,
                                  std::weak_ptr<Connection> owner) {
  // The decoder bounds msg.model to ServiceModel's range; the stream's
  // monitor audits against the model the engine's histories must obey
  // (SSI maps to SER).
  const Model model = check_model(static_cast<ServiceModel>(msg.model));
  StreamingConfig mcfg;
  mcfg.gc_window = cfg_.gc_window;
  mcfg.keep_log = cfg_.keep_log;
  mcfg.max_transactions =
      msg.capacity != 0 ? msg.capacity : cfg_.stream_ceiling;
  shard.streams.emplace(msg.stream,
                        StreamState(model, mcfg, std::move(owner)));
  Message reply;
  reply.type = MsgType::kStreamOpened;
  reply.stream = msg.stream;
  return reply;
}

Message Server::apply_commit(Shard& shard, const Message& msg,
                             bool* applied) {
  Message reply;
  auto it = shard.streams.find(msg.stream);
  if (it == shard.streams.end()) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MsgType::kError;
    reply.stream = msg.stream;
    reply.text = "unknown stream " + std::to_string(msg.stream);
    return reply;
  }
  StreamState& state = it->second;
  if (msg.seq != 0 && msg.seq == state.last_seq) {
    // Exactly-once: a failover resend of the batch we already ingested
    // earns the recorded reply, not a second ingestion.
    return state.last_commit_reply;
  }
  StreamingMonitor& monitor = state.monitor;
  const BatchResult r = monitor.commit_all_guarded(msg.commits);
  n_commits_.fetch_add(msg.commits.size(), std::memory_order_relaxed);
  reply.type = MsgType::kCommitted;
  reply.stream = msg.stream;
  reply.seq = msg.seq;
  reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
  reply.ids = r.ids;
  reply.quarantined.assign(r.quarantined.begin(), r.quarantined.end());
  if (msg.seq != 0) {
    state.last_seq = msg.seq;
    state.last_commit_reply = reply;
  }
  if (applied != nullptr) *applied = true;
  return reply;
}

Message Server::apply_close(Shard& shard, const Message& msg) {
  Message reply;
  auto it = shard.streams.find(msg.stream);
  if (it == shard.streams.end()) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MsgType::kError;
    reply.stream = msg.stream;
    reply.text = "unknown stream " + std::to_string(msg.stream);
    return reply;
  }
  reply = verdict_reply(MsgType::kClosed, msg.stream, it->second.monitor);
  shard.streams.erase(it);
  return reply;
}

void Server::quarantine_follower(const std::string& why) {
  repl_quarantined_.store(true, std::memory_order_release);
  n_errors_.fetch_add(1, std::memory_order_relaxed);
  (void)why;  // surfaced through the ERROR reply; no logging facility
}

void Server::process_repl_append(Shard& shard, const Job& job) {
  const Message& msg = job.msg;
  Message reply;
  // Re-check on the shard thread: a promotion (or a newer primary) may
  // have raced the IO-thread admission of this frame.
  if (role() != Role::kFollower) {
    n_fenced_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MsgType::kFenced;
    reply.epoch = epoch_.load(std::memory_order_acquire);
  } else if (repl_quarantined()) {
    reply.type = MsgType::kError;
    reply.stream = msg.stream;
    reply.text = "follower quarantined";
  } else if (msg.seq != shard.repl_seq + 1) {
    quarantine_follower("gap");
    reply.type = MsgType::kError;
    reply.stream = msg.stream;
    reply.text = "replication gap on shard " + std::to_string(shard.index) +
                 ": expected seq " + std::to_string(shard.repl_seq + 1) +
                 ", got " + std::to_string(msg.seq);
  } else {
    Message inner;
    if (!decode_payload(msg.raw.data(), msg.raw.size(), inner) ||
        (inner.type != MsgType::kOpenStream &&
         inner.type != MsgType::kCommit && inner.type != MsgType::kClose)) {
      quarantine_follower("bad frame");
      reply.type = MsgType::kError;
      reply.stream = msg.stream;
      reply.text = "undecodable replicated frame at shard " +
                   std::to_string(shard.index) + " seq " +
                   std::to_string(msg.seq);
    } else {
      switch (inner.type) {
        case MsgType::kOpenStream: {
          (void)apply_open_stream(shard, inner,
                                  std::weak_ptr<Connection>{});
          // Keep the id allocator ahead of every replicated stream so a
          // promoted follower never re-issues a live id.
          std::uint64_t cur = next_stream_.load(std::memory_order_relaxed);
          while (inner.stream >= cur &&
                 !next_stream_.compare_exchange_weak(
                     cur, inner.stream + 1, std::memory_order_relaxed)) {
          }
          break;
        }
        case MsgType::kCommit:
          (void)apply_commit(shard, inner, nullptr);
          break;
        default:  // kClose, by the filter above
          (void)apply_close(shard, inner);
          break;
      }
      if (shard.wal != nullptr) {
        shard.wal->append_raw(encode_wal_frame(msg.seq, msg.raw));
      }
      shard.repl_seq = msg.seq;
      n_repl_applied_.fetch_add(1, std::memory_order_relaxed);
      reply.type = MsgType::kReplAck;
      reply.stream = shard.index;
      reply.seq = msg.seq;
      reply.epoch = msg.epoch;
    }
  }
  if (job.conn != nullptr) (void)job.conn->send_message(reply);
}

void Server::process(Shard& shard, const Job& job) {
  const Message& msg = job.msg;
  if (msg.type == MsgType::kReplAppend) {
    process_repl_append(shard, job);
    return;
  }
  Message reply;
  bool replicate = false;
  switch (msg.type) {
    case MsgType::kOpenStream: {
      reply = apply_open_stream(shard, msg, job.conn);
      replicate = reply.type == MsgType::kStreamOpened;
      break;
    }
    case MsgType::kCommit: {
      reply = apply_commit(shard, msg, &replicate);
      break;
    }
    case MsgType::kVerdict: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      reply = verdict_reply(MsgType::kVerdictReply, msg.stream,
                            it->second.monitor);
      break;
    }
    case MsgType::kStatus: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      reply = status_reply(msg.stream, it->second.monitor);
      break;
    }
    case MsgType::kClose: {
      reply = apply_close(shard, msg);
      replicate = reply.type == MsgType::kClosed;
      break;
    }
    case MsgType::kAnalyze: {
      n_analyzes_.fetch_add(1, std::memory_order_relaxed);
      if (job.barrier == nullptr) {
        try {
          const HistoryAnalysis a = analyze_history_text(msg.text);
          reply.type = MsgType::kAnalyzed;
          reply.text = to_json(a);
        } catch (const ModelError& e) {
          n_errors_.fetch_add(1, std::memory_order_relaxed);
          reply.type = MsgType::kError;
          reply.text = e.what();
        }
      }
      break;
    }
    case MsgType::kDrain: {
      if (job.barrier != nullptr && job.barrier->fetch_sub(1) == 1) {
        reply.type = MsgType::kDrained;
        break;
      }
      return;  // not the last shard: no reply yet
    }
    default:
      return;
  }
  // Replicate the mutation before releasing the ack: WAL first (frame
  // order is file order), then the follower link. A shipped frame defers
  // the client reply to the follower's REPL_ACK — that is what makes an
  // acknowledged commit survive killing the primary. If shipping is down
  // (degraded/fenced), ship() refuses and the ack is local, as before.
  if (replicate && (shard.wal != nullptr || sender_ != nullptr)) {
    std::vector<std::uint8_t> payload = encode_payload(msg);
    const std::uint64_t seq = ++shard.repl_seq;
    if (shard.wal != nullptr) {
      shard.wal->append_raw(encode_wal_frame(seq, payload));
    }
    if (sender_ != nullptr) {
      auto conn = job.conn;
      if (sender_->ship(shard.index, seq, std::move(payload),
                        [conn, reply]() {
                          if (conn != nullptr) {
                            (void)conn->send_message(reply);
                          }
                        })) {
        return;  // the ack hook owns the reply now
      }
    }
  }
  if (job.conn != nullptr) (void)job.conn->send_message(reply);
}

void Server::finalize_streams(Shard& shard) {
  for (auto& [id, state] : shard.streams) {
    const std::shared_ptr<Connection> conn = state.owner.lock();
    if (conn == nullptr) continue;
    (void)conn->send_message(
        verdict_reply(MsgType::kClosed, id, state.monitor));
  }
  shard.streams.clear();
}

}  // namespace sia::service
