#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/parallel.hpp"
#include "tools/analysis_json.hpp"

namespace sia::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ModelError("siad: " + what + ": " + std::strerror(errno));
}

}  // namespace

/// One accepted socket. The IO thread owns the read side (decoder);
/// workers and the IO thread both write replies, serialised by
/// write_mutex. Closed fds are owned by the destructor so that a worker
/// holding a Job's shared_ptr can still (fail to) reply after the IO
/// thread dropped the connection.
struct Server::Connection {
  int fd{-1};
  FrameDecoder decoder;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Blocking, serialised frame write; the socket is non-blocking (epoll
  /// read side), so EAGAIN waits for writability. Returns false once the
  /// peer is gone — replies to dead clients are dropped, not errors.
  bool send_message(const Message& m) {
    const std::vector<std::uint8_t> frame = encode_frame(m);
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!open.load(std::memory_order_acquire)) return false;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        struct pollfd p{fd, POLLOUT, 0};
        (void)::poll(&p, 1, 1000);
        continue;
      }
      open.store(false, std::memory_order_release);
      return false;
    }
    return true;
  }
};

/// One stream: a streaming monitor plus the connection final verdicts go
/// to. GC runs inside commit_all_guarded; the shard thread owns the
/// monitor outright so the watermark advances without any locking.
struct Server::StreamState {
  StreamingMonitor monitor;
  std::weak_ptr<Connection> owner;

  StreamState(Model m, StreamingConfig cfg, std::weak_ptr<Connection> conn)
      : monitor(m, cfg), owner(std::move(conn)) {}
};

struct Server::Job {
  std::shared_ptr<Connection> conn;
  Message msg;
  /// kDrain barrier: the last shard to see it sends DRAINED.
  std::shared_ptr<std::atomic<std::size_t>> barrier;
  /// Shutdown sentinel; always the queue's last entry.
  bool stop{false};
};

struct Server::Shard {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Job> queue;
  /// Once true no further job is admitted (the stop sentinel is queued).
  bool stopping{false};
  /// Streams owned by this shard; only its worker thread touches them.
  std::unordered_map<std::uint64_t, StreamState> streams;
  std::thread thread;
};

Server::Server(ServerConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = parallel_thread_count();
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
}

Server::~Server() {
  try {
    drain();
  } catch (...) {
    // Destructor: nothing sensible left to do with a teardown failure.
  }
}

void Server::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind to port " + std::to_string(cfg_.port));
  }
  if (::listen(listen_fd_, 128) < 0) throw_errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
}

void Server::drain() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting: pull the listen socket out of the loop. The IO
  //    thread keeps running — in-flight requests still get replies, and
  //    anything arriving from here on is answered RETRY_LATER.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);

  // 2. Flush every shard: admit nothing more, queue the stop sentinel
  //    behind the backlog. FIFO order means every admitted job is
  //    processed — and acknowledged — before the shard finalises.
  for (auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      shard->stopping = true;
      shard->queue.push_back(Job{nullptr, Message{}, nullptr, /*stop=*/true});
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  // 3. Stop the IO thread; it closes the connections on the way out.
  io_stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (io_thread_.joinable()) io_thread_.join();

  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.frames = n_frames_.load(std::memory_order_relaxed);
  s.commits = n_commits_.load(std::memory_order_relaxed);
  s.retry_later = n_retry_later_.load(std::memory_order_relaxed);
  s.malformed = n_malformed_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.analyzes = n_analyzes_.load(std::memory_order_relaxed);
  return s;
}

void Server::io_loop() {
  std::array<epoll_event, 64> events;
  std::array<std::uint8_t, 16384> buf;
  while (!io_stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drainv = 0;
        (void)!::read(wake_fd_, &drainv, sizeof(drainv));
        continue;
      }
      if (fd == listen_fd_) {
        for (;;) {
          const int cfd =
              ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
          if (cfd < 0) break;
          const int one = 1;
          (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) == 0) {
            connections_.emplace(cfd, std::make_shared<Connection>(cfd));
            n_connections_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ::close(cfd);
          }
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      bool closed = false;
      for (;;) {
        const ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
        if (r > 0) {
          conn->decoder.feed(buf.data(), static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r < 0 && errno == EINTR) continue;
        closed = true;  // orderly EOF or a hard error
        break;
      }
      // Drain the decoder even when the peer already closed: pipelined
      // requests that made it in are still served.
      for (;;) {
        Message msg;
        std::string error;
        const FrameDecoder::Status st = conn->decoder.next(msg, &error);
        if (st == FrameDecoder::Status::kNeedMore) break;
        if (st == FrameDecoder::Status::kMalformed) {
          n_malformed_.fetch_add(1, std::memory_order_relaxed);
          Message reply;
          reply.type = MsgType::kMalformed;
          reply.text = error;
          (void)conn->send_message(reply);
          closed = true;  // cannot resync a byte stream after a bad frame
          break;
        }
        n_frames_.fetch_add(1, std::memory_order_relaxed);
        dispatch(conn, std::move(msg));
      }
      if (closed) close_connection(fd);
    }
  }
  // Teardown: mark peers closed and drop them.
  for (auto& [fd, conn] : connections_) {
    conn->open.store(false, std::memory_order_release);
  }
  connections_.clear();
}

void Server::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->open.store(false, std::memory_order_release);
  connections_.erase(it);  // fd closed by ~Connection when workers let go
}

void Server::reply_retry_later(const std::shared_ptr<Connection>& conn,
                               std::uint64_t stream) {
  n_retry_later_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kRetryLater;
  reply.stream = stream;
  (void)conn->send_message(reply);
}

bool Server::try_enqueue(Shard& shard, Job&& job) {
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stopping || shard.queue.size() >= cfg_.queue_capacity) {
      return false;
    }
    shard.queue.push_back(std::move(job));
  }
  shard.cv.notify_one();
  return true;
}

void Server::dispatch(const std::shared_ptr<Connection>& conn,
                      Message&& msg) {
  if (!is_request(msg.type)) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    Message reply;
    reply.type = MsgType::kError;
    reply.text = "not a request: " + to_string(msg.type);
    (void)conn->send_message(reply);
    return;
  }
  const bool draining = draining_.load(std::memory_order_acquire);
  switch (msg.type) {
    case MsgType::kOpenStream: {
      if (draining) {
        reply_retry_later(conn, 0);
        return;
      }
      const std::uint64_t id =
          next_stream_.fetch_add(1, std::memory_order_relaxed);
      msg.stream = id;
      Shard& shard = *shards_[id % shards_.size()];
      if (!try_enqueue(shard, Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, 0);
      }
      return;
    }
    case MsgType::kCommit:
    case MsgType::kVerdict:
    case MsgType::kStatus:
    case MsgType::kClose: {
      if (draining) {
        reply_retry_later(conn, msg.stream);
        return;
      }
      const std::uint64_t stream = msg.stream;
      Shard& shard = *shards_[stream % shards_.size()];
      if (!try_enqueue(shard, Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, stream);
      }
      return;
    }
    case MsgType::kAnalyze: {
      if (draining) {
        reply_retry_later(conn, 0);
        return;
      }
      const std::size_t s =
          analyze_rr_.fetch_add(1, std::memory_order_relaxed) %
          shards_.size();
      if (!try_enqueue(*shards_[s], Job{conn, std::move(msg), nullptr})) {
        reply_retry_later(conn, 0);
      }
      return;
    }
    case MsgType::kDrain: {
      if (draining) {
        // Queues are being flushed anyway; answer directly.
        Message reply;
        reply.type = MsgType::kDrained;
        (void)conn->send_message(reply);
        return;
      }
      // A flush barrier through every shard; force-enqueued (control
      // traffic must not starve behind the very backlog it flushes).
      auto barrier =
          std::make_shared<std::atomic<std::size_t>>(shards_.size());
      for (auto& shard : shards_) {
        {
          const std::lock_guard<std::mutex> lock(shard->mutex);
          if (shard->stopping) {
            // drain() raced us; its flush supersedes this one.
            if (barrier->fetch_sub(1) == 1) {
              Message reply;
              reply.type = MsgType::kDrained;
              (void)conn->send_message(reply);
            }
            continue;
          }
          shard->queue.push_back(Job{conn, Message{msg}, barrier});
        }
        shard->cv.notify_one();
      }
      return;
    }
    default:
      return;  // unreachable: is_request() filtered
  }
}

Message Server::verdict_reply(MsgType type, std::uint64_t stream,
                              const StreamingMonitor& monitor) {
  Message reply;
  reply.type = type;
  reply.stream = stream;
  reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
  reply.commit_count = monitor.size();
  reply.capacity = monitor.capacity();
  reply.violating = monitor.violating_commit().value_or(0);
  reply.text = monitor.violation_detail();
  return reply;
}

Message Server::status_reply(std::uint64_t stream,
                             const StreamingMonitor& monitor) {
  Message reply;
  reply.type = MsgType::kStatusReply;
  reply.stream = stream;
  reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
  reply.commit_count = monitor.size();
  reply.retained = monitor.retained();
  reply.pruned = monitor.pruned();
  reply.watermark = monitor.watermark();
  reply.approx_bytes = monitor.approx_bytes();
  return reply;
}

void Server::shard_loop(Shard& shard) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&shard] { return !shard.queue.empty(); });
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (job.stop) {
      finalize_streams(shard);
      return;
    }
    if (cfg_.worker_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.worker_delay_us));
    }
    process(shard, job);
  }
}

void Server::process(Shard& shard, const Job& job) {
  const Message& msg = job.msg;
  Message reply;
  switch (msg.type) {
    case MsgType::kOpenStream: {
      // The decoder bounds msg.model to ServiceModel's range; the stream's
      // monitor audits against the model the engine's histories must obey
      // (SSI maps to SER).
      const Model model = check_model(static_cast<ServiceModel>(msg.model));
      StreamingConfig mcfg;
      mcfg.gc_window = cfg_.gc_window;
      mcfg.keep_log = cfg_.keep_log;
      mcfg.max_transactions =
          msg.capacity != 0 ? msg.capacity : cfg_.stream_ceiling;
      shard.streams.emplace(msg.stream,
                            StreamState(model, mcfg, job.conn));
      reply.type = MsgType::kStreamOpened;
      reply.stream = msg.stream;
      break;
    }
    case MsgType::kCommit: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      StreamingMonitor& monitor = it->second.monitor;
      const BatchResult r = monitor.commit_all_guarded(msg.commits);
      n_commits_.fetch_add(msg.commits.size(), std::memory_order_relaxed);
      reply.type = MsgType::kCommitted;
      reply.stream = msg.stream;
      reply.verdict = static_cast<std::uint8_t>(monitor.verdict());
      reply.ids = r.ids;
      reply.quarantined.assign(r.quarantined.begin(), r.quarantined.end());
      break;
    }
    case MsgType::kVerdict: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      reply = verdict_reply(MsgType::kVerdictReply, msg.stream,
                            it->second.monitor);
      break;
    }
    case MsgType::kStatus: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      reply = status_reply(msg.stream, it->second.monitor);
      break;
    }
    case MsgType::kClose: {
      auto it = shard.streams.find(msg.stream);
      if (it == shard.streams.end()) {
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kError;
        reply.stream = msg.stream;
        reply.text = "unknown stream " + std::to_string(msg.stream);
        break;
      }
      reply = verdict_reply(MsgType::kClosed, msg.stream, it->second.monitor);
      shard.streams.erase(it);
      break;
    }
    case MsgType::kAnalyze: {
      n_analyzes_.fetch_add(1, std::memory_order_relaxed);
      if (job.barrier == nullptr) {
        try {
          const HistoryAnalysis a = analyze_history_text(msg.text);
          reply.type = MsgType::kAnalyzed;
          reply.text = to_json(a);
        } catch (const ModelError& e) {
          n_errors_.fetch_add(1, std::memory_order_relaxed);
          reply.type = MsgType::kError;
          reply.text = e.what();
        }
      }
      break;
    }
    case MsgType::kDrain: {
      if (job.barrier != nullptr && job.barrier->fetch_sub(1) == 1) {
        reply.type = MsgType::kDrained;
        break;
      }
      return;  // not the last shard: no reply yet
    }
    default:
      return;
  }
  if (job.conn != nullptr) (void)job.conn->send_message(reply);
}

void Server::finalize_streams(Shard& shard) {
  for (auto& [id, state] : shard.streams) {
    const std::shared_ptr<Connection> conn = state.owner.lock();
    if (conn == nullptr) continue;
    (void)conn->send_message(
        verdict_reply(MsgType::kClosed, id, state.monitor));
  }
  shard.streams.clear();
}

}  // namespace sia::service
