#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sia::service {

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ModelError("client: socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ModelError("client: not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ModelError("client: connect to " + host + ":" +
                     std::to_string(port) + ": " + err);
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ModelError("client: connection closed while sending");
  }
}

Message ServiceClient::read_message() {
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    Message msg;
    std::string error;
    const FrameDecoder::Status st = decoder_.next(msg, &error);
    if (st == FrameDecoder::Status::kFrame) return msg;
    if (st == FrameDecoder::Status::kMalformed) {
      throw ModelError("client: malformed reply: " + error);
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) {
      decoder_.feed(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ModelError("client: connection closed by server");
  }
}

Message ServiceClient::request(const Message& req) {
  if (fd_ < 0) throw ModelError("client: not connected");
  send_all(encode_frame(req));
  for (;;) {
    Message reply = read_message();
    // A CLOSED frame is the reply only to the CLOSE of that stream; any
    // other is a drain push — park it and keep waiting for ours.
    if (reply.type == MsgType::kClosed &&
        !(req.type == MsgType::kClose && reply.stream == req.stream)) {
      drained_[reply.stream] = std::move(reply);
      continue;
    }
    return reply;
  }
}

std::uint64_t ServiceClient::open_stream(ServiceModel model,
                                         std::uint64_t ceiling) {
  Message req;
  req.type = MsgType::kOpenStream;
  req.model = static_cast<std::uint8_t>(model);
  req.capacity = ceiling;
  const fault::RetryPolicy policy;  // default bounded budget
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    const Message reply = request(req);
    if (reply.type == MsgType::kStreamOpened) return reply.stream;
    if (reply.type != MsgType::kRetryLater) {
      throw ModelError("client: open_stream failed: " + to_string(reply.type) +
                       (reply.text.empty() ? "" : " (" + reply.text + ")"));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        kBackoffStepUs * policy.backoff_steps(attempt)));
  }
  throw ModelError("client: open_stream retry budget exhausted");
}

Message ServiceClient::commit(std::uint64_t stream,
                              const std::vector<MonitoredCommit>& batch) {
  Message req;
  req.type = MsgType::kCommit;
  req.stream = stream;
  req.commits = batch;
  return request(req);
}

Message ServiceClient::commit_retry(std::uint64_t stream,
                                    const std::vector<MonitoredCommit>& batch,
                                    const fault::RetryPolicy& policy,
                                    fault::RetryStats* stats) {
  fault::RetryStats st;
  Message reply;
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    st.attempts = attempt;
    reply = commit(stream, batch);
    if (reply.type != MsgType::kRetryLater) break;
    if (attempt == policy.max_attempts) break;  // budget exhausted
    const std::uint64_t steps = policy.backoff_steps(attempt);
    st.backoff_steps += steps;
    std::this_thread::sleep_for(
        std::chrono::microseconds(kBackoffStepUs * steps));
  }
  st.committed = reply.type == MsgType::kCommitted;
  if (stats != nullptr) *stats = st;
  return reply;
}

Message ServiceClient::verdict(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kVerdict;
  req.stream = stream;
  return request(req);
}

Message ServiceClient::status(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kStatus;
  req.stream = stream;
  return request(req);
}

Message ServiceClient::close_stream(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kClose;
  req.stream = stream;
  return request(req);
}

std::string ServiceClient::analyze(const std::string& history_text) {
  Message req;
  req.type = MsgType::kAnalyze;
  req.text = history_text;
  const Message reply = request(req);
  if (reply.type != MsgType::kAnalyzed) {
    throw ModelError("client: analyze failed: " + to_string(reply.type) +
                     (reply.text.empty() ? "" : " (" + reply.text + ")"));
  }
  return reply.text;
}

void ServiceClient::drain() {
  Message req;
  req.type = MsgType::kDrain;
  const Message reply = request(req);
  if (reply.type != MsgType::kDrained) {
    throw ModelError("client: drain failed: " + to_string(reply.type));
  }
}

}  // namespace sia::service
