#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sia::service {

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ModelError("client: socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ModelError("client: not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ModelError("client: connect to " + host + ":" +
                     std::to_string(port) + ": " + err);
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ModelError("client: connection closed while sending");
  }
}

Message ServiceClient::read_message() {
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    Message msg;
    std::string error;
    const FrameDecoder::Status st = decoder_.next(msg, &error);
    if (st == FrameDecoder::Status::kFrame) return msg;
    if (st == FrameDecoder::Status::kMalformed) {
      throw ModelError("client: malformed reply: " + error);
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) {
      decoder_.feed(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ModelError("client: connection closed by server");
  }
}

Message ServiceClient::request(const Message& req) {
  if (fd_ < 0) throw ModelError("client: not connected");
  send_all(encode_frame(req));
  for (;;) {
    Message reply = read_message();
    // A CLOSED frame is the reply only to the CLOSE of that stream; any
    // other is a drain push — park it and keep waiting for ours.
    if (reply.type == MsgType::kClosed &&
        !(req.type == MsgType::kClose && reply.stream == req.stream)) {
      drained_[reply.stream] = std::move(reply);
      continue;
    }
    return reply;
  }
}

std::uint64_t ServiceClient::open_stream(ServiceModel model,
                                         std::uint64_t ceiling) {
  Message req;
  req.type = MsgType::kOpenStream;
  req.model = static_cast<std::uint8_t>(model);
  req.capacity = ceiling;
  const fault::RetryPolicy policy;  // default bounded budget
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    const Message reply = request(req);
    if (reply.type == MsgType::kStreamOpened) return reply.stream;
    if (reply.type != MsgType::kRetryLater) {
      throw ModelError("client: open_stream failed: " + to_string(reply.type) +
                       (reply.text.empty() ? "" : " (" + reply.text + ")"));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        kBackoffStepUs * policy.backoff_steps(attempt)));
  }
  throw ModelError("client: open_stream retry budget exhausted");
}

Message ServiceClient::commit(std::uint64_t stream,
                              const std::vector<MonitoredCommit>& batch,
                              std::uint64_t seq) {
  Message req;
  req.type = MsgType::kCommit;
  req.stream = stream;
  req.seq = seq;
  req.commits = batch;
  return request(req);
}

Message ServiceClient::commit_retry(std::uint64_t stream,
                                    const std::vector<MonitoredCommit>& batch,
                                    const fault::RetryPolicy& policy,
                                    fault::RetryStats* stats) {
  fault::RetryStats st;
  Message reply;
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    st.attempts = attempt;
    reply = commit(stream, batch);
    if (reply.type != MsgType::kRetryLater) break;
    if (attempt == policy.max_attempts) break;  // budget exhausted
    const std::uint64_t steps = policy.backoff_steps(attempt);
    st.backoff_steps += steps;
    std::this_thread::sleep_for(
        std::chrono::microseconds(kBackoffStepUs * steps));
  }
  st.committed = reply.type == MsgType::kCommitted;
  if (stats != nullptr) *stats = st;
  return reply;
}

Message ServiceClient::verdict(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kVerdict;
  req.stream = stream;
  return request(req);
}

Message ServiceClient::status(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kStatus;
  req.stream = stream;
  return request(req);
}

Message ServiceClient::close_stream(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kClose;
  req.stream = stream;
  return request(req);
}

Message ServiceClient::promote() {
  Message req;
  req.type = MsgType::kPromote;
  return request(req);
}

std::string ServiceClient::analyze(const std::string& history_text) {
  Message req;
  req.type = MsgType::kAnalyze;
  req.text = history_text;
  const Message reply = request(req);
  if (reply.type != MsgType::kAnalyzed) {
    throw ModelError("client: analyze failed: " + to_string(reply.type) +
                     (reply.text.empty() ? "" : " (" + reply.text + ")"));
  }
  return reply.text;
}

void ServiceClient::drain() {
  Message req;
  req.type = MsgType::kDrain;
  const Message reply = request(req);
  if (reply.type != MsgType::kDrained) {
    throw ModelError("client: drain failed: " + to_string(reply.type));
  }
}

namespace {

/// The rotate signal: a standby or a fenced ex-primary refusing a write.
/// Any other ERROR (unknown stream, bad input) is a real answer.
bool not_primary_error(const Message& m) {
  return m.type == MsgType::kError && m.text.rfind("not primary", 0) == 0;
}

}  // namespace

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               fault::RetryPolicy policy)
    : endpoints_(std::move(endpoints)), policy_(policy) {
  if (endpoints_.empty()) {
    throw ModelError("failover client: empty endpoint list");
  }
}

bool FailoverClient::try_connect(std::size_t idx) {
  try {
    client_.connect(endpoints_[idx].host, endpoints_[idx].port);
    Message req;
    req.type = MsgType::kStatus;
    req.stream = 0;
    const Message st = client_.request(req);
    if (st.type != MsgType::kStatusReply ||
        static_cast<Role>(st.role) != Role::kPrimary || st.epoch < epoch_) {
      // Not a primary, or a deposed one: the fencing epoch must never
      // regress, so a zombie answering with its stale epoch is refused.
      client_.close();
      return false;
    }
    if (epoch_ != 0 && st.epoch > epoch_) ++failovers_;
    epoch_ = st.epoch;
    current_ = idx;
    connected_ = true;
    return true;
  } catch (const ModelError&) {
    client_.close();
    return false;
  }
}

void FailoverClient::connect() { reconnect(); }

void FailoverClient::reconnect() {
  connected_ = false;
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    for (std::size_t k = 0; k < endpoints_.size(); ++k) {
      if (try_connect((current_ + k) % endpoints_.size())) return;
    }
    // Promotion (heartbeat loss) takes hundreds of ms; serve the policy's
    // bounded steps at 1 ms each so the budget spans it.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(policy_.backoff_steps(attempt)));
  }
  throw ModelError("failover client: no live primary among " +
                   std::to_string(endpoints_.size()) + " endpoint(s)");
}

Message FailoverClient::roundtrip(const Message& request) {
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (!connected_) reconnect();  // throws on budget exhaustion
    Message reply;
    try {
      reply = client_.request(request);
    } catch (const ModelError&) {
      connected_ = false;  // connection died mid-call: fail over and
      continue;            // re-send (seq makes the resend exactly-once)
    }
    if (not_primary_error(reply)) {
      client_.close();
      connected_ = false;
      continue;
    }
    if (reply.type == MsgType::kRetryLater) {
      if (attempt == policy_.max_attempts) return reply;
      std::this_thread::sleep_for(
          std::chrono::microseconds(ServiceClient::kBackoffStepUs *
                                    policy_.backoff_steps(attempt)));
      continue;
    }
    return reply;
  }
  throw ModelError("failover client: retry budget exhausted");
}

std::uint64_t FailoverClient::open_stream(ServiceModel model,
                                          std::uint64_t ceiling) {
  Message req;
  req.type = MsgType::kOpenStream;
  req.model = static_cast<std::uint8_t>(model);
  req.capacity = ceiling;
  const Message reply = roundtrip(req);
  if (reply.type != MsgType::kStreamOpened) {
    throw ModelError("failover client: open_stream failed: " +
                     to_string(reply.type) +
                     (reply.text.empty() ? "" : " (" + reply.text + ")"));
  }
  return reply.stream;
}

Message FailoverClient::commit(std::uint64_t stream, std::uint64_t seq,
                               const std::vector<MonitoredCommit>& batch) {
  Message req;
  req.type = MsgType::kCommit;
  req.stream = stream;
  req.seq = seq;
  req.commits = batch;
  return roundtrip(req);
}

Message FailoverClient::status(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kStatus;
  req.stream = stream;
  return roundtrip(req);
}

Message FailoverClient::close_stream(std::uint64_t stream) {
  Message req;
  req.type = MsgType::kClose;
  req.stream = stream;
  return roundtrip(req);
}

}  // namespace sia::service
