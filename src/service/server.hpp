#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/incremental.hpp"
#include "service/wire.hpp"

/// \file server.hpp
/// siad's engine: a POSIX-sockets SI-checking service. One epoll IO
/// thread accepts connections and decodes frames; streams are sharded
/// across worker threads by stream id (shard = id mod #shards, #shards
/// defaulting to core/parallel's thread count), each shard owning its
/// streams' StreamingMonitor instances outright — no cross-thread
/// monitor access, FIFO per shard, hence per-stream request order is the
/// ingestion order. The streaming monitor's stable-prefix GC keeps each
/// stream's memory proportional to the staleness window (gc_window), not
/// the stream length, so the default configuration needs no transaction
/// ceiling and never saturates; an explicit OPEN_STREAM ceiling still
/// behaves as before (drops + kSaturated).
///
/// Admission control: each shard has a bounded job queue; a request whose
/// shard is full is answered RETRY_LATER from the IO thread without ever
/// touching the shard (overload sheds work at the door, it does not grow
/// queues). Commit batches go through commit_all_guarded, so malformed
/// client input is quarantined per commit, never fatal to the stream,
/// let alone the server.
///
/// Graceful drain (SIGTERM in siad, or drain()): stop accepting, reject
/// new work with RETRY_LATER, flush every shard queue — every in-flight
/// commit is acknowledged — then push a final CLOSED verdict frame for
/// each still-open stream to its owning connection and shut down. Nothing
/// is dropped silently: a commit is either acked, or its client heard
/// RETRY_LATER / saw the connection refuse it.

namespace sia::service {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (see Server::port()).
  std::uint16_t port{0};
  /// Worker shards; 0 = sia::parallel_thread_count().
  std::size_t shards{0};
  /// Bounded per-shard queue (requests); beyond it, RETRY_LATER.
  std::size_t queue_capacity{256};
  /// Default monitor ceiling per stream (0 = unlimited); OPEN_STREAM may
  /// lower/raise its own stream's ceiling. With the streaming monitor the
  /// ceiling is a compatibility knob, not a memory defence — GC already
  /// bounds retention — so 0 is a safe default.
  std::size_t stream_ceiling{0};
  /// Staleness window (in commits) handed to every stream's
  /// StreamingMonitor; 0 disables GC (unbounded retention). A read naming
  /// a version pruned below the watermark is quarantined like any other
  /// malformed commit.
  std::size_t gc_window{8192};
  /// Retain commit logs for graph() reconstruction. Off by default: the
  /// log alone would defeat the flat-memory property.
  bool keep_log{false};
  /// Artificial per-job service delay in microseconds. 0 in production;
  /// tests and overload experiments use it to fill shard queues
  /// deterministically and observe the RETRY_LATER path.
  std::uint64_t worker_delay_us{0};
};

struct ServerStats {
  std::uint64_t connections{0};
  std::uint64_t frames{0};
  std::uint64_t commits{0};      ///< individual commits ingested
  std::uint64_t retry_later{0};  ///< backpressure replies sent
  std::uint64_t malformed{0};    ///< frames rejected by the decoder
  std::uint64_t errors{0};       ///< ERROR replies (unknown stream etc.)
  std::uint64_t analyzes{0};
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the IO and shard threads.
  /// \throws ModelError on socket errors.
  void start();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown as described above. Idempotent; blocks until all
  /// threads have exited. ~Server calls it.
  void drain();

  [[nodiscard]] bool running() const { return started_ && !stopped_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection;
  struct StreamState;
  struct Job;
  struct Shard;

  void io_loop();
  void shard_loop(Shard& shard);
  void dispatch(const std::shared_ptr<Connection>& conn, Message&& msg);
  bool try_enqueue(Shard& shard, Job&& job);
  void process(Shard& shard, const Job& job);
  void finalize_streams(Shard& shard);
  void close_connection(int fd);
  void reply_retry_later(const std::shared_ptr<Connection>& conn,
                         std::uint64_t stream);
  static Message verdict_reply(MsgType type, std::uint64_t stream,
                               const StreamingMonitor& monitor);
  static Message status_reply(std::uint64_t stream,
                              const StreamingMonitor& monitor);

  ServerConfig cfg_;
  std::uint16_t port_{0};
  int listen_fd_{-1};
  int epoll_fd_{-1};
  int wake_fd_{-1};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread io_thread_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> next_stream_{1};
  std::atomic<std::size_t> analyze_rr_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> io_stop_{false};
  bool started_{false};
  bool stopped_{false};
  std::mutex lifecycle_mutex_;

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_frames_{0};
  std::atomic<std::uint64_t> n_commits_{0};
  std::atomic<std::uint64_t> n_retry_later_{0};
  std::atomic<std::uint64_t> n_malformed_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_analyzes_{0};
};

}  // namespace sia::service
