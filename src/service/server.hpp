#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/incremental.hpp"
#include "service/replication.hpp"
#include "service/wire.hpp"

/// \file server.hpp
/// siad's engine: a POSIX-sockets SI-checking service. One epoll IO
/// thread accepts connections and decodes frames; streams are sharded
/// across worker threads by stream id (shard = id mod #shards, #shards
/// defaulting to core/parallel's thread count), each shard owning its
/// streams' StreamingMonitor instances outright — no cross-thread
/// monitor access, FIFO per shard, hence per-stream request order is the
/// ingestion order. The streaming monitor's stable-prefix GC keeps each
/// stream's memory proportional to the staleness window (gc_window), not
/// the stream length, so the default configuration needs no transaction
/// ceiling and never saturates; an explicit OPEN_STREAM ceiling still
/// behaves as before (drops + kSaturated).
///
/// Admission control: each shard has a bounded job queue; a request whose
/// shard is full is answered RETRY_LATER from the IO thread without ever
/// touching the shard (overload sheds work at the door, it does not grow
/// queues). Commit batches go through commit_all_guarded, so malformed
/// client input is quarantined per commit, never fatal to the stream,
/// let alone the server.
///
/// Graceful drain (SIGTERM in siad, or drain()): stop accepting, reject
/// new work with RETRY_LATER, flush every shard queue — every in-flight
/// commit is acknowledged — then push a final CLOSED verdict frame for
/// each still-open stream to its owning connection and shut down. Nothing
/// is dropped silently: a commit is either acked, or its client heard
/// RETRY_LATER / saw the connection refuse it.
///
/// Replication (DESIGN.md §4h): with a ReplicationConfig, a primary
/// appends every state-mutating frame to a per-shard WAL and ships it to
/// a follower before releasing the client's ack (see replication.hpp). A
/// follower applies REPL_APPEND frames on the owning shard thread —
/// exactly the primary's code path, so state is bit-identical by replay
/// determinism — and rejects client writes with "not primary". Promotion
/// (wire PROMOTE, promote(), or heartbeat loss with auto_promote_ms)
/// adopts the primary's epoch + 1 and fences any zombie frames that
/// arrive afterwards. hard_stop() tears the server down without drain or
/// finalisation — the in-process stand-in for SIGKILL in failover tests.

namespace sia::service {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (see Server::port()).
  std::uint16_t port{0};
  /// Worker shards; 0 = sia::parallel_thread_count().
  std::size_t shards{0};
  /// Bounded per-shard queue (requests); beyond it, RETRY_LATER.
  std::size_t queue_capacity{256};
  /// Default monitor ceiling per stream (0 = unlimited); OPEN_STREAM may
  /// lower/raise its own stream's ceiling. With the streaming monitor the
  /// ceiling is a compatibility knob, not a memory defence — GC already
  /// bounds retention — so 0 is a safe default.
  std::size_t stream_ceiling{0};
  /// Staleness window (in commits) handed to every stream's
  /// StreamingMonitor; 0 disables GC (unbounded retention). A read naming
  /// a version pruned below the watermark is quarantined like any other
  /// malformed commit.
  std::size_t gc_window{8192};
  /// Retain commit logs for graph() reconstruction. Off by default: the
  /// log alone would defeat the flat-memory property.
  bool keep_log{false};
  /// Artificial per-job service delay in microseconds. 0 in production;
  /// tests and overload experiments use it to fill shard queues
  /// deterministically and observe the RETRY_LATER path.
  std::uint64_t worker_delay_us{0};
  /// Start as the warm standby: reject client writes, apply REPL_APPEND
  /// frames, promote on PROMOTE / heartbeat loss.
  bool follower{false};
  /// WAL + log shipping; see ReplicationConfig. Disabled by default.
  ReplicationConfig repl{};
};

struct ServerStats {
  std::uint64_t connections{0};
  std::uint64_t frames{0};
  std::uint64_t commits{0};      ///< individual commits ingested
  std::uint64_t retry_later{0};  ///< backpressure replies sent
  std::uint64_t malformed{0};    ///< frames rejected by the decoder
  std::uint64_t errors{0};       ///< ERROR replies (unknown stream etc.)
  std::uint64_t analyzes{0};
  std::uint64_t repl_shipped{0};  ///< frames handed to the follower link
  std::uint64_t repl_acked{0};    ///< frames the follower acknowledged
  std::uint64_t repl_applied{0};  ///< follower: frames applied to shards
  std::uint64_t fenced{0};        ///< FENCED replies sent to stale epochs
  std::uint64_t promotions{0};    ///< follower -> primary transitions
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the IO and shard threads.
  /// \throws ModelError on socket errors.
  void start();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown as described above. Idempotent; blocks until all
  /// threads have exited. ~Server calls it.
  void drain();

  /// Abrupt shutdown: no drain barrier, no finalisation pushes, pending
  /// replication acks abandoned. The in-process stand-in for SIGKILL —
  /// failover tests kill the primary with this and nothing reaches the
  /// wire that a real kill would not have sent.
  void hard_stop();

  /// Promote a follower to primary (idempotent on a primary): adopt the
  /// deposed primary's epoch + 1 and start accepting writes. The wire
  /// PROMOTE op and the auto_promote_ms heartbeat-loss path land here.
  void promote();

  [[nodiscard]] bool running() const { return started_ && !stopped_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] Role role() const {
    return static_cast<Role>(role_.load(std::memory_order_acquire));
  }
  /// Fencing epoch: own epoch on a primary, the followed primary's epoch
  /// on a follower (0 until the first REPL_HELLO).
  [[nodiscard]] std::uint64_t epoch() const;
  /// Follower hit a replication gap or an undecodable frame and stopped
  /// applying (sticky): its state is a clean prefix, not a divergence.
  [[nodiscard]] bool repl_quarantined() const {
    return repl_quarantined_.load(std::memory_order_acquire);
  }
  /// Primary: the follower link died and acks are local-only (sticky).
  [[nodiscard]] bool repl_degraded() const {
    return sender_ != nullptr && sender_->degraded();
  }

 private:
  struct Connection;
  struct StreamState;
  struct Job;
  struct Shard;

  void io_loop();
  void shard_loop(Shard& shard);
  void dispatch(const std::shared_ptr<Connection>& conn, Message&& msg);
  bool try_enqueue(Shard& shard, Job&& job, bool force = false);
  void process(Shard& shard, const Job& job);
  void finalize_streams(Shard& shard);
  void close_connection(int fd);
  void reply_retry_later(const std::shared_ptr<Connection>& conn,
                         std::uint64_t stream);
  static Message verdict_reply(MsgType type, std::uint64_t stream,
                               const StreamingMonitor& monitor);
  Message status_reply(std::uint64_t stream,
                       const StreamingMonitor& monitor);
  /// STATUS(stream = 0): server-global role / epoch / replication lag.
  Message global_status_reply();
  /// Sends "not primary" when this server must not accept writes;
  /// true = go ahead.
  bool require_primary(const std::shared_ptr<Connection>& conn,
                       std::uint64_t stream);
  /// The shared apply path — identical for a primary's client ops and a
  /// follower's replicated frames, which is what makes the two states
  /// bit-identical by construction.
  Message apply_open_stream(Shard& shard, const Message& msg,
                            std::weak_ptr<Connection> owner);
  /// \p applied is set true iff the batch mutated the monitor (false on
  /// unknown stream and on an exactly-once duplicate served from cache).
  Message apply_commit(Shard& shard, const Message& msg, bool* applied);
  Message apply_close(Shard& shard, const Message& msg);
  void process_repl_append(Shard& shard, const Job& job);
  void quarantine_follower(const std::string& why);

  ServerConfig cfg_;
  std::uint16_t port_{0};
  int listen_fd_{-1};
  int epoll_fd_{-1};
  int wake_fd_{-1};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread io_thread_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> next_stream_{1};
  std::atomic<std::size_t> analyze_rr_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> io_stop_{false};
  bool started_{false};
  bool stopped_{false};
  std::mutex lifecycle_mutex_;

  // Replication / failover state.
  std::atomic<std::uint8_t> role_{0};  ///< Role; set at start()
  /// Own fencing epoch: 1 on a fresh primary, primary's + 1 after a
  /// promotion, 0 on a follower that was never promoted.
  std::atomic<std::uint64_t> epoch_{1};
  /// Follower: the highest epoch heard over REPL_HELLO / REPL_APPEND.
  std::atomic<std::uint64_t> primary_epoch_{0};
  /// Follower: ms timestamp (steady clock) of the last replication frame;
  /// 0 = never heard one (auto-promotion waits for a first contact).
  std::atomic<std::uint64_t> last_repl_heard_ms_{0};
  std::atomic<bool> repl_quarantined_{false};
  std::unique_ptr<ReplicationSender> sender_;

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_frames_{0};
  std::atomic<std::uint64_t> n_commits_{0};
  std::atomic<std::uint64_t> n_retry_later_{0};
  std::atomic<std::uint64_t> n_malformed_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_analyzes_{0};
  std::atomic<std::uint64_t> n_repl_applied_{0};
  std::atomic<std::uint64_t> n_fenced_{0};
  std::atomic<std::uint64_t> n_promotions_{0};
};

}  // namespace sia::service
