#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/monitor.hpp"

/// \file wire.hpp
/// The siad wire protocol: length-prefixed, CRC-framed messages over a
/// byte stream, reusing the RecorderLog framing discipline so the torn /
/// corrupt-frame story is identical on the wire and on disk:
///
///     u32 payload length | u32 CRC-32 of payload | payload   (little-endian)
///
/// The payload starts with a one-byte message type, then type-specific
/// fields. Requests and replies:
///
///     OPEN_STREAM(model, ceiling)        -> STREAM_OPENED(stream)
///     COMMIT(stream, MonitoredCommit*)   -> COMMITTED(stream, ids,
///                                             quarantined, verdict)
///                                         | RETRY_LATER(stream)
///     VERDICT(stream)                    -> VERDICT_REPLY(stream, verdict,
///                                             count, capacity, violating,
///                                             detail)
///     STATUS(stream)                     -> STATUS_REPLY(stream, verdict,
///                                             count, retained, pruned,
///                                             watermark, approx_bytes)
///     ANALYZE(history text)              -> ANALYZED(json) | ERROR(text)
///     CLOSE(stream)                      -> CLOSED(= VERDICT_REPLY shape)
///     DRAIN                              -> DRAINED  (queues flushed)
///
/// STATUS is the flat-memory gauge: retained / pruned / approx_bytes come
/// straight from the stream's StreamingMonitor, so a long-running client
/// (sia_loadgen's endless mode) can audit that server-side memory
/// plateaus instead of growing with the stream.
///
/// Any frame that fails to decode — short, oversized, bit-flipped,
/// bad CRC, trailing garbage — earns a MALFORMED reply and the server
/// closes the connection (a byte stream cannot resync after a bad length
/// prefix). RETRY_LATER is the admission-control reply: the owning
/// shard's queue is full (or the server is draining); clients map it onto
/// fault::RetryPolicy backoff.

namespace sia::service {

enum class MsgType : std::uint8_t {
  // Requests.
  kOpenStream = 0x01,
  kCommit = 0x02,
  kVerdict = 0x03,
  kAnalyze = 0x04,
  kClose = 0x05,
  kDrain = 0x06,
  kStatus = 0x07,
  // Replies.
  kStreamOpened = 0x81,
  kCommitted = 0x82,
  kVerdictReply = 0x83,
  kAnalyzed = 0x84,
  kClosed = 0x85,
  kDrained = 0x86,
  kStatusReply = 0x87,
  kRetryLater = 0xF0,
  kMalformed = 0xF1,
  kError = 0xF2,
};

[[nodiscard]] bool is_request(MsgType t);
[[nodiscard]] std::string to_string(MsgType t);

/// The service-facing model selector: which engine's traffic a stream
/// carries, and hence which declarative model the server audits it
/// against. Values 0..2 coincide numerically with Model (SER/SI/PSI), so
/// pre-SSI clients encode identical OPEN frames; kSSI = 3 is new wire
/// vocabulary.
enum class ServiceModel : std::uint8_t {
  kSER = 0,
  kSI = 1,
  kPSI = 2,
  kSSI = 3,
};

[[nodiscard]] std::string to_string(ServiceModel m);

/// The declarative model a ServiceModel's histories are audited against.
/// Identity for SER/SI/PSI; SSI maps to Model::kSER — committed SSI
/// histories are serializable (pivot prevention, the operational side of
/// Theorem 19), so the monitor holds them to GraphSER.
[[nodiscard]] Model check_model(ServiceModel m);

/// Hard ceiling on one frame's payload. A length prefix beyond this is
/// malformed and rejected before any allocation (a 4-byte flip must not
/// become a 4 GiB buffer).
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

/// One decoded message; which fields are meaningful depends on `type`
/// (see the protocol table above). Kept as a single struct so the framing
/// layer stays payload-agnostic, like RecorderLog's CommitRecord.
struct Message {
  MsgType type{MsgType::kError};
  std::uint64_t stream{0};
  std::uint8_t model{0};     ///< kOpenStream: ServiceModel value (0..3)
  std::uint64_t capacity{0};  ///< kOpenStream ceiling; verdicts: monitor cap
  std::vector<MonitoredCommit> commits;     ///< kCommit
  std::vector<TxnId> ids;                   ///< kCommitted: BatchResult.ids
  std::vector<std::uint32_t> quarantined;   ///< kCommitted: batch indices
  std::uint8_t verdict{0};        ///< MonitorVerdict in verdict replies
  std::uint64_t commit_count{0};  ///< verdict replies: monitor.size()
  std::uint32_t violating{0};     ///< violating commit id, 0 = none
  std::string text;  ///< analyze in/out, error text, violation detail
  // kStatusReply: the flat-memory gauges (StreamingMonitor accessors).
  std::uint64_t retained{0};      ///< transactions resident in the graph
  std::uint64_t pruned{0};        ///< transactions pruned by the GC so far
  std::uint64_t watermark{0};     ///< current GC watermark W
  std::uint64_t approx_bytes{0};  ///< rough heap footprint of the monitor
};

/// Serialised payload (no frame header).
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const Message& m);

/// Inverse of encode_payload. Returns false (leaving \p out unspecified)
/// on any malformed input: unknown type, short field, impossible count,
/// out-of-range enum value, or trailing bytes.
[[nodiscard]] bool decode_payload(const std::uint8_t* data, std::size_t size,
                                  Message& out);

/// Full frame: length | crc | payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& m);

/// CRC-32 (reflected 0xEDB88320), the RecorderLog checksum.
[[nodiscard]] std::uint32_t wire_crc32(const std::uint8_t* data,
                                       std::size_t size);

/// Incremental frame extractor over a received byte stream; feed() bytes
/// as they arrive, then pull complete messages with next(). Malformed is
/// sticky per connection: after it, the stream offset is unreliable.
class FrameDecoder {
 public:
  enum class Status : std::uint8_t { kNeedMore, kFrame, kMalformed };

  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame into \p out. On kMalformed, \p error
  /// (when given) says why.
  [[nodiscard]] Status next(Message& out, std::string* error = nullptr);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace sia::service
