#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/monitor.hpp"

/// \file wire.hpp
/// The siad wire protocol: length-prefixed, CRC-framed messages over a
/// byte stream, reusing the RecorderLog framing discipline so the torn /
/// corrupt-frame story is identical on the wire and on disk:
///
///     u32 payload length | u32 CRC-32 of payload | payload   (little-endian)
///
/// The payload starts with a one-byte message type, then type-specific
/// fields. Requests and replies:
///
///     OPEN_STREAM(model, ceiling)        -> STREAM_OPENED(stream)
///     COMMIT(stream, MonitoredCommit*)   -> COMMITTED(stream, ids,
///                                             quarantined, verdict)
///                                         | RETRY_LATER(stream)
///     VERDICT(stream)                    -> VERDICT_REPLY(stream, verdict,
///                                             count, capacity, violating,
///                                             detail)
///     STATUS(stream)                     -> STATUS_REPLY(stream, verdict,
///                                             count, retained, pruned,
///                                             watermark, approx_bytes)
///     ANALYZE(history text)              -> ANALYZED(json) | ERROR(text)
///     CLOSE(stream)                      -> CLOSED(= VERDICT_REPLY shape)
///     DRAIN                              -> DRAINED  (queues flushed)
///
/// STATUS is the flat-memory gauge: retained / pruned / approx_bytes come
/// straight from the stream's StreamingMonitor, so a long-running client
/// (sia_loadgen's endless mode) can audit that server-side memory
/// plateaus instead of growing with the stream. STATUS(stream = 0) is the
/// server-global form: role, fencing epoch and replication lag, with the
/// monitor gauges zeroed (stream ids start at 1, so 0 is unambiguous).
///
/// Replication ops (see replication.hpp; §4h of DESIGN.md):
///
///     REPL_HELLO(epoch, #shards)         -> REPL_WELCOME(epoch)
///                                         | FENCED(epoch)
///     REPL_APPEND(shard, seq, epoch,     -> REPL_ACK(shard, seq, epoch)
///                 inner frame bytes)      | FENCED(epoch) | ERROR
///     PROMOTE                            -> PROMOTED(epoch, role)
///
/// The primary streams every state-mutating client frame (OPEN_STREAM
/// with its assigned id, accepted COMMIT batches, CLOSE) to the follower
/// as REPL_APPEND, with a per-shard gapless sequence number; REPL_HELLO
/// doubles as the heartbeat. The fencing epoch totally orders primaries:
/// a follower promoted by PROMOTE (or by heartbeat loss) adopts
/// epoch + 1 and answers any later frame from the deposed primary with
/// FENCED, which the zombie treats as a demotion order.
///
/// COMMIT carries an optional client-assigned per-stream sequence number
/// (seq, 0 = unsequenced). The server remembers the last applied seq per
/// stream — state that replicates with the frame itself — and answers a
/// re-sent duplicate with the recorded COMMITTED reply instead of
/// re-ingesting, which is what makes client failover exactly-once: a
/// batch whose ack was lost with the primary is simply re-sent to the
/// promoted follower.
///
/// Any frame that fails to decode — short, oversized, bit-flipped,
/// bad CRC, trailing garbage — earns a MALFORMED reply and the server
/// closes the connection (a byte stream cannot resync after a bad length
/// prefix). RETRY_LATER is the admission-control reply: the owning
/// shard's queue is full (or the server is draining); clients map it onto
/// fault::RetryPolicy backoff.

namespace sia::service {

enum class MsgType : std::uint8_t {
  // Requests.
  kOpenStream = 0x01,
  kCommit = 0x02,
  kVerdict = 0x03,
  kAnalyze = 0x04,
  kClose = 0x05,
  kDrain = 0x06,
  kStatus = 0x07,
  // Replication requests (primary -> follower, plus operator PROMOTE).
  kReplHello = 0x10,
  kReplAppend = 0x11,
  kPromote = 0x12,
  // Replies.
  kStreamOpened = 0x81,
  kCommitted = 0x82,
  kVerdictReply = 0x83,
  kAnalyzed = 0x84,
  kClosed = 0x85,
  kDrained = 0x86,
  kStatusReply = 0x87,
  // Replication replies.
  kReplWelcome = 0x90,
  kReplAck = 0x91,
  kPromoted = 0x92,
  kRetryLater = 0xF0,
  kMalformed = 0xF1,
  kError = 0xF2,
  /// A frame from a deposed primary (stale fencing epoch): the sender
  /// must stop acting as primary. Carries the winner's epoch.
  kFenced = 0xF3,
};

[[nodiscard]] bool is_request(MsgType t);
[[nodiscard]] std::string to_string(MsgType t);

/// The server's position in a replicated pair. kFencedRole is terminal: a
/// primary that saw FENCED stopped accepting writes (a newer primary
/// exists) but still answers reads and status.
enum class Role : std::uint8_t {
  kPrimary = 0,
  kFollower = 1,
  kFencedRole = 2,
};

[[nodiscard]] std::string to_string(Role r);

/// The service-facing model selector: which engine's traffic a stream
/// carries, and hence which declarative model the server audits it
/// against. Values 0..2 coincide numerically with Model (SER/SI/PSI), so
/// pre-SSI clients encode identical OPEN frames; kSSI = 3 is new wire
/// vocabulary.
enum class ServiceModel : std::uint8_t {
  kSER = 0,
  kSI = 1,
  kPSI = 2,
  kSSI = 3,
};

[[nodiscard]] std::string to_string(ServiceModel m);

/// The declarative model a ServiceModel's histories are audited against.
/// Identity for SER/SI/PSI; SSI maps to Model::kSER — committed SSI
/// histories are serializable (pivot prevention, the operational side of
/// Theorem 19), so the monitor holds them to GraphSER.
[[nodiscard]] Model check_model(ServiceModel m);

/// Hard ceiling on one frame's payload. A length prefix beyond this is
/// malformed and rejected before any allocation (a 4-byte flip must not
/// become a 4 GiB buffer).
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

/// One decoded message; which fields are meaningful depends on `type`
/// (see the protocol table above). Kept as a single struct so the framing
/// layer stays payload-agnostic, like RecorderLog's CommitRecord.
struct Message {
  MsgType type{MsgType::kError};
  std::uint64_t stream{0};
  std::uint8_t model{0};     ///< kOpenStream: ServiceModel value (0..3)
  std::uint64_t capacity{0};  ///< kOpenStream ceiling; verdicts: monitor
                              ///< cap; kReplHello: primary shard count
  std::vector<MonitoredCommit> commits;     ///< kCommit
  std::vector<TxnId> ids;                   ///< kCommitted: BatchResult.ids
  std::vector<std::uint32_t> quarantined;   ///< kCommitted: batch indices
  std::uint8_t verdict{0};        ///< MonitorVerdict in verdict replies
  std::uint64_t commit_count{0};  ///< verdict replies: monitor.size()
  std::uint32_t violating{0};     ///< violating commit id, 0 = none
  std::string text;  ///< analyze in/out, error text, violation detail
  // kStatusReply: the flat-memory gauges (StreamingMonitor accessors).
  std::uint64_t retained{0};      ///< transactions resident in the graph
  std::uint64_t pruned{0};        ///< transactions pruned by the GC so far
  std::uint64_t watermark{0};     ///< current GC watermark W
  std::uint64_t approx_bytes{0};  ///< rough heap footprint of the monitor
  // Replication / failover fields.
  /// kCommit / kCommitted: client-assigned per-stream sequence (0 = none;
  /// see the exactly-once note above). kReplAppend / kReplAck: per-shard
  /// replication sequence, gapless from 1.
  std::uint64_t seq{0};
  /// Fencing epoch (kReplHello/kReplAppend/kReplAck/kPromoted/kFenced,
  /// and every kStatusReply). Primaries start at 1; each promotion
  /// adopts the deposed primary's epoch + 1.
  std::uint64_t epoch{0};
  std::uint8_t role{0};  ///< Role value (kStatusReply, kPromoted)
  /// kStatusReply: replication lag of the attached follower — frames
  /// shipped-but-unacked plus frames still queued, and their bytes.
  std::uint64_t lag_frames{0};
  std::uint64_t lag_bytes{0};
  /// kReplAppend: the wire payload of the replicated frame, verbatim
  /// (encode_payload of the OPEN_STREAM / COMMIT / CLOSE being shipped).
  std::vector<std::uint8_t> raw;
};

/// Serialised payload (no frame header).
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const Message& m);

/// Inverse of encode_payload. Returns false (leaving \p out unspecified)
/// on any malformed input: unknown type, short field, impossible count,
/// out-of-range enum value, or trailing bytes.
[[nodiscard]] bool decode_payload(const std::uint8_t* data, std::size_t size,
                                  Message& out);

/// Full frame: length | crc | payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& m);

/// CRC-32 (reflected 0xEDB88320), the RecorderLog checksum.
[[nodiscard]] std::uint32_t wire_crc32(const std::uint8_t* data,
                                       std::size_t size);

/// Incremental frame extractor over a received byte stream; feed() bytes
/// as they arrive, then pull complete messages with next(). Malformed is
/// sticky per connection: after it, the stream offset is unreliable.
class FrameDecoder {
 public:
  enum class Status : std::uint8_t { kNeedMore, kFrame, kMalformed };

  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame into \p out. On kMalformed, \p error
  /// (when given) says why.
  [[nodiscard]] Status next(Message& out, std::string* error = nullptr);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace sia::service
