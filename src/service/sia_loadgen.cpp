/// \file sia_loadgen.cpp
/// Load driver for siad: N connections × M streams of engine-generated
/// commit traffic, with the audit loop of loadgen.hpp — server verdicts
/// must equal an offline ConsistencyMonitor replay of the same streams,
/// and the server's final commit counts must equal the client's acks.
///
/// Usage:
///   sia_loadgen [--host A] [--port N] [--connections N] [--streams M]
///               [--txns N] [--batch N] [--model si|psi|ser|ssi] [--keys N]
///               [--ops N] [--write-ratio F] [--seed N] [--attempts N]
///               [--duration SECONDS] [--status-every N] [--json FILE]
///               [--failover HOST:PORT]
///
/// --model picks which engine generates the traffic and which model the
/// server audits it against (ssi streams are held to SER: committed SSI
/// histories are serializable).
///
/// --duration > 0 switches to the endless-stream mode: one
/// workload::StreamSource stream for that many wall-clock seconds,
/// mirrored into a local StreamingMonitor, with a STATUS sample every
/// --status-every batches auditing the server's verdict, commit count
/// and flat-memory gauges (retained must plateau, not grow). The samples
/// also carry the server's role, fencing epoch and replication lag,
/// reported in the plateau summary.
///
/// --failover H:P (endless mode) adds a warm standby to the endpoint
/// list: the driver rides out a killed primary by failing over with
/// exactly-once sequenced commits, so the audit stays exact across the
/// switch.
///
/// Exit code: 0 on a clean run (no protocol errors, no verdict or
/// ack-count mismatches — RETRY_LATER and a server drain are clean;
/// endless mode additionally requires the memory plateau), 1 otherwise,
/// 2 on bad arguments or an unreachable server.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/loadgen.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sia_loadgen [--host A] [--port N] [--connections N]\n"
      "                   [--streams M] [--txns N] [--batch N]\n"
      "                   [--model si|psi|ser|ssi] [--keys N] [--ops N]\n"
      "                   [--write-ratio F] [--seed N] [--attempts N]\n"
      "                   [--duration SECONDS] [--status-every N]\n"
      "                   [--json FILE] [--failover HOST:PORT]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sia::service::LoadgenConfig cfg;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return usage();
    const std::string value = argv[++i];
    const auto num = [&value] { return std::strtoull(value.c_str(), nullptr, 10); };
    if (arg == "--host") {
      cfg.host = value;
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(num());
    } else if (arg == "--connections") {
      cfg.connections = num();
    } else if (arg == "--streams") {
      cfg.streams_per_connection = num();
    } else if (arg == "--txns") {
      cfg.txns_per_stream = num();
    } else if (arg == "--batch") {
      cfg.batch_size = std::max<std::size_t>(1, num());
    } else if (arg == "--keys") {
      cfg.num_keys = static_cast<std::uint32_t>(num());
    } else if (arg == "--ops") {
      cfg.ops_per_txn = num();
    } else if (arg == "--seed") {
      cfg.seed = num();
    } else if (arg == "--attempts") {
      cfg.retry.max_attempts = std::max<std::size_t>(1, num());
    } else if (arg == "--write-ratio") {
      cfg.write_ratio = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--duration") {
      cfg.duration_seconds = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--status-every") {
      cfg.status_every = std::max<std::size_t>(1, num());
    } else if (arg == "--json") {
      json_path = value;
    } else if (arg == "--failover") {
      const std::size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == value.size()) {
        return usage();
      }
      const unsigned long long p =
          std::strtoull(value.c_str() + colon + 1, nullptr, 10);
      if (p == 0 || p > 65535) return usage();
      cfg.failover_host = value.substr(0, colon);
      cfg.failover_port = static_cast<std::uint16_t>(p);
    } else if (arg == "--model") {
      std::string lower = value;
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower == "ser") {
        cfg.model = sia::service::ServiceModel::kSER;
      } else if (lower == "si") {
        cfg.model = sia::service::ServiceModel::kSI;
      } else if (lower == "psi") {
        cfg.model = sia::service::ServiceModel::kPSI;
      } else if (lower == "ssi") {
        cfg.model = sia::service::ServiceModel::kSSI;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  std::string json;
  bool ok = false;
  try {
    if (cfg.duration_seconds > 0) {
      const sia::service::EndlessReport report =
          sia::service::run_endless(cfg);
      sia::service::print_report(cfg, report);
      json = sia::service::to_json(cfg, report);
      ok = sia::service::clean(report);
    } else {
      const sia::service::LoadReport report = sia::service::run_load(cfg);
      sia::service::print_report(cfg, report);
      json = sia::service::to_json(cfg, report);
      ok = sia::service::clean(report);
    }
  } catch (const sia::ModelError& e) {
    std::fprintf(stderr, "sia_loadgen: %s\n", e.what());
    return 2;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "sia_loadgen: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
