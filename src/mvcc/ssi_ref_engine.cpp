#include "mvcc/ssi_ref_engine.hpp"

#include <algorithm>
#include <cassert>

#include "fault/fault.hpp"

namespace sia::mvcc {

SSIRefDatabase::SSIRefDatabase(std::uint32_t num_keys, Recorder* recorder,
                               fault::FaultInjector* fault)
    : chains_(num_keys), recorder_(recorder), fault_(fault) {
  for (Chain& c : chains_) {
    c.versions.push_back(Version{0, 0, /*writer token*/ 0});
  }
  meta_.emplace(0, TxnMeta{0, 0, true, false, false, false, false});
  handle_of_.emplace(0, kInitHandle);
}

SSIRefSession SSIRefDatabase::make_session() {
  const std::lock_guard<std::mutex> lock(session_mutex_);
  return SSIRefSession(this, next_session_++);
}

SSIRefTransaction SSIRefDatabase::begin(SSIRefSession& session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_.fetch_add(1);
  const Timestamp start = clock_.load();
  meta_.emplace(token, TxnMeta{start, 0, false, false, false, false, false});
  return SSIRefTransaction(this, session.id(), token, start);
}

bool SSIRefDatabase::concurrent(const TxnMeta& a, const TxnMeta& b) const {
  // Lifetimes overlap unless one committed before the other started.
  const bool a_before_b = a.committed && a.commit_ts <= b.start_ts;
  const bool b_before_a = b.committed && b.commit_ts <= a.start_ts;
  return !a_before_b && !b_before_a;
}

Value SSIRefDatabase::read_locked(SSIRefTransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Chain& chain = chains_[key];
  TxnMeta& me = meta_.at(txn.token_);

  // Snapshot read: last version with ts <= start.
  const auto it = std::upper_bound(
      chain.versions.begin(), chain.versions.end(), txn.start_ts_,
      [](Timestamp t, const Version& v) { return t < v.ts; });
  assert(it != chain.versions.begin());
  const Version& visible = *(it - 1);

  // SIREAD registration (dedup: one entry per reader per key suffices).
  if (std::find(chain.readers.begin(), chain.readers.end(), txn.token_) ==
      chain.readers.end()) {
    chain.readers.push_back(txn.token_);
  }

  // Anti-dependencies against committed versions newer than the snapshot:
  // this transaction reads "into the past" of those writers.
  for (auto newer = it; newer != chain.versions.end(); ++newer) {
    TxnMeta& writer = meta_.at(newer->writer);
    me.out_conflict = true;
    writer.in_conflict = true;
    if (writer.committed && writer.out_conflict) {
      // The writer is a committed pivot-in-waiting; the only abortable
      // party is this reader.
      me.doomed = true;
    }
  }
  if (me.in_conflict && me.out_conflict) me.doomed = true;

  txn.events_.push_back(sia::read(key, visible.value));
  txn.observed_.push_back(handle_of_.at(visible.writer));
  return visible.value;
}

SSIRefTransaction& SSIRefTransaction::operator=(
    SSIRefTransaction&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && !finished_) abort();
    db_ = other.db_;
    session_ = other.session_;
    token_ = other.token_;
    start_ts_ = other.start_ts_;
    finished_ = other.finished_;
    write_buffer_ = std::move(other.write_buffer_);
    events_ = std::move(other.events_);
    observed_ = std::move(other.observed_);
    other.db_ = nullptr;
    other.finished_ = true;
  }
  return *this;
}

SSIRefTransaction::~SSIRefTransaction() {
  if (db_ != nullptr && !finished_) abort();
}

Value SSIRefTransaction::read(ObjId key) {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreRead);
    } catch (const fault::FaultInjected&) {
      abort();  // marks meta_ aborted so conflict checks ignore us
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  return db_->read_locked(*this, key);
}

void SSIRefTransaction::write(ObjId key, Value value) {
  assert(!finished_);
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);
}

bool SSIRefDatabase::try_commit(SSIRefTransaction& txn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TxnMeta& me = meta_.at(txn.token_);

  // Plain SI first-committer-wins validation.
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    if (chains_[key].versions.back().ts > txn.start_ts_) {
      me.aborted = true;
      aborts_.fetch_add(1);
      return false;
    }
  }

  // Anti-dependencies *into* this writer from earlier readers of its
  // write set that could not have seen the new versions.
  bool ssi_abort = me.doomed;
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    for (const std::uint64_t reader_token : chains_[key].readers) {
      if (reader_token == txn.token_) continue;
      TxnMeta& reader = meta_.at(reader_token);
      if (reader.aborted) continue;
      if (!concurrent(reader, me)) continue;  // old readers: harmless edge
      reader.out_conflict = true;
      me.in_conflict = true;
      if (reader.committed && reader.in_conflict) {
        // The reader is a committed transaction that now has both an
        // inbound and outbound anti-dependency: the dangerous structure
        // would complete if we commit. We are the only abortable party.
        ssi_abort = true;
      }
      if (!reader.committed && reader.in_conflict) {
        reader.doomed = true;  // active pivot: it will abort at commit
      }
    }
  }
  if (me.in_conflict && me.out_conflict) ssi_abort = true;
  if (ssi_abort) {
    me.aborted = true;
    aborts_.fetch_add(1);
    ssi_aborts_.fetch_add(1);
    return false;
  }

  // Mid-commit fault window: both validations passed, no version installed
  // yet. The catch in commit() marks our metadata aborted.
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kMidCommit);
  }

  const Timestamp ts = clock_.fetch_add(1) + 1;
  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    record.write_versions[key] = ts;
  }
  const TxnHandle handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;
  handle_of_[txn.token_] = handle;
  for (const auto& [key, value] : txn.write_buffer_) {
    chains_[key].versions.push_back(Version{ts, value, txn.token_});
  }
  me.committed = true;
  me.commit_ts = ts;
  return true;
}

bool SSIRefTransaction::commit() {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreCommit);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  finished_ = true;
  bool committed;
  try {
    committed = db_->try_commit(*this);
  } catch (const fault::FaultInjected&) {
    // Mid-commit fault: validation passed but nothing was installed; mark
    // the metadata aborted so later conflict checks ignore this txn.
    const std::lock_guard<std::mutex> lock(db_->mutex_);
    db_->meta_.at(token_).aborted = true;
    db_->aborts_.fetch_add(1);
    throw;
  }
  if (committed) {
    db_->commits_.fetch_add(1);
    db_->post_commit_fault();
    return true;
  }
  return false;
}

void SSIRefTransaction::abort() {
  if (finished_) return;
  finished_ = true;
  const std::lock_guard<std::mutex> lock(db_->mutex_);
  db_->meta_.at(token_).aborted = true;
}

void SSIRefDatabase::post_commit_fault() {
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kPostCommit);
  }
}

}  // namespace sia::mvcc
