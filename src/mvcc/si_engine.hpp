#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "core/flat_map.hpp"
#include "core/types.hpp"
#include "fault/retry.hpp"
#include "mvcc/recorder.hpp"

/// \file si_engine.hpp
/// An operational multi-version snapshot-isolation engine implementing the
/// idealised concurrency-control algorithm of §1:
///  - a transaction reads from the snapshot taken at its start (plus its
///    own buffered writes);
///  - it commits only if no committed transaction has written any of its
///    write keys since its snapshot (first-committer-wins write-conflict
///    detection), otherwise it aborts;
///  - committed writes become visible to transactions that take their
///    snapshot afterwards.
/// Sessions are first-class: a session's transactions are issued one after
/// the other, and the global timestamp oracle makes every later snapshot
/// include the session's earlier commits (strong session SI).
///
/// The engine is thread-safe: one thread per session is the intended
/// concurrency pattern. Every commit is reported to the Recorder with
/// engine truth (observed writers, per-key versions), so runs can be
/// checked against the declarative specification (Theorem 9).
///
/// Fault injection: an optional FaultInjector (fault/fault.hpp) fires at
/// pre-read, pre-commit, mid-commit (validation passed, nothing installed)
/// and post-commit (installed and recorded, acknowledgement not yet
/// delivered). Injected aborts/crashes surface as fault::FaultInjected
/// *after* the engine restored its invariants; with no injector the hooks
/// are a single pointer test.

namespace sia::fault {
class FaultInjector;
}

namespace sia::mvcc {

/// Timestamps issued by the engine's global clock.
using Timestamp = std::uint64_t;

/// One committed version of a key.
struct Version {
  Timestamp ts{0};
  Value value{0};
  TxnHandle writer{kInitHandle};
};

class SIDatabase;

/// A client session (a sequence of transactions; strong session SI).
/// Obtain from SIDatabase::make_session(); use from a single thread.
class SISession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }

 private:
  friend class SIDatabase;
  friend class SITransaction;
  SISession(SIDatabase* db, SessionId id) : db_(db), id_(id) {}
  SIDatabase* db_;
  SessionId id_;
};

/// An in-flight transaction. Move-only; must end in commit() or abort().
class SITransaction {
 public:
  SITransaction(const SITransaction&) = delete;
  SITransaction& operator=(const SITransaction&) = delete;
  SITransaction(SITransaction&& other) noexcept { *this = std::move(other); }
  SITransaction& operator=(SITransaction&& other) noexcept;
  /// A transaction dropped without commit() aborts (RAII).
  ~SITransaction();

  /// Reads \p key from the snapshot (or the own-write buffer).
  [[nodiscard]] Value read(ObjId key);

  /// Buffers a write of \p value to \p key.
  void write(ObjId key, Value value);

  /// First-committer-wins commit. Returns true on success; on conflict the
  /// transaction aborts and returns false (the client may retry with a new
  /// transaction, cf. the Shasha et al. client assumptions in §5).
  [[nodiscard]] bool commit();

  /// Discards the transaction.
  void abort();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] Timestamp snapshot() const { return start_ts_; }

 private:
  friend class SIDatabase;
  SITransaction(SIDatabase* db, SessionId session, Timestamp start_ts)
      : db_(db), session_(session), start_ts_(start_ts) {}

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  SIDatabase* db_{nullptr};
  SessionId session_{0};
  Timestamp start_ts_{0};
  bool finished_{false};
  FlatMap<ObjId, Value> write_buffer_;
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

/// The database: a fixed key space (keys 0 .. num_keys-1, initial value 0)
/// with per-key version chains.
class SIDatabase {
 public:
  /// \param recorder optional commit log for offline analysis.
  /// \param fault optional fault injector; see the file comment.
  explicit SIDatabase(std::uint32_t num_keys, Recorder* recorder = nullptr,
                      fault::FaultInjector* fault = nullptr);

  /// Creates a new session.
  [[nodiscard]] SISession make_session();

  /// Starts a transaction in \p session, snapshotting now.
  [[nodiscard]] SITransaction begin(SISession& session);

  /// Runs \p body in a transaction, retrying on write-conflict abort until
  /// it commits. \p body receives the transaction and may read/write; it
  /// must not call commit()/abort() itself. Returns the number of attempts.
  /// The loop is bounded by \p retry (fault::kEngineRunPolicy by default)
  /// with deterministic backoff between attempts; exhaustion throws
  /// ModelError. Fault-free loop: with an injector configured, use
  /// fault::RetryingClient, which classifies and bounds injected failures.
  template <typename Body>
  std::size_t run(SISession& session, Body&& body,
                  const fault::RetryPolicy& retry = fault::kEngineRunPolicy) {
    for (std::size_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      SITransaction txn = begin(session);
      body(txn);
      if (txn.commit()) return attempt;
      fault::serve_backoff(retry, attempt);
    }
    throw ModelError("SIDatabase::run: retry budget exhausted");
  }

  [[nodiscard]] std::uint32_t num_keys() const {
    return static_cast<std::uint32_t>(chains_.size());
  }

  /// Commits so far (aborted transactions are invisible, as in the
  /// paper's histories).
  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }

  // ----- version garbage collection ------------------------------------

  /// Oldest snapshot any in-flight transaction may read from (the
  /// current clock when none is active).
  [[nodiscard]] Timestamp min_active_snapshot() const;

  /// Prunes versions no active snapshot can reach: for every key, all
  /// versions strictly older than the newest version with
  /// ts <= \p watermark are dropped. Returns versions freed. Safe for
  /// any watermark <= min_active_snapshot().
  std::size_t gc(Timestamp watermark);

  /// gc(min_active_snapshot()).
  std::size_t gc() { return gc(min_active_snapshot()); }

  /// Total retained versions across all keys (for tests/metrics).
  [[nodiscard]] std::size_t version_count() const;

 private:
  friend class SITransaction;

  struct Chain {
    mutable std::shared_mutex mutex;
    std::vector<Version> versions;  ///< ascending ts; [0] is the initial 0
  };

  /// Latest version of \p key with ts <= \p at.
  [[nodiscard]] Version read_version(ObjId key, Timestamp at) const;

  /// First-committer-wins validation + install; called by commit().
  bool try_commit(SITransaction& txn);

  /// Fires the post-commit fault site (lost-acknowledgement crashes). The
  /// commit stands regardless of what the hook throws.
  void post_commit_fault();

  /// Removes one active-snapshot registration (commit/abort/destroy).
  void release_snapshot(Timestamp start_ts);

  std::vector<Chain> chains_;
  std::atomic<Timestamp> clock_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  mutable std::mutex commit_mutex_;
  /// Snapshots of in-flight transactions, guarded by commit_mutex_.
  std::multiset<Timestamp> active_snapshots_;
  std::mutex session_mutex_;
  SessionId next_session_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;
};

}  // namespace sia::mvcc
