#include "mvcc/ssi_engine.hpp"

#include <algorithm>
#include <cassert>

#include "fault/fault.hpp"

namespace sia::mvcc {

namespace {

// Version prefixes are pruned lazily on the write path once a chain holds
// this many versions (an O(prefix) vector erase, amortised across the
// writes that grew the chain); the periodic sweep prunes unconditionally.
constexpr std::size_t kChainPruneThreshold = 64;

// Every this many finished transactions, sweep all chains — catches
// SIREAD entries and version prefixes on keys the commit path no longer
// touches (read-mostly keys never scanned by a writer again).
constexpr std::uint64_t kSweepInterval = 256;

}  // namespace

SSIDatabase::SSIDatabase(std::uint32_t num_keys, Recorder* recorder,
                         fault::FaultInjector* fault)
    : chains_(num_keys), recorder_(recorder), fault_(fault) {
  for (Chain& c : chains_) {
    c.versions.push_back(SSIVersion{0, 0, /*writer token*/ 0, kInitHandle});
  }
  // Token 0 is the initial pseudo-transaction (committed at ts 0). Its
  // slot is pruned at the first watermark advance; nothing looks it up —
  // reads take the handle from the version, and anti-dependency scans
  // only touch versions with ts > some snapshot >= 0.
  meta_.push_back(TxnMeta{0, 0, true, false, false, false, false});
}

SSISession SSIDatabase::make_session() {
  const std::lock_guard<std::mutex> lock(session_mutex_);
  return SSISession(this, next_session_++);
}

SSITransaction SSIDatabase::begin(SSISession& session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_.fetch_add(1);
  const Timestamp start = clock_.load();
  assert(token - base_token_ == meta_.size());
  meta_.push_back(TxnMeta{start, 0, false, false, false, false, false});
  active_.insert(token);
  // The watermark never moves here: with active transactions it is their
  // min start_ts <= start; with none it was set to the clock at the last
  // finish, and the clock has not advanced since (only commits advance
  // it, and commits need an active transaction).
  return SSITransaction(this, session.id(), token, start);
}

bool SSIDatabase::concurrent(const TxnMeta& a, const TxnMeta& b) const {
  // Lifetimes overlap unless one committed before the other started.
  const bool a_before_b = a.committed && a.commit_ts <= b.start_ts;
  const bool b_before_a = b.committed && b.commit_ts <= a.start_ts;
  return !a_before_b && !b_before_a;
}

Value SSIDatabase::read_locked(SSITransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Chain& chain = chains_[key];
  TxnMeta& me = meta_of(txn.token_);

  // Snapshot read: last version with ts <= start.
  const auto it = std::upper_bound(
      chain.versions.begin(), chain.versions.end(), txn.start_ts_,
      [](Timestamp t, const SSIVersion& v) { return t < v.ts; });
  assert(it != chain.versions.begin());
  const SSIVersion& visible = *(it - 1);

  // SIREAD registration, deduplicated against the transaction's own read
  // set (the chain's list may hold thousands of other readers).
  if (txn.note_read(key)) chain.readers.push_back(txn.token_);

  // Anti-dependencies against committed versions newer than the snapshot:
  // this transaction reads "into the past" of those writers. Such writers
  // have commit_ts > start_ts >= watermark, so their meta is retained.
  for (auto newer = it; newer != chain.versions.end(); ++newer) {
    TxnMeta& writer = meta_of(newer->writer);
    me.out_conflict = true;
    writer.in_conflict = true;
    if (writer.committed && writer.out_conflict) {
      // The writer is a committed pivot-in-waiting; the only abortable
      // party is this reader.
      me.doomed = true;
    }
  }
  if (me.in_conflict && me.out_conflict) me.doomed = true;

  txn.events_.push_back(sia::read(key, visible.value));
  txn.observed_.push_back(visible.handle);
  return visible.value;
}

SSITransaction& SSITransaction::operator=(SSITransaction&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && !finished_) abort();
    db_ = other.db_;
    session_ = other.session_;
    token_ = other.token_;
    start_ts_ = other.start_ts_;
    finished_ = other.finished_;
    write_buffer_ = std::move(other.write_buffer_);
    read_keys_ = std::move(other.read_keys_);
    events_ = std::move(other.events_);
    observed_ = std::move(other.observed_);
    other.db_ = nullptr;
    other.finished_ = true;
  }
  return *this;
}

SSITransaction::~SSITransaction() {
  if (db_ != nullptr && !finished_) abort();
}

bool SSITransaction::note_read(ObjId key) {
  const auto it = std::lower_bound(read_keys_.begin(), read_keys_.end(), key);
  if (it != read_keys_.end() && *it == key) return false;
  read_keys_.insert(it, key);
  return true;
}

Value SSITransaction::read(ObjId key) {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreRead);
    } catch (const fault::FaultInjected&) {
      abort();  // marks meta_ aborted so conflict checks ignore us
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  return db_->read_locked(*this, key);
}

void SSITransaction::write(ObjId key, Value value) {
  assert(!finished_);
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);
}

bool SSIDatabase::try_commit(SSITransaction& txn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TxnMeta& me = meta_of(txn.token_);

  // Plain SI first-committer-wins validation.
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    if (chains_[key].versions.back().ts > txn.start_ts_) {
      me.aborted = true;
      aborts_.fetch_add(1);
      finish_locked(txn.token_);
      return false;
    }
  }

  // Anti-dependencies *into* this writer from earlier readers of its
  // write set that could not have seen the new versions. Dead entries
  // (aborted, or committed at or before the watermark: concurrent() is
  // false against every present and future transaction) are compacted in
  // passing — exactly the entries the reference engine skips, so the
  // flags computed here are identical.
  bool ssi_abort = me.doomed;
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    std::vector<std::uint64_t>& readers = chains_[key].readers;
    for (std::size_t i = 0; i < readers.size();) {
      const std::uint64_t reader_token = readers[i];
      if (reader_token == txn.token_) {
        ++i;
        continue;
      }
      if (reader_token < base_token_) {  // meta already pruned: dead
        readers[i] = readers.back();
        readers.pop_back();
        continue;
      }
      TxnMeta& reader = meta_of(reader_token);
      if (prunable(reader)) {
        readers[i] = readers.back();
        readers.pop_back();
        continue;
      }
      if (!concurrent(reader, me)) {  // old readers: harmless edge
        ++i;
        continue;
      }
      reader.out_conflict = true;
      me.in_conflict = true;
      if (reader.committed && reader.in_conflict) {
        // The reader is a committed transaction that now has both an
        // inbound and outbound anti-dependency: the dangerous structure
        // would complete if we commit. We are the only abortable party.
        ssi_abort = true;
      }
      if (!reader.committed && reader.in_conflict) {
        reader.doomed = true;  // active pivot: it will abort at commit
      }
      ++i;
    }
  }
  if (me.in_conflict && me.out_conflict) ssi_abort = true;
  if (ssi_abort) {
    me.aborted = true;
    aborts_.fetch_add(1);
    ssi_aborts_.fetch_add(1);
    finish_locked(txn.token_);
    return false;
  }

  // Mid-commit fault window: both validations passed, no version installed
  // yet. The catch in commit() marks our metadata aborted.
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kMidCommit);
  }

  const Timestamp ts = clock_.fetch_add(1) + 1;
  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    record.write_versions[key] = ts;
  }
  const TxnHandle handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;
  for (const auto& [key, value] : txn.write_buffer_) {
    Chain& chain = chains_[key];
    if (chain.versions.size() >= kChainPruneThreshold) {
      prune_versions_locked(chain);
    }
    chain.versions.push_back(SSIVersion{ts, value, txn.token_, handle});
  }
  me.committed = true;
  me.commit_ts = ts;
  finish_locked(txn.token_);
  return true;
}

bool SSITransaction::commit() {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreCommit);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  finished_ = true;
  bool committed;
  try {
    committed = db_->try_commit(*this);
  } catch (const fault::FaultInjected&) {
    // Mid-commit fault: validation passed but nothing was installed; mark
    // the metadata aborted so later conflict checks ignore this txn.
    const std::lock_guard<std::mutex> lock(db_->mutex_);
    db_->meta_of(token_).aborted = true;
    db_->finish_locked(token_);
    db_->aborts_.fetch_add(1);
    throw;
  }
  if (committed) {
    db_->commits_.fetch_add(1);
    db_->post_commit_fault();
    return true;
  }
  return false;
}

void SSITransaction::abort() {
  if (finished_) return;
  finished_ = true;
  const std::lock_guard<std::mutex> lock(db_->mutex_);
  db_->meta_of(token_).aborted = true;
  db_->finish_locked(token_);
}

void SSIDatabase::finish_locked(std::uint64_t token) {
  active_.erase(token);
  // Min active token has min start_ts (both issued under mutex_ in begin
  // order), so the watermark is monotone non-decreasing.
  const Timestamp wm =
      active_.empty() ? clock_.load() : meta_of(*active_.begin()).start_ts;
  if (wm > watermark_) watermark_ = wm;
  prune_meta_locked();
  if (++finished_count_ % kSweepInterval == 0) sweep_locked();
}

void SSIDatabase::prune_meta_locked() {
  // Active transactions are never prunable (neither committed nor
  // aborted), so the ring base can never overtake an active token.
  while (!meta_.empty() && prunable(meta_.front())) {
    meta_.pop_front();
    ++base_token_;
  }
}

void SSIDatabase::prune_versions_locked(Chain& chain) {
  // First version with ts > watermark; everything strictly before its
  // predecessor is unreachable from any active snapshot (all >= the
  // watermark), matching SIDatabase::gc.
  const auto it = std::upper_bound(
      chain.versions.begin(), chain.versions.end(), watermark_,
      [](Timestamp t, const SSIVersion& v) { return t < v.ts; });
  assert(it != chain.versions.begin());
  chain.versions.erase(chain.versions.begin(), it - 1);
}

void SSIDatabase::sweep_locked() {
  for (Chain& chain : chains_) {
    std::vector<std::uint64_t>& readers = chain.readers;
    for (std::size_t i = 0; i < readers.size();) {
      const std::uint64_t token = readers[i];
      if (token < base_token_ || prunable(meta_of(token))) {
        readers[i] = readers.back();
        readers.pop_back();
      } else {
        ++i;
      }
    }
    prune_versions_locked(chain);
  }
}

Timestamp SSIDatabase::watermark() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return watermark_;
}

std::size_t SSIDatabase::meta_retained() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return meta_.size();
}

std::size_t SSIDatabase::siread_retained() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const Chain& chain : chains_) total += chain.readers.size();
  return total;
}

std::size_t SSIDatabase::version_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const Chain& chain : chains_) total += chain.versions.size();
  return total;
}

void SSIDatabase::post_commit_fault() {
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kPostCommit);
  }
}

}  // namespace sia::mvcc
