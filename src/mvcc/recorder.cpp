#include "mvcc/recorder.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "mvcc/recorder_log.hpp"

namespace sia::mvcc {

TxnHandle Recorder::record(CommitRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Write-ahead: the record is durable before the handle is handed back
  // to the engine (which is still inside its commit critical section).
  if (wal_ != nullptr) wal_->append(record);
  records_.push_back(std::move(record));
  return static_cast<TxnHandle>(records_.size());  // handles start at 1
}

std::size_t Recorder::commit_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<CommitRecord> Recorder::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

RecordedRun Recorder::build() const {
  std::vector<CommitRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records = records_;
  }

  // Keys touched anywhere: the init transaction writes 0 to each.
  std::set<ObjId> keys;
  for (const CommitRecord& r : records) {
    for (const Event& e : r.events) keys.insert(e.obj);
  }

  History h;
  {
    Transaction init;
    for (ObjId k : keys) init.append(write(k, 0));
    h.append_singleton(std::move(init));  // TxnId 0, session 0
  }
  for (const CommitRecord& r : records) {
    // Client session s maps to history session s + 1 (0 is the init's).
    h.append(r.session + 1, Transaction(r.events));
  }

  DependencyGraph g(h);

  // WR: first event per object, when it is a read, was observed from the
  // recorded writer.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TxnId reader = static_cast<TxnId>(i + 1);
    std::unordered_set<ObjId> seen;
    const CommitRecord& r = records[i];
    for (std::size_t e = 0; e < r.events.size(); ++e) {
      const Event& ev = r.events[e];
      if (!seen.insert(ev.obj).second) continue;
      if (!ev.is_read()) continue;
      if (e >= r.observed_writer.size()) {
        throw ModelError("Recorder: commit record lacks observed_writer for "
                         "read event");
      }
      g.set_read_from(ev.obj, RecordedRun::txn_of(r.observed_writer[e]),
                      reader);
    }
  }

  // WW(x): init first, then writers by engine version number.
  for (ObjId k : keys) {
    std::vector<std::pair<std::uint64_t, TxnId>> writers;
    for (std::size_t i = 0; i < records.size(); ++i) {
      auto it = records[i].write_versions.find(k);
      if (it != records[i].write_versions.end()) {
        writers.emplace_back(it->second, static_cast<TxnId>(i + 1));
      }
    }
    std::sort(writers.begin(), writers.end());
    for (std::size_t i = 1; i < writers.size(); ++i) {
      if (writers[i].first == writers[i - 1].first) {
        throw ModelError("Recorder: duplicate version number for obj" +
                         std::to_string(k));
      }
    }
    std::vector<TxnId> order{0};  // the init transaction
    for (const auto& [version, id] : writers) {
      (void)version;
      order.push_back(id);
    }
    g.set_write_order(k, std::move(order));
  }

  if (auto v = g.validate()) {
    throw ModelError("Recorder: engine-reported graph violates Definition 6: " +
                     v->detail);
  }
  return RecordedRun{std::move(h), std::move(g)};
}

}  // namespace sia::mvcc
