#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "mvcc/recorder.hpp"
#include "mvcc/si_engine.hpp"

/// \file ssi_ref_engine.hpp
/// The *frozen reference* SSI engine: a verbatim copy of the pre-overhaul
/// implementation (unbounded `std::map` token metadata, SIREAD reader
/// lists kept forever, O(#readers-ever) scans). It exists solely as the
/// differential-testing oracle for the epoch-pruned production engine in
/// ssi_engine.hpp: both engines are driven through identical deterministic
/// schedules and must produce bit-identical commit/abort verdicts,
/// `ssi_aborts()` counts and recorded histories (tests/test_ssi_diff.cpp),
/// and bench_ssi_hotpath times the two against each other (E19).
///
/// Do not "fix" or optimise this engine — its value is that it does not
/// change. Semantics documented in ssi_engine.hpp apply unchanged.

namespace sia::fault {
class FaultInjector;
}

namespace sia::mvcc {

class SSIRefDatabase;

/// A client session; see SIDatabase for the session semantics.
class SSIRefSession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }

 private:
  friend class SSIRefDatabase;
  SSIRefSession(SSIRefDatabase* db, SessionId id) : db_(db), id_(id) {}
  SSIRefDatabase* db_;
  SessionId id_;
};

/// An in-flight reference-SSI transaction. Move-only; a transaction
/// dropped without commit() aborts (RAII), and a moved-from object is
/// inert.
class SSIRefTransaction {
 public:
  SSIRefTransaction(const SSIRefTransaction&) = delete;
  SSIRefTransaction& operator=(const SSIRefTransaction&) = delete;
  SSIRefTransaction(SSIRefTransaction&& other) noexcept {
    *this = std::move(other);
  }
  SSIRefTransaction& operator=(SSIRefTransaction&& other) noexcept;
  ~SSIRefTransaction();

  [[nodiscard]] Value read(ObjId key);

  void write(ObjId key, Value value);

  /// SI validation + pivot prevention. False = aborted; retry.
  [[nodiscard]] bool commit();

  void abort();

 private:
  friend class SSIRefDatabase;
  SSIRefTransaction(SSIRefDatabase* db, SessionId session, std::uint64_t token,
                    Timestamp start_ts)
      : db_(db), session_(session), token_(token), start_ts_(start_ts) {}

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  SSIRefDatabase* db_{nullptr};
  SessionId session_{0};
  std::uint64_t token_{0};
  Timestamp start_ts_{0};
  bool finished_{false};
  std::map<ObjId, Value> write_buffer_;
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

class SSIRefDatabase {
 public:
  explicit SSIRefDatabase(std::uint32_t num_keys, Recorder* recorder = nullptr,
                          fault::FaultInjector* fault = nullptr);

  [[nodiscard]] SSIRefSession make_session();
  [[nodiscard]] SSIRefTransaction begin(SSIRefSession& session);

  /// Retry-until-commit helper, unbounded like the original (the frozen
  /// reference predates the RetryPolicy-bounded run()).
  template <typename Body>
  std::size_t run(SSIRefSession& session, Body&& body) {
    for (std::size_t attempt = 1;; ++attempt) {
      SSIRefTransaction txn = begin(session);
      body(txn);
      if (txn.commit()) return attempt;
    }
  }

  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }
  /// Aborts caused by pivot prevention (vs plain write conflicts).
  [[nodiscard]] std::uint64_t ssi_aborts() const { return ssi_aborts_.load(); }

 private:
  friend class SSIRefTransaction;

  /// Conflict-flag record of a (possibly committed) transaction.
  struct TxnMeta {
    Timestamp start_ts{0};
    Timestamp commit_ts{0};  ///< 0 while active
    bool committed{false};
    bool aborted{false};
    bool in_conflict{false};   ///< someone anti-depends on it
    bool out_conflict{false};  ///< it anti-depends on someone
    bool doomed{false};        ///< must abort at commit
  };

  struct Chain {
    std::vector<Version> versions;  ///< ascending ts; writer = token here
    std::vector<std::uint64_t> readers;  ///< SIREAD tokens, kept forever
  };

  [[nodiscard]] bool concurrent(const TxnMeta& a, const TxnMeta& b) const;

  Value read_locked(SSIRefTransaction& txn, ObjId key);
  bool try_commit(SSIRefTransaction& txn);

  void post_commit_fault();

  std::vector<Chain> chains_;
  std::map<std::uint64_t, TxnMeta> meta_;
  std::map<std::uint64_t, TxnHandle> handle_of_;  ///< token -> recorder id
  std::atomic<Timestamp> clock_{0};
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> ssi_aborts_{0};
  std::mutex mutex_;  ///< guards chains_, meta_, clock transitions
  std::mutex session_mutex_;
  SessionId next_session_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;
};

}  // namespace sia::mvcc
