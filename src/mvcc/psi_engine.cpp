#include "mvcc/psi_engine.hpp"

#include <cassert>
#include <chrono>

#include "fault/fault.hpp"

namespace sia::mvcc {

PSIDatabase::PSIDatabase(std::uint32_t num_keys, ReplicaId num_replicas,
                         Recorder* recorder, fault::FaultInjector* fault)
    : replicas_(num_replicas),
      latest_version_(num_keys, 0),
      num_keys_(num_keys),
      recorder_(recorder),
      fault_(fault) {
  if (num_replicas == 0) {
    throw ModelError("PSIDatabase: need at least one replica");
  }
  for (Replica& r : replicas_) {
    r.chains.resize(num_keys);
    r.applied_per_home.assign(num_replicas, 0);
    // Version 0 of every key (the init transaction) is pre-applied
    // everywhere with apply_seq 0.
    for (std::uint32_t k = 0; k < num_keys; ++k) {
      r.chains[k].push_back(Applied{0, 0, 0, kInitHandle});
    }
  }
}

PSIDatabase::~PSIDatabase() { stop_auto_replication(); }

PSISession PSIDatabase::make_session(ReplicaId home) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (home >= replicas_.size()) {
    throw ModelError("PSIDatabase: no such replica");
  }
  return PSISession(this, next_session_++, home);
}

PSITransaction PSIDatabase::begin(PSISession& session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return PSITransaction(this, session.id(), session.home(),
                        replicas_[session.home()].apply_seq);
}

const PSIDatabase::Applied* PSIDatabase::visible_version(
    const Replica& r, ObjId key, std::uint64_t snapshot_seq) const {
  const std::vector<Applied>& chain = r.chains[key];
  // Same-key versions are causally ordered (the conflict check makes a
  // later writer see the earlier version), so a replica applies them in
  // version order: the chain is ascending in both apply_seq and version.
  const Applied* result = nullptr;
  for (const Applied& a : chain) {
    if (a.apply_seq > snapshot_seq) break;
    result = &a;
  }
  return result;
}

PSITransaction& PSITransaction::operator=(PSITransaction&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && !finished_) abort();
    db_ = other.db_;
    session_ = other.session_;
    home_ = other.home_;
    snapshot_seq_ = other.snapshot_seq_;
    finished_ = other.finished_;
    write_buffer_ = std::move(other.write_buffer_);
    events_ = std::move(other.events_);
    observed_ = std::move(other.observed_);
    other.db_ = nullptr;
    other.finished_ = true;
  }
  return *this;
}

PSITransaction::~PSITransaction() {
  if (db_ != nullptr && !finished_) abort();
}

Value PSITransaction::read(ObjId key) {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreRead);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  const std::lock_guard<std::mutex> lock(db_->mutex_);
  const auto* v = db_->visible_version(db_->replicas_[home_], key,
                                       snapshot_seq_);
  assert(v != nullptr);  // version 0 is always applied
  events_.push_back(sia::read(key, v->value));
  observed_.push_back(v->writer);
  return v->value;
}

void PSITransaction::write(ObjId key, Value value) {
  assert(!finished_);
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);
}

bool PSITransaction::commit() {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreCommit);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  finished_ = true;
  bool committed;
  try {
    committed = db_->try_commit(*this);
  } catch (const fault::FaultInjected&) {
    // Mid-commit fault: NOCONFLICT passed but no version was assigned,
    // applied or queued — the transaction simply aborted.
    db_->aborts_.fetch_add(1);
    throw;
  }
  if (committed) {
    db_->commits_.fetch_add(1);
    db_->post_commit_fault();
    return true;
  }
  db_->aborts_.fetch_add(1);
  return false;
}

void PSITransaction::abort() {
  if (finished_) return;
  finished_ = true;
}

bool PSIDatabase::try_commit(PSITransaction& txn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Replica& home = replicas_[txn.home_];

  if (!txn.write_buffer_.empty()) {
    // NOCONFLICT / first committer wins, globally: the version of each
    // write key visible in our snapshot must still be the key's globally
    // latest version.
    for (const auto& [key, value] : txn.write_buffer_) {
      (void)value;
      const Applied* seen = visible_version(home, key, txn.snapshot_seq_);
      if (seen == nullptr || seen->version != latest_version_[key]) {
        return false;
      }
    }
  }

  // Mid-commit fault window: NOCONFLICT passed, nothing assigned yet.
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kMidCommit);
  }

  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  PsiCommit commit;
  commit.home = txn.home_;
  commit.deps = home.applied_per_home;  // everything applied at home so far
  for (const auto& [key, value] : txn.write_buffer_) {
    const std::uint64_t version = ++latest_version_[key];
    commit.writes[key] = std::make_pair(value, version);
    record.write_versions[key] = version;
  }
  commit.handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;

  if (txn.write_buffer_.empty()) return true;  // nothing to replicate

  commits_log_.push_back(std::move(commit));
  const std::size_t idx = commits_log_.size() - 1;
  apply_at(home, idx);  // synchronous at home (session guarantee)
  for (ReplicaId r = 0; r < replicas_.size(); ++r) {
    if (r != txn.home_) replicas_[r].pending.push_back(idx);
  }
  return true;
}

void PSIDatabase::post_commit_fault() {
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kPostCommit);
  }
}

void PSIDatabase::apply_at(Replica& r, std::size_t idx) {
  const PsiCommit& c = commits_log_[idx];
  ++r.apply_seq;
  for (const auto& [key, vv] : c.writes) {
    r.chains[key].push_back(Applied{r.apply_seq, vv.second, vv.first,
                                    c.handle});
  }
  ++r.applied_per_home[c.home];
}

std::size_t PSIDatabase::pump(ReplicaId replica, std::size_t max_steps) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Replica& r = replicas_[replica];
  std::size_t applied = 0;
  bool progress = true;
  while (progress && applied < max_steps) {
    progress = false;
    for (auto it = r.pending.begin(); it != r.pending.end();) {
      const PsiCommit& c = commits_log_[*it];
      bool ready = true;
      for (ReplicaId h = 0; h < replicas_.size(); ++h) {
        if (r.applied_per_home[h] < c.deps[h]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        apply_at(r, *it);
        it = r.pending.erase(it);
        ++applied;
        progress = true;
        if (applied >= max_steps) break;
      } else {
        ++it;
      }
    }
  }
  return applied;
}

std::size_t PSIDatabase::pump_all() {
  std::size_t total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ReplicaId r = 0; r < replicas_.size(); ++r) {
      const std::size_t n = pump(r);
      total += n;
      if (n > 0) progress = true;
    }
  }
  return total;
}

void PSIDatabase::start_auto_replication() {
  if (replicate_running_.exchange(true)) return;
  replicator_ = std::thread([this] {
    while (replicate_running_.load()) {
      if (pump_all() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
}

void PSIDatabase::stop_auto_replication() {
  if (!replicate_running_.exchange(false)) return;
  if (replicator_.joinable()) replicator_.join();
}

}  // namespace sia::mvcc
