#include "mvcc/si_engine.hpp"

#include <algorithm>
#include <cassert>

#include "fault/fault.hpp"

namespace sia::mvcc {

SIDatabase::SIDatabase(std::uint32_t num_keys, Recorder* recorder,
                       fault::FaultInjector* fault)
    : chains_(num_keys), recorder_(recorder), fault_(fault) {
  for (Chain& c : chains_) {
    c.versions.push_back(Version{0, 0, kInitHandle});
  }
}

void SIDatabase::post_commit_fault() {
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kPostCommit);
  }
}

SISession SIDatabase::make_session() {
  const std::lock_guard<std::mutex> lock(session_mutex_);
  return SISession(this, next_session_++);
}

SITransaction SIDatabase::begin(SISession& session) {
  // The snapshot timestamp: everything committed so far is visible. Taking
  // the clock under commit_mutex_ guarantees the snapshot is not torn:
  // every commit with ts <= the snapshot has fully installed its versions
  // before releasing the mutex. A session's previous transaction committed
  // at some ts <= clock_, so the strong-session guarantee also holds by
  // construction.
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  const Timestamp start = clock_.load();
  active_snapshots_.insert(start);
  return SITransaction(this, session.id(), start);
}

void SIDatabase::release_snapshot(Timestamp start_ts) {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  const auto it = active_snapshots_.find(start_ts);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
}

Timestamp SIDatabase::min_active_snapshot() const {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  if (active_snapshots_.empty()) return clock_.load();
  return *active_snapshots_.begin();
}

std::size_t SIDatabase::gc(Timestamp watermark) {
  std::size_t freed = 0;
  for (Chain& chain : chains_) {
    const std::lock_guard<std::shared_mutex> lock(chain.mutex);
    // Keep the newest version with ts <= watermark (the snapshot base for
    // every active reader) and everything newer.
    std::size_t keep_from = 0;
    for (std::size_t i = 0; i < chain.versions.size(); ++i) {
      if (chain.versions[i].ts <= watermark) keep_from = i;
    }
    freed += keep_from;
    chain.versions.erase(chain.versions.begin(),
                         chain.versions.begin() +
                             static_cast<std::ptrdiff_t>(keep_from));
  }
  return freed;
}

std::size_t SIDatabase::version_count() const {
  std::size_t count = 0;
  for (const Chain& chain : chains_) {
    const std::shared_lock<std::shared_mutex> lock(chain.mutex);
    count += chain.versions.size();
  }
  return count;
}

Version SIDatabase::read_version(ObjId key, Timestamp at) const {
  const Chain& chain = chains_[key];
  const std::shared_lock<std::shared_mutex> lock(chain.mutex);
  // Versions are appended in ascending ts order; find the last with
  // ts <= at.
  const auto it = std::upper_bound(
      chain.versions.begin(), chain.versions.end(), at,
      [](Timestamp t, const Version& v) { return t < v.ts; });
  assert(it != chain.versions.begin());  // the initial version has ts 0
  return *(it - 1);
}

SITransaction& SITransaction::operator=(SITransaction&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && !finished_) abort();
    db_ = other.db_;
    session_ = other.session_;
    start_ts_ = other.start_ts_;
    finished_ = other.finished_;
    write_buffer_ = std::move(other.write_buffer_);
    events_ = std::move(other.events_);
    observed_ = std::move(other.observed_);
    other.db_ = nullptr;
    other.finished_ = true;
  }
  return *this;
}

SITransaction::~SITransaction() {
  if (db_ != nullptr && !finished_) abort();
}

Value SITransaction::read(ObjId key) {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreRead);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  const Version v = db_->read_version(key, start_ts_);
  events_.push_back(sia::read(key, v.value));
  observed_.push_back(v.writer);
  return v.value;
}

void SITransaction::write(ObjId key, Value value) {
  assert(!finished_);
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);  // placeholder, unused for writes
}

bool SITransaction::commit() {
  assert(!finished_);
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreCommit);
    } catch (const fault::FaultInjected&) {
      abort();
      db_->aborts_.fetch_add(1);
      throw;
    }
  }
  finished_ = true;
  db_->release_snapshot(start_ts_);
  if (write_buffer_.empty()) {
    // Read-only transactions always commit; record them for the history.
    if (db_->recorder_ != nullptr) {
      db_->recorder_->record(
          CommitRecord{session_, events_, observed_, {}});
    }
    db_->commits_.fetch_add(1);
    db_->post_commit_fault();
    return true;
  }
  bool committed;
  try {
    committed = db_->try_commit(*this);
  } catch (const fault::FaultInjected&) {
    // Mid-commit fault: validation had passed but nothing was installed
    // or recorded, so the transaction simply aborted.
    db_->aborts_.fetch_add(1);
    throw;
  }
  if (committed) {
    db_->commits_.fetch_add(1);
    db_->post_commit_fault();
    return true;
  }
  db_->aborts_.fetch_add(1);
  return false;
}

void SITransaction::abort() {
  if (finished_) return;
  finished_ = true;
  db_->release_snapshot(start_ts_);
}

bool SIDatabase::try_commit(SITransaction& txn) {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  // Write-conflict detection: another transaction committed a version of
  // one of our write keys after our snapshot — first committer wins.
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    const Chain& chain = chains_[key];
    const std::shared_lock<std::shared_mutex> chain_lock(chain.mutex);
    if (chain.versions.back().ts > txn.start_ts_) return false;
  }
  // Mid-commit fault window: conflict check passed, no version installed.
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kMidCommit);
  }
  const Timestamp ts = clock_.fetch_add(1) + 1;

  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  for (const auto& [key, value] : txn.write_buffer_) {
    record.write_versions[key] = ts;
  }
  // Handle assignment and version install happen under commit_mutex_, so
  // handle order is commit order.
  const TxnHandle handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;

  for (const auto& [key, value] : txn.write_buffer_) {
    Chain& chain = chains_[key];
    const std::lock_guard<std::shared_mutex> chain_lock(chain.mutex);
    chain.versions.push_back(Version{ts, value, handle});
  }
  return true;
}

}  // namespace sia::mvcc
