#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "core/types.hpp"
#include "fault/retry.hpp"
#include "mvcc/recorder.hpp"

/// \file ser_engine.hpp
/// A serializable engine: strict two-phase locking with no-wait deadlock
/// avoidance. Reads take shared locks, writes exclusive locks (with
/// shared→exclusive upgrade when the transaction is the sole reader); any
/// lock conflict aborts the requester immediately, so no deadlock can
/// form. All locks are held until commit/abort — conflict-serializable by
/// the classical 2PL theorem, hence the recorded dependency graphs must be
/// acyclic (Theorem 8), which the tests assert.
///
/// Fault injection: see si_engine.hpp — the same four hook sites. An
/// injected abort/crash releases every held lock before FaultInjected
/// propagates (a crashed session must never wedge the lock table).

namespace sia::fault {
class FaultInjector;
}

namespace sia::mvcc {

class SERDatabase;

/// A client session. Obtain from SERDatabase::make_session().
class SERSession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }

 private:
  friend class SERDatabase;
  SERSession(SERDatabase* db, SessionId id) : db_(db), id_(id) {}
  SERDatabase* db_;
  SessionId id_;
};

/// An in-flight transaction under S2PL. Move-only; a transaction dropped
/// without commit() aborts and releases its locks (RAII) — a moved-from
/// object is inert and owns nothing.
class SERTransaction {
 public:
  SERTransaction(const SERTransaction&) = delete;
  SERTransaction& operator=(const SERTransaction&) = delete;
  SERTransaction(SERTransaction&& other) noexcept { *this = std::move(other); }
  SERTransaction& operator=(SERTransaction&& other) noexcept;
  ~SERTransaction();

  /// Reads \p key under a shared lock. Returns nullopt if the lock could
  /// not be granted — the transaction has aborted (no-wait).
  [[nodiscard]] std::optional<Value> read(ObjId key);

  /// Buffers a write under an exclusive lock; false means abort.
  [[nodiscard]] bool write(ObjId key, Value value);

  /// Publishes buffered writes and releases all locks. Returns false iff
  /// the transaction had already aborted.
  [[nodiscard]] bool commit();

  /// Releases all locks, discarding writes.
  void abort();

  [[nodiscard]] bool aborted() const { return aborted_; }

 private:
  friend class SERDatabase;
  SERTransaction(SERDatabase* db, SessionId session, std::uint64_t token)
      : db_(db), session_(session), token_(token) {}

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  SERDatabase* db_{nullptr};
  SessionId session_{0};
  /// Stable lock-ownership identity: survives moves of this object, unlike
  /// the object's address.
  std::uint64_t token_{0};
  bool aborted_{false};
  bool finished_{false};
  FlatMap<ObjId, Value> write_buffer_;
  std::vector<ObjId> shared_held_;
  std::vector<ObjId> exclusive_held_;
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

/// Single-version store with a per-key lock table.
class SERDatabase {
 public:
  explicit SERDatabase(std::uint32_t num_keys, Recorder* recorder = nullptr,
                       fault::FaultInjector* fault = nullptr);

  [[nodiscard]] SERSession make_session();
  [[nodiscard]] SERTransaction begin(SERSession& session);

  /// Runs \p body with retry-on-abort. \p body reads/writes through the
  /// transaction and must tolerate mid-flight aborts by returning early
  /// (its reads come back as nullopt / writes return false). Returns the
  /// number of attempts. Bounded by \p retry with deterministic backoff;
  /// throws ModelError on exhaustion.
  template <typename Body>
  std::size_t run(SERSession& session, Body&& body,
                  const fault::RetryPolicy& retry = fault::kEngineRunPolicy) {
    for (std::size_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      SERTransaction txn = begin(session);
      body(txn);
      if (!txn.aborted() && txn.commit()) return attempt;
      if (!txn.aborted()) txn.abort();
      fault::serve_backoff(retry, attempt);
    }
    throw ModelError("SERDatabase::run: retry budget exhausted");
  }

  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }

 private:
  friend class SERTransaction;

  struct Entry {
    Value value{0};
    TxnHandle writer{kInitHandle};
    // Lock state, guarded by the table mutex.
    std::uint64_t exclusive_owner{0};  ///< 0 = unlocked
    std::vector<std::uint64_t> shared_owners;
  };

  bool acquire_shared(SERTransaction& txn, ObjId key);
  bool acquire_exclusive(SERTransaction& txn, ObjId key);
  void release_all(SERTransaction& txn);
  bool finish_commit(SERTransaction& txn);

  /// Fires the post-commit fault site; the commit stands regardless.
  void post_commit_fault();

  std::vector<Entry> entries_;
  std::mutex table_mutex_;  ///< guards all lock state and values
  std::mutex session_mutex_;
  SessionId next_session_{0};
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> clock_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;
};

}  // namespace sia::mvcc
