#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "core/types.hpp"
#include "fault/retry.hpp"
#include "mvcc/recorder.hpp"

/// \file psi_engine.hpp
/// A parallel snapshot isolation (PSI) engine [Sovran et al., Definition
/// 20 of the paper]: a set of replicas, each holding a full copy of the
/// key space. A transaction executes against the snapshot its *home*
/// replica has applied when it begins; commits are checked for write
/// conflicts globally (NOCONFLICT) and applied at the home replica
/// immediately, then propagated to the other replicas asynchronously in
/// causal order (TRANSVIS). There is no global commit prefix (no PREFIX
/// axiom): two replicas may observe independent transactions in different
/// orders — the long-fork anomaly of Figure 2(c), which the tests
/// demonstrate and SI forbids.
///
/// Causality is tracked with per-home vector clocks: every transaction
/// homed at replica h carries, for each home h', the number of h'-homed
/// transactions applied at h when it committed. A replica applies a
/// transaction only when its clock is dominated, which keeps every
/// replica's applied set causally closed — the structure that makes the
/// recorded dependency graphs land in GraphPSI (Theorem 21), as the
/// property tests assert.
///
/// Replication is *manually pumped* by default (deterministic tests call
/// pump()); start_auto_replication() runs a background applier instead.
///
/// Fault injection: see si_engine.hpp — the same four hook sites, the
/// same invariant (FaultInjected propagates only after the transaction is
/// finished and the engine consistent).

namespace sia::fault {
class FaultInjector;
}

namespace sia::mvcc {

using ReplicaId = std::uint32_t;

class PSIDatabase;

/// A client session, pinned to a home replica (the strong-session
/// guarantee: the session's own commits apply at its home synchronously).
class PSISession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }
  [[nodiscard]] ReplicaId home() const { return home_; }

 private:
  friend class PSIDatabase;
  PSISession(PSIDatabase* db, SessionId id, ReplicaId home)
      : db_(db), id_(id), home_(home) {}
  PSIDatabase* db_;
  SessionId id_;
  ReplicaId home_;
};

/// An in-flight PSI transaction. Move-only; a transaction dropped without
/// commit() aborts (RAII), and a moved-from object is inert.
class PSITransaction {
 public:
  PSITransaction(const PSITransaction&) = delete;
  PSITransaction& operator=(const PSITransaction&) = delete;
  PSITransaction(PSITransaction&& other) noexcept { *this = std::move(other); }
  PSITransaction& operator=(PSITransaction&& other) noexcept;
  ~PSITransaction();

  /// Reads \p key from the home replica's snapshot (or own buffer).
  [[nodiscard]] Value read(ObjId key);

  /// Buffers a write.
  void write(ObjId key, Value value);

  /// Global write-conflict check (first committer wins); on success the
  /// writes apply at the home replica and are queued for the others.
  [[nodiscard]] bool commit();

  void abort();

 private:
  friend class PSIDatabase;
  PSITransaction(PSIDatabase* db, SessionId session, ReplicaId home,
                 std::uint64_t snapshot_seq)
      : db_(db), session_(session), home_(home), snapshot_seq_(snapshot_seq) {}

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  PSIDatabase* db_{nullptr};
  SessionId session_{0};
  ReplicaId home_{0};
  std::uint64_t snapshot_seq_{0};  ///< home replica apply-log length at begin
  bool finished_{false};
  FlatMap<ObjId, Value> write_buffer_;
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

class PSIDatabase {
 public:
  PSIDatabase(std::uint32_t num_keys, ReplicaId num_replicas,
              Recorder* recorder = nullptr,
              fault::FaultInjector* fault = nullptr);
  ~PSIDatabase();

  PSIDatabase(const PSIDatabase&) = delete;
  PSIDatabase& operator=(const PSIDatabase&) = delete;

  [[nodiscard]] PSISession make_session(ReplicaId home);
  [[nodiscard]] PSITransaction begin(PSISession& session);

  /// Retry-on-abort helper; see SIDatabase::run(). Bounded by \p retry
  /// with deterministic backoff; throws ModelError on exhaustion.
  template <typename Body>
  std::size_t run(PSISession& session, Body&& body,
                  const fault::RetryPolicy& retry = fault::kEngineRunPolicy) {
    for (std::size_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      PSITransaction txn = begin(session);
      body(txn);
      if (txn.commit()) return attempt;
      fault::serve_backoff(retry, attempt);
    }
    throw ModelError("PSIDatabase::run: retry budget exhausted");
  }

  /// Applies up to \p max_steps causally-ready remote transactions at
  /// \p replica. Returns the number applied.
  std::size_t pump(ReplicaId replica,
                   std::size_t max_steps = static_cast<std::size_t>(-1));

  /// Pumps every replica until quiescent. Returns transactions applied.
  std::size_t pump_all();

  /// Starts a background thread that pumps continuously (for stress runs).
  void start_auto_replication();
  void stop_auto_replication();

  [[nodiscard]] ReplicaId num_replicas() const {
    return static_cast<ReplicaId>(replicas_.size());
  }
  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }

 private:
  friend class PSITransaction;

  /// One applied version at a replica.
  struct Applied {
    std::uint64_t apply_seq;  ///< position in the replica's apply log
    std::uint64_t version;    ///< global per-key version number
    Value value;
    TxnHandle writer;
  };

  struct Replica {
    std::vector<std::vector<Applied>> chains;  ///< per key
    std::vector<std::uint64_t> applied_per_home;
    std::uint64_t apply_seq{0};
    std::deque<std::size_t> pending;  ///< indices into commits_log_
  };

  /// A committed transaction awaiting replication.
  struct PsiCommit {
    TxnHandle handle;
    ReplicaId home;
    std::vector<std::uint64_t> deps;  ///< per-home vector clock
    FlatMap<ObjId, std::pair<Value, std::uint64_t>> writes;  ///< value, ver
  };

  /// Latest version of \p key applied at \p r within the first
  /// \p snapshot_seq applications. Requires mutex_ held.
  [[nodiscard]] const Applied* visible_version(const Replica& r, ObjId key,
                                               std::uint64_t snapshot_seq) const;

  /// Applies commit \p idx at replica \p r. Requires mutex_ held and the
  /// commit causally ready.
  void apply_at(Replica& r, std::size_t idx);

  bool try_commit(PSITransaction& txn);

  /// Fires the post-commit fault site; the commit stands regardless.
  void post_commit_fault();

  mutable std::mutex mutex_;
  std::vector<Replica> replicas_;
  std::vector<PsiCommit> commits_log_;
  std::vector<std::uint64_t> latest_version_;  ///< per key, global
  std::uint32_t num_keys_;
  SessionId next_session_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;

  std::thread replicator_;
  std::atomic<bool> replicate_running_{false};
};

}  // namespace sia::mvcc
