#include "mvcc/ser_engine.hpp"

#include <algorithm>
#include <cassert>

#include "fault/fault.hpp"

namespace sia::mvcc {

SERDatabase::SERDatabase(std::uint32_t num_keys, Recorder* recorder,
                         fault::FaultInjector* fault)
    : entries_(num_keys), recorder_(recorder), fault_(fault) {}

SERTransaction& SERTransaction::operator=(SERTransaction&& other) noexcept {
  if (this != &other) {
    if (db_ != nullptr && !finished_) abort();
    db_ = other.db_;
    session_ = other.session_;
    token_ = other.token_;
    aborted_ = other.aborted_;
    finished_ = other.finished_;
    write_buffer_ = std::move(other.write_buffer_);
    shared_held_ = std::move(other.shared_held_);
    exclusive_held_ = std::move(other.exclusive_held_);
    events_ = std::move(other.events_);
    observed_ = std::move(other.observed_);
    other.db_ = nullptr;
    other.finished_ = true;
    other.shared_held_.clear();
    other.exclusive_held_.clear();
  }
  return *this;
}

SERTransaction::~SERTransaction() {
  if (db_ != nullptr && !finished_) abort();
}

void SERDatabase::post_commit_fault() {
  if (fault_ != nullptr) [[unlikely]] {
    fault_->on(fault::FaultSite::kPostCommit);
  }
}

SERSession SERDatabase::make_session() {
  const std::lock_guard<std::mutex> lock(session_mutex_);
  return SERSession(this, next_session_++);
}

SERTransaction SERDatabase::begin(SERSession& session) {
  return SERTransaction(this, session.id(), next_token_.fetch_add(1));
}

bool SERDatabase::acquire_shared(SERTransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  Entry& e = entries_[key];
  if (e.exclusive_owner == txn.token_) return true;  // already exclusive
  if (e.exclusive_owner != 0) return false;
  if (std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_) !=
      e.shared_owners.end()) {
    return true;  // already shared
  }
  e.shared_owners.push_back(txn.token_);
  txn.shared_held_.push_back(key);
  return true;
}

bool SERDatabase::acquire_exclusive(SERTransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  Entry& e = entries_[key];
  if (e.exclusive_owner == txn.token_) return true;
  if (e.exclusive_owner != 0) return false;
  const bool self_shared =
      std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_) !=
      e.shared_owners.end();
  const std::size_t others = e.shared_owners.size() - (self_shared ? 1 : 0);
  if (others > 0) return false;  // no-wait: somebody else reads it
  // Upgrade (or fresh grant).
  if (self_shared) {
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
    txn.shared_held_.erase(
        std::find(txn.shared_held_.begin(), txn.shared_held_.end(), key));
  }
  e.exclusive_owner = txn.token_;
  txn.exclusive_held_.push_back(key);
  return true;
}

void SERDatabase::release_all(SERTransaction& txn) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  for (ObjId key : txn.shared_held_) {
    Entry& e = entries_[key];
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
  }
  for (ObjId key : txn.exclusive_held_) {
    entries_[key].exclusive_owner = 0;
  }
  txn.shared_held_.clear();
  txn.exclusive_held_.clear();
}

bool SERDatabase::finish_commit(SERTransaction& txn) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  const std::uint64_t ts = clock_.fetch_add(1) + 1;
  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    record.write_versions[key] = ts;
  }
  const TxnHandle handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;
  for (const auto& [key, value] : txn.write_buffer_) {
    entries_[key].value = value;
    entries_[key].writer = handle;
  }
  // Release locks while still holding the table mutex (strictness).
  for (ObjId key : txn.shared_held_) {
    Entry& e = entries_[key];
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
  }
  for (ObjId key : txn.exclusive_held_) {
    entries_[key].exclusive_owner = 0;
  }
  txn.shared_held_.clear();
  txn.exclusive_held_.clear();
  return true;
}

std::optional<Value> SERTransaction::read(ObjId key) {
  assert(!finished_);
  if (aborted_) return std::nullopt;
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      db_->fault_->on(fault::FaultSite::kPreRead);
    } catch (const fault::FaultInjected&) {
      abort();  // releases every held lock and counts the abort
      throw;
    }
  }
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  if (!db_->acquire_shared(*this, key)) {
    abort();
    return std::nullopt;
  }
  Value value;
  TxnHandle writer;
  {
    const std::lock_guard<std::mutex> lock(db_->table_mutex_);
    value = db_->entries_[key].value;
    writer = db_->entries_[key].writer;
  }
  events_.push_back(sia::read(key, value));
  observed_.push_back(writer);
  return value;
}

bool SERTransaction::write(ObjId key, Value value) {
  assert(!finished_);
  if (aborted_) return false;
  if (!db_->acquire_exclusive(*this, key)) {
    abort();
    return false;
  }
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);
  return true;
}

bool SERTransaction::commit() {
  assert(!finished_);
  if (aborted_) return false;
  if (db_->fault_ != nullptr) [[unlikely]] {
    try {
      // Pre-commit, then mid-commit: under no-wait 2PL all validation
      // happened at lock-acquisition time, so the two sites are adjacent —
      // both fire before the publish step.
      db_->fault_->on(fault::FaultSite::kPreCommit);
      db_->fault_->on(fault::FaultSite::kMidCommit);
    } catch (const fault::FaultInjected&) {
      abort();  // releases every held lock and counts the abort
      throw;
    }
  }
  finished_ = true;
  db_->finish_commit(*this);
  db_->commits_.fetch_add(1);
  db_->post_commit_fault();
  return true;
}

void SERTransaction::abort() {
  if (finished_ || aborted_) {
    aborted_ = true;
    return;
  }
  aborted_ = true;
  finished_ = true;
  db_->release_all(*this);
  db_->aborts_.fetch_add(1);
}

}  // namespace sia::mvcc
