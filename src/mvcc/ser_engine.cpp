#include "mvcc/ser_engine.hpp"

#include <algorithm>
#include <cassert>

namespace sia::mvcc {

SERDatabase::SERDatabase(std::uint32_t num_keys, Recorder* recorder)
    : entries_(num_keys), recorder_(recorder) {}

SERSession SERDatabase::make_session() {
  const std::lock_guard<std::mutex> lock(session_mutex_);
  return SERSession(this, next_session_++);
}

SERTransaction SERDatabase::begin(SERSession& session) {
  return SERTransaction(this, session.id(), next_token_.fetch_add(1));
}

bool SERDatabase::acquire_shared(SERTransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  Entry& e = entries_[key];
  if (e.exclusive_owner == txn.token_) return true;  // already exclusive
  if (e.exclusive_owner != 0) return false;
  if (std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_) !=
      e.shared_owners.end()) {
    return true;  // already shared
  }
  e.shared_owners.push_back(txn.token_);
  txn.shared_held_.push_back(key);
  return true;
}

bool SERDatabase::acquire_exclusive(SERTransaction& txn, ObjId key) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  Entry& e = entries_[key];
  if (e.exclusive_owner == txn.token_) return true;
  if (e.exclusive_owner != 0) return false;
  const bool self_shared =
      std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_) !=
      e.shared_owners.end();
  const std::size_t others = e.shared_owners.size() - (self_shared ? 1 : 0);
  if (others > 0) return false;  // no-wait: somebody else reads it
  // Upgrade (or fresh grant).
  if (self_shared) {
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
    txn.shared_held_.erase(
        std::find(txn.shared_held_.begin(), txn.shared_held_.end(), key));
  }
  e.exclusive_owner = txn.token_;
  txn.exclusive_held_.push_back(key);
  return true;
}

void SERDatabase::release_all(SERTransaction& txn) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  for (ObjId key : txn.shared_held_) {
    Entry& e = entries_[key];
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
  }
  for (ObjId key : txn.exclusive_held_) {
    entries_[key].exclusive_owner = 0;
  }
  txn.shared_held_.clear();
  txn.exclusive_held_.clear();
}

bool SERDatabase::finish_commit(SERTransaction& txn) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  const std::uint64_t ts = clock_.fetch_add(1) + 1;
  CommitRecord record{txn.session_, txn.events_, txn.observed_, {}};
  for (const auto& [key, value] : txn.write_buffer_) {
    (void)value;
    record.write_versions[key] = ts;
  }
  const TxnHandle handle =
      recorder_ != nullptr ? recorder_->record(std::move(record)) : 0;
  for (const auto& [key, value] : txn.write_buffer_) {
    entries_[key].value = value;
    entries_[key].writer = handle;
  }
  // Release locks while still holding the table mutex (strictness).
  for (ObjId key : txn.shared_held_) {
    Entry& e = entries_[key];
    e.shared_owners.erase(
        std::find(e.shared_owners.begin(), e.shared_owners.end(), txn.token_));
  }
  for (ObjId key : txn.exclusive_held_) {
    entries_[key].exclusive_owner = 0;
  }
  txn.shared_held_.clear();
  txn.exclusive_held_.clear();
  return true;
}

std::optional<Value> SERTransaction::read(ObjId key) {
  assert(!finished_);
  if (aborted_) return std::nullopt;
  if (const auto it = write_buffer_.find(key); it != write_buffer_.end()) {
    events_.push_back(sia::read(key, it->second));
    observed_.push_back(kInitHandle);  // own-buffer read; never external
    return it->second;
  }
  if (!db_->acquire_shared(*this, key)) {
    abort();
    return std::nullopt;
  }
  Value value;
  TxnHandle writer;
  {
    const std::lock_guard<std::mutex> lock(db_->table_mutex_);
    value = db_->entries_[key].value;
    writer = db_->entries_[key].writer;
  }
  events_.push_back(sia::read(key, value));
  observed_.push_back(writer);
  return value;
}

bool SERTransaction::write(ObjId key, Value value) {
  assert(!finished_);
  if (aborted_) return false;
  if (!db_->acquire_exclusive(*this, key)) {
    abort();
    return false;
  }
  write_buffer_[key] = value;
  events_.push_back(sia::write(key, value));
  observed_.push_back(kInitHandle);
  return true;
}

bool SERTransaction::commit() {
  assert(!finished_);
  if (aborted_) return false;
  finished_ = true;
  db_->finish_commit(*this);
  db_->commits_.fetch_add(1);
  return true;
}

void SERTransaction::abort() {
  if (finished_ || aborted_) {
    aborted_ = true;
    return;
  }
  aborted_ = true;
  finished_ = true;
  db_->release_all(*this);
  db_->aborts_.fetch_add(1);
}

}  // namespace sia::mvcc
