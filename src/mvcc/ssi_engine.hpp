#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "mvcc/recorder.hpp"
#include "mvcc/si_engine.hpp"

/// \file ssi_engine.hpp
/// Serializable snapshot isolation (SSI, Cahill et al. 2008) — the
/// operational twin of the paper's Theorem 19: an SI execution is
/// non-serializable exactly when its dependency graph has a cycle with
/// two *adjacent* anti-dependency edges, i.e. some transaction (the
/// pivot) has both an incoming and an outgoing anti-dependency to
/// concurrent transactions. SSI therefore runs the ordinary SI protocol
/// (snapshot reads + first-committer-wins) and additionally tracks, per
/// transaction, whether it has acquired an inbound and an outbound
/// anti-dependency; any transaction observed to become a pivot is
/// aborted, so no dangerous structure can complete and every committed
/// history is serializable — which the tests verify by checking recorded
/// dependency graphs against GraphSER (Theorem 8).
///
/// This implementation is deliberately conservative (no commit-ordering
/// or read-only refinements): it may abort more than necessary, never
/// less. Anti-dependencies are detected on both sides:
///  - at read time, against versions newer than the reader's snapshot
///    (the writer already committed: reader gains OUT, writer has IN);
///  - at commit time of a writer, against earlier readers of its keys
///    that did not see the new version (reader gains OUT, writer IN).
/// Metadata of committed transactions is retained for the lifetime of
/// the database (this is a study engine, not a production store).
///
/// Fault injection: see si_engine.hpp — the same four hook sites. An
/// injected abort/crash marks the transaction's metadata aborted before
/// FaultInjected propagates; a dropped transaction does the same via RAII
/// (otherwise its SIREAD entries would stay "concurrent" forever and doom
/// every later writer of those keys).

namespace sia::fault {
class FaultInjector;
}

namespace sia::mvcc {

class SSIDatabase;

/// A client session; see SIDatabase for the session semantics.
class SSISession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }

 private:
  friend class SSIDatabase;
  SSISession(SSIDatabase* db, SessionId id) : db_(db), id_(id) {}
  SSIDatabase* db_;
  SessionId id_;
};

/// An in-flight SSI transaction. Move-only; a transaction dropped without
/// commit() aborts (RAII), and a moved-from object is inert.
class SSITransaction {
 public:
  SSITransaction(const SSITransaction&) = delete;
  SSITransaction& operator=(const SSITransaction&) = delete;
  SSITransaction(SSITransaction&& other) noexcept { *this = std::move(other); }
  SSITransaction& operator=(SSITransaction&& other) noexcept;
  ~SSITransaction();

  /// Snapshot (or own-buffer) read. May doom this transaction if the
  /// read establishes a dangerous anti-dependency; the transaction then
  /// aborts at commit (reads still return consistent snapshot values).
  [[nodiscard]] Value read(ObjId key);

  void write(ObjId key, Value value);

  /// SI validation + pivot prevention. False = aborted; retry.
  [[nodiscard]] bool commit();

  void abort();

 private:
  friend class SSIDatabase;
  SSITransaction(SSIDatabase* db, SessionId session, std::uint64_t token,
                 Timestamp start_ts)
      : db_(db), session_(session), token_(token), start_ts_(start_ts) {}

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  SSIDatabase* db_{nullptr};
  SessionId session_{0};
  std::uint64_t token_{0};
  Timestamp start_ts_{0};
  bool finished_{false};
  std::map<ObjId, Value> write_buffer_;
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

class SSIDatabase {
 public:
  explicit SSIDatabase(std::uint32_t num_keys, Recorder* recorder = nullptr,
                       fault::FaultInjector* fault = nullptr);

  [[nodiscard]] SSISession make_session();
  [[nodiscard]] SSITransaction begin(SSISession& session);

  /// Retry-until-commit helper; see SIDatabase::run().
  template <typename Body>
  std::size_t run(SSISession& session, Body&& body) {
    for (std::size_t attempt = 1;; ++attempt) {
      SSITransaction txn = begin(session);
      body(txn);
      if (txn.commit()) return attempt;
    }
  }

  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }
  /// Aborts caused by pivot prevention (vs plain write conflicts).
  [[nodiscard]] std::uint64_t ssi_aborts() const { return ssi_aborts_.load(); }

 private:
  friend class SSITransaction;

  /// Conflict-flag record of a (possibly committed) transaction.
  struct TxnMeta {
    Timestamp start_ts{0};
    Timestamp commit_ts{0};  ///< 0 while active
    bool committed{false};
    bool aborted{false};
    bool in_conflict{false};   ///< someone anti-depends on it
    bool out_conflict{false};  ///< it anti-depends on someone
    bool doomed{false};        ///< must abort at commit
  };

  struct Chain {
    std::vector<Version> versions;  ///< ascending ts; writer = token here
    std::vector<std::uint64_t> readers;  ///< SIREAD tokens, kept forever
  };

  /// True iff the transactions' lifetimes overlapped (neither committed
  /// before the other began).
  [[nodiscard]] bool concurrent(const TxnMeta& a, const TxnMeta& b) const;

  Value read_locked(SSITransaction& txn, ObjId key);
  bool try_commit(SSITransaction& txn);

  /// Fires the post-commit fault site; the commit stands regardless.
  void post_commit_fault();

  std::vector<Chain> chains_;
  std::map<std::uint64_t, TxnMeta> meta_;
  std::map<std::uint64_t, TxnHandle> handle_of_;  ///< token -> recorder id
  std::atomic<Timestamp> clock_{0};
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> ssi_aborts_{0};
  std::mutex mutex_;  ///< guards chains_, meta_, clock transitions
  std::mutex session_mutex_;
  SessionId next_session_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;
};

}  // namespace sia::mvcc
