#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "core/types.hpp"
#include "fault/retry.hpp"
#include "mvcc/recorder.hpp"
#include "mvcc/si_engine.hpp"

/// \file ssi_engine.hpp
/// Serializable snapshot isolation (SSI, Cahill et al. 2008) — the
/// operational twin of the paper's Theorem 19: an SI execution is
/// non-serializable exactly when its dependency graph has a cycle with
/// two *adjacent* anti-dependency edges, i.e. some transaction (the
/// pivot) has both an incoming and an outgoing anti-dependency to
/// concurrent transactions. SSI therefore runs the ordinary SI protocol
/// (snapshot reads + first-committer-wins) and additionally tracks, per
/// transaction, whether it has acquired an inbound and an outbound
/// anti-dependency; any transaction observed to become a pivot is
/// aborted, so no dangerous structure can complete and every committed
/// history is serializable — which the tests verify by checking recorded
/// dependency graphs against GraphSER (Theorem 8).
///
/// This implementation is deliberately conservative (no commit-ordering
/// or read-only refinements): it may abort more than necessary, never
/// less. Anti-dependencies are detected on both sides:
///  - at read time, against versions newer than the reader's snapshot
///    (the writer already committed: reader gains OUT, writer has IN);
///  - at commit time of a writer, against earlier readers of its keys
///    that did not see the new version (reader gains OUT, writer IN).
///
/// Epoch GC (DESIGN.md §4g): all conflict bookkeeping is pruned behind a
/// watermark — the minimum start_ts over active transactions, monotone
/// because tokens and snapshots are issued under the same mutex in begin
/// order. A committed transaction with commit_ts <= watermark can never
/// again satisfy concurrent() against any present or future transaction
/// (their snapshots are >= watermark), so its SIREAD entries and TxnMeta
/// are dead weight; aborted transactions likewise. Token metadata lives
/// in a dense ring (tokens are sequential: index = token - base) whose
/// base advances as the front falls behind the watermark; SIREAD lists
/// are compacted in place during commit scans plus a periodic full
/// sweep; superseded version-chain prefixes are dropped keeping the
/// newest version with ts <= watermark (the SI gc rule). Pruning only
/// removes entries every conflict check would have skipped, so verdicts,
/// counters and recorded histories are bit-identical to the frozen
/// reference engine (ssi_ref_engine.hpp; enforced by test_ssi_diff).
///
/// Fault injection: see si_engine.hpp — the same four hook sites. An
/// injected abort/crash marks the transaction's metadata aborted before
/// FaultInjected propagates; a dropped transaction does the same via RAII
/// (otherwise its SIREAD entries would stay "concurrent" forever and doom
/// every later writer of those keys).

namespace sia::mvcc {

class SSIDatabase;

/// A client session; see SIDatabase for the session semantics.
class SSISession {
 public:
  [[nodiscard]] SessionId id() const { return id_; }

 private:
  friend class SSIDatabase;
  SSISession(SSIDatabase* db, SessionId id) : db_(db), id_(id) {}
  SSIDatabase* db_;
  SessionId id_;
};

/// An in-flight SSI transaction. Move-only; a transaction dropped without
/// commit() aborts (RAII), and a moved-from object is inert.
class SSITransaction {
 public:
  SSITransaction(const SSITransaction&) = delete;
  SSITransaction& operator=(const SSITransaction&) = delete;
  SSITransaction(SSITransaction&& other) noexcept { *this = std::move(other); }
  SSITransaction& operator=(SSITransaction&& other) noexcept;
  ~SSITransaction();

  /// Snapshot (or own-buffer) read. May doom this transaction if the
  /// read establishes a dangerous anti-dependency; the transaction then
  /// aborts at commit (reads still return consistent snapshot values).
  [[nodiscard]] Value read(ObjId key);

  void write(ObjId key, Value value);

  /// SI validation + pivot prevention. False = aborted; retry.
  [[nodiscard]] bool commit();

  void abort();

 private:
  friend class SSIDatabase;
  SSITransaction(SSIDatabase* db, SessionId session, std::uint64_t token,
                 Timestamp start_ts)
      : db_(db), session_(session), token_(token), start_ts_(start_ts) {}

  /// Records \p key in the transaction's read set; true if new. Replaces
  /// the reference engine's O(#readers-ever) dedup scan of the chain's
  /// SIREAD list with an O(log #own-reads) probe.
  bool note_read(ObjId key);

  // Defaults matter: the move constructor delegates to move assignment,
  // which inspects db_/finished_ of the (otherwise uninitialised) target.
  SSIDatabase* db_{nullptr};
  SessionId session_{0};
  std::uint64_t token_{0};
  Timestamp start_ts_{0};
  bool finished_{false};
  FlatMap<ObjId, Value> write_buffer_;
  std::vector<ObjId> read_keys_;  ///< sorted; own SIREAD registrations
  std::vector<Event> events_;
  std::vector<TxnHandle> observed_;
};

class SSIDatabase {
 public:
  explicit SSIDatabase(std::uint32_t num_keys, Recorder* recorder = nullptr,
                       fault::FaultInjector* fault = nullptr);

  [[nodiscard]] SSISession make_session();
  [[nodiscard]] SSITransaction begin(SSISession& session);

  /// Retry-until-commit helper; see SIDatabase::run(). Bounded by
  /// \p retry (fault::kEngineRunPolicy by default: 4096 attempts with
  /// deterministic exponential backoff); throws ModelError on exhaustion
  /// — a doomed-heavy workload must surface, not spin.
  template <typename Body>
  std::size_t run(SSISession& session, Body&& body,
                  const fault::RetryPolicy& retry = fault::kEngineRunPolicy) {
    for (std::size_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      SSITransaction txn = begin(session);
      body(txn);
      if (txn.commit()) return attempt;
      fault::serve_backoff(retry, attempt);
    }
    throw ModelError("SSIDatabase::run: retry budget exhausted");
  }

  [[nodiscard]] std::uint64_t commits() const { return commits_.load(); }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_.load(); }
  /// Aborts caused by pivot prevention (vs plain write conflicts).
  [[nodiscard]] std::uint64_t ssi_aborts() const { return ssi_aborts_.load(); }

  // ----- epoch GC introspection (tests, benches) ------------------------

  /// Current epoch watermark: min start_ts over active transactions (the
  /// clock when none is active). Monotone non-decreasing.
  [[nodiscard]] Timestamp watermark() const;

  /// TxnMeta slots currently held in the dense ring.
  [[nodiscard]] std::size_t meta_retained() const;

  /// SIREAD reader entries retained across all chains.
  [[nodiscard]] std::size_t siread_retained() const;

  /// Versions retained across all chains.
  [[nodiscard]] std::size_t version_count() const;

 private:
  friend class SSITransaction;

  /// Conflict-flag record of a (possibly committed) transaction.
  struct TxnMeta {
    Timestamp start_ts{0};
    Timestamp commit_ts{0};  ///< 0 while active
    bool committed{false};
    bool aborted{false};
    bool in_conflict{false};   ///< someone anti-depends on it
    bool out_conflict{false};  ///< it anti-depends on someone
    bool doomed{false};        ///< must abort at commit
  };

  /// A committed version. Unlike mvcc::Version, carries the recorder
  /// handle directly so reads need no token->handle map lookup (writer
  /// metadata may be pruned; the handle must outlive it).
  struct SSIVersion {
    Timestamp ts{0};
    Value value{0};
    std::uint64_t writer{0};  ///< token; meta pruned once behind watermark
    TxnHandle handle{kInitHandle};
  };

  struct Chain {
    std::vector<SSIVersion> versions;  ///< ascending ts
    std::vector<std::uint64_t> readers;  ///< SIREAD tokens; compacted
  };

  /// True iff the transactions' lifetimes overlapped (neither committed
  /// before the other began).
  [[nodiscard]] bool concurrent(const TxnMeta& a, const TxnMeta& b) const;

  /// Dense ring lookup; \p token must not be pruned (>= base_token_).
  [[nodiscard]] TxnMeta& meta_of(std::uint64_t token) {
    return meta_[static_cast<std::size_t>(token - base_token_)];
  }

  /// A finished transaction whose commit fell behind the watermark (or
  /// that aborted) is invisible to every conflict check: safe to drop.
  [[nodiscard]] bool prunable(const TxnMeta& m) const {
    return m.aborted || (m.committed && m.commit_ts <= watermark_);
  }

  Value read_locked(SSITransaction& txn, ObjId key);
  bool try_commit(SSITransaction& txn);

  /// Deregisters \p token from the active set, advances the watermark,
  /// prunes the meta ring, and periodically sweeps all chains.
  void finish_locked(std::uint64_t token);

  /// Pops dead TxnMeta off the ring front, advancing base_token_.
  void prune_meta_locked();

  /// Drops the chain's version prefix, keeping the newest version with
  /// ts <= watermark (every active snapshot still resolves identically).
  void prune_versions_locked(Chain& chain);

  /// Full pass: compact SIREAD lists + prune version prefixes of chains
  /// the commit path touched rarely (read-only keys).
  void sweep_locked();

  /// Fires the post-commit fault site; the commit stands regardless.
  void post_commit_fault();

  std::vector<Chain> chains_;
  std::deque<TxnMeta> meta_;       ///< ring: meta_[token - base_token_]
  std::uint64_t base_token_{0};    ///< first unpruned token
  std::set<std::uint64_t> active_;  ///< unfinished tokens (ascending)
  Timestamp watermark_{0};
  std::uint64_t finished_count_{0};  ///< drives the periodic sweep
  std::atomic<Timestamp> clock_{0};
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> ssi_aborts_{0};
  mutable std::mutex mutex_;  ///< guards chains_, meta_, clock transitions
  std::mutex session_mutex_;
  SessionId next_session_{0};
  Recorder* recorder_;
  fault::FaultInjector* fault_;
};

}  // namespace sia::mvcc
