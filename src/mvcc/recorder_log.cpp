#include "mvcc/recorder_log.hpp"

#include <unistd.h>

#include <array>
#include <cstring>

namespace sia::mvcc {

namespace {

/// CRC-32 (the reflected 0xEDB88320 polynomial), table-driven.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

/// Bounds-checked little-endian reader over a payload.
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos{0};

  bool u8(std::uint8_t& v) {
    if (pos + 1 > size) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > size) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > size) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }
};

}  // namespace

std::vector<std::uint8_t> RecorderLog::encode(const CommitRecord& record) {
  std::vector<std::uint8_t> out;
  put_u32(out, record.session);
  put_u32(out, static_cast<std::uint32_t>(record.events.size()));
  for (const Event& e : record.events) {
    put_u8(out, static_cast<std::uint8_t>(e.kind));
    put_u32(out, e.obj);
    put_u64(out, static_cast<std::uint64_t>(e.value));
  }
  put_u32(out, static_cast<std::uint32_t>(record.observed_writer.size()));
  for (const TxnHandle h : record.observed_writer) put_u64(out, h);
  put_u32(out, static_cast<std::uint32_t>(record.write_versions.size()));
  for (const auto& [obj, version] : record.write_versions) {
    put_u32(out, obj);
    put_u64(out, version);
  }
  return out;
}

bool RecorderLog::decode(const std::uint8_t* data, std::size_t size,
                         CommitRecord& out) {
  Cursor c{data, size};
  out = CommitRecord{};
  if (!c.u32(out.session)) return false;
  std::uint32_t n = 0;
  if (!c.u32(n)) return false;
  out.events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t kind = 0;
    std::uint32_t obj = 0;
    std::uint64_t value = 0;
    if (!c.u8(kind) || !c.u32(obj) || !c.u64(value)) return false;
    if (kind > static_cast<std::uint8_t>(EventKind::kWrite)) return false;
    out.events.push_back(Event{static_cast<EventKind>(kind), obj,
                               static_cast<Value>(value)});
  }
  if (!c.u32(n)) return false;
  out.observed_writer.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t h = 0;
    if (!c.u64(h)) return false;
    out.observed_writer.push_back(h);
  }
  if (!c.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t obj = 0;
    std::uint64_t version = 0;
    if (!c.u32(obj) || !c.u64(version)) return false;
    out.write_versions[obj] = version;
  }
  return c.pos == c.size;  // trailing garbage means a framing bug
}

std::string to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kCommit: return "commit";
  }
  return "unknown";
}

bool fsync_policy_from_string(const std::string& s, FsyncPolicy& out) {
  if (s == "none") {
    out = FsyncPolicy::kNone;
  } else if (s == "interval") {
    out = FsyncPolicy::kInterval;
  } else if (s == "commit") {
    out = FsyncPolicy::kCommit;
  } else {
    return false;
  }
  return true;
}

RecorderLog::RecorderLog(std::string path, bool truncate, FsyncPolicy fsync,
                         std::size_t fsync_interval)
    : path_(std::move(path)),
      file_(std::fopen(path_.c_str(), truncate ? "wb" : "ab")),
      fsync_(fsync),
      fsync_interval_(fsync_interval == 0 ? 1 : fsync_interval) {
  if (file_ == nullptr) {
    throw ModelError("RecorderLog: cannot open '" + path_ + "' for writing");
  }
}

RecorderLog::~RecorderLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void RecorderLog::append_frame(const std::uint8_t* payload,
                               std::size_t size) {
  std::vector<std::uint8_t> frame;
  frame.reserve(size + 8);
  put_u32(frame, static_cast<std::uint32_t>(size));
  put_u32(frame, crc32(payload, size));
  frame.insert(frame.end(), payload, payload + size);

  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    throw ModelError("RecorderLog: short write to '" + path_ + "'");
  }
  std::fflush(file_);
  ++appended_;
  if (fsync_ == FsyncPolicy::kCommit ||
      (fsync_ == FsyncPolicy::kInterval &&
       ++since_sync_ >= fsync_interval_)) {
    (void)::fsync(::fileno(file_));
    since_sync_ = 0;
  }
}

void RecorderLog::append(const CommitRecord& record) {
  const std::vector<std::uint8_t> payload = encode(record);
  append_frame(payload.data(), payload.size());
}

void RecorderLog::append_raw(const std::uint8_t* data, std::size_t size) {
  append_frame(data, size);
}

void RecorderLog::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
  (void)::fsync(::fileno(file_));
  since_sync_ = 0;
}

std::size_t RecorderLog::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

namespace {

/// Shared framing walk of replay()/replay_raw(): reads \p path fully,
/// then calls \p sink(payload, len) for each intact frame until the file
/// ends or a frame fails (torn tail). \p sink returns false to mark the
/// frame undecodable (counts as torn, like a checksum failure).
template <typename Sink>
std::size_t walk_frames(const std::string& path,
                        RecorderLog::ReplayReport* report, std::size_t& count,
                        Sink&& sink) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw ModelError("RecorderLog: cannot open '" + path + "' for replay");
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    bytes.insert(bytes.end(), buf.begin(), buf.begin() + n);
  }
  std::fclose(f);

  std::size_t pos = 0;
  while (true) {
    if (bytes.size() - pos < 8) break;  // torn or empty header
    Cursor header{bytes.data() + pos, 8};
    std::uint32_t len = 0;
    std::uint32_t sum = 0;
    (void)header.u32(len);
    (void)header.u32(sum);
    if (bytes.size() - pos - 8 < len) break;  // torn payload
    const std::uint8_t* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != sum) break;  // corrupt (torn mid-frame)
    if (!sink(payload, static_cast<std::size_t>(len))) break;
    ++count;
    pos += 8 + len;
  }
  if (report != nullptr) {
    report->records = count;
    report->valid_bytes = pos;
    report->torn_tail = pos != bytes.size();
  }
  return pos;
}

}  // namespace

std::vector<CommitRecord> RecorderLog::replay(const std::string& path,
                                              ReplayReport* report) {
  std::vector<CommitRecord> records;
  std::size_t count = 0;
  (void)walk_frames(path, report, count,
                    [&records](const std::uint8_t* payload, std::size_t len) {
                      CommitRecord record;
                      if (!decode(payload, len, record)) return false;
                      records.push_back(std::move(record));
                      return true;
                    });
  return records;
}

std::vector<std::vector<std::uint8_t>> RecorderLog::replay_raw(
    const std::string& path, ReplayReport* report) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t count = 0;
  (void)walk_frames(path, report, count,
                    [&frames](const std::uint8_t* payload, std::size_t len) {
                      frames.emplace_back(payload, payload + len);
                      return true;
                    });
  return frames;
}

RecordedRun recover_run(const std::string& path,
                        RecorderLog::ReplayReport* report) {
  Recorder recorder;
  for (CommitRecord& r : RecorderLog::replay(path, report)) {
    (void)recorder.record(std::move(r));
  }
  return recorder.build();
}

}  // namespace sia::mvcc
