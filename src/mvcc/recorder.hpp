#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/history.hpp"
#include "graph/dependency_graph.hpp"

/// \file recorder.hpp
/// Bridges the operational engines (src/mvcc) and the paper's theory: a
/// thread-safe log of committed transactions carrying *engine truth* —
/// which version each read observed and each key's version order — from
/// which both the client-observable History and the engine's actual
/// DependencyGraph are built. Property tests assert the engine graphs land
/// in the model's graph set (the completeness direction of Theorems 8, 9
/// and 21, exercised continuously).

namespace sia::mvcc {

/// Engine-assigned identity of a committed transaction. Handle 0 is the
/// virtual initialisation transaction that wrote the initial value of
/// every key; real commits get 1, 2, ...
using TxnHandle = std::uint64_t;

inline constexpr TxnHandle kInitHandle = 0;

/// One committed transaction as reported by an engine.
struct CommitRecord {
  SessionId session{0};
  std::vector<Event> events;  ///< client-observable, program order
  /// For each read event (by index into events): the handle of the writer
  /// whose version was observed; ignored entries for writes and for reads
  /// served from the transaction's own write buffer.
  std::vector<TxnHandle> observed_writer;
  /// Per written key: the engine's per-key version number, defining WW.
  std::map<ObjId, std::uint64_t> write_versions;

  friend bool operator==(const CommitRecord&, const CommitRecord&) = default;
};

/// History + engine-truth dependency graph reconstructed from a run.
struct RecordedRun {
  History history;
  DependencyGraph graph;
  /// TxnId (in history) of engine handle h: handle order is preserved, so
  /// this is simply h (the init transaction is TxnId 0).
  [[nodiscard]] static TxnId txn_of(TxnHandle h) {
    return static_cast<TxnId>(h);
  }
};

class RecorderLog;

/// Thread-safe commit log.
class Recorder {
 public:
  Recorder() = default;

  /// A recorder that also appends every record to \p wal (a write-ahead
  /// RecorderLog, see recorder_log.hpp) inside the recording critical
  /// section, so the on-disk order is the handle order and a crashed run
  /// can be rebuilt by replay. \p wal must outlive the recorder.
  explicit Recorder(RecorderLog* wal) : wal_(wal) {}

  /// Registers a commit; returns the transaction's handle. Engines call
  /// this inside their commit critical section so that handle order is a
  /// valid commit order.
  TxnHandle record(CommitRecord record);

  [[nodiscard]] std::size_t commit_count() const;

  /// Snapshot of every record so far, in handle order (handle i is
  /// records()[i-1]). The raw material for crash-replay comparisons.
  [[nodiscard]] std::vector<CommitRecord> records() const;

  /// Builds the History (init transaction first, then commits in handle
  /// order, each appended to its client session) and the engine-truth
  /// DependencyGraph:
  ///  - WR: the observed writer of each transaction's first read of each
  ///    object (exactly the external reads);
  ///  - WW(x): the init transaction followed by x's writers ordered by
  ///    their engine version numbers.
  /// The graph is validate()d; a Definition 6 violation here means the
  /// engine misreported and is surfaced as ModelError.
  [[nodiscard]] RecordedRun build() const;

 private:
  mutable std::mutex mutex_;
  std::vector<CommitRecord> records_;
  RecorderLog* wal_{nullptr};
};

}  // namespace sia::mvcc
