#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "mvcc/recorder.hpp"

/// \file recorder_log.hpp
/// Crash-recoverable recording: a write-ahead, append-only binary log of
/// CommitRecords. The in-memory Recorder vanishes with the process; with a
/// RecorderLog attached, every record is framed, checksummed and appended
/// to a file *inside the recording critical section* (so file order equals
/// handle order), and a crashed run can be replayed into a bit-identical
/// RecordedRun — which the chaos tests then re-check against the
/// Theorem 9/21 graph classes.
///
/// Frame format (little-endian):
///     u32 payload length | u32 CRC-32 of payload | payload
/// Payload:
///     u32 session
///     u32 #events   then per event:  u8 kind, u32 obj, i64 value
///     u32 #observed then per entry:  u64 writer handle
///     u32 #writes   then per entry:  u32 obj, u64 version
///
/// Replay reads frames until the file ends or a frame fails to decode
/// (short header, short payload, checksum mismatch, malformed counts). A
/// failing *final* frame is the expected shape of a crash — a torn tail —
/// and is dropped; everything before it is intact by checksum.

namespace sia::mvcc {

/// Append-side of the log. Thread-safe; attach to a Recorder so engines
/// write through it transparently.
class RecorderLog {
 public:
  /// Opens \p path for writing. \p truncate starts a fresh log; pass
  /// false to continue an existing one (recovery-then-resume).
  explicit RecorderLog(std::string path, bool truncate = true);
  ~RecorderLog();

  RecorderLog(const RecorderLog&) = delete;
  RecorderLog& operator=(const RecorderLog&) = delete;

  /// Appends one framed record and flushes it to the OS.
  void append(const CommitRecord& record);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t appended() const;

  /// Serialised payload of one record (no frame header); exposed so tests
  /// can assert bit-identity and craft torn tails.
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      const CommitRecord& record);

  /// Inverse of encode(). Returns false (leaving \p out unspecified) if
  /// the payload is malformed.
  [[nodiscard]] static bool decode(const std::uint8_t* data, std::size_t size,
                                   CommitRecord& out);

  /// What replay() found.
  struct ReplayReport {
    std::size_t records{0};      ///< complete records recovered
    std::size_t valid_bytes{0};  ///< file prefix covered by those records
    bool torn_tail{false};       ///< trailing bytes were discarded
  };

  /// Reads back every intact record of \p path, tolerating a torn final
  /// record. \throws ModelError only if the file cannot be opened.
  [[nodiscard]] static std::vector<CommitRecord> replay(
      const std::string& path, ReplayReport* report = nullptr);

 private:
  std::string path_;
  std::FILE* file_;
  mutable std::mutex mutex_;
  std::size_t appended_{0};
};

/// Replays \p path into a fresh Recorder and builds the RecordedRun —
/// the crash-restart path: identical history and graph to the run the
/// crashed process would have built (torn tail dropped).
[[nodiscard]] RecordedRun recover_run(const std::string& path,
                                      RecorderLog::ReplayReport* report =
                                          nullptr);

}  // namespace sia::mvcc
