#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "mvcc/recorder.hpp"

/// \file recorder_log.hpp
/// Crash-recoverable recording: a write-ahead, append-only binary log of
/// CommitRecords. The in-memory Recorder vanishes with the process; with a
/// RecorderLog attached, every record is framed, checksummed and appended
/// to a file *inside the recording critical section* (so file order equals
/// handle order), and a crashed run can be replayed into a bit-identical
/// RecordedRun — which the chaos tests then re-check against the
/// Theorem 9/21 graph classes.
///
/// Frame format (little-endian):
///     u32 payload length | u32 CRC-32 of payload | payload
/// Payload:
///     u32 session
///     u32 #events   then per event:  u8 kind, u32 obj, i64 value
///     u32 #observed then per entry:  u64 writer handle
///     u32 #writes   then per entry:  u32 obj, u64 version
///
/// Replay reads frames until the file ends or a frame fails to decode
/// (short header, short payload, checksum mismatch, malformed counts). A
/// failing *final* frame is the expected shape of a crash — a torn tail —
/// and is dropped; everything before it is intact by checksum.
///
/// Besides CommitRecords, the log doubles as a generic framed WAL
/// (append_raw / replay_raw): the replication layer ships wire-encoded
/// service frames through the same framing, checksum and torn-tail
/// machinery, so the durability story is proved once and reused.

namespace sia::mvcc {

/// When appended frames reach the disk, not just the OS page cache.
/// Every policy fflush()es inside the append critical section (frame
/// order is file order and another process sees complete frames); fsync
/// is what differs:
///  - kNone: never fsync. A machine crash may lose recent frames; a
///    process crash loses nothing (the OS has the bytes).
///  - kInterval: fsync every `fsync_interval` appends — bounded loss
///    window, amortised cost.
///  - kCommit: fsync every append — no acknowledged frame is ever lost,
///    at the price of a disk round-trip per append.
enum class FsyncPolicy : std::uint8_t { kNone = 0, kInterval = 1, kCommit = 2 };

[[nodiscard]] std::string to_string(FsyncPolicy p);
/// Parses "none" / "interval" / "commit"; returns false on anything else.
[[nodiscard]] bool fsync_policy_from_string(const std::string& s,
                                            FsyncPolicy& out);

/// Append-side of the log. Thread-safe; attach to a Recorder so engines
/// write through it transparently.
class RecorderLog {
 public:
  /// Opens \p path for writing. \p truncate starts a fresh log; pass
  /// false to continue an existing one (recovery-then-resume).
  /// \p fsync / \p fsync_interval set the durability policy (see
  /// FsyncPolicy); the historical default is kNone, the pre-policy
  /// behaviour (fflush only).
  explicit RecorderLog(std::string path, bool truncate = true,
                       FsyncPolicy fsync = FsyncPolicy::kNone,
                       std::size_t fsync_interval = 64);
  ~RecorderLog();

  RecorderLog(const RecorderLog&) = delete;
  RecorderLog& operator=(const RecorderLog&) = delete;

  /// Appends one framed record and flushes it to the OS (and to disk,
  /// per the fsync policy).
  void append(const CommitRecord& record);

  /// Appends one frame of opaque payload bytes — same framing, checksum
  /// and fsync policy as append(); recovered by replay_raw().
  void append_raw(const std::uint8_t* data, std::size_t size);
  void append_raw(const std::vector<std::uint8_t>& payload) {
    append_raw(payload.data(), payload.size());
  }

  /// Forces an fsync now regardless of policy (e.g. before reporting a
  /// replication frame as durable).
  void sync();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t appended() const;
  [[nodiscard]] FsyncPolicy fsync_policy() const { return fsync_; }

  /// Serialised payload of one record (no frame header); exposed so tests
  /// can assert bit-identity and craft torn tails.
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      const CommitRecord& record);

  /// Inverse of encode(). Returns false (leaving \p out unspecified) if
  /// the payload is malformed.
  [[nodiscard]] static bool decode(const std::uint8_t* data, std::size_t size,
                                   CommitRecord& out);

  /// What replay() found.
  struct ReplayReport {
    std::size_t records{0};      ///< complete records recovered
    std::size_t valid_bytes{0};  ///< file prefix covered by those records
    bool torn_tail{false};       ///< trailing bytes were discarded
  };

  /// Reads back every intact record of \p path, tolerating a torn final
  /// record. \throws ModelError only if the file cannot be opened.
  [[nodiscard]] static std::vector<CommitRecord> replay(
      const std::string& path, ReplayReport* report = nullptr);

  /// Reads back every intact raw frame of \p path (the append_raw
  /// inverse): framing and torn-tail semantics identical to replay(),
  /// payloads returned verbatim. \throws ModelError only if the file
  /// cannot be opened.
  [[nodiscard]] static std::vector<std::vector<std::uint8_t>> replay_raw(
      const std::string& path, ReplayReport* report = nullptr);

 private:
  void append_frame(const std::uint8_t* payload, std::size_t size);

  std::string path_;
  std::FILE* file_;
  FsyncPolicy fsync_;
  std::size_t fsync_interval_;
  mutable std::mutex mutex_;
  std::size_t appended_{0};
  std::size_t since_sync_{0};
};

/// Replays \p path into a fresh Recorder and builds the RecordedRun —
/// the crash-restart path: identical history and graph to the run the
/// crashed process would have built (torn tail dropped).
[[nodiscard]] RecordedRun recover_run(const std::string& path,
                                      RecorderLog::ReplayReport* report =
                                          nullptr);

}  // namespace sia::mvcc
