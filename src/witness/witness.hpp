#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chopping/criteria.hpp"
#include "core/history.hpp"
#include "graph/dependency_graph.hpp"
#include "graph/enumeration.hpp"
#include "tools/program_parser.hpp"

/// \file witness.hpp
/// The witness engine: a deterministic bounded-interleaving explorer that
/// turns a *static* lint finding (an SCG critical cycle, Cor. 18 /
/// Thms 29/31) into a *concrete* anomaly history, or honestly reports that
/// it could not within its budget.
///
/// Given a parsed suite and a criterion whose chopping check failed, the
/// explorer schedules the implicated pieces as real transactions against
/// the matching in-repo engine (SI = the §1 MVCC algorithm, SER = strict
/// 2PL, PSI = the replicated causal engine at one replica, so runs are
/// deterministic), records every run through mvcc::Recorder, splices each
/// recorded history back to program granularity (§5) and confirms the
/// anomaly two ways:
///  - exactly, by decide_history(splice(H), model) — the authoritative
///    gate (Theorems 8/9/21 over every dependency-graph extension);
///  - operationally, by feeding the spliced commits to ConsistencyMonitor
///    in a topological order of the lifted WR ∪ WW edges, which must
///    report a violation on the same history.
/// The search is cycle-guided: pieces are ranked by a topological sort of
/// (program order ∪ the critical cycle's conflict edges), so the first
/// schedule tried is the one that realises the cycle; a DFS over serial
/// piece interleavings with memoised state fingerprints (Mazurkiewicz
/// trace equivalence over the recorded runs) covers the rest, bounded by
/// per-suite schedule and step budgets. On success the history is
/// delta-minimised: accesses are greedily dropped while the verdict still
/// reproduces (sound because piece read/write sets over-approximate what a
/// piece *may* access — a run touching a subset is a legal execution of
/// the same program).
///
/// Scope: the explorer executes *serial* piece interleavings — each piece
/// runs begin-to-commit without intra-piece concurrency. That suffices for
/// every chopping anomaly whose dependency cycle orders conflict edges
/// forward in time (Fig. 5 and friends) and keeps the search deterministic;
/// anomalies that require genuinely concurrent snapshots (e.g. a PSI long
/// fork) are out of reach and come back refuted-under-bound, which is the
/// honest verdict for a bounded search. Witnesses are therefore *sound*
/// (every one is a real execution confirmed by the exact decision
/// procedure); refutations are relative to the bound and the serial
/// schedule space.

namespace sia::witness {

/// Search knobs. Everything is deterministic for fixed options: no clocks,
/// no global state, and the seed only perturbs tie-breaking among pieces
/// of equal guide rank.
struct WitnessOptions {
  std::size_t max_schedules{4096};  ///< complete schedules to try
  std::size_t max_steps{1u << 16};  ///< piece executions across the search
  std::uint64_t seed{0};            ///< tie-break perturbation
  bool minimize{true};              ///< delta-minimise successful witnesses
};

enum class WitnessStatus : std::uint8_t {
  kWitnessed,          ///< concrete anomaly history found and confirmed
  kRefutedUnderBound,  ///< search space (under the budgets) exhausted
  kNoCycle,            ///< the static analysis finds no critical cycle
};

[[nodiscard]] std::string to_string(WitnessStatus s);

/// One event of a witness history, at piece granularity: begin/commit
/// bracket each executed piece; reads carry the value observed, writes the
/// value installed.
struct WitnessEvent {
  enum class Op : std::uint8_t { kBegin, kRead, kWrite, kCommit };
  Op op{Op::kBegin};
  std::size_t program{0};  ///< index into Witness::programs
  std::size_t piece{0};    ///< piece index within the program
  ObjId obj{kInvalidObj};  ///< read/write only
  Value value{0};          ///< read/write only
};

[[nodiscard]] std::string to_string(WitnessEvent::Op op);

/// Search effort accounting (for refutation reports and the bench).
struct ScheduleStats {
  std::size_t schedules_explored{0};  ///< complete schedules executed
  std::size_t steps_executed{0};      ///< engine piece executions
  std::size_t memo_hits{0};           ///< prefixes skipped by memoisation
};

/// Outcome of a witness search for one (suite, criterion) pair.
struct Witness {
  WitnessStatus status{WitnessStatus::kNoCycle};
  Criterion criterion{Criterion::kSI};
  WitnessOptions options;

  /// Program names participating in the witness (indexing WitnessEvent::
  /// program); a subset of the suite's programs — the cycle's programs,
  /// minus any the minimiser emptied out entirely.
  std::vector<std::string> programs;
  /// Object names touched by the witness, id = position (the dense ObjId
  /// space of the events below).
  std::vector<std::string> objects;
  /// The minimised concrete history, in execution order.
  std::vector<WitnessEvent> events;

  /// The violating cycle over *spliced* transactions, rendered with
  /// program and object names ("transfer -WR(acct1)-> lookupAll", ...).
  std::vector<std::string> cycle;
  /// Exhaustiveness of the exact gate: dependency-graph extensions of the
  /// spliced history examined by decide_history.
  std::size_t graphs_tried{0};
  /// ConsistencyMonitor confirmation on the spliced commits.
  bool monitor_confirmed{false};
  std::string monitor_detail;

  ScheduleStats stats;

  /// Parametric suites are witnessed over a finite instantiation: the
  /// universe [1, n] the suite was clamped to before exhaustive parameter
  /// expansion (0 = the suite was concrete already, no expansion) and the
  /// number of concrete program instances the explorer then ran against.
  std::size_t universe{0};
  std::size_t instantiated_programs{0};

  /// The recorded piece-level history of the minimised run (init
  /// transaction first; session s+1 = programs[s]) — what --replay
  /// re-verifies offline.
  History piece_history;

  [[nodiscard]] bool witnessed() const {
    return status == WitnessStatus::kWitnessed;
  }
};

/// Criterion probed by a lint check id ("si-critical-cycle" → kSI, ...);
/// nullopt for checks that are not critical-cycle findings.
[[nodiscard]] std::optional<Criterion> criterion_of_check(
    std::string_view check_id);

/// Model matching a chopping criterion (the engine/monitor side).
[[nodiscard]] Model model_of(Criterion crit);

/// Searches for a concrete anomaly history witnessing the critical-cycle
/// finding of \p crit over \p suite. Re-runs the static analysis to
/// recover the guide cycle; returns kNoCycle when the chopping is correct
/// (nothing to witness). Deterministic for fixed (suite, crit, opts).
[[nodiscard]] Witness find_witness(const ParsedSuite& suite, Criterion crit,
                                   const WitnessOptions& opts = {});

/// Shared confirmation gate (used by the search and by --replay): splices
/// \p piece_history, decides membership exactly, and cross-checks with the
/// ConsistencyMonitor over the lifted graph when the lift is well-defined.
struct Confirmation {
  bool anomaly{false};  ///< splice(H) ∉ Hist(model) — the exact verdict
  std::size_t graphs_tried{0};
  bool monitor_ran{false};
  bool monitor_violation{false};
  std::string monitor_detail;
  /// Violating cycle over spliced transactions (empty when the exclusion
  /// is an INT violation or the lift is obstructed).
  std::vector<DepEdge> cycle;
};

[[nodiscard]] Confirmation confirm_spliced(const History& piece_history,
                                           const DependencyGraph& piece_graph,
                                           Model model);

/// Rebuilds the piece-level dependency graph of a replayed witness
/// history: WW(x) from commit order (the order transactions appear in the
/// history, which is the order they committed), WR inferred from the
/// distinct-values discipline the explorer writes with. Throws ModelError
/// if the history violates that discipline (a tampered witness).
[[nodiscard]] DependencyGraph rebuild_piece_graph(const History& h);

}  // namespace sia::witness
