#pragma once

#include <string>
#include <string_view>

#include "witness/witness.hpp"

/// \file witness_json.hpp
/// The witness interchange format: a compact single-line JSON document per
/// (file, check) finding, embedded verbatim in lint JSON output and in the
/// SARIF result's `properties.witness` bag, and written standalone by
/// `sia_lint --witness-dir`. `sia_analyze --replay` reads the document
/// back, reconstructs the piece-level history from the event list alone,
/// and re-runs the full confirmation gate (splice → exact decision →
/// monitor) offline — so CI can round-trip every witness without trusting
/// anything but the recorded events.

namespace sia::witness {

inline constexpr std::string_view kWitnessVersion = "1.0.0";

/// Serialises \p w as one line of JSON. \p file and \p check identify the
/// originating lint finding. Deterministic: field order fixed, no clocks.
[[nodiscard]] std::string to_json(const Witness& w, std::string_view file,
                                  std::string_view check);

/// Result of replaying a witness document offline.
struct ReplayReport {
  std::string file;
  std::string check;
  std::string criterion;
  std::string status;      ///< status recorded in the document
  bool replayable{false};  ///< document carries a witnessed history
  bool reproduced{false};  ///< re-verification confirmed the anomaly
  std::size_t graphs_tried{0};
  bool monitor_confirmed{false};
  std::string monitor_detail;
};

/// Parses a witness document and, when it carries a witnessed history,
/// rebuilds the piece history from the events, re-derives the dependency
/// graph (rebuild_piece_graph) and re-runs confirm_spliced. \throws
/// ParseError on malformed JSON, ModelError on a structurally invalid or
/// tampered document.
[[nodiscard]] ReplayReport replay_witness_text(std::string_view text);

}  // namespace sia::witness
