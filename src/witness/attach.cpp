#include "witness/attach.hpp"

#include <string>

#include "tools/parse_error.hpp"
#include "witness/witness_json.hpp"

namespace sia::witness {

namespace {

std::string summarise(const Witness& w, const WitnessOptions& opts) {
  const std::string explored =
      "(schedules explored: " + std::to_string(w.stats.schedules_explored) +
      "/" + std::to_string(opts.max_schedules) + ")";
  const std::string universe =
      w.universe != 0 ? " over the [1, " + std::to_string(w.universe) +
                            "] instantiation (" +
                            std::to_string(w.instantiated_programs) +
                            " instances)"
                      : "";
  switch (w.status) {
    case WitnessStatus::kWitnessed:
      return "witness: " + std::to_string(w.events.size()) +
             "-event anomaly history confirmed" + universe + " " + explored +
             "; replay with sia_analyze --replay";
    case WitnessStatus::kRefutedUnderBound:
      return "witness: refuted-under-bound" + universe + " " + explored;
    case WitnessStatus::kNoCycle:
      return "witness: no critical cycle recovered" + universe +
             " under the default cycle budget";
  }
  return "witness: ?";
}

}  // namespace

AttachStats attach_witnesses(lint::LintRun& run, const WitnessOptions& opts) {
  AttachStats stats;
  for (lint::FileResult& f : run.files) {
    if (f.parse_failed) continue;
    bool parsed = false;
    ParsedSuite suite;
    for (Diagnostic& d : f.diagnostics) {
      const std::optional<Criterion> crit = criterion_of_check(d.check);
      if (!crit) continue;
      if (d.context == "cycle-budget") {
        // The static search gave up before producing a cycle: there is
        // nothing to guide the explorer and the finding is already marked
        // incomplete.
        ++stats.skipped;
        continue;
      }
      ++stats.eligible;
      if (!parsed) {
        // The file linted, so it parses; one parse serves every finding.
        suite = parse_programs(f.source);
        parsed = true;
      }
      const Witness w = find_witness(suite, *crit, opts);
      stats.schedules_explored += w.stats.schedules_explored;
      if (w.witnessed()) {
        ++stats.witnessed;
      } else {
        ++stats.refuted;
      }
      WitnessInfo info;
      info.status = to_string(w.status);
      info.schedules_explored = w.stats.schedules_explored;
      info.budget = opts.max_schedules;
      info.summary = summarise(w, opts);
      info.json = to_json(w, f.file, d.check);
      d.witness = std::move(info);
    }
  }
  return stats;
}

}  // namespace sia::witness
