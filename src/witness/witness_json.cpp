#include "witness/witness_json.hpp"

#include <sstream>

#include "tools/analysis_json.hpp"
#include "tools/json_min.hpp"

namespace sia::witness {

namespace {

const char* boolean(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string to_json(const Witness& w, std::string_view file,
                    std::string_view check) {
  std::ostringstream out;
  out << "{\"tool\": \"sia_lint\", \"version\": \"" << kWitnessVersion
      << "\", \"file\": " << json_quote(file)
      << ", \"check\": " << json_quote(check)
      << ", \"criterion\": " << json_quote(to_string(w.criterion))
      << ", \"status\": " << json_quote(to_string(w.status))
      << ", \"budget\": " << w.options.max_schedules
      << ", \"seed\": " << w.options.seed
      << ", \"telemetry\": {\"schedules_explored\": "
      << w.stats.schedules_explored
      << ", \"steps_executed\": " << w.stats.steps_executed
      << ", \"memo_hits\": " << w.stats.memo_hits;
  if (w.universe != 0) {
    out << ", \"universe\": " << w.universe
        << ", \"instances\": " << w.instantiated_programs;
  }
  out << "}, \"minimized\": " << boolean(w.options.minimize)
      << ", \"graphs_tried\": " << w.graphs_tried;
  out << ", \"programs\": [";
  for (std::size_t i = 0; i < w.programs.size(); ++i) {
    out << (i != 0 ? ", " : "") << json_quote(w.programs[i]);
  }
  out << "], \"objects\": [";
  for (std::size_t i = 0; i < w.objects.size(); ++i) {
    out << (i != 0 ? ", " : "") << json_quote(w.objects[i]);
  }
  out << "], \"events\": [";
  for (std::size_t i = 0; i < w.events.size(); ++i) {
    const WitnessEvent& e = w.events[i];
    out << (i != 0 ? ", " : "") << "{\"op\": " << json_quote(to_string(e.op))
        << ", \"program\": " << json_quote(w.programs[e.program])
        << ", \"piece\": " << e.piece;
    if (e.op == WitnessEvent::Op::kRead || e.op == WitnessEvent::Op::kWrite) {
      out << ", \"obj\": " << json_quote(w.objects[e.obj])
          << ", \"value\": " << e.value;
    }
    out << "}";
  }
  out << "], \"cycle\": [";
  for (std::size_t i = 0; i < w.cycle.size(); ++i) {
    out << (i != 0 ? ", " : "") << json_quote(w.cycle[i]);
  }
  out << "], \"monitor\": {\"confirmed\": " << boolean(w.monitor_confirmed)
      << ", \"detail\": " << json_quote(w.monitor_detail) << "}}";
  return out.str();
}

namespace {

const JsonValue& member(const JsonValue& v, std::string_view key,
                        JsonValue::Kind kind) {
  const JsonValue& m = v.at(key);
  if (!m.is(kind)) {
    throw ModelError("witness document: member '" + std::string(key) +
                     "' has the wrong type");
  }
  return m;
}

std::size_t index_of(const std::vector<std::string>& names,
                     const std::string& name, std::string_view what) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw ModelError("witness document: unknown " + std::string(what) + " '" +
                   name + "'");
}

}  // namespace

ReplayReport replay_witness_text(std::string_view text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is(JsonValue::Kind::kObject)) {
    throw ModelError("witness document: top level is not an object");
  }
  ReplayReport rep;
  rep.file = member(doc, "file", JsonValue::Kind::kString).string;
  rep.check = member(doc, "check", JsonValue::Kind::kString).string;
  rep.criterion = member(doc, "criterion", JsonValue::Kind::kString).string;
  rep.status = member(doc, "status", JsonValue::Kind::kString).string;
  if (rep.status != "witnessed") return rep;  // nothing to replay
  rep.replayable = true;

  Model model = Model::kSI;
  if (rep.criterion == "SER") {
    model = Model::kSER;
  } else if (rep.criterion == "SI") {
    model = Model::kSI;
  } else if (rep.criterion == "PSI") {
    model = Model::kPSI;
  } else {
    throw ModelError("witness document: unknown criterion '" + rep.criterion +
                     "'");
  }

  std::vector<std::string> programs;
  for (const JsonValue& p :
       member(doc, "programs", JsonValue::Kind::kArray).array) {
    if (!p.is(JsonValue::Kind::kString)) {
      throw ModelError("witness document: non-string program name");
    }
    programs.push_back(p.string);
  }
  ObjectTable objects;
  std::vector<std::string> object_names;
  std::vector<ObjId> obj_ids;
  for (const JsonValue& o :
       member(doc, "objects", JsonValue::Kind::kArray).array) {
    if (!o.is(JsonValue::Kind::kString)) {
      throw ModelError("witness document: non-string object name");
    }
    object_names.push_back(o.string);
    obj_ids.push_back(objects.intern(o.string));
  }

  // Rebuild the piece-level history: the init transaction (TxnId 0, its
  // own session) writes 0 to every listed object, then each begin..commit
  // bracket becomes one transaction of its program's session, appended in
  // document order — so TxnId order is commit order, exactly the
  // discipline rebuild_piece_graph assumes.
  History h;
  {
    std::vector<Event> init;
    init.reserve(obj_ids.size());
    for (const ObjId x : obj_ids) init.push_back(write(x, 0));
    h.append_singleton(Transaction(std::move(init)));
  }
  std::vector<Event> pending;
  bool open = false;
  std::size_t open_program = 0;
  for (const JsonValue& ev :
       member(doc, "events", JsonValue::Kind::kArray).array) {
    const std::string& op = member(ev, "op", JsonValue::Kind::kString).string;
    const std::string& prog_name =
        member(ev, "program", JsonValue::Kind::kString).string;
    const std::size_t prog = index_of(programs, prog_name, "program");
    if (op == "begin") {
      if (open) throw ModelError("witness document: nested begin");
      open = true;
      open_program = prog;
      pending.clear();
    } else if (op == "commit") {
      if (!open || prog != open_program) {
        throw ModelError("witness document: mismatched commit");
      }
      h.append(static_cast<SessionId>(open_program + 1),
               Transaction(std::move(pending)));
      pending.clear();
      open = false;
    } else if (op == "read" || op == "write") {
      if (!open || prog != open_program) {
        throw ModelError("witness document: access outside its transaction");
      }
      const std::string& obj_name =
          member(ev, "obj", JsonValue::Kind::kString).string;
      const ObjId x = obj_ids[index_of(object_names, obj_name, "object")];
      const double raw = member(ev, "value", JsonValue::Kind::kNumber).number;
      const Value val = static_cast<Value>(raw);
      pending.push_back(op == "read" ? read(x, val) : write(x, val));
    } else {
      throw ModelError("witness document: unknown op '" + op + "'");
    }
  }
  if (open) throw ModelError("witness document: unterminated transaction");

  const DependencyGraph g = rebuild_piece_graph(h);
  const Confirmation c = confirm_spliced(h, g, model);
  rep.graphs_tried = c.graphs_tried;
  rep.monitor_confirmed = c.monitor_violation;
  rep.monitor_detail = c.monitor_detail;
  rep.reproduced = c.anomaly && (c.monitor_violation || !c.monitor_ran);
  return rep;
}

}  // namespace sia::witness
