#pragma once

#include "lint/lint.hpp"
#include "witness/witness.hpp"

/// \file attach.hpp
/// Glue between the lint driver and the witness engine: after a lint run,
/// walk every critical-cycle finding, search for a concrete witness and
/// attach the outcome to the Diagnostic (as tools/diagnostic's plain
/// WitnessInfo, so the emitters need no witness types). This lives on the
/// witness side of the layering — sia_lint_lib does not link the engine;
/// the sia_lint *executable* does.

namespace sia::witness {

/// Aggregate outcome of one attach pass (for the CLI summary line and the
/// bench).
struct AttachStats {
  std::size_t eligible{0};   ///< critical-cycle findings examined
  std::size_t witnessed{0};  ///< concrete histories found
  std::size_t refuted{0};    ///< refuted-under-bound marks
  std::size_t skipped{0};    ///< budget-exhausted findings left untouched
  std::size_t schedules_explored{0};  ///< total across all searches
};

/// Runs the witness engine over every critical-cycle finding of \p run
/// (in place). Findings whose static search already exhausted its cycle
/// budget (context "cycle-budget") carry no cycle to guide on and are
/// skipped. Deterministic for fixed (run, opts).
AttachStats attach_witnesses(lint::LintRun& run, const WitnessOptions& opts);

}  // namespace sia::witness
