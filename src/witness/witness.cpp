#include "witness/witness.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "chopping/splice.hpp"
#include "chopping/static_chopping_graph.hpp"
#include "graph/characterization.hpp"
#include "lint/abstract_keys.hpp"
#include "graph/monitor.hpp"
#include "mvcc/psi_engine.hpp"
#include "mvcc/recorder.hpp"
#include "mvcc/ser_engine.hpp"
#include "mvcc/si_engine.hpp"

namespace sia::witness {

namespace {

/// Value installed by piece \p j of suite program \p i: nonzero (0 is the
/// initial value) and distinct per piece, so WR edges are forced by the
/// distinct-values discipline in every dependency-graph extension and can
/// be re-inferred from a replayed history.
Value value_of(std::size_t i, std::size_t j) {
  return static_cast<Value>(100 * (i + 1) + j + 1);
}

/// One scheduled piece execution, with the accesses surviving the drop
/// masks of the minimiser. A step whose access lists are both empty is
/// skipped entirely (a legal run of the piece: read/write sets
/// over-approximate what the piece *may* access).
struct PieceStep {
  std::size_t part{0};   ///< participant index (engine session)
  std::size_t piece{0};  ///< piece index within the program
  std::vector<ObjId> reads;
  std::vector<ObjId> writes;
  Value write_value{0};
  [[nodiscard]] bool empty() const { return reads.empty() && writes.empty(); }
};

/// Per-piece drop masks (bit k set = k-th declared access dropped).
struct DropMask {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
};

struct ExecContext {
  const std::vector<Program>* programs{nullptr};  ///< the whole suite
  std::vector<std::size_t> participants;          ///< suite program indices
  Criterion crit{Criterion::kSI};
  std::uint32_t num_keys{0};
  /// dropped[part][piece]; all-zero outside minimisation.
  std::vector<std::vector<DropMask>> dropped;

  [[nodiscard]] const Program& program_of(std::size_t part) const {
    return (*programs)[participants[part]];
  }
};

/// Resolves a schedule (sequence of participant indices; each occurrence
/// runs that participant's next piece) into concrete piece steps.
std::vector<PieceStep> plan_schedule(const ExecContext& ctx,
                                     const std::vector<std::size_t>& schedule) {
  std::vector<std::size_t> progress(ctx.participants.size(), 0);
  std::vector<PieceStep> steps;
  steps.reserve(schedule.size());
  for (const std::size_t part : schedule) {
    const std::size_t j = progress[part]++;
    const Program& prog = ctx.program_of(part);
    const Piece& piece = prog.pieces[j];
    const DropMask& drop = ctx.dropped[part][j];
    PieceStep s;
    s.part = part;
    s.piece = j;
    s.write_value = value_of(ctx.participants[part], j);
    for (std::size_t k = 0; k < piece.reads.size(); ++k) {
      if ((drop.reads & (1ull << k)) == 0) s.reads.push_back(piece.reads[k]);
    }
    for (std::size_t k = 0; k < piece.writes.size(); ++k) {
      if ((drop.writes & (1ull << k)) == 0) s.writes.push_back(piece.writes[k]);
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

/// Outcome of executing one (partial) schedule against an engine.
struct ExecOutcome {
  bool ok{false};  ///< every non-empty piece committed
  std::vector<mvcc::CommitRecord> records;  ///< handle order
  /// (participant, piece) of each commit, parallel to records.
  std::vector<std::pair<std::size_t, std::size_t>> committed;
  std::optional<mvcc::RecordedRun> run;  ///< built only when requested
};

template <typename DB, typename BeginFn, typename RunPieceFn>
bool run_steps(const std::vector<PieceStep>& steps, std::size_t nparts,
               ExecOutcome& out, DB& db, BeginFn&& begin_session,
               RunPieceFn&& run_piece) {
  (void)db;
  for (std::size_t p = 0; p < nparts; ++p) begin_session(p);
  for (const PieceStep& s : steps) {
    if (s.empty()) continue;
    if (!run_piece(s)) return false;
    out.committed.emplace_back(s.part, s.piece);
  }
  return true;
}

ExecOutcome execute_si(const ExecContext& ctx,
                       const std::vector<PieceStep>& steps, bool want_run) {
  ExecOutcome out;
  mvcc::Recorder rec;
  mvcc::SIDatabase db(ctx.num_keys, &rec);
  std::vector<mvcc::SISession> sessions;
  out.ok = run_steps(
      steps, ctx.participants.size(), out, db,
      [&](std::size_t) { sessions.push_back(db.make_session()); },
      [&](const PieceStep& s) {
        mvcc::SITransaction t = db.begin(sessions[s.part]);
        for (const ObjId x : s.reads) (void)t.read(x);
        for (const ObjId x : s.writes) t.write(x, s.write_value);
        return t.commit();
      });
  out.records = rec.records();
  if (out.ok && want_run) out.run = rec.build();
  return out;
}

ExecOutcome execute_ser(const ExecContext& ctx,
                        const std::vector<PieceStep>& steps, bool want_run) {
  ExecOutcome out;
  mvcc::Recorder rec;
  mvcc::SERDatabase db(ctx.num_keys, &rec);
  std::vector<mvcc::SERSession> sessions;
  out.ok = run_steps(
      steps, ctx.participants.size(), out, db,
      [&](std::size_t) { sessions.push_back(db.make_session()); },
      [&](const PieceStep& s) {
        mvcc::SERTransaction t = db.begin(sessions[s.part]);
        for (const ObjId x : s.reads) {
          if (!t.read(x).has_value()) return false;
        }
        for (const ObjId x : s.writes) {
          if (!t.write(x, s.write_value)) return false;
        }
        return t.commit();
      });
  out.records = rec.records();
  if (out.ok && want_run) out.run = rec.build();
  return out;
}

ExecOutcome execute_psi(const ExecContext& ctx,
                        const std::vector<PieceStep>& steps, bool want_run) {
  ExecOutcome out;
  mvcc::Recorder rec;
  // One replica: replication is trivially quiescent and every commit is
  // visible to the next begin, so serial schedules are deterministic.
  mvcc::PSIDatabase db(ctx.num_keys, 1, &rec);
  std::vector<mvcc::PSISession> sessions;
  out.ok = run_steps(
      steps, ctx.participants.size(), out, db,
      [&](std::size_t) { sessions.push_back(db.make_session(0)); },
      [&](const PieceStep& s) {
        mvcc::PSITransaction t = db.begin(sessions[s.part]);
        for (const ObjId x : s.reads) (void)t.read(x);
        for (const ObjId x : s.writes) t.write(x, s.write_value);
        return t.commit();
      });
  out.records = rec.records();
  if (out.ok && want_run) out.run = rec.build();
  return out;
}

ExecOutcome execute(const ExecContext& ctx,
                    const std::vector<std::size_t>& schedule, bool want_run,
                    ScheduleStats& stats) {
  const std::vector<PieceStep> steps = plan_schedule(ctx, schedule);
  for (const PieceStep& s : steps) {
    if (!s.empty()) ++stats.steps_executed;
  }
  switch (ctx.crit) {
    case Criterion::kSI: return execute_si(ctx, steps, want_run);
    case Criterion::kSER: return execute_ser(ctx, steps, want_run);
    case Criterion::kPSI: return execute_psi(ctx, steps, want_run);
  }
  return {};
}

/// Canonical fingerprint of a prefix state for memoisation: the progress
/// vector plus every session's commit records with engine handles
/// rewritten to (session, per-session index). Two prefixes with equal
/// fingerprints have identical per-key latest values, identical recorded
/// dependency structure and identical remaining work, so their suffix
/// subtrees coincide (Mazurkiewicz trace equivalence over serial piece
/// schedules).
std::string state_fingerprint(const std::vector<std::size_t>& progress,
                              const std::vector<mvcc::CommitRecord>& records,
                              std::size_t nparts) {
  std::ostringstream fp;
  for (const std::size_t p : progress) fp << p << ',';
  fp << '|';
  // handle (1-based) -> (session, per-session index); 0 stays "init".
  std::vector<std::pair<SessionId, std::size_t>> of_handle;
  of_handle.reserve(records.size() + 1);
  of_handle.emplace_back(0, 0);  // init
  {
    std::vector<std::size_t> seen(nparts, 0);
    for (const mvcc::CommitRecord& r : records) {
      of_handle.emplace_back(r.session, seen[r.session]++);
    }
  }
  std::vector<std::string> per_session(nparts);
  for (const mvcc::CommitRecord& r : records) {
    std::ostringstream s;
    for (std::size_t e = 0; e < r.events.size(); ++e) {
      const Event& ev = r.events[e];
      s << (ev.is_read() ? 'r' : 'w') << ev.obj << '=' << ev.value;
      if (ev.is_read() && e < r.observed_writer.size()) {
        const mvcc::TxnHandle h = r.observed_writer[e];
        if (h < of_handle.size()) {
          s << '@' << of_handle[h].first << '.' << of_handle[h].second;
        }
      }
      s << ';';
    }
    for (const auto& [obj, version] : r.write_versions) {
      s << 'v' << obj << ':' << version << ';';
    }
    per_session[r.session] += s.str() + '!';
  }
  for (const std::string& s : per_session) fp << s << '#';
  return fp.str();
}

/// A witness is accepted when the exact decision excludes the spliced
/// history AND the monitor path agrees whenever it could run (the cases
/// where it cannot — an INT violation inside a spliced transaction, a
/// cyclic lifted dependency relation, an obstructed lift — are themselves
/// conclusive anomalies, already covered by the exact gate).
bool accepted(const Confirmation& c) {
  return c.anomaly && (c.monitor_violation || !c.monitor_ran);
}

// ----- cycle-guided search -------------------------------------------------

struct Searcher {
  ExecContext ctx;
  WitnessOptions opts;
  std::vector<std::size_t> pieces_of;  ///< piece count per participant
  std::vector<std::vector<std::size_t>> rank;  ///< guide rank per piece
  std::size_t total_pieces{0};

  ScheduleStats stats;
  std::unordered_set<std::string> memo;
  bool out_of_budget{false};

  std::vector<std::size_t> schedule;  ///< DFS prefix / found schedule
  std::optional<ExecOutcome> found_out;
  Confirmation found_conf;

  [[nodiscard]] bool dfs(std::vector<std::size_t>& progress) {
    if (out_of_budget) return false;
    if (schedule.size() == total_pieces) {
      if (stats.schedules_explored >= opts.max_schedules) {
        out_of_budget = true;
        return false;
      }
      ++stats.schedules_explored;
      ExecOutcome out = execute(ctx, schedule, /*want_run=*/true, stats);
      if (!out.ok || !out.run) return false;
      Confirmation c =
          confirm_spliced(out.run->history, out.run->graph, model_of(ctx.crit));
      if (!accepted(c)) return false;
      found_out = std::move(out);
      found_conf = std::move(c);
      return true;
    }
    if (stats.steps_executed >= opts.max_steps) {
      out_of_budget = true;
      return false;
    }
    if (!schedule.empty()) {
      // Memoise on the executed prefix state; equivalent prefixes share
      // their whole suffix subtree.
      const ExecOutcome out = execute(ctx, schedule, /*want_run=*/false, stats);
      if (!out.ok) return false;
      const std::string key =
          state_fingerprint(progress, out.records, ctx.participants.size());
      if (!memo.insert(key).second) {
        ++stats.memo_hits;
        return false;
      }
    }
    // Candidates ordered by the guide rank of their next piece; the seed
    // only perturbs ties.
    std::vector<std::size_t> cands;
    for (std::size_t p = 0; p < ctx.participants.size(); ++p) {
      if (progress[p] < pieces_of[p]) cands.push_back(p);
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [&](std::size_t a, std::size_t b) {
                       const std::size_t ra = rank[a][progress[a]];
                       const std::size_t rb = rank[b][progress[b]];
                       if (ra != rb) return ra < rb;
                       const std::size_t n = ctx.participants.size();
                       return (a + opts.seed) % n < (b + opts.seed) % n;
                     });
    for (const std::size_t p : cands) {
      schedule.push_back(p);
      ++progress[p];
      const bool hit = dfs(progress);
      --progress[p];
      if (hit) return true;
      schedule.pop_back();
    }
    return false;
  }
};

/// Guide ranks: a deterministic topological sort of the participants'
/// pieces under program order plus the critical cycle's conflict edges
/// (source committed before target realises a WR/WW/RW conflict in a
/// serial schedule). Falls back to flat order if the constraints are
/// cyclic.
std::vector<std::vector<std::size_t>> guide_ranks(
    const StaticChoppingGraph& scg, const TypedCycle& cyc,
    const std::vector<std::size_t>& participants,
    const std::vector<std::size_t>& part_of_program) {
  std::vector<std::size_t> first(participants.size(), 0);
  std::size_t total = 0;
  for (std::size_t p = 0; p < participants.size(); ++p) {
    first[p] = total;
    total += scg.programs()[participants[p]].pieces.size();
  }
  const auto flat = [&](std::size_t part, std::size_t piece) {
    return first[part] + piece;
  };
  std::vector<std::vector<std::size_t>> adj(total);
  std::vector<std::size_t> indeg(total, 0);
  const auto add_edge = [&](std::size_t a, std::size_t b) {
    if (a == b) return;
    if (std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end()) return;
    adj[a].push_back(b);
    ++indeg[b];
  };
  for (std::size_t p = 0; p < participants.size(); ++p) {
    const std::size_t n = scg.programs()[participants[p]].pieces.size();
    for (std::size_t j = 0; j + 1 < n; ++j) {
      add_edge(flat(p, j), flat(p, j + 1));
    }
  }
  const std::size_t n = cyc.length();
  for (std::size_t k = 0; k < n; ++k) {
    if (!is_conflict(cyc.masks[k])) continue;
    const auto [gi, ji] = scg.piece_of(cyc.vertices[k]);
    const auto [gt, jt] = scg.piece_of(cyc.vertices[(k + 1) % n]);
    add_edge(flat(part_of_program[gi], ji), flat(part_of_program[gt], jt));
  }
  // Kahn's algorithm, smallest-id-first for determinism.
  std::vector<std::size_t> order;
  std::vector<std::size_t> indeg_left = indeg;
  std::vector<bool> done(total, false);
  while (order.size() < total) {
    std::size_t pick = total;
    for (std::size_t v = 0; v < total; ++v) {
      if (!done[v] && indeg_left[v] == 0) {
        pick = v;
        break;
      }
    }
    if (pick == total) break;  // constraint cycle
    done[pick] = true;
    order.push_back(pick);
    for (const std::size_t w : adj[pick]) --indeg_left[w];
  }
  std::vector<std::size_t> rank_of(total);
  if (order.size() == total) {
    for (std::size_t i = 0; i < order.size(); ++i) rank_of[order[i]] = i;
  } else {
    for (std::size_t v = 0; v < total; ++v) rank_of[v] = v;
  }
  std::vector<std::vector<std::size_t>> ranks(participants.size());
  for (std::size_t p = 0; p < participants.size(); ++p) {
    const std::size_t np = scg.programs()[participants[p]].pieces.size();
    for (std::size_t j = 0; j < np; ++j) {
      ranks[p].push_back(rank_of[flat(p, j)]);
    }
  }
  return ranks;
}

/// Greedy delta-minimisation: drop declared accesses one at a time (in
/// deterministic order) and keep each drop that preserves the confirmed
/// anomaly, iterating to a fixpoint. Sound because read/write sets are
/// may-sets: a run touching fewer objects is still an execution of the
/// same program.
void minimise(Searcher& s) {
  struct Cand {
    std::size_t part, piece, index;
    bool is_write;
  };
  std::vector<Cand> cands;
  for (std::size_t p = 0; p < s.ctx.participants.size(); ++p) {
    const Program& prog = s.ctx.program_of(p);
    for (std::size_t j = 0; j < prog.pieces.size(); ++j) {
      for (std::size_t k = 0; k < prog.pieces[j].reads.size(); ++k) {
        cands.push_back({p, j, k, false});
      }
      for (std::size_t k = 0; k < prog.pieces[j].writes.size(); ++k) {
        cands.push_back({p, j, k, true});
      }
    }
  }
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < 8) {
    changed = false;
    for (const Cand& c : cands) {
      DropMask& mask = s.ctx.dropped[c.part][c.piece];
      std::uint64_t& bits = c.is_write ? mask.writes : mask.reads;
      const std::uint64_t bit = 1ull << c.index;
      if ((bits & bit) != 0) continue;
      bits |= bit;
      ExecOutcome out = execute(s.ctx, s.schedule, /*want_run=*/true, s.stats);
      bool keep = false;
      if (out.ok && out.run) {
        const Confirmation conf = confirm_spliced(
            out.run->history, out.run->graph, model_of(s.ctx.crit));
        keep = accepted(conf);
      }
      if (keep) {
        changed = true;
      } else {
        bits &= ~bit;
      }
    }
  }
  // Re-execute with the final masks so the witness artefacts match.
  ExecOutcome out = execute(s.ctx, s.schedule, /*want_run=*/true, s.stats);
  s.found_conf =
      confirm_spliced(out.run->history, out.run->graph, model_of(s.ctx.crit));
  s.found_out = std::move(out);
}

}  // namespace

std::string to_string(WitnessStatus s) {
  switch (s) {
    case WitnessStatus::kWitnessed: return "witnessed";
    case WitnessStatus::kRefutedUnderBound: return "refuted-under-bound";
    case WitnessStatus::kNoCycle: return "no-critical-cycle";
  }
  return "?";
}

std::string to_string(WitnessEvent::Op op) {
  switch (op) {
    case WitnessEvent::Op::kBegin: return "begin";
    case WitnessEvent::Op::kRead: return "read";
    case WitnessEvent::Op::kWrite: return "write";
    case WitnessEvent::Op::kCommit: return "commit";
  }
  return "?";
}

std::optional<Criterion> criterion_of_check(std::string_view check_id) {
  if (check_id == "si-critical-cycle") return Criterion::kSI;
  if (check_id == "ser-critical-cycle") return Criterion::kSER;
  if (check_id == "psi-critical-cycle") return Criterion::kPSI;
  return std::nullopt;
}

Model model_of(Criterion crit) {
  switch (crit) {
    case Criterion::kSER: return Model::kSER;
    case Criterion::kSI: return Model::kSI;
    case Criterion::kPSI: return Model::kPSI;
  }
  return Model::kSI;
}

Confirmation confirm_spliced(const History& piece_history,
                             const DependencyGraph& piece_graph, Model model) {
  Confirmation c;
  const History spl = splice_history(piece_history);
  const HistDecision dec = decide_history(spl, model);
  c.graphs_tried = dec.graphs_tried;
  c.anomaly = !dec.allowed;
  if (!c.anomaly) return c;

  if (!spl.internally_consistent()) {
    // Atomicity broken *within* a spliced transaction (a later piece read
    // another program's write over its own program's earlier one). The
    // monitor checks inter-transaction structure only; the exact gate
    // already excludes the history via INT.
    c.monitor_detail =
        "spliced history violates INT (a spliced transaction reads a value "
        "overwriting its own earlier write)";
    return c;
  }

  DependencyGraph g_spl;
  try {
    g_spl = splice_graph(piece_graph);
  } catch (const ModelError& e) {
    c.monitor_detail = std::string("splice lift obstructed: ") + e.what();
    return c;
  }

  const GraphCheck gc = check_graph(g_spl, model);
  if (!gc.member) c.cycle = gc.witness;

  // Feed the monitor in a topological order of the lifted WR ∪ WW edges:
  // ingestion order then reproduces exactly the lifted WW orders (writers
  // install in ingestion order) and every WR source precedes its reader.
  const std::size_t n = spl.txn_count();
  std::vector<std::vector<TxnId>> adj(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const DepEdge& e : g_spl.edges()) {
    if (e.kind != DepKind::kWR && e.kind != DepKind::kWW) continue;
    if (e.from == 0 || e.to == 0 || e.from == e.to) continue;
    adj[e.from].push_back(e.to);
    ++indeg[e.to];
  }
  std::vector<TxnId> order;
  std::vector<std::size_t> indeg_left = indeg;
  std::vector<bool> done(n, true);
  for (TxnId t = 1; t < n; ++t) done[t] = false;
  while (order.size() + 1 < n) {
    TxnId pick = static_cast<TxnId>(n);
    for (TxnId t = 1; t < n; ++t) {
      if (!done[t] && indeg_left[t] == 0) {
        pick = t;
        break;
      }
    }
    if (pick == static_cast<TxnId>(n)) {
      c.monitor_detail =
          "lifted WR/WW dependencies are cyclic; no monitor ingestion order "
          "exists (the cycle itself excludes the history)";
      return c;
    }
    done[pick] = true;
    order.push_back(pick);
    for (const TxnId w : adj[pick]) --indeg_left[w];
  }

  ConsistencyMonitor mon(model);
  std::vector<TxnId> mon_id(n, 0);  // spliced txn -> monitor id; init = 0
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const TxnId t = order[pos];
    MonitoredCommit mc;
    mc.session = static_cast<SessionId>(pos);  // distinct sessions: SO = ∅
    mc.txn = spl.txn(t);
    std::vector<std::pair<ObjId, TxnId>> sources;
    for (const ObjId x : mc.txn.external_read_set()) {
      const std::optional<TxnId> src = g_spl.read_source(x, t);
      sources.emplace_back(x, src ? mon_id[*src] : 0);
    }
    std::sort(sources.begin(), sources.end());
    for (const auto& [x, src] : sources) mc.read_sources[x] = src;
    try {
      mon_id[t] = mon.commit(mc);
    } catch (const ModelError& e) {
      c.monitor_detail = std::string("monitor rejected spliced commit: ") +
                         e.what();
      return c;
    }
  }
  c.monitor_ran = true;
  c.monitor_violation = mon.verdict() == MonitorVerdict::kViolation;
  c.monitor_detail = c.monitor_violation
                         ? mon.violation_detail()
                         : "monitor saw no violation on the spliced commits";
  return c;
}

DependencyGraph rebuild_piece_graph(const History& h) {
  DependencyGraph g(h);
  for (const ObjId x : h.objects()) {
    g.set_write_order(x, h.writers_of(x));  // TxnId order = commit order
  }
  infer_read_sources_from_values(g);
  if (const std::optional<Violation> v = g.validate()) {
    throw ModelError("witness history malformed: " + v->axiom + ": " +
                     v->detail);
  }
  return g;
}

Witness find_witness(const ParsedSuite& suite, Criterion crit,
                     const WitnessOptions& opts) {
  if (any_parametric(suite.programs)) {
    // The explorer runs concrete pieces against a real engine, so a
    // parametric suite is witnessed over a finite instantiation: clamp
    // the key universe to [1, n] and expand every parameter valuation.
    // n = 1 first — one instance per program keeps the guide cycle (and
    // hence the schedule space and the exact confirmation gate) small,
    // and realises every anomaly that does not need two distinct keys.
    // Escalate to n = 2 only when the 1-key universe has no critical
    // cycle (a conflict may need distinct parameter values). A finding
    // that needs keys outside both clamps honestly comes back
    // no-critical-cycle at the universe reported in the telemetry.
    Witness last;
    last.criterion = crit;
    last.options = opts;
    last.status = WitnessStatus::kRefutedUnderBound;
    for (const std::int64_t n : {std::int64_t{1}, std::int64_t{2}}) {
      ParsedSuite inst;
      inst.objects = suite.objects;
      try {
        inst.programs = abstract_keys::instantiate(
            abstract_keys::clamp_universe(suite.programs, n), inst.objects);
      } catch (const ModelError&) {
        break;  // instance blow-up; keep the smaller universe's outcome
      }
      Witness w = find_witness(inst, crit, opts);
      w.universe = static_cast<std::size_t>(n);
      w.instantiated_programs = inst.programs.size();
      if (w.status != WitnessStatus::kNoCycle) return w;
      last = std::move(w);
    }
    return last;
  }

  Witness w;
  w.criterion = crit;
  w.options = opts;
  const std::vector<Program>& programs = suite.programs;
  if (programs.empty()) return w;  // kNoCycle

  const StaticChoppingGraph scg(programs);
  const ChoppingVerdict verdict =
      find_critical_cycle(scg.graph(), crit, kDefaultCycleBudget);
  if (verdict.correct) return w;  // kNoCycle
  if (!verdict.witness) {
    // Static budget exhausted without a cycle: nothing to guide the
    // search, and nothing was explored.
    w.status = WitnessStatus::kRefutedUnderBound;
    return w;
  }
  const TypedCycle& cyc = *verdict.witness;

  // Participants: the cycle's programs in first-appearance order starting
  // at the primary vertex (the same one the lint diagnostic anchors on).
  const std::size_t n = cyc.length();
  std::size_t primary = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_conflict(cyc.masks[(i + n - 1) % n]) && is_conflict(cyc.masks[i])) {
      primary = i;
      break;
    }
  }
  std::vector<std::size_t> participants;
  std::vector<std::size_t> part_of_program(programs.size(), SIZE_MAX);
  for (std::size_t k = 0; k < n; ++k) {
    const auto [gi, ji] = scg.piece_of(cyc.vertices[(primary + k) % n]);
    (void)ji;
    if (part_of_program[gi] == SIZE_MAX) {
      part_of_program[gi] = participants.size();
      participants.push_back(gi);
    }
  }

  Searcher s;
  s.ctx.programs = &programs;
  s.ctx.participants = participants;
  s.ctx.crit = crit;
  s.ctx.num_keys = static_cast<std::uint32_t>(suite.objects.size());
  s.opts = opts;
  for (const std::size_t gi : participants) {
    s.pieces_of.push_back(programs[gi].pieces.size());
    s.ctx.dropped.emplace_back(programs[gi].pieces.size());
    s.total_pieces += programs[gi].pieces.size();
  }
  s.rank = guide_ranks(scg, cyc, participants, part_of_program);

  std::vector<std::size_t> progress(participants.size(), 0);
  const bool hit = s.dfs(progress);
  w.stats = s.stats;

  if (!hit) {
    w.status = WitnessStatus::kRefutedUnderBound;
    return w;
  }
  if (opts.minimize) {
    minimise(s);
    w.stats = s.stats;
  }

  const ExecOutcome& out = *s.found_out;
  const Confirmation& conf = s.found_conf;
  w.status = WitnessStatus::kWitnessed;
  w.graphs_tried = conf.graphs_tried;
  w.monitor_confirmed = conf.monitor_violation;
  w.monitor_detail = conf.monitor_detail;
  w.piece_history = out.run->history;

  for (const std::size_t gi : participants) {
    w.programs.push_back(programs[gi].name);
  }

  // Dense witness-local object ids over the objects actually touched, in
  // ascending suite-id order.
  std::vector<ObjId> touched;
  for (const mvcc::CommitRecord& r : out.records) {
    for (const Event& e : r.events) touched.push_back(e.obj);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::vector<ObjId> local_of(suite.objects.size(), kInvalidObj);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    local_of[touched[i]] = static_cast<ObjId>(i);
    w.objects.push_back(suite.objects.name(touched[i]));
  }

  for (std::size_t k = 0; k < out.records.size(); ++k) {
    const auto [part, piece] = out.committed[k];
    const std::size_t prog = part;  // index into w.programs
    w.events.push_back({WitnessEvent::Op::kBegin, prog, piece, kInvalidObj, 0});
    for (const Event& e : out.records[k].events) {
      w.events.push_back({e.is_read() ? WitnessEvent::Op::kRead
                                      : WitnessEvent::Op::kWrite,
                          prog, piece, local_of[e.obj], e.value});
    }
    w.events.push_back(
        {WitnessEvent::Op::kCommit, prog, piece, kInvalidObj, 0});
  }

  // Render the violating cycle over spliced transactions with names.
  const auto txn_name = [&](TxnId t) -> std::string {
    if (t == 0) return "init";
    const std::size_t idx = t - 1;
    return idx < participants.size() ? programs[participants[idx]].name
                                     : "T" + std::to_string(t);
  };
  for (const DepEdge& e : conf.cycle) {
    std::string step = txn_name(e.from) + " -" + to_string(e.kind);
    if (e.obj != kInvalidObj) step += "(" + suite.objects.name(e.obj) + ")";
    step += "-> " + txn_name(e.to);
    w.cycle.push_back(std::move(step));
  }
  if (w.cycle.empty()) {
    w.cycle.push_back(conf.monitor_detail.empty()
                          ? "spliced history excluded without a cycle witness"
                          : conf.monitor_detail);
  }
  return w;
}

}  // namespace sia::witness
